#pragma once

// Query-serving subsystem: concurrent batched distance queries on a built
// emulator or spanner.
//
// The paper's stated application is computing almost shortest paths —
// constructing the ultra-sparse H is preprocessing; this layer is the
// serving half. A QueryEngine wraps any BuildOutput (usne::build()) and
// answers point-to-point / single-source / batch distance queries from many
// threads at once. Every answer d satisfies the construction's guarantee
//
//   d_G(u,v) <= d <= alpha * d_G(u,v) + beta.
//
// The per-query workhorse is Dial's bucket-queue SSSP on H (path/dijkstra.hpp)
// — per-query cost depends on |H| ~ n, never on |E(G)|. On top of it sits a
// sharded LRU cache of per-source SSSP vectors: shards are locked
// independently, so a query stream with source locality costs one SSSP per
// hot source regardless of how many threads are serving, and concurrent
// requests for the same cold source coalesce into a single computation.
//
// Answers are a pure function of H, so cached, uncached, serial and
// multi-threaded serving are bit-identical — tests/test_serve.cpp and
// bench_query_throughput enforce this, and BatchResult::checksum gives CI a
// one-number seed-stability probe.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"
#include "path/sssp_kernel.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/workload.hpp"
#include "util/thread_pool.hpp"

namespace usne {
struct BuildOutput;  // api/build.hpp
}

namespace usne::serve {

/// One computed single-source result, shared between the cache and any
/// number of readers. Eviction only drops the cache's reference; vectors
/// handed out stay valid for as long as the caller holds them.
using SsspResult = std::shared_ptr<const std::vector<Dist>>;

/// Value-semantics view over an SsspResult with vector-like access. What
/// ApproxDistanceOracle::query_all now returns: indexing stays source
/// compatible while ownership is shared, so a concurrent eviction can never
/// dangle the view.
class SsspView {
 public:
  explicit SsspView(SsspResult result) : result_(std::move(result)) {}

  Dist operator[](std::size_t i) const { return (*result_)[i]; }
  std::size_t size() const noexcept { return result_->size(); }
  auto begin() const noexcept { return result_->begin(); }
  auto end() const noexcept { return result_->end(); }
  const std::vector<Dist>& vec() const noexcept { return *result_; }

 private:
  SsspResult result_;
};

/// Vertex-renumbering policy of the engine's internal CSR (the cache and
/// every answer stay in original vertex ids — the inverse mapping is
/// applied inside compute_sssp, so answers, checksums and stretch checks
/// are bit-identical with or without renumbering).
enum class Renumber {
  kInherit,     ///< follow BuildOutput::degree_sort (the BuildSpec flag);
                ///< kNone when constructed from a bare WeightedGraph
  kNone,        ///< serve on H's own vertex order
  kDegreeSort,  ///< degree-descending renumbering: hot hubs cluster at the
                ///< front of the dist array and CSR (prefetch-friendly on
                ///< skewed graphs)
};

/// Engine tuning. Defaults suit the test/bench scale; cache_mb is the knob
/// production would size (the README's "Serving queries" section).
struct ServeOptions {
  /// Lock shards of the SSSP cache. 0 = default (16). More shards = less
  /// contention; sources hash uniformly across them.
  int cache_shards = 0;

  /// Total cache budget in MiB across all shards; one entry costs
  /// ~8 * n bytes. <= 0 disables caching entirely (every query recomputes —
  /// the uncached reference the tests compare against).
  double cache_mb = 64.0;

  /// Exact per-shard entry capacity override for tests (-1 = derive from
  /// cache_mb). With 0 entries the cache is disabled.
  std::int64_t cache_entries_per_shard = -1;

  /// Per-query SSSP kernel (path/sssp_kernel.hpp). Both are exact on H, so
  /// answers are bit-identical; kDelta wins at scale on weighted emulators,
  /// kDial remains the reference.
  SsspKernel kernel = SsspKernel::kDial;

  /// Delta-stepping bucket width (power of two; 0 = auto from the mean
  /// edge weight). Ignored by kDial.
  Dist delta = 0;

  /// Internal CSR vertex order; see Renumber.
  Renumber renumber = Renumber::kInherit;

  /// Lock-free last-source memo per serving thread: repeated-source runs
  /// (the grouped workload) hit a thread-local entry instead of paying
  /// shard lock + LRU bump per query. Only active when the cache is
  /// enabled (an uncached engine stays a strict recompute-every-query
  /// reference). Answers are unaffected either way.
  bool source_memo = true;

  /// Record per-query service latency into BatchResult::latency during
  /// serve() (a LatencyHistogram; two steady_clock reads per query). Off
  /// by default so throughput benches measure serving, not timing.
  bool record_latency = false;

  /// Slow-query log threshold in microseconds; 0 (the default) disables
  /// it. When set, serve() times every query (same two clock reads as
  /// record_latency) and any query at or over the threshold emits one
  /// stderr line —
  ///   SLOW_QUERY {"all": 0|1, "threshold_us": T, "u": U, "us": X, "v": V}
  /// — and bumps the usne_serve_slow_queries_total counter. Answers are
  /// unaffected.
  std::int64_t slow_query_us = 0;
};

/// Cache counter snapshot (cumulative since construction).
struct CacheStats {
  std::int64_t hits = 0;        ///< served from a cached vector
  std::int64_t misses = 0;      ///< triggered (or coalesced into) an SSSP
  std::int64_t coalesced = 0;   ///< of the misses: waited on another thread
  std::int64_t sssp_runs = 0;   ///< SSSP computations actually executed
  std::int64_t evictions = 0;   ///< LRU entries dropped
  std::int64_t entries = 0;     ///< currently resident entries
};

/// What one serve() batch did. `answers[i]` is the distance for query i;
/// for single-source (all) queries it is the FNV-1a checksum of the full
/// vector folded to int64 (the batch is about throughput accounting — call
/// query_all for the vector itself).
struct BatchResult {
  std::vector<Dist> answers;
  std::int64_t point_queries = 0;
  std::int64_t all_queries = 0;
  /// Counter deltas accrued by this batch — except `entries`, which is the
  /// absolute resident-entry count after the batch (a delta would go
  /// negative under eviction and mean nothing).
  CacheStats cache;
  double wall_s = 0;
  double qps = 0;                ///< queries / wall_s
  std::uint64_t checksum = 0;    ///< FNV-1a over `answers`, order-sensitive

  /// Per-query service-latency histogram (microseconds), populated only
  /// when ServeOptions::record_latency was set; nullptr otherwise.
  std::shared_ptr<const LatencyHistogram> latency;

  /// One-line JSON of the batch counters (sorted keys), the record
  /// usne_run query and bench_query_throughput embed.
  std::string stats_json() const;
};

/// Preprocess-once, serve-many distance-query engine. All query methods are
/// const and safe to call concurrently from any number of threads.
class QueryEngine {
 public:
  /// Wraps an already-built emulator/spanner H with its stretch guarantee.
  QueryEngine(WeightedGraph h, double alpha, Dist beta,
              ServeOptions options = {});

  /// Convenience: wraps BuildOutput::h() with its computed guarantee.
  /// (H is copied out of `built`; the BuildOutput need not outlive the
  /// engine.) When the build carries no guarantee (has_guarantee == false:
  /// randomized baselines), alpha()/beta() read (1, 0) — a placeholder,
  /// not a claim: don't gate such an engine on sample_query_stretch.
  explicit QueryEngine(const BuildOutput& built, ServeOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  ~QueryEngine();

  /// Point-to-point approximate distance (kInfDist if disconnected).
  /// Serves from either endpoint's cached vector when available (distances
  /// are symmetric), otherwise computes SSSP from u.
  Dist query(Vertex u, Vertex v) const;

  /// All approximate distances from `source`, cached. Concurrent calls for
  /// the same cold source coalesce into one SSSP.
  SsspResult query_all(Vertex source) const;

  /// Runs a query batch over `threads` lanes (0 = hardware concurrency,
  /// 1 = serial). Answers are positionally aligned with `queries` and
  /// bit-identical for any thread count. The fan-out runs on a lazily
  /// created pool owned by the engine (rebuilt only when `threads`
  /// changes), so steady-state batches spawn no OS threads; concurrent
  /// multi-threaded serve() calls are safe but serialize on that pool —
  /// point queries (query / query_all) never do.
  BatchResult serve(std::span<const Query> queries, int threads = 1) const;

  /// Cumulative cache counters since construction.
  CacheStats cache_stats() const;

  /// Counters accrued since the previous cache_stats_delta() call (or
  /// construction), for per-interval rates: the daemon's STATS endpoint.
  /// Calls are serialized on an internal baseline, so every increment is
  /// reported in exactly one interval — concurrent queries never make an
  /// increment vanish or count twice across intervals. `entries` stays the
  /// absolute resident count (a delta would go negative under eviction).
  CacheStats cache_stats_delta() const;

  const WeightedGraph& emulator() const noexcept { return h_; }
  double alpha() const noexcept { return alpha_; }
  Dist beta() const noexcept { return beta_; }

  /// Kernel the engine dispatches to ("dial" | "delta") and whether its
  /// internal CSR is degree-sorted — what usne_run surfaces in the query
  /// JSON record.
  const char* kernel_name() const noexcept;
  bool renumbered() const noexcept { return !new_of_old_.empty(); }

 private:
  class Cache;

  std::vector<Dist> compute_sssp(Vertex source) const;

  WeightedGraph h_;
  double alpha_ = 1;
  Dist beta_ = 0;
  ServeOptions options_;
  std::uint64_t engine_id_ = 0;  // unique per engine; keys the source memo
  bool memo_enabled_ = false;

  // Packed CSR the kernels run on. When renumbering is on, perm_offsets_/
  // perm_arcs_ own a degree-sorted copy and new_of_old_ maps original ->
  // internal ids (compute_sssp maps the result back); otherwise csr_ views
  // h_'s own storage and new_of_old_ is empty.
  WeightedGraph::Csr csr_;
  std::vector<Vertex> new_of_old_;
  std::vector<std::int64_t> perm_offsets_;
  std::vector<WeightedGraph::Arc> perm_arcs_;
  Dist max_w_ = 0;
  Dist delta_ = 1;

  std::unique_ptr<Cache> cache_;
  mutable std::atomic<std::int64_t> sssp_runs_{0};

  // Interval baseline for cache_stats_delta (the mutex orders snapshots so
  // intervals partition the monotone counters exactly).
  mutable std::mutex delta_mutex_;
  mutable CacheStats delta_baseline_;

  // Lazily created batch fan-out pool (see serve()); pool_mutex_ guards
  // both creation and use (util::ThreadPool::parallel_for is not
  // reentrant).
  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

/// Accumulates `value` into an FNV-1a checksum; the batch/oracle answer
/// probe CI uses for seed stability.
std::uint64_t checksum_accumulate(std::uint64_t hash, std::int64_t value) noexcept;
inline constexpr std::uint64_t kChecksumSeed = 14695981039346656037ULL;

/// Folds a full SSSP vector to the int64 recorded in BatchResult::answers
/// for single-source queries.
Dist checksum_fold(const std::vector<Dist>& dist) noexcept;

}  // namespace usne::serve
