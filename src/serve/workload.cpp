#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace usne::serve {
namespace {

void validate(Vertex n, const WorkloadSpec& spec) {
  if (n <= 0) throw std::invalid_argument("generate_workload: n must be > 0");
  if (spec.num_queries < 0) {
    throw std::invalid_argument("generate_workload: num_queries must be >= 0");
  }
  if (spec.kind == WorkloadKind::kZipf && spec.zipf_s <= 0) {
    throw std::invalid_argument("generate_workload: zipf_s must be > 0");
  }
  if (spec.kind == WorkloadKind::kGrouped && spec.group_size <= 0) {
    throw std::invalid_argument("generate_workload: group_size must be > 0");
  }
  if (spec.kind == WorkloadKind::kPointVsAll &&
      (spec.all_fraction < 0 || spec.all_fraction > 1)) {
    throw std::invalid_argument(
        "generate_workload: all_fraction must be in [0, 1]");
  }
}

Vertex uniform_vertex(Rng& rng, Vertex n) {
  return static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
}

/// Zipf sampler over [0, n): rank r has weight 1/(r+1)^s, ranks are mapped
/// to vertices through a seeded shuffle so the hot head is not simply the
/// low vertex ids (which are structurally special in several generators).
class ZipfSources {
 public:
  ZipfSources(Vertex n, double s, Rng& rng)
      : rank_to_vertex_(static_cast<std::size_t>(n)) {
    std::iota(rank_to_vertex_.begin(), rank_to_vertex_.end(), Vertex{0});
    std::shuffle(rank_to_vertex_.begin(), rank_to_vertex_.end(), rng);
    cdf_.resize(static_cast<std::size_t>(n));
    double cumulative = 0;
    for (std::size_t r = 0; r < cdf_.size(); ++r) {
      cumulative += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = cumulative;
    }
  }

  Vertex draw(Rng& rng) const {
    const double x = rng.uniform01() * cdf_.back();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    const std::size_t rank = it == cdf_.end()
                                 ? cdf_.size() - 1
                                 : static_cast<std::size_t>(it - cdf_.begin());
    return rank_to_vertex_[rank];
  }

 private:
  std::vector<Vertex> rank_to_vertex_;
  std::vector<double> cdf_;  // unnormalized cumulative weights
};

}  // namespace

WorkloadKind parse_workload_kind(const std::string& name) {
  if (name == "uniform") return WorkloadKind::kUniform;
  if (name == "zipf") return WorkloadKind::kZipf;
  if (name == "grouped") return WorkloadKind::kGrouped;
  if (name == "point_vs_all") return WorkloadKind::kPointVsAll;
  throw std::invalid_argument("unknown workload '" + name +
                              "' (uniform|zipf|grouped|point_vs_all)");
}

const char* workload_kind_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kGrouped: return "grouped";
    case WorkloadKind::kPointVsAll: return "point_vs_all";
  }
  return "?";
}

std::vector<Query> generate_workload(Vertex n, const WorkloadSpec& spec) {
  validate(n, spec);
  Rng rng(spec.seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<std::size_t>(spec.num_queries));

  switch (spec.kind) {
    case WorkloadKind::kUniform:
      for (std::int64_t q = 0; q < spec.num_queries; ++q) {
        queries.push_back({uniform_vertex(rng, n), uniform_vertex(rng, n)});
      }
      break;
    case WorkloadKind::kZipf: {
      const ZipfSources sources(n, spec.zipf_s, rng);
      for (std::int64_t q = 0; q < spec.num_queries; ++q) {
        queries.push_back({sources.draw(rng), uniform_vertex(rng, n)});
      }
      break;
    }
    case WorkloadKind::kGrouped:
      while (static_cast<std::int64_t>(queries.size()) < spec.num_queries) {
        const Vertex source = uniform_vertex(rng, n);
        const std::int64_t remaining =
            spec.num_queries - static_cast<std::int64_t>(queries.size());
        const std::int64_t run = std::min(spec.group_size, remaining);
        for (std::int64_t i = 0; i < run; ++i) {
          queries.push_back({source, uniform_vertex(rng, n)});
        }
      }
      break;
    case WorkloadKind::kPointVsAll:
      for (std::int64_t q = 0; q < spec.num_queries; ++q) {
        Query query{uniform_vertex(rng, n), uniform_vertex(rng, n)};
        // The upgrade decision is drawn after the pair, so the pair
        // *distribution* is untouched by all_fraction. (The raw RNG stream
        // still diverges from kUniform's after the first query — the extra
        // chance() draw shifts every later pair.)
        if (rng.chance(spec.all_fraction)) {
          query.v = 0;
          query.all = true;
        }
        queries.push_back(query);
      }
      break;
  }
  return queries;
}

}  // namespace usne::serve
