#pragma once

// Lock-free fixed log-bucket latency histogram.
//
// The serving layer needs percentiles, not means: a daemon answering
// millions of queries is judged by its p99/p999 tail, and a tail cannot be
// reconstructed from an aggregate qps number. This histogram is the one
// latency primitive shared by the whole serving stack — QueryEngine::serve
// records per-query service times into it (ServeOptions::record_latency),
// net::Server gives each worker thread its own instance and merges them on
// a STATS request, and usne_loadgen measures client-observed wire latency
// with it.
//
// Design: HdrHistogram-lite. Values (microseconds by convention, but the
// buckets are unit-agnostic) land in log-spaced buckets with kSubBits
// sub-buckets per octave, giving a fixed relative resolution of
// 2^-kSubBits (= 12.5%) at every magnitude with a small constant footprint
// (kBucketCount counters, ~4 KiB). record() is a single relaxed atomic
// increment — safe from any number of threads, no locks, no allocation —
// so it can sit on the hot serving path. Reads (percentile, merge_from,
// stats_json) are racy-but-consistent snapshots: each counter is read
// atomically, which is exactly the guarantee a stats endpoint needs.
//
// Percentiles are reported as the *upper bound* of the bucket containing
// the requested rank (clamped to the true observed maximum), so a reported
// p99 never understates the tail.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace usne::serve {

class LatencyHistogram {
 public:
  /// Sub-buckets per octave: 2^kSubBits buckets between consecutive powers
  /// of two, i.e. 12.5% relative bucket width.
  static constexpr int kSubBits = 3;

  /// Total bucket count; covers the full uint64 value range.
  static constexpr int kBucketCount = 64 << kSubBits;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value. Lock-free (relaxed atomics); any thread.
  void record(std::uint64_t value) noexcept;

  /// Adds `other`'s counts into this histogram (relaxed reads of `other`,
  /// so merging while `other` is still being written yields a consistent
  /// point-in-time-ish snapshot — the daemon's per-worker -> STATS merge).
  void merge_from(const LatencyHistogram& other) noexcept;

  /// Zeroes every counter.
  void reset() noexcept;

  std::int64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  std::uint64_t max_value() const noexcept;

  /// Value at quantile p in [0, 1]: the upper bound of the bucket holding
  /// the ceil(p * count)-th smallest recorded value, clamped to
  /// max_value(). 0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  /// One-line JSON (sorted keys):
  ///   {"count": N, "max_us": M, "mean_us": X, "p50_us": A, "p99_us": B,
  ///    "p999_us": C}
  /// The *_us suffix is the serving stack's convention (record() is fed
  /// microseconds everywhere in this repository).
  std::string stats_json() const;

  /// Bucket mapping, exposed for tests: values < 2^(kSubBits+1) map to
  /// themselves (exact), larger values to log-spaced sub-buckets.
  static int bucket_index(std::uint64_t value) noexcept;
  /// Largest value mapping to `index` (inverse of bucket_index).
  static std::uint64_t bucket_upper_bound(int index) noexcept;

  /// Recorded count of bucket `index` (relaxed read; the per-bucket view
  /// the obs layer's Prometheus histogram exposition is built from).
  std::int64_t bucket_count(int index) const noexcept {
    return counts_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::int64_t>, kBucketCount> counts_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace usne::serve
