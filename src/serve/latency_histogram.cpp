#include "serve/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace usne::serve {

namespace {
/// Values below this are bucketed exactly (index == value).
constexpr std::uint64_t kLinearLimit =
    1ULL << (LatencyHistogram::kSubBits + 1);
constexpr std::uint64_t kSubMask = (1ULL << LatencyHistogram::kSubBits) - 1;
}  // namespace

int LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearLimit) return static_cast<int>(value);
  const int exp = std::bit_width(value) - 1;  // >= kSubBits + 1
  const int sub = static_cast<int>((value >> (exp - kSubBits)) & kSubMask);
  return (((exp - kSubBits) << kSubBits) | sub) +
         static_cast<int>(1ULL << kSubBits);
}

std::uint64_t LatencyHistogram::bucket_upper_bound(int index) noexcept {
  if (index < 0) return 0;
  if (static_cast<std::uint64_t>(index) < kLinearLimit) {
    return static_cast<std::uint64_t>(index);
  }
  const int block = ((index - static_cast<int>(1ULL << kSubBits)) >> kSubBits);
  const int exp = block + kSubBits;
  const int sub = index & static_cast<int>(kSubMask);
  const int scale = exp - kSubBits;
  const std::uint64_t lower =
      (1ULL << exp) + (static_cast<std::uint64_t>(sub) << scale);
  return lower + (1ULL << scale) - 1;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  counts_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
  for (int b = 0; b < kBucketCount; ++b) {
    const std::int64_t n =
        other.counts_[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
    if (n != 0) {
      counts_[static_cast<std::size_t>(b)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev && !max_.compare_exchange_weak(
                                 prev, other_max, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::int64_t LatencyHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::max_value() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  const std::int64_t total = count();
  if (total <= 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += counts_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= target) {
      return std::min(bucket_upper_bound(b), max_value());
    }
  }
  return max_value();
}

std::string LatencyHistogram::stats_json() const {
  const std::int64_t n = count();
  const double mean =
      n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  std::ostringstream out;
  out << "{\"count\": " << n << ", \"max_us\": " << max_value()
      << ", \"mean_us\": " << format_double(mean, 1)
      << ", \"p50_us\": " << percentile(0.50)
      << ", \"p99_us\": " << percentile(0.99)
      << ", \"p999_us\": " << percentile(0.999) << "}";
  return out.str();
}

}  // namespace usne::serve
