#pragma once

// Serving-quality report: per-query stretch sample vs exact BFS on G.
//
// Throughput numbers (BatchResult) say how fast the engine answers;
// this says how good the answers are. A sample of the batch's point
// queries is re-answered exactly by BFS on the original graph and every
// engine answer d is checked against the construction's guarantee
// d_G <= d <= alpha * d_G + beta. Any violation means a broken build (or a
// broken serving layer), so violations/underruns must always be zero.

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"

namespace usne::serve {

/// Stretch of a sampled subset of a served workload.
struct StretchSample {
  std::int64_t pairs = 0;       ///< sampled connected (u != v) point pairs
  std::int64_t violations = 0;  ///< d > alpha * d_G + beta (must be 0)
  std::int64_t underruns = 0;   ///< d < d_G (must be 0)
  double max_mult = 0;          ///< max d / d_G over sampled pairs
  Dist max_additive = 0;        ///< max d - d_G over sampled pairs

  bool ok() const noexcept { return violations == 0 && underruns == 0; }

  /// One-line JSON (sorted keys) embedded by usne_run query and the bench.
  std::string stats_json() const;
};

/// Re-answers up to `max_pairs` of the workload's point queries exactly
/// (one BFS on G per distinct sampled source, cached across the sample)
/// and checks every engine answer against (alpha, beta). Queries whose
/// endpoints are disconnected in G must be kInfDist in the engine too —
/// counted as a violation otherwise, not skipped.
StretchSample sample_query_stretch(const Graph& g, const QueryEngine& engine,
                                   std::span<const Query> queries,
                                   std::int64_t max_pairs);

}  // namespace usne::serve
