#pragma once

// Reproducible query workloads for the serving layer.
//
// A WorkloadSpec names a query-mix shape (uniform pairs, zipfian-source,
// grouped-by-source, point-vs-all mixture) plus a seed; generate_workload
// expands it into a concrete query stream, bit-for-bit reproducible for a
// fixed (n, spec). Throughput scenarios are therefore comparable across
// runs, thread counts and PRs — the serving analogue of the seeded graph
// generators in graph/generators.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace usne::serve {

/// Query-mix shapes. Source locality is the axis that matters for the
/// sharded SSSP cache: uniform has none, zipf has a hot head, grouped is
/// maximal (runs of queries sharing one source).
enum class WorkloadKind {
  kUniform,     ///< independent uniform (u, v) pairs
  kZipf,        ///< source drawn zipf(s) over a seeded rank permutation,
                ///< target uniform
  kGrouped,     ///< runs of `group_size` queries sharing one uniform source
  kPointVsAll,  ///< uniform pairs, a fraction upgraded to single-source
                ///< (full SSSP vector) queries
};

/// One distance query. `all` asks for the full single-source vector; the
/// batch answer slot then records the vector's checksum rather than one
/// distance (see QueryEngine::serve).
struct Query {
  Vertex u = 0;
  Vertex v = 0;      ///< ignored when all is set
  bool all = false;

  friend bool operator==(const Query&, const Query&) = default;
};

/// A reproducible workload: shape + size + seed + shape knobs.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kUniform;
  std::int64_t num_queries = 1024;
  std::uint64_t seed = 1;

  /// Zipf exponent over source ranks (kZipf). Rank r is drawn with
  /// probability proportional to 1/(r+1)^zipf_s; larger = hotter head.
  double zipf_s = 1.1;

  /// Queries per source run (kGrouped).
  std::int64_t group_size = 64;

  /// Fraction of queries upgraded to single-source (kPointVsAll).
  double all_fraction = 0.05;
};

/// "uniform" | "zipf" | "grouped" | "point_vs_all". Throws
/// std::invalid_argument listing the names otherwise.
WorkloadKind parse_workload_kind(const std::string& name);
const char* workload_kind_name(WorkloadKind kind) noexcept;

/// Expands `spec` into a concrete query stream over vertices [0, n).
/// Deterministic for a fixed (n, spec). Throws std::invalid_argument when
/// n <= 0 or the spec is malformed (negative sizes, zipf_s <= 0,
/// all_fraction outside [0, 1]).
std::vector<Query> generate_workload(Vertex n, const WorkloadSpec& spec);

}  // namespace usne::serve
