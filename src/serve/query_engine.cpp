#include "serve/query_engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "api/build.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "path/sssp_kernel.hpp"
#include "util/invariant.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace usne::serve {
namespace {

constexpr int kDefaultShards = 16;

/// SplitMix64 mix so consecutive source ids spread across shards.
std::size_t shard_of(Vertex source, std::size_t shards) noexcept {
  return static_cast<std::size_t>(
      SplitMix64(static_cast<std::uint64_t>(source)).next() % shards);
}

std::int64_t capacity_per_shard(Vertex n, const ServeOptions& options,
                                std::size_t shards) {
  if (options.cache_entries_per_shard >= 0) {
    return options.cache_entries_per_shard;
  }
  if (options.cache_mb <= 0) return 0;
  const double entry_bytes =
      static_cast<double>(std::max<Vertex>(n, 1)) * sizeof(Dist);
  const double total =
      options.cache_mb * 1024.0 * 1024.0 / entry_bytes;
  // At least one entry per shard once a cache was requested at all:
  // a budget too small to hold anything would silently degrade to
  // recompute-always, which is what cache_mb <= 0 is for.
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                       total / static_cast<double>(shards)));
}

/// Monotone engine ids keep the thread-local source memo sound: a memo
/// entry is only trusted when its id matches the engine asking, and ids are
/// never reused even if an engine is destroyed and another allocated at the
/// same address.
std::atomic<std::uint64_t> next_engine_id{1};

/// Last-source memo, one per serving thread. Grouped/repeated-source query
/// streams hit this before touching the shard mutex or splicing the LRU
/// list — the fast path is two integer compares and a shared_ptr deref.
/// The memo pins at most one SSSP vector per thread (dropped the next time
/// the thread serves a different source or engine).
struct SourceMemo {
  std::uint64_t engine = 0;
  Vertex source = -1;
  SsspResult result;
};

thread_local SourceMemo t_memo;

}  // namespace

// ---------------------------------------------------------------------------
// Sharded LRU cache of per-source SSSP vectors.
//
// Each shard is an independent mutex + LRU list + map. A cold source
// inserts a "computing" slot (result == nullptr) and releases the shard
// lock while the SSSP runs, so one slow computation never blocks the
// shard's other sources; concurrent requests for the same source wait on
// the shard condition variable instead of duplicating the work. Eviction
// drops ready entries from the LRU tail — never computing slots, and never
// the vectors already handed out (shared_ptr keeps them alive).

class QueryEngine::Cache {
 public:
  Cache(std::size_t shards, std::int64_t per_shard)
      : shards_(shards), capacity_(per_shard) {
    slots_ = std::make_unique<Shard[]>(shards_);
  }

  bool enabled() const noexcept { return capacity_ > 0; }
  std::size_t shard_count() const noexcept { return shards_; }
  std::int64_t capacity_per_shard() const noexcept { return capacity_; }

  /// Accounts a memo fast-path hit so hit/miss stats stay consistent with
  /// what the queries actually cost (a memo hit is a cache hit that skipped
  /// the shard lock).
  void count_hit() noexcept { hits_.fetch_add(1, std::memory_order_relaxed); }

  /// Returns the cached vector (counting a hit and bumping LRU recency) or
  /// nullptr without any side effects.
  SsspResult peek(Vertex source) {
    if (!enabled()) return nullptr;
    Shard& sh = slots_[shard_of(source, shards_)];
    std::lock_guard<std::mutex> lock(sh.mutex);
    const auto it = sh.map.find(source);
    if (it == sh.map.end() || !it->second.result) return nullptr;
    touch(sh, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.result;
  }

  /// Lookup-or-compute. `compute` runs outside the shard lock.
  template <typename ComputeFn>
  SsspResult get(Vertex source, ComputeFn&& compute) {
    if (!enabled()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::make_shared<const std::vector<Dist>>(compute(source));
    }
    Shard& sh = slots_[shard_of(source, shards_)];
    std::unique_lock<std::mutex> lock(sh.mutex);
    bool waited = false;
    for (;;) {
      const auto it = sh.map.find(source);
      if (it == sh.map.end()) break;  // cold (or evicted while we waited)
      if (it->second.result) {
        touch(sh, it->second);
        if (waited) {
          misses_.fetch_add(1, std::memory_order_relaxed);
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        } else {
          hits_.fetch_add(1, std::memory_order_relaxed);
        }
        return it->second.result;
      }
      waited = true;  // another thread is computing this source
      USNE_TRACE_SPAN("serve.coalesce_wait");
      sh.cv.wait(lock);
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    sh.lru.push_front(source);
    sh.map.emplace(source, Slot{nullptr, sh.lru.begin()});
    lock.unlock();

    SsspResult result;
    try {
      result = std::make_shared<const std::vector<Dist>>(compute(source));
    } catch (...) {
      lock.lock();
      erase(sh, source);
      sh.cv.notify_all();
      throw;
    }

    lock.lock();
    const auto it = sh.map.find(source);
    if (it != sh.map.end() && !it->second.result) it->second.result = result;
    evict_over_capacity(sh);
    sh.cv.notify_all();
    return result;
  }

  void fill_stats(CacheStats& stats) const {
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.coalesced = coalesced_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.entries = 0;
    for (std::size_t s = 0; s < shards_; ++s) {
      Shard& sh = slots_[s];
      std::lock_guard<std::mutex> lock(sh.mutex);
      stats.entries += static_cast<std::int64_t>(sh.map.size());
    }
  }

 private:
  struct Slot {
    SsspResult result;  // nullptr while a thread is computing it
    std::list<Vertex>::iterator pos;
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::list<Vertex> lru;  // front = most recently used
    std::unordered_map<Vertex, Slot> map;
  };

  void touch(Shard& sh, Slot& slot) {
    sh.lru.splice(sh.lru.begin(), sh.lru, slot.pos);
  }

  void erase(Shard& sh, Vertex source) {
    const auto it = sh.map.find(source);
    if (it == sh.map.end()) return;
    sh.lru.erase(it->second.pos);
    sh.map.erase(it);
  }

  void evict_over_capacity(Shard& sh) {
    // Walk from the LRU tail, skipping computing slots (their owner holds
    // no lock and expects the slot to still exist). If only computing
    // slots remain the shard runs transiently over capacity.
    auto it = sh.lru.end();
    while (static_cast<std::int64_t>(sh.map.size()) > capacity_ &&
           it != sh.lru.begin()) {
      --it;
      const auto slot = sh.map.find(*it);
      if (!slot->second.result) continue;
      it = sh.lru.erase(it);
      sh.map.erase(slot);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const std::size_t shards_;
  const std::int64_t capacity_;  // entries per shard; 0 = disabled
  std::unique_ptr<Shard[]> slots_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> coalesced_{0};
  std::atomic<std::int64_t> evictions_{0};
};

// ---------------------------------------------------------------------------

namespace {

/// kInherit only means something when the engine is built from a
/// BuildOutput; a bare WeightedGraph has no build flag to inherit.
ServeOptions resolve_renumber(ServeOptions options, bool degree_sort) {
  if (options.renumber == Renumber::kInherit) {
    options.renumber =
        degree_sort ? Renumber::kDegreeSort : Renumber::kNone;
  }
  return options;
}

}  // namespace

QueryEngine::QueryEngine(WeightedGraph h, double alpha, Dist beta,
                         ServeOptions options)
    : h_(std::move(h)),
      alpha_(alpha),
      beta_(beta),
      options_(resolve_renumber(options, false)),
      engine_id_(next_engine_id.fetch_add(1, std::memory_order_relaxed)) {
  const std::size_t shards = static_cast<std::size_t>(
      options.cache_shards > 0 ? options.cache_shards : kDefaultShards);
  cache_ = std::make_unique<Cache>(
      shards, capacity_per_shard(h_.num_vertices(), options, shards));
  // An uncached engine must stay a strict recompute-every-query reference
  // (tests rely on sssp_runs == queries), so the memo rides on the cache.
  memo_enabled_ = options_.source_memo && cache_->enabled();
  // Force the lazy CSR now: it is a mutable cache inside WeightedGraph, and
  // the serving threads must only ever read it.
  csr_ = h_.csr();
  if (options_.renumber == Renumber::kDegreeSort && csr_.n > 0) {
    new_of_old_ = degree_sorted_order(csr_);
    csr_ = renumber_csr(csr_, new_of_old_, perm_offsets_, perm_arcs_);
  }
  // Structural audit of the CSR every query will run on — including the
  // degree-sorted copy, so a renumbering bug is caught here, not as a
  // wrong answer downstream.
  if (inv::audits_enabled()) {
    std::string error;
    USNE_CHECK(inv::Category::kCsr, validate_csr(csr_, &error), error);
  }
  max_w_ = max_edge_weight(csr_);
  delta_ = options_.delta > 0 ? options_.delta : auto_delta(csr_);
}

QueryEngine::QueryEngine(const BuildOutput& built, ServeOptions options)
    : QueryEngine(built.h(), built.has_guarantee ? built.alpha : 1.0,
                  built.has_guarantee ? built.beta : 0,
                  resolve_renumber(options, built.degree_sort)) {}

QueryEngine::~QueryEngine() = default;

const char* QueryEngine::kernel_name() const noexcept {
  return sssp_kernel_name(options_.kernel);
}

std::vector<Dist> QueryEngine::compute_sssp(Vertex source) const {
  USNE_TRACE_SPAN("serve.sssp_kernel");
  sssp_runs_.fetch_add(1, std::memory_order_relaxed);
  thread_local SsspScratch scratch;
  const bool permuted = renumbered();
  const Vertex s =
      permuted ? new_of_old_[static_cast<std::size_t>(source)] : source;
  std::vector<Dist> dist =
      options_.kernel == SsspKernel::kDelta
          ? delta_sssp_csr(csr_, s, max_w_, delta_, scratch)
          : dial_sssp_csr(csr_, s, max_w_, scratch);
  if (!permuted) return dist;
  // Map back to original vertex ids: everything outside this function —
  // cache keys, answers, checksums, stretch checks — is renumbering-blind.
  std::vector<Dist> out(dist.size());
  for (std::size_t old = 0; old < out.size(); ++old) {
    out[old] = dist[static_cast<std::size_t>(new_of_old_[old])];
  }
  return out;
}

SsspResult QueryEngine::query_all(Vertex source) const {
  if (memo_enabled_) {
    SourceMemo& memo = t_memo;
    if (memo.engine == engine_id_ && memo.source == source) {
      cache_->count_hit();
      return memo.result;
    }
  }
  USNE_TRACE_SPAN("serve.cache_lookup");
  SsspResult result =
      cache_->get(source, [this](Vertex s) { return compute_sssp(s); });
  if (memo_enabled_) t_memo = {engine_id_, source, result};
  return result;
}

Dist QueryEngine::query(Vertex u, Vertex v) const {
  if (memo_enabled_) {
    const SourceMemo& memo = t_memo;
    if (memo.engine == engine_id_) {
      // Distances on the undirected H are symmetric, so either endpoint's
      // vector answers the query.
      if (memo.source == u) {
        cache_->count_hit();
        return (*memo.result)[static_cast<std::size_t>(v)];
      }
      if (memo.source == v) {
        cache_->count_hit();
        return (*memo.result)[static_cast<std::size_t>(u)];
      }
    }
  }
  // Serve from whichever endpoint is already cached before paying for an
  // SSSP from u.
  if (SsspResult cached = cache_->peek(u)) {
    const Dist d = (*cached)[static_cast<std::size_t>(v)];
    if (memo_enabled_) t_memo = {engine_id_, u, std::move(cached)};
    return d;
  }
  if (SsspResult cached = cache_->peek(v)) {
    const Dist d = (*cached)[static_cast<std::size_t>(u)];
    if (memo_enabled_) t_memo = {engine_id_, v, std::move(cached)};
    return d;
  }
  return (*query_all(u))[static_cast<std::size_t>(v)];
}

CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  cache_->fill_stats(stats);
  stats.sssp_runs = sssp_runs_.load(std::memory_order_relaxed);
  return stats;
}

CacheStats QueryEngine::cache_stats_delta() const {
  std::lock_guard<std::mutex> lock(delta_mutex_);
  const CacheStats cur = cache_stats();
  CacheStats delta;
  delta.hits = cur.hits - delta_baseline_.hits;
  delta.misses = cur.misses - delta_baseline_.misses;
  delta.coalesced = cur.coalesced - delta_baseline_.coalesced;
  delta.sssp_runs = cur.sssp_runs - delta_baseline_.sssp_runs;
  delta.evictions = cur.evictions - delta_baseline_.evictions;
  delta.entries = cur.entries;  // absolute, not an interval delta
  delta_baseline_ = cur;
  return delta;
}

BatchResult QueryEngine::serve(std::span<const Query> queries,
                               int threads) const {
  if (threads == 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::max(1, threads);

  BatchResult result;
  result.answers.assign(queries.size(), 0);
  const CacheStats before = cache_stats();

  // Latency recording is opt-in: the histogram is thread-safe (relaxed
  // atomics), so every serving lane records into the one instance.
  std::shared_ptr<LatencyHistogram> latency =
      options_.record_latency ? std::make_shared<LatencyHistogram>() : nullptr;

  const auto answer_one = [&](std::size_t i) {
    USNE_TRACE_SPAN("serve.query");
    const Query& q = queries[i];
    if (q.all) {
      result.answers[i] = checksum_fold(*query_all(q.u));
    } else {
      result.answers[i] = query(q.u, q.v);
    }
  };
  const std::int64_t slow_us = options_.slow_query_us;
  const auto run_one = [&](std::size_t i) {
    if (!latency && slow_us <= 0) {
      answer_one(i);
      return;
    }
    Timer per_query;
    answer_one(i);
    const std::int64_t us = per_query.micros();
    if (latency) latency->record(static_cast<std::uint64_t>(us));
    if (slow_us > 0 && us >= slow_us) {
      static obs::Counter& slow_total =
          obs::counter("usne_serve_slow_queries_total");
      slow_total.add(1);
      const Query& q = queries[i];
      // One stdio call per line so concurrent lanes never interleave
      // mid-line (stdio locks per call). Format documented in the README's
      // Observability section and in ServeOptions::slow_query_us.
      std::ostringstream line;
      line << "SLOW_QUERY {\"all\": " << (q.all ? 1 : 0)
           << ", \"threshold_us\": " << slow_us << ", \"u\": " << q.u
           << ", \"us\": " << us << ", \"v\": " << q.v << "}\n";
      std::fputs(line.str().c_str(), stderr);
    }
  };

  const bool parallel = threads > 1 && queries.size() > 1;
  std::unique_lock<std::mutex> pool_lock(pool_mutex_, std::defer_lock);
  if (parallel) {
    // The pool persists across batches (spawning OS threads per batch is
    // not a serving-path cost, and creation stays outside the timed
    // region); the lock also serializes concurrent multi-threaded batches,
    // since parallel_for is not reentrant.
    pool_lock.lock();
    if (!pool_ || pool_->parallelism() != threads) {
      pool_ = std::make_unique<util::ThreadPool>(threads);
    }
  }

  Timer timer;
  if (!parallel) {
    for (std::size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    // More chunks than lanes: the pool's shared cursor then load-balances
    // skew (a chunk of hot cached sources finishes early, its lane moves
    // on). Answers land positionally, so chunking never affects results.
    const std::size_t chunks =
        std::min(queries.size(), static_cast<std::size_t>(threads) * 8);
    pool_->parallel_for(static_cast<int>(chunks), [&](int c) {
      const std::size_t begin = queries.size() * static_cast<std::size_t>(c) / chunks;
      const std::size_t end =
          queries.size() * (static_cast<std::size_t>(c) + 1) / chunks;
      for (std::size_t i = begin; i < end; ++i) run_one(i);
    });
  }
  result.wall_s = timer.seconds();
  result.qps = result.wall_s > 0
                   ? static_cast<double>(queries.size()) / result.wall_s
                   : 0;

  for (const Query& q : queries) {
    if (q.all) {
      ++result.all_queries;
    } else {
      ++result.point_queries;
    }
  }
  const CacheStats after = cache_stats();
  result.cache.hits = after.hits - before.hits;
  result.cache.misses = after.misses - before.misses;
  result.cache.coalesced = after.coalesced - before.coalesced;
  result.cache.sssp_runs = after.sssp_runs - before.sssp_runs;
  result.cache.evictions = after.evictions - before.evictions;
  result.cache.entries = after.entries;

  // Cache ledger conservation (audit: the deltas are only exact when no
  // queries run outside this batch concurrently — the situation every test
  // and bench is in). Every query is accounted exactly once as a hit or a
  // miss — the memo fast path feeds count_hit() precisely so this ledger
  // balances — and SSSP work never exceeds the misses that requested it.
  USNE_AUDIT(inv::Category::kServeCache,
             result.cache.hits + result.cache.misses ==
                     static_cast<std::int64_t>(queries.size()) &&
                 result.cache.sssp_runs <= result.cache.misses &&
                 result.cache.coalesced <= result.cache.misses,
             "cache ledger off: hits " + std::to_string(result.cache.hits) +
                 " + misses " + std::to_string(result.cache.misses) +
                 " != queries " + std::to_string(queries.size()) +
                 " (sssp_runs " + std::to_string(result.cache.sssp_runs) +
                 ", coalesced " + std::to_string(result.cache.coalesced) +
                 ")");
  // Shard accounting vs the cache_mb budget: at batch quiescence the
  // resident entries fit the per-shard capacities, and — when capacity was
  // derived from cache_mb — the resident bytes fit the budget (plus the
  // documented one-entry-per-shard floor).
  USNE_AUDIT(
      inv::Category::kServeCache,
      [&] {
        const auto shards =
            static_cast<std::int64_t>(cache_->shard_count());
        const std::int64_t cap = cache_->capacity_per_shard();
        if (result.cache.entries > shards * cap) return false;
        if (options_.cache_mb <= 0 || options_.cache_entries_per_shard >= 0) {
          return true;  // disabled or explicitly sized in entries
        }
        const double entry_bytes =
            static_cast<double>(std::max<Vertex>(h_.num_vertices(), 1)) *
            sizeof(Dist);
        const double budget = options_.cache_mb * 1024.0 * 1024.0 +
                              static_cast<double>(shards) * entry_bytes;
        return static_cast<double>(result.cache.entries) * entry_bytes <=
               budget;
      }(),
      "cache over budget: " + std::to_string(result.cache.entries) +
          " resident entries, " +
          std::to_string(cache_->shard_count()) + " shard(s) of " +
          std::to_string(cache_->capacity_per_shard()) + " entries, " +
          format_double(options_.cache_mb, 2) + " MiB budget");

  std::uint64_t hash = kChecksumSeed;
  for (const Dist d : result.answers) hash = checksum_accumulate(hash, d);
  result.checksum = hash;
  result.latency = std::move(latency);

  // Mirror the batch deltas onto the global metrics page. Once per batch
  // (cold path), pre-resolved handles — the per-query path stays untouched,
  // and the page totals reconcile with the cache ledger by construction.
  static obs::Counter& queries_total = obs::counter("usne_serve_queries_total");
  static obs::Counter& hits_total = obs::counter("usne_serve_cache_hits_total");
  static obs::Counter& misses_total =
      obs::counter("usne_serve_cache_misses_total");
  static obs::Counter& sssp_total = obs::counter("usne_serve_sssp_runs_total");
  static obs::Counter& batches_total =
      obs::counter("usne_serve_batches_total");
  queries_total.add(static_cast<std::int64_t>(queries.size()));
  hits_total.add(result.cache.hits);
  misses_total.add(result.cache.misses);
  sssp_total.add(result.cache.sssp_runs);
  batches_total.add(1);
  return result;
}

std::string BatchResult::stats_json() const {
  std::ostringstream out;
  out << "{\"all_queries\": " << all_queries
      << ", \"cache_coalesced\": " << cache.coalesced
      << ", \"cache_entries\": " << cache.entries
      << ", \"cache_evictions\": " << cache.evictions
      << ", \"cache_hits\": " << cache.hits
      << ", \"cache_misses\": " << cache.misses
      << ", \"checksum\": " << checksum
      << ", \"point_queries\": " << point_queries
      << ", \"qps\": " << format_double(qps, 1)
      << ", \"queries\": " << point_queries + all_queries
      << ", \"sssp_runs\": " << cache.sssp_runs
      << ", \"wall_s\": " << format_double(wall_s, 4) << "}";
  return out.str();
}

std::uint64_t checksum_accumulate(std::uint64_t hash,
                                  std::int64_t value) noexcept {
  const std::uint64_t bits = static_cast<std::uint64_t>(value);
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (bits >> (8 * byte)) & 0xffULL;
    hash *= 1099511628211ULL;
  }
  return hash;
}

Dist checksum_fold(const std::vector<Dist>& dist) noexcept {
  std::uint64_t hash = kChecksumSeed;
  for (const Dist d : dist) hash = checksum_accumulate(hash, d);
  return static_cast<Dist>(hash & 0x7fffffffffffffffULL);
}

}  // namespace usne::serve
