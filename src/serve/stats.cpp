#include "serve/stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "path/bfs.hpp"
#include "util/table.hpp"

namespace usne::serve {

StretchSample sample_query_stretch(const Graph& g, const QueryEngine& engine,
                                   std::span<const Query> queries,
                                   std::int64_t max_pairs) {
  StretchSample sample;
  const double alpha = engine.alpha();
  const Dist beta = engine.beta();
  // One exact BFS per distinct sampled source, shared across its pairs —
  // the sample itself exploits source locality the same way serving does.
  std::unordered_map<Vertex, std::vector<Dist>> exact;
  for (const Query& q : queries) {
    if (sample.pairs >= max_pairs) break;
    if (q.all || q.u == q.v) continue;
    auto it = exact.find(q.u);
    if (it == exact.end()) {
      it = exact.emplace(q.u, bfs_distances(g, q.u)).first;
    }
    const Dist dg = it->second[static_cast<std::size_t>(q.v)];
    const Dist d = engine.query(q.u, q.v);
    ++sample.pairs;
    if (dg >= kInfDist) {
      // Disconnected in G: the emulator/spanner H is a subsampled same-
      // vertex-set graph, so the pair must be unreachable there too.
      if (d < kInfDist) ++sample.violations;
      continue;
    }
    if (d < dg) ++sample.underruns;
    if (static_cast<double>(d) >
        alpha * static_cast<double>(dg) + static_cast<double>(beta)) {
      ++sample.violations;
    }
    if (dg > 0) {
      sample.max_mult = std::max(
          sample.max_mult, static_cast<double>(d) / static_cast<double>(dg));
    }
    sample.max_additive = std::max(sample.max_additive, d - dg);
  }
  return sample;
}

std::string StretchSample::stats_json() const {
  std::ostringstream out;
  out << "{\"max_additive\": " << max_additive
      << ", \"max_mult\": " << format_double(max_mult, 3)
      << ", \"pairs\": " << pairs << ", \"underruns\": " << underruns
      << ", \"violations\": " << violations << "}";
  return out.str();
}

}  // namespace usne::serve
