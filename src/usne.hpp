#pragma once

// Umbrella header for the USNE library — ultra-sparse near-additive
// emulators (Elkin & Matar, PODC 2021) and everything around them.
//
// Typical entry points:
//   * usne::build(g, BuildSpec)    — unified front door to every
//     construction (api/build.hpp); usne::algorithms() enumerates them
//   * CentralizedParams / DistributedParams / SpannerParams  (core/params.hpp)
//   * build_emulator_centralized   — Algorithm 1 (§2)
//   * build_emulator_fast          — fast centralized simulation (§3.3)
//   * build_emulator_distributed   — CONGEST construction (§3.1)
//   * build_spanner / build_spanner_congest — near-additive spanners (§4)
//   * serve::QueryEngine           — concurrent batched distance queries on
//     any BuildOutput (sharded SSSP cache, reproducible workloads)
//   * net::Server / net::Client    — TCP serving daemon around the engine
//     (usne_served) and its blocking wire client (usne_loadgen)
//   * ApproxDistanceOracle         — preprocess/query application (thin
//     wrapper over the serve engine)
//   * obs::Registry / USNE_TRACE_SPAN — process-global metrics (Prometheus/
//     JSON export) and span tracing (Chrome trace-event dumps)
//   * evaluate_stretch_exact / audit_all — verification utilities
//
// Include this for convenience, or the individual headers for faster
// builds.

#include "api/build.hpp"
#include "baselines/em19_spanner.hpp"
#include "baselines/en17_emulator.hpp"
#include "baselines/ep01_emulator.hpp"
#include "baselines/tz06_emulator.hpp"
#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/engine.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "congest/ruling_set.hpp"
#include "congest/transport.hpp"
#include "core/audit.hpp"
#include "core/cluster.hpp"
#include "core/emulator_centralized.hpp"
#include "core/emulator_distributed.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "core/ruling_central.hpp"
#include "core/spanner.hpp"
#include "core/spanner_distributed.hpp"
#include "eval/metrics.hpp"
#include "eval/stretch.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weighted_graph.hpp"
#include "hopset/hopset.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oracle/distance_oracle.hpp"
#include "path/apsp.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "path/source_detection.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/query_engine.hpp"
#include "serve/stats.hpp"
#include "serve/workload.hpp"
#include "util/build_info.hpp"
#include "util/cli.hpp"
#include "util/invariant.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
