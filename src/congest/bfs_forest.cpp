#include "congest/bfs_forest.hpp"

#include <algorithm>

#include "congest/engine.hpp"

namespace usne::congest {
namespace {

// Message tags for forest construction.
constexpr Word kWave = 1;  // <kWave, root>
constexpr Word kJoin = 2;  // <kJoin> to parent

/// BFS forest growth as a NodeProgram: `depth` wave rounds in which an
/// unclaimed vertex adopts the smallest (root, sender) wave it hears and
/// re-broadcasts next round, then one join round in which every spanned
/// non-root notifies its parent (so parents know their children).
///
/// Parallel audit: on_round writes only v's forest slots plus the frontier,
/// the latter through per-shard buffers merged in end_round (which sorts
/// the frontier anyway, so even the merge order is immaterial here).
class BfsForestProgram final : public NodeProgram {
 public:
  BfsForestProgram(Vertex n, const std::vector<Vertex>& roots, Dist depth)
      : n_(n), depth_(depth) {
    forest_.root.assign(static_cast<std::size_t>(n), -1);
    forest_.depth.assign(static_cast<std::size_t>(n), kInfDist);
    forest_.parent.assign(static_cast<std::size_t>(n), -1);
    for (const Vertex r : roots) {
      if (forest_.root[static_cast<std::size_t>(r)] == -1) {
        forest_.root[static_cast<std::size_t>(r)] = r;
        forest_.depth[static_cast<std::size_t>(r)] = 0;
        frontier_.push_back(r);
      }
    }
  }

  void set_shards(std::size_t shards) override { claimed_.reset(shards); }

  void init(Outbox& out) override {
    if (depth_ > 0) {
      broadcast_waves(out);
    } else {
      send_joins(out);  // degenerate schedule: only the join round runs
    }
    frontier_.clear();
  }

  void on_round(std::int64_t round, Vertex v, std::span<const Received> inbox,
                Outbox& out) override {
    if (round >= depth_) return;  // join-round traffic carries no state
    if (forest_.root[static_cast<std::size_t>(v)] != -1) return;  // claimed
    // Deterministic adoption: smallest root, then smallest sender.
    Vertex best_root = -1;
    Vertex best_from = -1;
    for (const Received& r : inbox) {
      if (r.msg.words[0] != kWave) continue;
      const Vertex root = static_cast<Vertex>(r.msg.words[1]);
      if (best_root == -1 || root < best_root ||
          (root == best_root && r.from < best_from)) {
        best_root = root;
        best_from = r.from;
      }
    }
    if (best_root != -1) {
      forest_.root[static_cast<std::size_t>(v)] = best_root;
      forest_.depth[static_cast<std::size_t>(v)] = round + 1;
      forest_.parent[static_cast<std::size_t>(v)] = best_from;
      claimed_.push(out.shard(), v);
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    claimed_.drain_into(frontier_);
    if (round >= depth_) return;
    std::sort(frontier_.begin(), frontier_.end());
    if (round + 1 < depth_) {
      broadcast_waves(out);
    } else {
      send_joins(out);
    }
    frontier_.clear();
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= depth_ + 1;
  }

  BfsForest take_forest() { return std::move(forest_); }

 private:
  void broadcast_waves(Outbox& out) {
    for (const Vertex v : frontier_) {
      out.broadcast(
          v, Message::of(kWave, forest_.root[static_cast<std::size_t>(v)]));
    }
  }

  /// Join notifications: each spanned non-root tells its parent.
  void send_joins(Outbox& out) {
    for (Vertex v = 0; v < n_; ++v) {
      const Vertex p = forest_.parent[static_cast<std::size_t>(v)];
      if (p != -1) out.send(v, p, Message::of(kJoin));
    }
  }

  Vertex n_;
  Dist depth_;
  BfsForest forest_;
  std::vector<Vertex> frontier_;
  Sharded<Vertex> claimed_;  // per-shard frontier staging (parallel rounds)
};

}  // namespace

std::vector<std::vector<Vertex>> BfsForest::children() const {
  std::vector<std::vector<Vertex>> result(root.size());
  for (std::size_t v = 0; v < root.size(); ++v) {
    const Vertex p = parent[v];
    if (p != -1) result[static_cast<std::size_t>(p)].push_back(static_cast<Vertex>(v));
  }
  return result;
}

BfsForest build_bfs_forest(Network& net, const std::vector<Vertex>& roots,
                           Dist depth) {
  BfsForestProgram program(net.num_vertices(), roots, depth);
  Scheduler(net).run(program);
  return program.take_forest();
}

}  // namespace usne::congest
