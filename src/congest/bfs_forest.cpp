#include "congest/bfs_forest.hpp"

#include <algorithm>

namespace usne::congest {
namespace {

// Message tags for forest construction.
constexpr Word kWave = 1;  // <kWave, root>
constexpr Word kJoin = 2;  // <kJoin> to parent

}  // namespace

std::vector<std::vector<Vertex>> BfsForest::children() const {
  std::vector<std::vector<Vertex>> result(root.size());
  for (std::size_t v = 0; v < root.size(); ++v) {
    const Vertex p = parent[v];
    if (p != -1) result[static_cast<std::size_t>(p)].push_back(static_cast<Vertex>(v));
  }
  return result;
}

BfsForest build_bfs_forest(Network& net, const std::vector<Vertex>& roots,
                           Dist depth) {
  const Vertex n = net.num_vertices();
  BfsForest f;
  f.root.assign(static_cast<std::size_t>(n), -1);
  f.depth.assign(static_cast<std::size_t>(n), kInfDist);
  f.parent.assign(static_cast<std::size_t>(n), -1);

  std::vector<Vertex> frontier;
  for (const Vertex r : roots) {
    if (f.root[static_cast<std::size_t>(r)] == -1) {
      f.root[static_cast<std::size_t>(r)] = r;
      f.depth[static_cast<std::size_t>(r)] = 0;
      frontier.push_back(r);
    }
  }

  for (Dist d = 0; d < depth; ++d) {
    for (const Vertex v : frontier) {
      net.broadcast(v, Message::of(kWave, f.root[static_cast<std::size_t>(v)]));
    }
    net.advance_round();
    frontier.clear();
    for (const Vertex v : net.delivered_to()) {
      if (f.root[static_cast<std::size_t>(v)] != -1) continue;  // already claimed
      // Deterministic adoption: smallest root, then smallest sender.
      Vertex best_root = -1;
      Vertex best_from = -1;
      for (const Received& r : net.inbox(v)) {
        if (r.msg.words[0] != kWave) continue;
        const Vertex root = static_cast<Vertex>(r.msg.words[1]);
        if (best_root == -1 || root < best_root ||
            (root == best_root && r.from < best_from)) {
          best_root = root;
          best_from = r.from;
        }
      }
      if (best_root != -1) {
        f.root[static_cast<std::size_t>(v)] = best_root;
        f.depth[static_cast<std::size_t>(v)] = d + 1;
        f.parent[static_cast<std::size_t>(v)] = best_from;
        frontier.push_back(v);
      }
    }
    std::sort(frontier.begin(), frontier.end());
  }

  // Join notifications: each spanned non-root tells its parent, so parents
  // know their children (needed by the backtracking/broadcast steps).
  for (Vertex v = 0; v < n; ++v) {
    if (f.parent[static_cast<std::size_t>(v)] != -1) {
      net.send(v, f.parent[static_cast<std::size_t>(v)], Message::of(kJoin));
    }
  }
  net.advance_round();
  return f;
}

}  // namespace usne::congest
