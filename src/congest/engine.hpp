#pragma once

// CONGEST execution engine: NodeProgram + Scheduler.
//
// Every distributed algorithm in this repository is a NodeProgram — a
// node-local protocol described by three hooks:
//
//   init(out)                 seed per-node state and the first round's
//                             sends;
//   on_round(r, v, inbox, out) per-vertex delivery callback, invoked once
//                             for every vertex with a non-empty inbox
//                             (ascending vertex order) after round r's
//                             delivery; sends issued here arrive next round;
//   end_round(r, out)         central end-of-round hook for schedule-driven
//                             sends and stride boundaries (a real CONGEST
//                             node derives these from its local round
//                             counter; centralizing them keeps the
//                             simulation honest and the code short);
//   done(next_round)          schedule exhaustion test, checked before each
//                             round.
//
// The Scheduler is the only component that calls Network::advance_round():
// it owns round advancement, meters idle rounds (rounds delivering no
// message — fixed schedules burn them deliberately), and reports the
// traffic accrued by the program. Hosting every algorithm on this one
// driver is what lets later work (parallel round execution, fault
// injection, async delivery) change the engine without touching algorithm
// code.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// Send facade handed to programs. Programs transmit through this and never
/// touch round advancement (that is the Scheduler's job).
class Outbox {
 public:
  explicit Outbox(Network& net) : net_(&net) {}

  void send(Vertex from, Vertex to, const Message& msg) {
    net_->send(from, to, msg);
  }
  void broadcast(Vertex from, const Message& msg) {
    net_->broadcast(from, msg);
  }

 private:
  Network* net_;
};

/// A node-local synchronous protocol. See the file comment for the hook
/// contract. Rounds are numbered from 0 relative to the program's start.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Seeds node state and the sends of round 0.
  virtual void init(Outbox& out) = 0;

  /// Delivery callback for round `round`: v's inbox, sorted by sender.
  virtual void on_round(std::int64_t round, Vertex v,
                        std::span<const Received> inbox, Outbox& out) = 0;

  /// Central hook after all on_round calls of `round`.
  virtual void end_round(std::int64_t round, Outbox& out) {
    (void)round;
    (void)out;
  }

  /// True when the schedule is exhausted; `next_round` is the 0-based index
  /// of the round that would run next.
  virtual bool done(std::int64_t next_round) const = 0;
};

/// What one program execution cost.
struct ScheduleReport {
  std::int64_t rounds = 0;       ///< rounds driven for this program
  std::int64_t idle_rounds = 0;  ///< rounds that delivered no message
  NetworkStats traffic;          ///< stats accrued while the program ran
};

/// Per-vertex pipelined send queues for down-cast protocols (the emulator
/// notification epoch, the spanner path marks). Each drain_round call
/// models one CONGEST round: every vertex dispatches at most one queued
/// item per distinct neighbour and defers the rest, so the per-edge cap
/// holds by construction.
template <typename Payload>
class PipelinedQueues {
 public:
  explicit PipelinedQueues(Vertex n = 0) { resize(n); }

  void resize(Vertex n) { queues_.resize(static_cast<std::size_t>(n)); }

  void push(Vertex from, Vertex to, Payload payload) {
    queues_[static_cast<std::size_t>(from)].push_back(
        {to, std::move(payload)});
    ++queued_;
  }

  /// Items still queued (excluding anything already handed to `send`).
  std::int64_t queued() const noexcept { return queued_; }

  /// One pipelined round: dispatches through send(from, to, payload).
  /// Returns true if anything was sent.
  template <typename SendFn>
  bool drain_round(SendFn&& send) {
    bool any = false;
    for (std::size_t v = 0; v < queues_.size(); ++v) {
      auto& queue = queues_[v];
      if (queue.empty()) continue;
      std::vector<std::pair<Vertex, Payload>> deferred;
      std::vector<Vertex> used;  // destinations served this round
      while (!queue.empty()) {
        auto [to, payload] = std::move(queue.front());
        queue.pop_front();
        if (std::find(used.begin(), used.end(), to) != used.end()) {
          deferred.push_back({to, std::move(payload)});
          continue;
        }
        used.push_back(to);
        --queued_;
        send(static_cast<Vertex>(v), to, payload);
        any = true;
      }
      for (auto& d : deferred) queue.push_back(std::move(d));
    }
    return any;
  }

 private:
  std::vector<std::deque<std::pair<Vertex, Payload>>> queues_;
  std::int64_t queued_ = 0;
};

/// Drives NodePrograms over a Network. Several programs may run back to
/// back on the same network (the phases of the emulator construction do);
/// stats accumulate across them in Network::stats() while each report
/// carries the per-program delta.
class Scheduler {
 public:
  explicit Scheduler(Network& net) : net_(&net) {}

  Network& net() noexcept { return *net_; }

  /// Runs `program` to completion. The Scheduler performs every
  /// advance_round call; the program only sends.
  ScheduleReport run(NodeProgram& program);

 private:
  Network* net_;
};

}  // namespace usne::congest
