#pragma once

// CONGEST execution engine: NodeProgram + Scheduler.
//
// Every distributed algorithm in this repository is a NodeProgram — a
// node-local protocol described by three hooks:
//
//   init(out)                 seed per-node state and the first round's
//                             sends;
//   on_round(r, v, inbox, out) per-vertex delivery callback, invoked once
//                             for every vertex with a non-empty inbox
//                             (ascending vertex order) after round r's
//                             delivery; sends issued here arrive next round;
//   end_round(r, out)         central end-of-round hook for schedule-driven
//                             sends and stride boundaries (a real CONGEST
//                             node derives these from its local round
//                             counter; centralizing them keeps the
//                             simulation honest and the code short);
//   done(next_round)          schedule exhaustion test, checked before each
//                             round.
//
// The Scheduler is the only component that calls Network::advance_round():
// it owns round advancement, meters idle rounds (rounds delivering no
// message with nothing in flight — fixed schedules burn them
// deliberately), and reports the traffic accrued by the program. Hosting
// every algorithm on this one driver is what lets the engine evolve
// without touching algorithm code — the parallel fan-out and the
// pluggable transport layer (congest/transport.hpp) both arrived without
// changing a single NodeProgram.
//
// Transports. The Network's DeliveryModel may drop, duplicate, or delay
// staged messages (Faulty/Async); programs keep their fixed schedules and
// simply observe degraded traffic. Quiescence generalizes accordingly: at
// program end, the Scheduler drains any staged or in-flight messages under
// a non-ideal transport (those rounds count toward the report); under the
// Ideal transport leftover staged messages remain a loud CongestViolation
// (a program bug, not a transport effect).
//
// Parallel execution. The model is bulk-synchronous: every on_round call
// within a round is logically concurrent, so when the Network carries an
// execution policy of T > 1 lanes (Network::set_execution_threads) the
// Scheduler partitions delivered_to() into contiguous chunks — several per
// lane, with boundaries weighted by delivered-message count so skewed inbox
// sizes (hubs) do not unbalance the round — and fans the on_round calls out
// across a persistent thread pool, whose shared task cursor lets idle lanes
// steal remaining chunks. Each chunk stages its sends in its own Outbox;
// the Scheduler then replays the staged sends into the Network in ascending
// chunk order, which reproduces the serial staging order (ascending
// receiver, per-vertex send order) exactly — round/message/word counts,
// delivery order, and every algorithm output are bit-for-bit identical to
// the serial engine, for any lane or chunk count.
//
// The on_round contract under parallelism: a handler may freely mutate
// state owned by its vertex v (per-vertex arrays, collected[v], queue
// pushes keyed by v) and may send through its Outbox, but any accumulation
// into a container shared across vertices must go through per-shard
// buffers (see Sharded<T>) merged deterministically in end_round. Programs
// are told the shard count via set_shards before init.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// Send facade handed to programs. Programs transmit through this and never
/// touch round advancement (that is the Scheduler's job).
///
/// Two modes: direct (serial execution and the init/end_round hooks —
/// sends go straight to the network) and staging (the parallel on_round
/// fan-out — each worker buffers sends locally and the Scheduler replays
/// them into the network in ascending shard order).
class Outbox {
 public:
  /// Direct mode.
  explicit Outbox(Network& net) : net_(&net), graph_(&net.graph()) {}

  /// Staging mode for parallel shard `shard` (constructed by the
  /// Scheduler).
  Outbox(const Graph& g, std::size_t shard) : graph_(&g), shard_(shard) {}

  /// Which parallel shard this outbox serves; 0 in serial execution and in
  /// the central hooks. Programs accumulating into shared containers from
  /// on_round use this to index per-shard buffers.
  std::size_t shard() const noexcept { return shard_; }

  void send(Vertex from, Vertex to, const Message& msg) {
    if (net_ != nullptr) {
      net_->send(from, to, msg);
    } else {
      staged_.push_back({from, to, msg});
    }
  }

  void broadcast(Vertex from, const Message& msg) {
    if (net_ != nullptr) {
      net_->broadcast(from, msg);
      return;
    }
    for (const Vertex to : graph_->neighbors(from)) {
      staged_.push_back({from, to, msg});
    }
  }

 private:
  friend class Scheduler;

  struct Staged {
    Vertex from;
    Vertex to;
    Message msg;
  };

  /// Replays staged sends into `net` in staging order (Scheduler only).
  /// Runs the same per-send cap checks a direct send would, in the same
  /// order the serial engine would have run them.
  void replay_into(Network& net) {
    for (const Staged& s : staged_) net.send(s.from, s.to, s.msg);
    staged_.clear();
  }

  Network* net_ = nullptr;
  const Graph* graph_ = nullptr;
  std::size_t shard_ = 0;
  std::vector<Staged> staged_;
};

/// A node-local synchronous protocol. See the file comment for the hook
/// contract. Rounds are numbered from 0 relative to the program's start.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once by the Scheduler before init: the number of parallel
  /// shards the on_round fan-out will use (1 under serial execution).
  /// Programs that accumulate into containers shared across vertices
  /// allocate one buffer per shard here (see Sharded<T>).
  virtual void set_shards(std::size_t shards) { (void)shards; }

  /// Seeds node state and the sends of round 0. Runs serially.
  virtual void init(Outbox& out) = 0;

  /// Delivery callback for round `round`: v's inbox, sorted by sender.
  /// May run concurrently with other vertices' calls — see the parallel
  /// contract in the file comment.
  virtual void on_round(std::int64_t round, Vertex v,
                        std::span<const Received> inbox, Outbox& out) = 0;

  /// Central hook after all on_round calls of `round`. Runs serially.
  virtual void end_round(std::int64_t round, Outbox& out) {
    (void)round;
    (void)out;
  }

  /// True when the schedule is exhausted; `next_round` is the 0-based index
  /// of the round that would run next.
  virtual bool done(std::int64_t next_round) const = 0;
};

/// What one program execution cost.
struct ScheduleReport {
  std::int64_t rounds = 0;       ///< rounds driven for this program
  std::int64_t idle_rounds = 0;  ///< rounds that delivered no message
  NetworkStats traffic;          ///< stats accrued while the program ran
};

/// Per-shard append buffers for on_round handlers that would otherwise push
/// into one shared vector. push() is safe to call concurrently for distinct
/// shards; drain_into() (serial, from end_round) concatenates the buffers
/// in ascending shard order. Because shard s covers a contiguous ascending
/// vertex range, the drained order equals the serial push order exactly.
template <typename T>
class Sharded {
 public:
  /// (Re)allocates `shards` empty buffers; call from set_shards.
  void reset(std::size_t shards) {
    buffers_.clear();
    buffers_.resize(shards);
  }

  void push(std::size_t shard, T value) {
    buffers_[shard].items.push_back(std::move(value));
  }

  /// Appends every buffer to `dst` in ascending shard order and clears
  /// them.
  void drain_into(std::vector<T>& dst) {
    for (Buffer& b : buffers_) {
      dst.insert(dst.end(), std::make_move_iterator(b.items.begin()),
                 std::make_move_iterator(b.items.end()));
      b.items.clear();
    }
  }

 private:
  // Cache-line aligned so concurrent shard pushes do not contend on the
  // vector headers.
  struct alignas(64) Buffer {
    std::vector<T> items;
  };
  std::vector<Buffer> buffers_;
};

/// Per-vertex pipelined send queues for down-cast protocols (the emulator
/// notification epoch, the spanner path marks). Each drain_round call
/// models one CONGEST round: every vertex dispatches at most one queued
/// item per distinct neighbour and defers the rest, so the per-edge cap
/// holds by construction.
///
/// push() is safe to call concurrently from the parallel on_round fan-out
/// as long as each caller pushes with its own vertex as `from` (distinct
/// queues; the item counter is atomic). drain_round is serial-only.
template <typename Payload>
class PipelinedQueues {
 public:
  explicit PipelinedQueues(Vertex n = 0) { resize(n); }

  void resize(Vertex n) {
    queues_.resize(static_cast<std::size_t>(n));
    dest_stamp_.assign(static_cast<std::size_t>(n), 0);
  }

  void push(Vertex from, Vertex to, Payload payload) {
    queues_[static_cast<std::size_t>(from)].push_back(
        {to, std::move(payload)});
    queued_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Items still queued (excluding anything already handed to `send`).
  std::int64_t queued() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

  /// One pipelined round: dispatches through send(from, to, payload).
  /// Returns true if anything was sent. Destination bookkeeping is a
  /// per-source round stamp, so a round costs O(items scanned), not
  /// O(destinations-served^2) as a membership list would.
  template <typename SendFn>
  bool drain_round(SendFn&& send) {
    bool any = false;
    for (std::size_t v = 0; v < queues_.size(); ++v) {
      auto& queue = queues_[v];
      if (queue.empty()) continue;
      ++stamp_;  // opens this source's service window
      deferred_.clear();
      while (!queue.empty()) {
        std::pair<Vertex, Payload> item = std::move(queue.front());
        queue.pop_front();
        std::int64_t& last = dest_stamp_[static_cast<std::size_t>(item.first)];
        if (last == stamp_) {  // destination already served this round
          deferred_.push_back(std::move(item));
          continue;
        }
        last = stamp_;
        queued_.fetch_sub(1, std::memory_order_relaxed);
        send(static_cast<Vertex>(v), item.first, item.second);
        any = true;
      }
      for (auto& d : deferred_) queue.push_back(std::move(d));
      deferred_.clear();
    }
    return any;
  }

 private:
  std::vector<std::deque<std::pair<Vertex, Payload>>> queues_;
  std::atomic<std::int64_t> queued_{0};
  // Per-destination stamp of the last (source, round) window that served
  // it; windows are numbered by stamp_, monotonically across rounds.
  std::vector<std::int64_t> dest_stamp_;
  std::int64_t stamp_ = 0;
  std::vector<std::pair<Vertex, Payload>> deferred_;  // reused round buffer
};

/// Drives NodePrograms over a Network. Several programs may run back to
/// back on the same network (the phases of the emulator construction do);
/// stats accumulate across them in Network::stats() while each report
/// carries the per-program delta.
///
/// Execution policy comes from the Network (set_execution_threads): with
/// T > 1 lanes the on_round fan-out of sufficiently large rounds (by
/// receiver fan-out AND delivered-message count — small rounds cannot
/// amortize the fork/join handshake) runs on the network's persistent
/// thread pool, bit-for-bit equivalent to serial execution. At program end
/// the Scheduler verifies quiescence: under the Ideal transport it throws
/// CongestViolation if staged messages remain (they would silently leak
/// into the next program on the same network); under Faulty/Async it
/// drains staged and in-flight traffic deterministically instead.
class Scheduler {
 public:
  explicit Scheduler(Network& net) : net_(&net) {}

  Network& net() noexcept { return *net_; }

  /// Runs `program` to completion. The Scheduler performs every
  /// advance_round call; the program only sends.
  ScheduleReport run(NodeProgram& program);

 private:
  Network* net_;
};

}  // namespace usne::congest
