#include "congest/flood.hpp"

#include "congest/engine.hpp"

namespace usne::congest {
namespace {

constexpr Word kPresence = 3;  // <kPresence>

/// Presence flood as a NodeProgram: a vertex first reached in round r
/// records distance r+1 and forwards the presence wave next round (unless
/// the schedule ends first). Sources are seeded in init.
///
/// Parallel audit: on_round writes dist_[v] (per-vertex) and appends to the
/// frontier — the latter through per-shard buffers merged in end_round.
class FloodProgram final : public NodeProgram {
 public:
  FloodProgram(Vertex n, const std::vector<Vertex>& sources, Dist depth)
      : depth_(depth) {
    dist_.assign(static_cast<std::size_t>(n), kInfDist);
    for (const Vertex s : sources) {
      if (dist_[static_cast<std::size_t>(s)] != 0) {
        dist_[static_cast<std::size_t>(s)] = 0;
        frontier_.push_back(s);
      }
    }
  }

  void set_shards(std::size_t shards) override { reached_.reset(shards); }

  void init(Outbox& out) override {
    if (depth_ > 0) {
      for (const Vertex v : frontier_) out.broadcast(v, Message::of(kPresence));
    }
    frontier_.clear();
  }

  void on_round(std::int64_t round, Vertex v, std::span<const Received>,
                Outbox& out) override {
    if (dist_[static_cast<std::size_t>(v)] == kInfDist) {
      dist_[static_cast<std::size_t>(v)] = round + 1;
      reached_.push(out.shard(), v);
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    reached_.drain_into(frontier_);
    if (round + 1 < depth_) {
      for (const Vertex v : frontier_) out.broadcast(v, Message::of(kPresence));
    }
    frontier_.clear();
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= depth_;
  }

  std::vector<Dist> take_dist() { return std::move(dist_); }

 private:
  Dist depth_;
  std::vector<Dist> dist_;
  std::vector<Vertex> frontier_;
  Sharded<Vertex> reached_;  // per-shard frontier staging (parallel rounds)
};

}  // namespace

FloodResult flood_presence(Network& net, const std::vector<Vertex>& sources,
                           Dist depth) {
  FloodProgram program(net.num_vertices(), sources, depth);
  Scheduler(net).run(program);
  return {program.take_dist()};
}

}  // namespace usne::congest
