#include "congest/flood.hpp"

namespace usne::congest {
namespace {

constexpr Word kPresence = 3;  // <kPresence>

}  // namespace

FloodResult flood_presence(Network& net, const std::vector<Vertex>& sources,
                           Dist depth) {
  const Vertex n = net.num_vertices();
  FloodResult result;
  result.dist.assign(static_cast<std::size_t>(n), kInfDist);

  std::vector<Vertex> frontier;
  for (const Vertex s : sources) {
    if (result.dist[static_cast<std::size_t>(s)] != 0) {
      result.dist[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
    }
  }

  for (Dist d = 0; d < depth; ++d) {
    for (const Vertex v : frontier) net.broadcast(v, Message::of(kPresence));
    net.advance_round();
    frontier.clear();
    for (const Vertex v : net.delivered_to()) {
      if (result.dist[static_cast<std::size_t>(v)] == kInfDist) {
        result.dist[static_cast<std::size_t>(v)] = d + 1;
        frontier.push_back(v);
      }
    }
  }
  return result;
}

}  // namespace usne::congest
