#pragma once

// Distributed BFS forest construction (CONGEST).
//
// A BFS exploration rooted at a set of source vertices runs for `depth`
// rounds; every vertex joins the tree of the first root wave to reach it
// (ties broken toward the smaller root id, then the smaller parent id).
// Used by Task 3 of the superclustering step (paper §3.1.2): the forest F_i
// is rooted at the ruling set S_i and explored to depth rul_i + delta_i.
//
// Round cost: exactly `depth` rounds, one 2-word message per edge per round
// at the frontier.

#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// The forest, described by per-vertex local knowledge (each vertex knows
/// its root, depth and parent — that is what the real distributed execution
/// gives each processor).
struct BfsForest {
  std::vector<Vertex> root;    // -1 if not spanned
  std::vector<Dist> depth;     // kInfDist if not spanned
  std::vector<Vertex> parent;  // -1 for roots / unspanned

  bool spanned(Vertex v) const { return root[static_cast<std::size_t>(v)] != -1; }

  /// Children lists derived from parents (local knowledge: a child's join
  /// message tells the parent). Computed on demand for the backtracking step.
  std::vector<std::vector<Vertex>> children() const;
};

/// Builds the forest. Consumes exactly `depth` + 1 rounds (`depth` waves
/// plus one round for the final join notifications to parents).
BfsForest build_bfs_forest(Network& net, const std::vector<Vertex>& roots,
                           Dist depth);

}  // namespace usne::congest
