#pragma once

// Deterministic distributed ruling sets (CONGEST).
//
// Implements a digit-sweep construction in the family of [SEW13] (paper
// Theorem 3.2). Vertex IDs are written in base `b` (c = ceil(log_b n)
// digits). Digits are processed most-significant first; within one digit
// level, digit values are swept from high to low, and a candidate whose
// digit equals the current value survives the level iff no already-selected
// candidate of this level lies within distance q+1 of it (checked with a
// presence flood). After all levels, any two survivors within distance q+1
// would have identical IDs, so the survivor set A satisfies:
//
//   * separation: d_G(u, v) >= q + 2 > q + 1 for distinct u, v in A,
//   * covering:   d_G(w, A) <= c * (q + 1) for every w in W,
//
// i.e. A is a (q+2, c*(q+1))-ruling set for W — same family as the paper's
// (q+1, cq) with time O(b * c * q). The emulator's parameter engine uses the
// *actual* covering radius rul = c*(q+1) of this construction in the R_i
// recurrence, so all stretch guarantees remain sound (DESIGN.md §4.2).

#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// Result of the ruling-set computation.
struct RulingSet {
  std::vector<Vertex> members;  // the ruling set A, ascending
  Dist separation = 0;          // guaranteed minimum pairwise distance (q+2)
  Dist covering = 0;            // guaranteed covering radius c*(q+1)
  std::int64_t rounds_used = 0;
};

/// Computes a ruling set for W with separation parameter q (pairwise
/// distance > q+1) using ID digits in base `base` (>= 2).
/// Consumes O(base * c * q) rounds on `net`.
RulingSet compute_ruling_set(Network& net, const std::vector<Vertex>& w,
                             Dist q, std::int64_t base);

}  // namespace usne::congest
