#pragma once

// Synchronous CONGEST-model network simulator.
//
// Processors live on the vertices of the input graph G and communicate with
// graph neighbours in synchronous rounds. Per the CONGEST model (paper
// §1.5.1), a message is O(1) words (O(log n) bits); we enforce a hard cap of
// kMaxWords words per message and one message per directed edge per round.
// Violating either cap throws CongestViolation — the model is enforced, not
// merely assumed, and the test suite injects violations to prove it.
//
// The simulator meters rounds, messages and words; the distributed
// experiments (bench E4) report these against the paper's O(beta * n^rho)
// bound. Rounds with no traffic still count (algorithms in this repository
// run on fixed, parameter-determined schedules exactly like the paper's).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace usne::congest {

/// One machine word as transmitted on an edge.
using Word = std::int64_t;

/// Maximum words per message ("O(1) words").
inline constexpr int kMaxWords = 4;

/// A CONGEST message: up to kMaxWords words.
struct Message {
  Word words[kMaxWords] = {};
  int size = 0;

  static Message of(Word a) { return Message{{a, 0, 0, 0}, 1}; }
  static Message of(Word a, Word b) { return Message{{a, b, 0, 0}, 2}; }
  static Message of(Word a, Word b, Word c) { return Message{{a, b, c, 0}, 3}; }
  static Message of(Word a, Word b, Word c, Word d) {
    return Message{{a, b, c, d}, 4};
  }
};

/// A delivered message, tagged with the sending neighbour.
struct Received {
  Vertex from = -1;
  Message msg;
};

/// Thrown when an algorithm violates the CONGEST constraints.
class CongestViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Cumulative traffic statistics.
struct NetworkStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
};

/// The simulator. One instance per algorithm execution; primitives send
/// during a round and call advance_round() to deliver.
class Network {
 public:
  explicit Network(const Graph& g);

  const Graph& graph() const noexcept { return *graph_; }
  Vertex num_vertices() const noexcept { return graph_->num_vertices(); }

  /// Sends `msg` from `from` to neighbouring vertex `to` for delivery at the
  /// start of the next round. Throws CongestViolation if (from,to) is not an
  /// edge, the message exceeds kMaxWords, or a second message is sent on the
  /// same directed edge within one round.
  void send(Vertex from, Vertex to, const Message& msg);

  /// Sends `msg` from `from` to every neighbour (one message per edge).
  void broadcast(Vertex from, const Message& msg);

  /// Ends the current round: delivers all pending messages.
  void advance_round();

  /// Advances `k` rounds (the first delivers pending messages; the rest are
  /// idle rounds that still count, matching fixed schedules).
  void advance_rounds(std::int64_t k);

  /// Messages delivered to v at the start of the current round.
  std::span<const Received> inbox(Vertex v) const {
    return inbox_[static_cast<std::size_t>(v)];
  }

  /// Vertices with a non-empty inbox this round (deterministic order).
  const std::vector<Vertex>& delivered_to() const noexcept {
    return delivered_;
  }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  std::int64_t directed_edge_id(Vertex from, Vertex to) const;

  const Graph* graph_ = nullptr;
  std::vector<std::vector<Received>> inbox_;    // current round
  std::vector<std::vector<Received>> pending_;  // next round
  std::vector<Vertex> delivered_;               // nodes with non-empty inbox
  std::vector<Vertex> pending_nodes_;           // nodes with pending messages
  // Per-directed-edge round stamp for the one-message-per-edge cap; lazily
  // reset by comparing against the current round number.
  std::vector<std::int64_t> edge_round_stamp_;
  NetworkStats stats_;
};

}  // namespace usne::congest
