#pragma once

// Synchronous CONGEST-model network simulator.
//
// Processors live on the vertices of the input graph G and communicate with
// graph neighbours in synchronous rounds. Per the CONGEST model (paper
// §1.5.1), a message is O(1) words (O(log n) bits); we enforce a hard cap of
// kMaxWords words per message and one message per directed edge per round.
// Violating either cap throws CongestViolation — the model is enforced, not
// merely assumed, and the test suite injects violations to prove it.
//
// The simulator meters rounds, messages and words; the distributed
// experiments (bench E4) report these against the paper's O(beta * n^rho)
// bound. Rounds with no traffic still count (algorithms in this repository
// run on fixed, parameter-determined schedules exactly like the paper's).
//
// Storage is a pair of double-buffered flat arenas rather than per-vertex
// queues: sends append to a contiguous staging buffer, and advance_round()
// counting-sorts the round's delivery batch into a CSR-shaped arena (one
// contiguous Received run per receiving vertex). All buffers are reused
// across rounds, so round advancement performs no heap allocation once the
// per-round traffic high-water mark has been reached. Sufficiently large
// batches are counting-sorted in parallel on the execution thread pool,
// with delivery order bit-identical to the serial pass.
//
// What happens to a staged message *between* the send and the next round's
// inbox is delegated to a pluggable DeliveryModel (congest/transport.hpp):
// the default Ideal model delivers everything exactly once next round (the
// classic synchronous CONGEST semantics, bit-for-bit the pre-transport
// engine); Faulty and Async inject seeded drops/duplicates and per-message
// latencies. configure_transport() installs a model.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"

namespace usne::util {
class ThreadPool;
}  // namespace usne::util

namespace usne::congest {

class DeliveryModel;
struct TransportSpec;

/// One machine word as transmitted on an edge.
using Word = std::int64_t;

/// Maximum words per message ("O(1) words").
inline constexpr int kMaxWords = 4;

/// A CONGEST message: up to kMaxWords words.
struct Message {
  Word words[kMaxWords] = {};
  int size = 0;

  /// Builds a message from 1..kMaxWords integral words; arity is checked at
  /// compile time against the O(1)-word cap.
  template <typename... Ws>
  static Message of(Ws... ws) {
    static_assert(sizeof...(Ws) >= 1 &&
                      sizeof...(Ws) <= static_cast<std::size_t>(kMaxWords),
                  "a CONGEST message carries 1..kMaxWords words");
    static_assert((std::is_convertible_v<Ws, Word> && ...),
                  "message payload must be integral words");
    return Message{{static_cast<Word>(ws)...},
                   static_cast<int>(sizeof...(Ws))};
  }
};

/// A delivered message, tagged with the sending neighbour.
struct Received {
  Vertex from = -1;
  Message msg;
};

/// A staged message: recipient plus the Received it will become. The unit
/// the transport layer (DeliveryModel) operates on.
struct Staged {
  Vertex to = -1;
  Received rcv;
};

/// Thrown when an algorithm violates the CONGEST constraints.
class CongestViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Cumulative traffic statistics.
struct NetworkStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
};

/// Wall-clock decomposition of Scheduler::run — where a CONGEST program's
/// time actually goes, stage by stage:
///   init       program.init (seeding round 0)
///   deliver    Network::advance_round (transport + counting-sort scatter)
///   compute    the on_round fan-out, incl. parallel chunk planning
///   replay     ascending-order replay of staged parallel sends
///   end_round  the central end_round hook
///   drain      end-of-program quiescence (non-ideal transports)
/// Accumulated by the Scheduler into the sink installed via
/// Network::set_profile_sink (nullptr = profiling off, zero clock reads).
/// Several programs run back to back on one network accumulate into the
/// same sink; callers snapshot per-program deltas via operator- exactly
/// like they do with Network::stats().
///
/// Measurement only: the profile never feeds algorithm output, and counts
/// and results are bit-identical with profiling on or off.
struct StageTimes {
  double init_s = 0;
  double deliver_s = 0;
  double compute_s = 0;
  double replay_s = 0;
  double end_round_s = 0;
  double drain_s = 0;
  double wall_s = 0;  ///< total Scheduler::run wall time
  std::int64_t rounds = 0;

  /// Sum of the attributed stages; wall_s minus this is untimed scheduler
  /// overhead (loop control, report assembly). The --profile acceptance
  /// gate asserts stage_sum_s() >= 0.95 * wall_s.
  double stage_sum_s() const noexcept {
    return init_s + deliver_s + compute_s + replay_s + end_round_s + drain_s;
  }

  StageTimes& operator+=(const StageTimes& o) noexcept {
    init_s += o.init_s;
    deliver_s += o.deliver_s;
    compute_s += o.compute_s;
    replay_s += o.replay_s;
    end_round_s += o.end_round_s;
    drain_s += o.drain_s;
    wall_s += o.wall_s;
    rounds += o.rounds;
    return *this;
  }

  friend StageTimes operator-(StageTimes a, const StageTimes& b) noexcept {
    a.init_s -= b.init_s;
    a.deliver_s -= b.deliver_s;
    a.compute_s -= b.compute_s;
    a.replay_s -= b.replay_s;
    a.end_round_s -= b.end_round_s;
    a.drain_s -= b.drain_s;
    a.wall_s -= b.wall_s;
    a.rounds -= b.rounds;
    return a;
  }
};

/// One labeled slice of a construction profile ("p0.detect", "p1.forest",
/// ...): the stage times accrued while that task's scheduler runs drove
/// the network. Builders emit one entry per (phase, task).
struct PhaseProfileEntry {
  std::string label;
  StageTimes times;
};

/// The simulator. One instance per algorithm execution; primitives send
/// during a round and call advance_round() to deliver.
class Network {
 public:
  /// Throws std::invalid_argument on an empty graph (a CONGEST network
  /// needs at least one processor; edge-slot arithmetic assumes n > 0).
  /// Starts with the Ideal delivery model installed.
  explicit Network(const Graph& g);
  ~Network();

  // Movable, not copyable. Defined in network.cpp where ThreadPool and
  // DeliveryModel are complete (the in-class default would not compile for
  // clients).
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;

  const Graph& graph() const noexcept { return *graph_; }
  Vertex num_vertices() const noexcept { return graph_->num_vertices(); }

  /// Execution-policy knob read by the Scheduler: total worker lanes for
  /// the parallel round fan-out. 1 (the default) selects the serial
  /// engine; 0 resolves to the hardware concurrency. The engines are
  /// bit-for-bit equivalent, so this only affects wall-clock time.
  void set_execution_threads(int threads);
  int execution_threads() const noexcept { return exec_threads_; }

  /// The persistent worker pool backing the parallel scheduler. Lazily
  /// created on first use; nullptr while execution_threads() == 1.
  util::ThreadPool* thread_pool();

  /// Installs the delivery model described by `spec` (validates it first).
  /// Must be called while the network is quiescent — throws
  /// std::logic_error if messages are staged or in flight (a model swap
  /// would strand them).
  void configure_transport(const TransportSpec& spec);

  /// Installs a caller-built delivery model (same quiescence rule). The
  /// extension point for custom transports; the invariant tests use it to
  /// rig a model that breaks message conservation on purpose.
  void configure_transport(std::unique_ptr<DeliveryModel> model);

  /// The installed delivery model (Ideal unless configure_transport said
  /// otherwise). Exposes kind()/name()/counters().
  const DeliveryModel& transport() const noexcept { return *model_; }

  /// Messages the transport holds for delivery in a later round (Async's
  /// latency wheel; 0 for Ideal/Faulty). Quiescence for the Scheduler is
  /// pending_messages() + in_flight() == 0.
  std::int64_t in_flight() const noexcept;

  /// Sends `msg` from `from` to neighbouring vertex `to` for delivery at the
  /// start of the next round. Throws CongestViolation if (from,to) is not an
  /// edge, the message exceeds kMaxWords, or a second message is sent on the
  /// same directed edge within one round.
  void send(Vertex from, Vertex to, const Message& msg);

  /// Sends `msg` from `from` to every neighbour (one message per edge).
  void broadcast(Vertex from, const Message& msg);

  /// Ends the current round: hands the staged sends to the delivery model
  /// and materializes the model's batch in the inboxes.
  void advance_round();

  /// Advances `k` rounds (the first delivers pending messages; the rest are
  /// idle rounds that still count, matching fixed schedules).
  void advance_rounds(std::int64_t k);

  /// Messages delivered to v at the start of the current round, sorted by
  /// sender. The span points into the delivery arena and is invalidated by
  /// the next advance_round().
  std::span<const Received> inbox(Vertex v) const {
    const std::int64_t count = inbox_count_[static_cast<std::size_t>(v)];
    if (count == 0) return {};
    return {arena_.data() + inbox_begin_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(count)};
  }

  /// Vertices with a non-empty inbox this round (ascending).
  const std::vector<Vertex>& delivered_to() const noexcept {
    return delivered_;
  }

  /// Messages in the current round's delivery batch (the Scheduler's
  /// min-work signal for the parallel fan-out cutoff).
  std::int64_t delivered_messages() const noexcept {
    return delivered_messages_;
  }

  /// Messages staged for the next round but not yet handed to the
  /// transport. A program must end with zero staged and zero in-flight
  /// messages (the Scheduler enforces / drains this): anything left here
  /// would silently leak into the next program run on the same network.
  std::int64_t pending_messages() const noexcept {
    return static_cast<std::int64_t>(pending_.size());
  }

  const NetworkStats& stats() const noexcept { return stats_; }

  /// Installs (or clears, with nullptr) the stage-profile accumulator the
  /// Scheduler writes into. While null — the default — the Scheduler reads
  /// no clocks at all, so profiling is pay-for-use. The sink must outlive
  /// every Scheduler::run on this network (builders keep it in their build
  /// state and snapshot deltas per task).
  void set_profile_sink(StageTimes* sink) noexcept { profile_ = sink; }
  StageTimes* profile_sink() const noexcept { return profile_; }

  /// Messages materialized in delivery batches since construction, across
  /// every installed transport. One side of the conservation ledger the
  /// kTransport audit balances every round:
  ///   sent + duplicated == delivered + dropped + in_flight.
  std::int64_t delivered_total() const noexcept { return delivered_total_; }

 private:
  std::int64_t directed_edge_id(Vertex from, Vertex to) const;

  /// Counting-sorts deliver_ into the arena (receivers ascending, one
  /// contiguous run each, runs sorted by sender) and fills delivered_.
  void scatter_serial();
  void scatter_parallel(util::ThreadPool& pool);
  void sort_inbox_run(Vertex v);

  const Graph* graph_ = nullptr;
  // Double-buffered arenas: sends of the current round append to pending_
  // (flat, send order); advance_round() hands pending_ to the delivery
  // model, which fills deliver_ (this round's batch), and counting-sorts
  // deliver_ into arena_ (flat, CSR by receiver, addressed by
  // inbox_begin_/inbox_count_).
  std::vector<Staged> pending_;
  std::vector<Staged> deliver_;
  std::vector<Received> arena_;
  std::vector<std::int64_t> inbox_begin_;     // per-vertex offset into arena_
  std::vector<std::int64_t> inbox_count_;     // per-vertex run length
  std::vector<std::int64_t> recv_count_;      // per-vertex batch count (scratch)
  std::vector<Vertex> delivered_;             // nodes with non-empty inbox
  std::vector<Vertex> receivers_;             // scratch: batch receivers
  std::int64_t delivered_messages_ = 0;       // size of the current batch
  std::int64_t delivered_total_ = 0;          // cumulative batch messages
  // Injected-event counters folded in from transports retired by
  // configure_transport, so the conservation ledger survives model swaps.
  std::int64_t retired_dropped_ = 0;
  std::int64_t retired_duplicated_ = 0;
  // Per-directed-edge round stamp for the one-message-per-edge cap; lazily
  // reset by comparing against the current round number.
  std::vector<std::int64_t> edge_round_stamp_;
  NetworkStats stats_;
  // Stage-profile sink for the Scheduler (see set_profile_sink); not owned.
  StageTimes* profile_ = nullptr;
  // The transport policy (never null; Ideal by default).
  std::unique_ptr<DeliveryModel> model_;
  // Execution policy for the Scheduler (see set_execution_threads).
  int exec_threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  // Parallel counting-sort scratch, lazily sized on the first large batch:
  // per-shard destination counts (doubling as write cursors) and touched
  // lists, plus a round-stamped receiver dedup.
  std::vector<std::vector<std::int64_t>> shard_count_;
  std::vector<std::vector<Vertex>> shard_touched_;
  std::vector<std::int64_t> receiver_stamp_;
};

}  // namespace usne::congest
