#include "congest/detect.hpp"

#include <algorithm>

#include "congest/engine.hpp"

namespace usne::congest {
namespace {

constexpr Word kExplore = 4;  // <kExplore, source, dist>

/// Algorithm 2 as a NodeProgram. The schedule is delta strides of `cap`
/// rounds; in round t of a stride every active vertex broadcasts the t-th
/// source it learnt during the previous stride. Stride boundaries recompute
/// the pending lists (smallest (dist, id) first, truncated to cap).
///
/// Parallel audit: on_round mutates only hits_[v] — per-vertex state — so
/// the parallel fan-out needs no shard buffers here. pending_/active_ are
/// rewritten exclusively at stride boundaries inside end_round (serial).
class DetectProgram final : public NodeProgram {
 public:
  DetectProgram(Vertex n, const std::vector<Vertex>& sources, Dist delta,
                std::int64_t cap)
      : n_(n), cap_(cap), total_rounds_(delta * cap) {
    hits_.assign(static_cast<std::size_t>(n), {});
    pending_.assign(static_cast<std::size_t>(n), {});
    std::vector<Vertex> sorted = sources;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (const Vertex s : sorted) {
      hits_[static_cast<std::size_t>(s)].push_back({s, 0, -1});
      pending_[static_cast<std::size_t>(s)].push_back({s, 0, -1});
      active_.push_back(s);
    }
  }

  void init(Outbox& out) override {
    if (total_rounds_ > 0) send_entries(0, out);
  }

  void on_round(std::int64_t, Vertex v, std::span<const Received> inbox,
                Outbox&) override {
    auto& known = hits_[static_cast<std::size_t>(v)];
    for (const Received& r : inbox) {
      if (r.msg.words[0] != kExplore) continue;
      const Vertex src = static_cast<Vertex>(r.msg.words[1]);
      const Dist d = r.msg.words[2] + 1;
      const bool duplicate =
          std::any_of(known.begin(), known.end(),
                      [&](const SourceHit& h) { return h.source == src; });
      if (!duplicate) known.push_back({src, d, r.from});
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    if (round + 1 >= total_rounds_) return;  // schedule exhausted
    const std::int64_t t = round % cap_;
    if (t == cap_ - 1) {
      stride_boundary(round / cap_ + 1);
      send_entries(0, out);
    } else {
      send_entries(t + 1, out);
    }
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= total_rounds_;
  }

  std::vector<std::vector<SourceHit>> take_hits() {
    for (auto& known : hits_) {
      std::sort(known.begin(), known.end(),
                [](const SourceHit& a, const SourceHit& b) {
                  return a.dist != b.dist ? a.dist < b.dist
                                          : a.source < b.source;
                });
    }
    return std::move(hits_);
  }

 private:
  void send_entries(std::int64_t t, Outbox& out) {
    for (const Vertex v : active_) {
      const auto& list = pending_[static_cast<std::size_t>(v)];
      if (static_cast<std::int64_t>(list.size()) > t) {
        const SourceHit& h = list[static_cast<std::size_t>(t)];
        out.broadcast(v, Message::of(kExplore, h.source, h.dist));
      }
    }
  }

  /// Pending lists for the next stride = sources learnt during the stride
  /// just completed, truncated to the cap (smallest (dist, id) first —
  /// deterministic specialization of the paper's arbitrary choice).
  void stride_boundary(Dist completed_stride) {
    for (const Vertex v : active_) pending_[static_cast<std::size_t>(v)].clear();
    active_.clear();
    for (Vertex v = 0; v < n_; ++v) {
      auto& known = hits_[static_cast<std::size_t>(v)];
      std::vector<SourceHit> fresh;
      for (const SourceHit& h : known) {
        if (h.dist == completed_stride) fresh.push_back(h);
      }
      if (fresh.empty()) continue;
      std::sort(fresh.begin(), fresh.end(),
                [](const SourceHit& a, const SourceHit& b) {
                  return a.source < b.source;  // equal dist within a stride
                });
      if (static_cast<std::int64_t>(fresh.size()) > cap_) {
        fresh.resize(static_cast<std::size_t>(cap_));
      }
      pending_[static_cast<std::size_t>(v)] = std::move(fresh);
      active_.push_back(v);
    }
  }

  Vertex n_;
  std::int64_t cap_;
  std::int64_t total_rounds_;
  std::vector<std::vector<SourceHit>> hits_;
  std::vector<std::vector<SourceHit>> pending_;
  std::vector<Vertex> active_;
};

}  // namespace

Dist DetectResult::distance_to(Vertex v, Vertex source) const {
  for (const SourceHit& h : hits[static_cast<std::size_t>(v)]) {
    if (h.source == source) return h.dist;
  }
  return kInfDist;
}

std::size_t DetectResult::heard_others(Vertex v) const {
  std::size_t count = 0;
  for (const SourceHit& h : hits[static_cast<std::size_t>(v)]) {
    if (h.source != v) ++count;
  }
  return count;
}

std::vector<Vertex> DetectResult::path_to(Vertex v, Vertex source) const {
  std::vector<Vertex> path;
  Vertex cur = v;
  while (cur != -1) {
    path.push_back(cur);
    if (cur == source) return path;
    const auto& list = hits[static_cast<std::size_t>(cur)];
    const auto it = std::find_if(list.begin(), list.end(), [&](const SourceHit& h) {
      return h.source == source;
    });
    if (it == list.end()) return {};
    cur = it->pred;
  }
  return {};
}

DetectResult detect_congest(Network& net, const std::vector<Vertex>& sources,
                            Dist delta, std::int64_t cap) {
  DetectProgram program(net.num_vertices(), sources, delta, cap);
  const ScheduleReport report = Scheduler(net).run(program);
  DetectResult result;
  result.hits = program.take_hits();
  result.rounds_used = report.rounds;
  return result;
}

}  // namespace usne::congest
