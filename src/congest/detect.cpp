#include "congest/detect.hpp"

#include <algorithm>

namespace usne::congest {
namespace {

constexpr Word kExplore = 4;  // <kExplore, source, dist>

}  // namespace

Dist DetectResult::distance_to(Vertex v, Vertex source) const {
  for (const SourceHit& h : hits[static_cast<std::size_t>(v)]) {
    if (h.source == source) return h.dist;
  }
  return kInfDist;
}

std::size_t DetectResult::heard_others(Vertex v) const {
  std::size_t count = 0;
  for (const SourceHit& h : hits[static_cast<std::size_t>(v)]) {
    if (h.source != v) ++count;
  }
  return count;
}

std::vector<Vertex> DetectResult::path_to(Vertex v, Vertex source) const {
  std::vector<Vertex> path;
  Vertex cur = v;
  while (cur != -1) {
    path.push_back(cur);
    if (cur == source) return path;
    const auto& list = hits[static_cast<std::size_t>(cur)];
    const auto it = std::find_if(list.begin(), list.end(), [&](const SourceHit& h) {
      return h.source == source;
    });
    if (it == list.end()) return {};
    cur = it->pred;
  }
  return {};
}

DetectResult detect_congest(Network& net, const std::vector<Vertex>& sources,
                            Dist delta, std::int64_t cap) {
  const Vertex n = net.num_vertices();
  const std::int64_t start_rounds = net.stats().rounds;

  DetectResult result;
  result.hits.assign(static_cast<std::size_t>(n), {});

  // Per-vertex list of sources learnt in the previous stride, to be
  // forwarded in the current stride (at most `cap` of them).
  std::vector<std::vector<SourceHit>> pending(static_cast<std::size_t>(n));
  std::vector<Vertex> active;  // vertices with a non-empty pending list

  std::vector<Vertex> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const Vertex s : sorted) {
    result.hits[static_cast<std::size_t>(s)].push_back({s, 0, -1});
    pending[static_cast<std::size_t>(s)].push_back({s, 0, -1});
    active.push_back(s);
  }

  for (Dist stride = 1; stride <= delta; ++stride) {
    // `cap` rounds: in round t every active vertex broadcasts its t-th
    // pending entry (one message per directed edge per round).
    for (std::int64_t t = 0; t < cap; ++t) {
      for (const Vertex v : active) {
        const auto& list = pending[static_cast<std::size_t>(v)];
        if (static_cast<std::int64_t>(list.size()) > t) {
          const SourceHit& h = list[static_cast<std::size_t>(t)];
          net.broadcast(v, Message::of(kExplore, h.source, h.dist));
        }
      }
      net.advance_round();
      // Collect newly-heard sources; they become next stride's pending.
      for (const Vertex v : net.delivered_to()) {
        auto& known = result.hits[static_cast<std::size_t>(v)];
        for (const Received& r : net.inbox(v)) {
          if (r.msg.words[0] != kExplore) continue;
          const Vertex src = static_cast<Vertex>(r.msg.words[1]);
          const Dist d = r.msg.words[2] + 1;
          const bool duplicate =
              std::any_of(known.begin(), known.end(),
                          [&](const SourceHit& h) { return h.source == src; });
          if (!duplicate) known.push_back({src, d, r.from});
        }
      }
    }

    // Stride boundary: recompute pending lists = sources learnt this stride,
    // truncated to the cap (smallest (dist, id) first — deterministic
    // specialization of the paper's arbitrary choice).
    for (const Vertex v : active) pending[static_cast<std::size_t>(v)].clear();
    active.clear();
    for (Vertex v = 0; v < n; ++v) {
      auto& known = result.hits[static_cast<std::size_t>(v)];
      std::vector<SourceHit> fresh;
      for (const SourceHit& h : known) {
        if (h.dist == stride) fresh.push_back(h);
      }
      if (fresh.empty()) continue;
      std::sort(fresh.begin(), fresh.end(), [](const SourceHit& a, const SourceHit& b) {
        return a.source < b.source;  // equal dist within a stride
      });
      if (static_cast<std::int64_t>(fresh.size()) > cap) fresh.resize(static_cast<std::size_t>(cap));
      pending[static_cast<std::size_t>(v)] = std::move(fresh);
      active.push_back(v);
    }
  }

  for (auto& known : result.hits) {
    std::sort(known.begin(), known.end(), [](const SourceHit& a, const SourceHit& b) {
      return a.dist != b.dist ? a.dist < b.dist : a.source < b.source;
    });
  }
  result.rounds_used = net.stats().rounds - start_rounds;
  return result;
}

}  // namespace usne::congest
