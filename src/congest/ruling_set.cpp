#include "congest/ruling_set.hpp"

#include <algorithm>

#include "congest/engine.hpp"
#include "util/math.hpp"

namespace usne::congest {
namespace {

constexpr Word kPresence = 3;  // same wire format as the presence flood

/// The digit sweep as one NodeProgram. The schedule is a nest of
///   level (most-significant digit first, while >1 candidate survives)
///     × digit value (base-1 down to 0)
///       × q+1 presence-flood rounds from the batch selected at the
///         previous value,
/// with all bookkeeping node-local: a vertex is covered once any flood of
/// the current level reaches it, and a candidate whose digit matches the
/// current value selects itself iff it is uncovered. Idle flood rounds
/// (empty batch) still burn — the schedule is fixed, like the paper's.
///
/// Parallel audit: on_round writes reach_epoch_[v] / covered_[v]
/// (per-vertex; covered_ is byte-wide so neighbouring writes cannot race a
/// shared bitfield word) and appends to the frontier through per-shard
/// buffers merged in end_round. All sweep bookkeeping stays in the serial
/// hooks.
class RulingSetProgram final : public NodeProgram {
 public:
  RulingSetProgram(Vertex n, const std::vector<Vertex>& w, Dist q,
                   std::int64_t base, int levels)
      : q_(q), base_(base) {
    candidates_ = w;
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                      candidates_.end());
    covered_.assign(static_cast<std::size_t>(n), 0);
    reach_epoch_.assign(static_cast<std::size_t>(n), 0);
    level_ = levels - 1;
    finished_ = level_ < 0 || candidates_.size() <= 1;
  }

  void set_shards(std::size_t shards) override { reached_.reset(shards); }

  void init(Outbox& out) override {
    if (finished_) return;
    begin_level();
    seed_flood(out);
  }

  void on_round(std::int64_t, Vertex v, std::span<const Received>,
                Outbox& out) override {
    if (reach_epoch_[static_cast<std::size_t>(v)] == epoch_) return;
    reach_epoch_[static_cast<std::size_t>(v)] = epoch_;
    covered_[static_cast<std::size_t>(v)] = 1;
    reached_.push(out.shard(), v);
  }

  void end_round(std::int64_t, Outbox& out) override {
    reached_.drain_into(frontier_);
    if (flood_round_ + 1 < q_ + 1) {
      // The flood has rounds left: forward the freshly-reached frontier.
      ++flood_round_;
      for (const Vertex v : frontier_) {
        out.broadcast(v, Message::of(kPresence));
      }
      frontier_.clear();
      return;
    }
    frontier_.clear();

    // Sweep-step boundary: uncovered candidates with the current digit
    // value survive and become the next flood's sources.
    last_batch_.clear();
    for (const Vertex v : candidates_) {
      if (digit_at(v, base_, level_) != val_) continue;
      if (!covered_[static_cast<std::size_t>(v)]) {
        selected_.push_back(v);
        last_batch_.push_back(v);
      }
    }

    --val_;
    if (val_ < 0) {
      // Level boundary.
      std::sort(selected_.begin(), selected_.end());
      candidates_ = std::move(selected_);
      selected_.clear();
      --level_;
      if (level_ < 0 || candidates_.size() <= 1) {
        finished_ = true;
        return;
      }
      begin_level();
    }
    seed_flood(out);
  }

  bool done(std::int64_t) const override { return finished_; }

  std::vector<Vertex> take_members() { return std::move(candidates_); }

 private:
  void begin_level() {
    std::fill(covered_.begin(), covered_.end(), 0);
    val_ = base_ - 1;
    last_batch_.clear();
  }

  /// Starts the q+1-round presence flood of the current sweep step.
  void seed_flood(Outbox& out) {
    ++epoch_;
    flood_round_ = 0;
    for (const Vertex s : last_batch_) {
      reach_epoch_[static_cast<std::size_t>(s)] = epoch_;
      covered_[static_cast<std::size_t>(s)] = 1;
      out.broadcast(s, Message::of(kPresence));
    }
  }

  Dist q_;
  std::int64_t base_;
  int level_ = -1;                    // current digit position
  std::int64_t val_ = 0;              // current digit value
  Dist flood_round_ = 0;              // round within the current flood
  std::int64_t epoch_ = 0;            // flood epoch for reach stamps
  bool finished_ = false;
  std::vector<Vertex> candidates_;    // survivors so far (ascending)
  std::vector<Vertex> selected_;      // survivors of the current level
  std::vector<Vertex> last_batch_;    // selected at the previous value
  std::vector<Vertex> frontier_;      // reached this flood round
  Sharded<Vertex> reached_;           // per-shard frontier staging
  std::vector<std::uint8_t> covered_;  // per-vertex, current level
  std::vector<std::int64_t> reach_epoch_;
};

}  // namespace

RulingSet compute_ruling_set(Network& net, const std::vector<Vertex>& w,
                             Dist q, std::int64_t base) {
  base = std::max<std::int64_t>(base, 2);
  const int levels = digits_in_base(net.num_vertices(), base);

  RulingSet result;
  result.separation = q + 2;
  result.covering = static_cast<Dist>(levels) * (q + 1);

  RulingSetProgram program(net.num_vertices(), w, q, base, levels);
  const ScheduleReport report = Scheduler(net).run(program);
  result.members = program.take_members();
  result.rounds_used = report.rounds;
  return result;
}

}  // namespace usne::congest
