#include "congest/ruling_set.hpp"

#include <algorithm>

#include "congest/flood.hpp"
#include "util/math.hpp"

namespace usne::congest {

RulingSet compute_ruling_set(Network& net, const std::vector<Vertex>& w,
                             Dist q, std::int64_t base) {
  base = std::max<std::int64_t>(base, 2);
  const std::int64_t start_rounds = net.stats().rounds;
  const int levels = digits_in_base(net.num_vertices(), base);

  RulingSet result;
  result.separation = q + 2;
  result.covering = static_cast<Dist>(levels) * (q + 1);

  std::vector<Vertex> candidates = w;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (int level = levels - 1; level >= 0 && candidates.size() > 1; --level) {
    std::vector<Vertex> selected;          // survivors of this level so far
    std::vector<Vertex> last_batch;        // selected in the previous sweep step
    std::vector<bool> covered(static_cast<std::size_t>(net.num_vertices()), false);

    for (std::int64_t val = base - 1; val >= 0; --val) {
      // Presence flood from the most recent batch; coverage accumulates.
      const FloodResult flood = flood_presence(net, last_batch, q + 1);
      for (Vertex v = 0; v < net.num_vertices(); ++v) {
        if (flood.dist[static_cast<std::size_t>(v)] != kInfDist) {
          covered[static_cast<std::size_t>(v)] = true;
        }
      }
      last_batch.clear();
      for (const Vertex v : candidates) {
        if (digit_at(v, base, level) != val) continue;
        if (!covered[static_cast<std::size_t>(v)]) {
          selected.push_back(v);
          last_batch.push_back(v);
        }
      }
    }
    std::sort(selected.begin(), selected.end());
    candidates = std::move(selected);
  }

  result.members = std::move(candidates);
  result.rounds_used = net.stats().rounds - start_rounds;
  return result;
}

}  // namespace usne::congest
