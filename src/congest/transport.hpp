#pragma once

// Pluggable transport layer for the CONGEST simulator.
//
// The Network enforces *sending* constraints (per-edge cap, word cap) and
// owns the delivery arena; what happens to a staged message between the
// send and the next round's inbox is the transport's policy. A
// DeliveryModel consumes each round's staged sends and decides which
// messages materialize in the delivery batch, when, and how many times.
// Three engines ship:
//
//   Ideal   every message is delivered exactly once at the start of the
//           next round — the classic synchronous CONGEST model. This is
//           the default and is bit-for-bit identical to the pre-transport
//           engine (BENCH_congest.json counts are the regression gate).
//   Faulty  a seeded per-message drop/duplicate policy: each staged
//           message is dropped with probability drop_p; survivors are
//           additionally duplicated with probability dup_p, the copies
//           arriving at the end of the round's batch (observably
//           reordered relative to other senders). Models lossy links.
//   Async   each message draws an integer latency L in [1, latency_max]
//           and rides a round-indexed wheel: staged in round r, it lands
//           in the inbox of round r + L. latency_max = 1 degenerates to
//           Ideal exactly. Models heterogeneous link delays.
//
// Determinism is a hard guarantee for every model: randomness is a
// stateless hash of (seed, round, sender, receiver) — never a sequential
// RNG — so the injected events are a pure function of the traffic, not of
// thread interleaving or batch order. A fixed seed reproduces the same
// drops/duplicates/latencies at 1, 2, or 8 execution threads
// (tests/test_congest_transport.cpp enforces this).
//
// NodePrograms need no changes to run under any model: the algorithms in
// this repository keep their fixed, parameter-determined schedules and the
// Scheduler generalizes quiescence to "no staged and no in-flight
// messages" (see engine.hpp). Outputs under Faulty/Async are whatever the
// protocol computes from the degraded traffic — that is the point: the
// paper's constructions can now be stressed beyond the idealized model.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// Which delivery engine a TransportSpec selects.
enum class TransportModel { kIdeal, kFaulty, kAsync };

/// Stable lowercase name ("ideal" | "faulty" | "async") for CLIs and JSON.
const char* transport_model_name(TransportModel model) noexcept;

/// Inverse of transport_model_name. Throws std::invalid_argument listing
/// the known names on anything else.
TransportModel parse_transport_model(const std::string& name);

/// A complete, serializable description of one transport configuration.
/// Each model consumes the subset of knobs that applies; the rest are
/// ignored (but still validated).
struct TransportSpec {
  TransportModel model = TransportModel::kIdeal;

  /// Seed of the stateless per-message hash (Faulty and Async).
  std::uint64_t seed = 1;

  /// Faulty: per-message drop probability in [0, 1].
  double drop_p = 0.0;

  /// Faulty: per-surviving-message duplication probability in [0, 1].
  double dup_p = 0.0;

  /// Async: per-message latency is uniform in [1, latency_max] rounds.
  /// 1 (the default) is synchronous delivery.
  std::int64_t latency_max = 1;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;
};

/// Cumulative injected-event counters of one DeliveryModel instance.
/// All zero under Ideal.
struct TransportCounters {
  std::int64_t dropped = 0;      ///< messages removed by the faulty model
  std::int64_t duplicated = 0;   ///< extra copies injected
  std::int64_t delayed = 0;      ///< messages assigned latency > 1
  std::int64_t delay_rounds = 0; ///< sum of (latency - 1) over delayed
};

/// The transport policy: owns the staged-send -> delivery-batch handoff
/// that Network::advance_round delegates. Implementations must be
/// deterministic functions of (spec, traffic) — see the file comment.
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  virtual TransportModel kind() const noexcept = 0;
  const char* name() const noexcept { return transport_model_name(kind()); }
  bool ideal() const noexcept { return kind() == TransportModel::kIdeal; }

  /// Consumes the messages staged during round `round` (`staged`, in
  /// staging order; left cleared) and appends the batch to be delivered at
  /// the start of round `round + 1` to `deliver` (empty on entry). A model
  /// may drop messages, append extra copies, or retain messages for a
  /// later collect call. Called exactly once per round, serially.
  virtual void collect(std::int64_t round, std::vector<Staged>& staged,
                       std::vector<Staged>& deliver) = 0;

  /// Messages retained for delivery in a strictly later round (Async's
  /// wheel). The Scheduler's quiescence test is
  /// `pending_messages() + in_flight() == 0`.
  virtual std::int64_t in_flight() const noexcept { return 0; }

  /// Guarantees at most one delivery per (sender, receiver) per round —
  /// true for Ideal only. The arena's per-run sender sort relies on this
  /// to stay allocation-free; other models use a stable sort.
  virtual bool unique_senders_per_round() const noexcept { return false; }

  const TransportCounters& counters() const noexcept { return counters_; }

 protected:
  TransportCounters counters_;
};

/// Builds the DeliveryModel described by `spec` (validates first).
std::unique_ptr<DeliveryModel> make_delivery_model(const TransportSpec& spec);

}  // namespace usne::congest
