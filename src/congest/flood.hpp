#pragma once

// Presence flood: every vertex learns within `depth` rounds whether some
// source vertex is within distance `depth` of it (and the exact distance to
// the nearest source). One 1-word message per edge total.
//
// Used by the digit-sweep ruling set: each sweep step floods presence from
// the candidates selected so far.

#include <vector>

#include "congest/network.hpp"

namespace usne::congest {

/// Result of a presence flood.
struct FloodResult {
  std::vector<Dist> dist;  // distance to nearest source, kInfDist if > depth
};

/// Runs the flood. Consumes exactly `depth` rounds.
FloodResult flood_presence(Network& net, const std::vector<Vertex>& sources,
                           Dist depth);

}  // namespace usne::congest
