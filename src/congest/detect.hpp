#pragma once

// Distributed popular-cluster detection — the paper's Algorithm 2
// (modified Bellman–Ford of [EM19], Theorem 3.1).
//
// A parallel Bellman–Ford exploration from the set of cluster centers runs
// for delta strides. In each stride, every vertex forwards to all its
// neighbours the (up to) cap = deg+1 cluster centers it learnt about during
// the previous stride; if it learnt more, it forwards the cap smallest
// (dist, id) pairs (the paper allows an arbitrary choice; smallest-first is
// our deterministic specialization). Each stride takes `cap` rounds so the
// one-message-per-edge-per-round CONGEST constraint holds exactly.
//
// Guarantees (paper Theorem 3.1):
//  1. a center that hears >= deg other centers is popular; every popular
//     center is detected;
//  2. every center that hears < cap sources knows *all* centers within
//     distance delta of it, with exact distances, and for each such pair a
//     shortest path on which every vertex knows its distance from the
//     source (we record predecessor pointers, enabling path tracing for the
//     spanner variant).

#include <span>
#include <vector>

#include "congest/network.hpp"
#include "path/source_detection.hpp"

namespace usne::congest {

/// Per-vertex knowledge produced by the exploration. Reuses SourceHit from
/// the centralized detection so the two implementations are directly
/// comparable in tests.
struct DetectResult {
  /// hits[v] = sources v heard about: (source, dist, predecessor neighbour),
  /// sorted by (dist, source).
  std::vector<std::vector<SourceHit>> hits;
  std::int64_t rounds_used = 0;

  /// Distance from v to `source` if v heard it, else kInfDist.
  Dist distance_to(Vertex v, Vertex source) const;

  /// Number of sources heard by v, excluding v itself.
  std::size_t heard_others(Vertex v) const;

  /// Traces the recorded shortest path from v back to `source`
  /// ([v, ..., source]; empty if untraceable).
  std::vector<Vertex> path_to(Vertex v, Vertex source) const;
};

/// Runs Algorithm 2 from `sources` to depth `delta` with per-stride
/// forwarding cap `cap` (the paper's deg_i + 1).
/// Consumes exactly delta * cap rounds.
DetectResult detect_congest(Network& net, const std::vector<Vertex>& sources,
                            Dist delta, std::int64_t cap);

}  // namespace usne::congest
