#include "congest/engine.hpp"

#include <string>

#include "congest/transport.hpp"
#include "util/thread_pool.hpp"

namespace usne::congest {
namespace {

/// Rounds delivering to fewer vertices than this run serially even under a
/// parallel policy: the fork/join handshake costs more than a handful of
/// on_round calls. Purely a wall-clock knob — results are identical either
/// way.
constexpr std::size_t kMinParallelFanout = 32;

/// Min-work cutoff: rounds carrying fewer delivered messages than this run
/// serially even when the fan-out is wide. The per-message on_round work is
/// tens of nanoseconds, so a sub-256-message round cannot amortize the
/// pool's fork/join handshake — BENCH_congest.json showed speedup < 1.0 for
/// exactly these rounds. Wall-clock only; counts and outputs are identical.
constexpr std::int64_t kMinParallelMessages = 256;

}  // namespace

ScheduleReport Scheduler::run(NodeProgram& program) {
  ScheduleReport report;
  const NetworkStats before = net_->stats();

  util::ThreadPool* const pool = net_->thread_pool();
  const std::size_t shards =
      pool != nullptr ? static_cast<std::size_t>(pool->parallelism()) : 1;
  program.set_shards(shards);

  // One staging outbox per shard, persistent across rounds so replay
  // buffers keep their high-water capacity.
  std::vector<Outbox> stage;
  if (pool != nullptr) {
    stage.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      stage.emplace_back(net_->graph(), s);
    }
  }

  Outbox out(*net_);
  program.init(out);
  for (std::int64_t round = 0; !program.done(round); ++round) {
    net_->advance_round();
    const auto& delivered = net_->delivered_to();
    // Quiescence-aware idle accounting: a round is idle when nothing was
    // delivered AND nothing is riding the transport (under Ideal the
    // in-flight term is always zero, so this is the legacy definition).
    if (delivered.empty() && net_->in_flight() == 0) ++report.idle_rounds;
    if (pool != nullptr && delivered.size() >= kMinParallelFanout &&
        net_->delivered_messages() >= kMinParallelMessages) {
      // Contiguous chunks in ascending vertex order: shard s handles
      // delivered[m*s/S, m*(s+1)/S). Workers only read the network
      // (inbox/graph) and stage their sends locally; the replay below
      // reproduces the serial staging order exactly.
      const std::size_t m = delivered.size();
      pool->parallel_for(static_cast<int>(shards), [&](int s) {
        const std::size_t su = static_cast<std::size_t>(s);
        const std::size_t chunk_begin = m * su / shards;
        const std::size_t chunk_end = m * (su + 1) / shards;
        Outbox& worker_out = stage[su];
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const Vertex v = delivered[i];
          program.on_round(round, v, net_->inbox(v), worker_out);
        }
      });
      for (Outbox& worker_out : stage) worker_out.replay_into(*net_);
    } else {
      for (const Vertex v : delivered) {
        program.on_round(round, v, net_->inbox(v), out);
      }
    }
    program.end_round(round, out);
  }

  if (net_->transport().ideal()) {
    // Flush-or-throw: a program whose done() trips after sends were issued
    // would leak its staged messages into the next program run on this
    // network. Make that a loud model violation instead.
    if (net_->pending_messages() != 0) {
      throw CongestViolation(
          "program ended with " + std::to_string(net_->pending_messages()) +
          " staged message(s) undelivered (done() tripped after sends)");
    }
  } else {
    // Generalized quiescence: under a faulty/async transport a
    // fixed-schedule program may legitimately finish while messages are
    // still staged or riding the latency wheel. Drain them — the drain
    // rounds count toward this program's report — so nothing leaks into
    // the next program on the same network.
    while (net_->pending_messages() + net_->in_flight() > 0) {
      net_->advance_round();
    }
  }

  const NetworkStats after = net_->stats();
  report.rounds = after.rounds - before.rounds;
  report.traffic = {after.rounds - before.rounds,
                    after.messages - before.messages,
                    after.words - before.words};
  return report;
}

}  // namespace usne::congest
