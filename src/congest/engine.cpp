#include "congest/engine.hpp"

#include <string>

#include "congest/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/invariant.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace usne::congest {
namespace {

/// Rounds delivering to fewer vertices than this run serially even under a
/// parallel policy: the fork/join handshake costs more than a handful of
/// on_round calls. Purely a wall-clock knob — results are identical either
/// way.
constexpr std::size_t kMinParallelFanout = 32;

/// Min-work cutoff: rounds carrying fewer delivered messages than this run
/// serially even when the fan-out is wide. The per-message on_round work is
/// tens of nanoseconds, so a sub-256-message round cannot amortize the
/// pool's fork/join handshake — BENCH_congest.json showed speedup < 1.0 for
/// exactly these rounds. Wall-clock only; counts and outputs are identical.
constexpr std::int64_t kMinParallelMessages = 256;

/// Chunks per pool lane for the on_round fan-out. One chunk per lane (the
/// old scheme) binds a round's wall-clock to its most loaded chunk — on
/// skewed inbox distributions (hubs, star centers) one lane drags while the
/// rest idle. With several chunks per lane the pool's shared task cursor
/// lets finished lanes steal the remaining chunks, and the boundaries below
/// additionally weight chunks by delivered-message count rather than by
/// receiver count. Purely a wall-clock knob: chunks are contiguous
/// ascending vertex ranges replayed in ascending order, so staging order —
/// and therefore every count and output — is bit-identical for any chunk
/// count (enforced by tests/test_congest_parallel.cpp).
constexpr std::size_t kChunksPerLane = 4;

}  // namespace

ScheduleReport Scheduler::run(NodeProgram& program) {
  USNE_TRACE_SPAN("congest.scheduler_run");
  ScheduleReport report;
  const NetworkStats before = net_->stats();

  // Stage profiling (StageTimes in network.hpp): pay-for-use — with no
  // sink installed not a single clock is read. Attribution is
  // boundary-chained: one clock read per stage boundary, and the whole
  // interval since the previous boundary is charged to the stage that just
  // ended — loop control and the clock reads themselves always land inside
  // some stage, never in an untimed gap (at ~10^4 rounds per task those
  // gaps would otherwise dominate and break the --profile >= 95% coverage
  // gate). Everything measured is pure measurement: counts and outputs are
  // bit-identical with profiling on or off.
  StageTimes* const prof = net_->profile_sink();
  MonoClock::time_point run_start{};
  MonoClock::time_point mark{};
  if (prof != nullptr) {
    run_start = MonoClock::now();
    mark = run_start;
  }
  const auto attribute = [&](double StageTimes::* field) {
    if (prof == nullptr) return;
    const MonoClock::time_point now = MonoClock::now();
    prof->*field += elapsed_s(mark, now);
    mark = now;
  };

  util::ThreadPool* const pool = net_->thread_pool();
  // Shards = work-stealing chunks, several per lane (see kChunksPerLane),
  // not one per lane: programs size their Sharded buffers to this count.
  const std::size_t shards =
      pool != nullptr
          ? static_cast<std::size_t>(pool->parallelism()) * kChunksPerLane
          : 1;
  program.set_shards(shards);

  // One staging outbox per shard, persistent across rounds so replay
  // buffers keep their high-water capacity.
  std::vector<Outbox> stage;
  if (pool != nullptr) {
    stage.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      stage.emplace_back(net_->graph(), s);
    }
  }
  // Chunk boundaries of the current round, reused across rounds.
  std::vector<std::size_t> chunk_begin;

  Outbox out(*net_);
  program.init(out);
  attribute(&StageTimes::init_s);
  for (std::int64_t round = 0; !program.done(round); ++round) {
    net_->advance_round();
    attribute(&StageTimes::deliver_s);
    const auto& delivered = net_->delivered_to();
    // Quiescence-aware idle accounting: a round is idle when nothing was
    // delivered AND nothing is riding the transport (under Ideal the
    // in-flight term is always zero, so this is the legacy definition).
    if (delivered.empty() && net_->in_flight() == 0) ++report.idle_rounds;
    if (pool != nullptr && delivered.size() >= kMinParallelFanout &&
        net_->delivered_messages() >= kMinParallelMessages) {
      // Contiguous chunks in ascending vertex order, with boundaries
      // weighted by delivered-message count: chunk s ends once the running
      // message total crosses fraction (s+1)/shards of the round's total,
      // so a hub's huge inbox fills one chunk instead of unbalancing a
      // receiver-count split. Workers pull chunks off the pool's shared
      // cursor (per-chunk work stealing), only read the network
      // (inbox/graph), and stage their sends locally; the ascending-order
      // replay below reproduces the serial staging order exactly.
      const std::size_t m = delivered.size();
      const std::int64_t total = net_->delivered_messages();
      chunk_begin.assign(shards + 1, m);
      chunk_begin[0] = 0;
      std::size_t next_chunk = 1;
      std::int64_t cumulative = 0;
      for (std::size_t i = 0; i < m && next_chunk < shards; ++i) {
        cumulative +=
            static_cast<std::int64_t>(net_->inbox(delivered[i]).size());
        while (next_chunk < shards &&
               cumulative * static_cast<std::int64_t>(shards) >=
                   static_cast<std::int64_t>(next_chunk) * total) {
          chunk_begin[next_chunk++] = i + 1;
        }
      }
      pool->parallel_for(static_cast<int>(shards), [&](int s) {
        const std::size_t su = static_cast<std::size_t>(s);
        Outbox& worker_out = stage[su];
        for (std::size_t i = chunk_begin[su]; i < chunk_begin[su + 1]; ++i) {
          const Vertex v = delivered[i];
          program.on_round(round, v, net_->inbox(v), worker_out);
        }
      });
      attribute(&StageTimes::compute_s);
      // Staged-send conservation: the ascending-order replay must hand the
      // network exactly the sends the workers staged — a replay that
      // drops, double-plays, or leaves a buffer behind would silently
      // desynchronize the parallel engine from the serial one.
      std::int64_t expected_pending = -1;
      if (inv::audits_enabled()) {
        expected_pending = net_->pending_messages();
        for (const Outbox& worker_out : stage) {
          expected_pending +=
              static_cast<std::int64_t>(worker_out.staged_.size());
        }
      }
      for (Outbox& worker_out : stage) worker_out.replay_into(*net_);
      USNE_AUDIT(inv::Category::kScheduler,
                 expected_pending < 0 ||
                     net_->pending_messages() == expected_pending,
                 "parallel replay staged " + std::to_string(expected_pending) +
                     " message(s) but the network holds " +
                     std::to_string(net_->pending_messages()));
      attribute(&StageTimes::replay_s);
    } else {
      for (const Vertex v : delivered) {
        program.on_round(round, v, net_->inbox(v), out);
      }
      attribute(&StageTimes::compute_s);
    }
    program.end_round(round, out);
    attribute(&StageTimes::end_round_s);
  }

  if (net_->transport().ideal()) {
    // Flush-or-throw: a program whose done() trips after sends were issued
    // would leak its staged messages into the next program run on this
    // network. Make that a loud model violation instead.
    if (net_->pending_messages() != 0) {
      throw CongestViolation(
          "program ended with " + std::to_string(net_->pending_messages()) +
          " staged message(s) undelivered (done() tripped after sends)");
    }
  } else {
    // Generalized quiescence: under a faulty/async transport a
    // fixed-schedule program may legitimately finish while messages are
    // still staged or riding the latency wheel. Drain them — the drain
    // rounds count toward this program's report — so nothing leaks into
    // the next program on the same network.
    while (net_->pending_messages() + net_->in_flight() > 0) {
      net_->advance_round();
    }
    attribute(&StageTimes::drain_s);
  }

  const NetworkStats after = net_->stats();
  report.rounds = after.rounds - before.rounds;
  if (prof != nullptr) {
    prof->wall_s += elapsed_s(run_start, MonoClock::now());
    prof->rounds += report.rounds;
  }
  // Layer-level traffic totals on the global metrics page; two relaxed
  // adds per program run, nowhere near any hot path.
  static obs::Counter& rounds_total =
      obs::counter("usne_congest_rounds_total");
  static obs::Counter& messages_total =
      obs::counter("usne_congest_messages_total");
  rounds_total.add(report.rounds);
  messages_total.add(after.messages - before.messages);
  report.traffic = {after.rounds - before.rounds,
                    after.messages - before.messages,
                    after.words - before.words};
  // Idle-round and traffic accounting: idle rounds are a subset of the
  // rounds this program drove, and a program cannot un-send traffic. Cheap
  // enough to keep always-on — a miscount here corrupts the CONGEST cost
  // model every bench row is built on.
  USNE_CHECK(inv::Category::kScheduler,
             report.idle_rounds >= 0 && report.idle_rounds <= report.rounds &&
                 report.traffic.messages >= 0 && report.traffic.words >= 0,
             "schedule report inconsistent: rounds " +
                 std::to_string(report.rounds) + ", idle " +
                 std::to_string(report.idle_rounds) + ", messages " +
                 std::to_string(report.traffic.messages) + ", words " +
                 std::to_string(report.traffic.words));
  return report;
}

}  // namespace usne::congest
