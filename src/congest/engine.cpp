#include "congest/engine.hpp"

namespace usne::congest {

ScheduleReport Scheduler::run(NodeProgram& program) {
  ScheduleReport report;
  const NetworkStats before = net_->stats();

  Outbox out(*net_);
  program.init(out);
  for (std::int64_t round = 0; !program.done(round); ++round) {
    net_->advance_round();
    const auto& delivered = net_->delivered_to();
    if (delivered.empty()) ++report.idle_rounds;
    for (const Vertex v : delivered) {
      program.on_round(round, v, net_->inbox(v), out);
    }
    program.end_round(round, out);
  }

  const NetworkStats after = net_->stats();
  report.rounds = after.rounds - before.rounds;
  report.traffic = {after.rounds - before.rounds,
                    after.messages - before.messages,
                    after.words - before.words};
  return report;
}

}  // namespace usne::congest
