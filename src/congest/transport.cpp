#include "congest/transport.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace usne::congest {
namespace {

// Salt separating the duplicate decision from the drop decision of the
// same message (both derive from the same per-message hash).
constexpr std::uint64_t kDupSalt = 0xd1bd1bd1bd1bd1bULL;

/// One SplitMix64 step combining an accumulator with the next key word.
std::uint64_t mix(std::uint64_t acc, std::uint64_t word) noexcept {
  return SplitMix64(acc ^ (word + 0x9e3779b97f4a7c15ULL)).next();
}

/// Stateless per-message hash: a pure function of (seed, round, from, to).
/// The CONGEST per-edge cap admits one send per directed edge per round,
/// so this identifies a staged message uniquely — and makes every
/// transport decision independent of batch order and thread count.
std::uint64_t message_hash(std::uint64_t seed, std::int64_t round,
                           Vertex from, Vertex to) noexcept {
  std::uint64_t h = mix(seed, static_cast<std::uint64_t>(round));
  h = mix(h, static_cast<std::uint64_t>(from));
  return mix(h, static_cast<std::uint64_t>(to));
}

/// Uniform double in [0, 1) from a hash value.
double u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Today's lossless synchronous path: the staged buffer *is* the delivery
/// batch. A vector swap — no copy, no allocation, bit-for-bit the
/// pre-transport engine.
class IdealModel final : public DeliveryModel {
 public:
  TransportModel kind() const noexcept override {
    return TransportModel::kIdeal;
  }

  bool unique_senders_per_round() const noexcept override { return true; }

  void collect(std::int64_t, std::vector<Staged>& staged,
               std::vector<Staged>& deliver) override {
    deliver.swap(staged);
    staged.clear();
  }
};

/// Seeded per-message drop/duplicate policy. Duplicates are appended after
/// every surviving original, so a duplicated message is delivered out of
/// staging order (the injected reordering); the arena's stable per-run
/// sort then keeps original-before-copy within a sender.
class FaultyModel final : public DeliveryModel {
 public:
  explicit FaultyModel(const TransportSpec& spec) : spec_(spec) {}

  TransportModel kind() const noexcept override {
    return TransportModel::kFaulty;
  }

  void collect(std::int64_t round, std::vector<Staged>& staged,
               std::vector<Staged>& deliver) override {
    dups_.clear();
    for (const Staged& s : staged) {
      const std::uint64_t h =
          message_hash(spec_.seed, round, s.rcv.from, s.to);
      if (u01(h) < spec_.drop_p) {
        ++counters_.dropped;
        continue;
      }
      deliver.push_back(s);
      if (spec_.dup_p > 0 && u01(mix(h, kDupSalt)) < spec_.dup_p) {
        dups_.push_back(s);
        ++counters_.duplicated;
      }
    }
    deliver.insert(deliver.end(), dups_.begin(), dups_.end());
    staged.clear();
  }

 private:
  TransportSpec spec_;
  std::vector<Staged> dups_;  // reused per-round copy buffer
};

/// Per-message integer latency on a round-indexed wheel: slot k of the
/// wheel holds the messages landing k rounds from now. collect() files the
/// staged messages by drawn latency, then swaps out the head slot. Staging
/// rounds are filed in order, so a slot's batch is ordered by (staging
/// round, staging order) — deterministic for any thread count.
class AsyncModel final : public DeliveryModel {
 public:
  explicit AsyncModel(const TransportSpec& spec)
      : spec_(spec), wheel_(static_cast<std::size_t>(spec.latency_max)) {}

  TransportModel kind() const noexcept override {
    return TransportModel::kAsync;
  }

  std::int64_t in_flight() const noexcept override { return held_; }

  void collect(std::int64_t round, std::vector<Staged>& staged,
               std::vector<Staged>& deliver) override {
    const std::size_t slots = wheel_.size();
    for (const Staged& s : staged) {
      const std::uint64_t h =
          message_hash(spec_.seed, round, s.rcv.from, s.to);
      const std::int64_t latency =
          1 + static_cast<std::int64_t>(h % static_cast<std::uint64_t>(slots));
      if (latency > 1) {
        ++counters_.delayed;
        counters_.delay_rounds += latency - 1;
      }
      wheel_[(head_ + static_cast<std::size_t>(latency) - 1) % slots].push_back(
          s);
      ++held_;
    }
    staged.clear();
    deliver.swap(wheel_[head_]);
    wheel_[head_].clear();
    held_ -= static_cast<std::int64_t>(deliver.size());
    head_ = (head_ + 1) % slots;
  }

 private:
  TransportSpec spec_;
  std::vector<std::vector<Staged>> wheel_;  // slot k = deliver in k rounds
  std::size_t head_ = 0;                    // slot delivered next
  std::int64_t held_ = 0;                   // messages riding the wheel
};

}  // namespace

const char* transport_model_name(TransportModel model) noexcept {
  switch (model) {
    case TransportModel::kIdeal:
      return "ideal";
    case TransportModel::kFaulty:
      return "faulty";
    case TransportModel::kAsync:
      return "async";
  }
  return "?";
}

TransportModel parse_transport_model(const std::string& name) {
  if (name == "ideal") return TransportModel::kIdeal;
  if (name == "faulty") return TransportModel::kFaulty;
  if (name == "async") return TransportModel::kAsync;
  throw std::invalid_argument("unknown transport model '" + name +
                              "'; known: ideal faulty async");
}

void TransportSpec::validate() const {
  if (!(drop_p >= 0.0 && drop_p <= 1.0)) {
    throw std::invalid_argument("transport drop_p must be in [0, 1]");
  }
  if (!(dup_p >= 0.0 && dup_p <= 1.0)) {
    throw std::invalid_argument("transport dup_p must be in [0, 1]");
  }
  if (latency_max < 1 || latency_max > (1 << 20)) {
    throw std::invalid_argument(
        "transport latency_max must be in [1, 2^20] rounds");
  }
}

std::unique_ptr<DeliveryModel> make_delivery_model(const TransportSpec& spec) {
  spec.validate();
  switch (spec.model) {
    case TransportModel::kIdeal:
      return std::make_unique<IdealModel>();
    case TransportModel::kFaulty:
      return std::make_unique<FaultyModel>(spec);
    case TransportModel::kAsync:
      return std::make_unique<AsyncModel>(spec);
  }
  throw std::invalid_argument("unknown transport model");
}

}  // namespace usne::congest
