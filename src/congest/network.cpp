#include "congest/network.hpp"

#include <algorithm>
#include <string>

namespace usne::congest {

Network::Network(const Graph& g)
    : graph_(&g),
      inbox_(static_cast<std::size_t>(g.num_vertices())),
      pending_(static_cast<std::size_t>(g.num_vertices())),
      edge_round_stamp_(static_cast<std::size_t>(g.num_edges()) * 2, -1) {}

std::int64_t Network::directed_edge_id(Vertex from, Vertex to) const {
  const auto nbrs = graph_->neighbors(from);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) return -1;
  // Directed edge slots are laid out as the CSR adjacency itself.
  return (nbrs.data() - graph_->neighbors(0).data()) + (it - nbrs.begin());
}

void Network::send(Vertex from, Vertex to, const Message& msg) {
  if (msg.size < 1 || msg.size > kMaxWords) {
    throw CongestViolation("message exceeds O(1)-word cap: " +
                           std::to_string(msg.size) + " words");
  }
  const std::int64_t eid = directed_edge_id(from, to);
  if (eid < 0) {
    throw CongestViolation("send along non-edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ")");
  }
  auto& stamp = edge_round_stamp_[static_cast<std::size_t>(eid)];
  if (stamp == stats_.rounds) {
    throw CongestViolation("second message on edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ") in round " +
                           std::to_string(stats_.rounds));
  }
  stamp = stats_.rounds;

  auto& queue = pending_[static_cast<std::size_t>(to)];
  if (queue.empty()) pending_nodes_.push_back(to);
  queue.push_back({from, msg});
  ++stats_.messages;
  stats_.words += msg.size;
}

void Network::broadcast(Vertex from, const Message& msg) {
  for (const Vertex to : graph_->neighbors(from)) send(from, to, msg);
}

void Network::advance_round() {
  // Clear the previous round's inboxes.
  for (const Vertex v : delivered_) inbox_[static_cast<std::size_t>(v)].clear();
  delivered_.clear();

  // Deliver pending messages.
  std::sort(pending_nodes_.begin(), pending_nodes_.end());
  for (const Vertex v : pending_nodes_) {
    inbox_[static_cast<std::size_t>(v)].swap(pending_[static_cast<std::size_t>(v)]);
    // Deterministic processing order for receivers.
    auto& box = inbox_[static_cast<std::size_t>(v)];
    std::sort(box.begin(), box.end(), [](const Received& a, const Received& b) {
      return a.from < b.from;
    });
    delivered_.push_back(v);
  }
  pending_nodes_.clear();
  ++stats_.rounds;
}

void Network::advance_rounds(std::int64_t k) {
  for (std::int64_t i = 0; i < k; ++i) advance_round();
}

}  // namespace usne::congest
