#include "congest/network.hpp"

#include <algorithm>
#include <string>
#include <thread>

#include "util/thread_pool.hpp"

namespace usne::congest {

Network::Network(const Graph& g)
    : graph_(&g),
      inbox_begin_(static_cast<std::size_t>(g.num_vertices()), 0),
      inbox_count_(static_cast<std::size_t>(g.num_vertices()), 0),
      pending_count_(static_cast<std::size_t>(g.num_vertices()), 0),
      edge_round_stamp_(static_cast<std::size_t>(g.num_edges()) * 2, -1) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument(
        "Network requires a non-empty graph (n >= 1 processors)");
  }
}

Network::~Network() = default;
Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;

void Network::set_execution_threads(int threads) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  if (threads != exec_threads_) {
    pool_.reset();  // rebuilt lazily at the new width
    exec_threads_ = threads;
  }
}

util::ThreadPool* Network::thread_pool() {
  if (exec_threads_ <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(exec_threads_);
  return pool_.get();
}

std::int64_t Network::directed_edge_id(Vertex from, Vertex to) const {
  const auto nbrs = graph_->neighbors(from);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) return -1;
  // Directed edge slots are laid out as the CSR adjacency itself.
  return graph_->csr_offset(from) + (it - nbrs.begin());
}

void Network::send(Vertex from, Vertex to, const Message& msg) {
  if (msg.size < 1 || msg.size > kMaxWords) {
    throw CongestViolation("message exceeds O(1)-word cap: " +
                           std::to_string(msg.size) + " words");
  }
  const std::int64_t eid = directed_edge_id(from, to);
  if (eid < 0) {
    throw CongestViolation("send along non-edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ")");
  }
  auto& stamp = edge_round_stamp_[static_cast<std::size_t>(eid)];
  if (stamp == stats_.rounds) {
    throw CongestViolation("second message on edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ") in round " +
                           std::to_string(stats_.rounds));
  }
  stamp = stats_.rounds;

  if (pending_count_[static_cast<std::size_t>(to)]++ == 0) {
    pending_nodes_.push_back(to);
  }
  pending_.push_back({to, {from, msg}});
  ++stats_.messages;
  stats_.words += msg.size;
}

void Network::broadcast(Vertex from, const Message& msg) {
  for (const Vertex to : graph_->neighbors(from)) send(from, to, msg);
}

void Network::advance_round() {
  // Retire the previous round's delivery state (only delivered vertices have
  // non-zero counts, so the reset touches exactly the prior traffic).
  for (const Vertex v : delivered_) inbox_count_[static_cast<std::size_t>(v)] = 0;
  delivered_.clear();

  // Counting-sort the staged messages into the delivery arena: receivers in
  // ascending order, one contiguous run each.
  std::sort(pending_nodes_.begin(), pending_nodes_.end());
  std::int64_t offset = 0;
  for (const Vertex v : pending_nodes_) {
    inbox_begin_[static_cast<std::size_t>(v)] = offset;
    offset += pending_count_[static_cast<std::size_t>(v)];
  }
  if (arena_.size() < pending_.size()) arena_.resize(pending_.size());
  for (const Pending& p : pending_) {
    const auto to = static_cast<std::size_t>(p.to);
    arena_[static_cast<std::size_t>(inbox_begin_[to] + inbox_count_[to]++)] =
        p.rcv;
  }
  // Deterministic processing order for receivers: sort each run by sender
  // (unique per run — the per-edge cap admits one message per neighbour).
  for (const Vertex v : pending_nodes_) {
    const auto sv = static_cast<std::size_t>(v);
    Received* const first =
        arena_.data() + static_cast<std::size_t>(inbox_begin_[sv]);
    std::sort(first, first + static_cast<std::size_t>(inbox_count_[sv]),
              [](const Received& a, const Received& b) {
                return a.from < b.from;
              });
    pending_count_[sv] = 0;
  }
  delivered_.swap(pending_nodes_);
  pending_nodes_.clear();
  pending_.clear();
  ++stats_.rounds;
}

void Network::advance_rounds(std::int64_t k) {
  for (std::int64_t i = 0; i < k; ++i) advance_round();
}

}  // namespace usne::congest
