#include "congest/network.hpp"

#include <algorithm>
#include <string>
#include <thread>

#include "congest/transport.hpp"
#include "util/invariant.hpp"
#include "util/thread_pool.hpp"

namespace usne::congest {
namespace {

/// Delivery batches smaller than this are counting-sorted serially even
/// under a parallel execution policy: the three fork/join handshakes of
/// the sharded pass cost more than a small batch's scatter. Purely a
/// wall-clock knob — delivery order is bit-identical either way.
constexpr std::size_t kMinParallelScatter = 4096;

}  // namespace

Network::Network(const Graph& g)
    : graph_(&g),
      inbox_begin_(static_cast<std::size_t>(g.num_vertices()), 0),
      inbox_count_(static_cast<std::size_t>(g.num_vertices()), 0),
      recv_count_(static_cast<std::size_t>(g.num_vertices()), 0),
      edge_round_stamp_(static_cast<std::size_t>(g.num_edges()) * 2, -1),
      model_(make_delivery_model(TransportSpec{})) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument(
        "Network requires a non-empty graph (n >= 1 processors)");
  }
}

Network::~Network() = default;
Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;

void Network::set_execution_threads(int threads) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  if (threads != exec_threads_) {
    pool_.reset();  // rebuilt lazily at the new width
    shard_count_.clear();
    shard_touched_.clear();
    exec_threads_ = threads;
  }
}

util::ThreadPool* Network::thread_pool() {
  if (exec_threads_ <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(exec_threads_);
  return pool_.get();
}

void Network::configure_transport(const TransportSpec& spec) {
  configure_transport(make_delivery_model(spec));
}

void Network::configure_transport(std::unique_ptr<DeliveryModel> model) {
  if (model == nullptr) {
    throw std::invalid_argument("configure_transport: null delivery model");
  }
  if (pending_messages() + in_flight() != 0) {
    throw std::logic_error(
        "configure_transport requires a quiescent network (messages are "
        "staged or in flight)");
  }
  // Fold the retiring model's injected-event counters into the network-level
  // base so the conservation ledger spans model swaps.
  retired_dropped_ += model_->counters().dropped;
  retired_duplicated_ += model_->counters().duplicated;
  model_ = std::move(model);
}

std::int64_t Network::in_flight() const noexcept {
  return model_->in_flight();
}

std::int64_t Network::directed_edge_id(Vertex from, Vertex to) const {
  const auto nbrs = graph_->neighbors(from);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
  if (it == nbrs.end() || *it != to) return -1;
  // Directed edge slots are laid out as the CSR adjacency itself.
  return graph_->csr_offset(from) + (it - nbrs.begin());
}

void Network::send(Vertex from, Vertex to, const Message& msg) {
  if (msg.size < 1 || msg.size > kMaxWords) {
    throw CongestViolation("message exceeds O(1)-word cap: " +
                           std::to_string(msg.size) + " words");
  }
  const std::int64_t eid = directed_edge_id(from, to);
  if (eid < 0) {
    throw CongestViolation("send along non-edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ")");
  }
  auto& stamp = edge_round_stamp_[static_cast<std::size_t>(eid)];
  if (stamp == stats_.rounds) {
    throw CongestViolation("second message on edge (" + std::to_string(from) +
                           "," + std::to_string(to) + ") in round " +
                           std::to_string(stats_.rounds));
  }
  stamp = stats_.rounds;

  pending_.push_back({to, {from, msg}});
  ++stats_.messages;
  stats_.words += msg.size;
}

void Network::broadcast(Vertex from, const Message& msg) {
  for (const Vertex to : graph_->neighbors(from)) send(from, to, msg);
}

void Network::sort_inbox_run(Vertex v) {
  const auto sv = static_cast<std::size_t>(v);
  Received* const first =
      arena_.data() + static_cast<std::size_t>(inbox_begin_[sv]);
  Received* const last = first + static_cast<std::size_t>(inbox_count_[sv]);
  const auto by_sender = [](const Received& a, const Received& b) {
    return a.from < b.from;
  };
  if (model_->unique_senders_per_round()) {
    // Unique keys: plain (allocation-free) sort is already deterministic.
    std::sort(first, last, by_sender);
  } else {
    // Duplicates / multi-round batches repeat senders: stability keeps the
    // deterministic batch order (original before copy, earlier staging
    // round first) within equal senders.
    std::stable_sort(first, last, by_sender);
  }
}

void Network::advance_round() {
  // Retire the previous round's delivery state (only delivered vertices have
  // non-zero counts, so the reset touches exactly the prior traffic).
  for (const Vertex v : delivered_) inbox_count_[static_cast<std::size_t>(v)] = 0;
  delivered_.clear();

  // Transport policy: the model turns this round's staged sends into the
  // batch delivered next round (Ideal passes everything through; Faulty
  // drops/duplicates; Async files by drawn latency and surfaces the
  // messages that are due).
  deliver_.clear();
  model_->collect(stats_.rounds, pending_, deliver_);
  pending_.clear();
  delivered_messages_ = static_cast<std::int64_t>(deliver_.size());
  delivered_total_ += delivered_messages_;

  // Message conservation across the Network / DeliveryModel handoff: every
  // send is eventually delivered, dropped, or still riding the transport,
  // and every extra delivery is an accounted duplicate. A model that loses
  // or invents messages without counting them breaks this ledger here, in
  // the round it happens.
  USNE_AUDIT(inv::Category::kTransport,
             stats_.messages + retired_duplicated_ +
                     model_->counters().duplicated ==
                 delivered_total_ + retired_dropped_ +
                     model_->counters().dropped + model_->in_flight(),
             "staged != delivered + dropped + in_flight (sent " +
                 std::to_string(stats_.messages) + ", delivered " +
                 std::to_string(delivered_total_) + ", dropped " +
                 std::to_string(retired_dropped_ +
                                model_->counters().dropped) +
                 ", duplicated " +
                 std::to_string(retired_duplicated_ +
                                model_->counters().duplicated) +
                 ", in flight " + std::to_string(model_->in_flight()) + ")");

  util::ThreadPool* const pool =
      deliver_.size() >= kMinParallelScatter ? thread_pool() : nullptr;
  if (pool != nullptr) {
    scatter_parallel(*pool);
  } else {
    scatter_serial();
  }

  // Scatter conservation: the arena's per-receiver runs must account for
  // exactly the batch the transport produced.
  USNE_AUDIT(inv::Category::kTransport,
             [&] {
               std::int64_t in_runs = 0;
               for (const Vertex v : delivered_) {
                 in_runs += inbox_count_[static_cast<std::size_t>(v)];
               }
               return in_runs == delivered_messages_;
             }(),
             "delivery arena runs do not sum to the batch size " +
                 std::to_string(delivered_messages_));
  ++stats_.rounds;
}

void Network::scatter_serial() {
  // Counting-sort the batch into the delivery arena: receivers in
  // ascending order, one contiguous run each.
  for (const Staged& p : deliver_) {
    if (recv_count_[static_cast<std::size_t>(p.to)]++ == 0) {
      receivers_.push_back(p.to);
    }
  }
  std::sort(receivers_.begin(), receivers_.end());
  std::int64_t offset = 0;
  for (const Vertex v : receivers_) {
    inbox_begin_[static_cast<std::size_t>(v)] = offset;
    offset += recv_count_[static_cast<std::size_t>(v)];
  }
  if (arena_.size() < deliver_.size()) arena_.resize(deliver_.size());
  for (const Staged& p : deliver_) {
    const auto to = static_cast<std::size_t>(p.to);
    arena_[static_cast<std::size_t>(inbox_begin_[to] + inbox_count_[to]++)] =
        p.rcv;
  }
  // Deterministic processing order for receivers: sort each run by sender.
  for (const Vertex v : receivers_) {
    sort_inbox_run(v);
    recv_count_[static_cast<std::size_t>(v)] = 0;
  }
  delivered_.swap(receivers_);
  receivers_.clear();
}

void Network::scatter_parallel(util::ThreadPool& pool) {
  // Sharded counting sort: shard s owns the contiguous batch chunk
  // [m*s/S, m*(s+1)/S). Within a receiver's arena run, shard s's messages
  // are written before shard s+1's, at each shard's precomputed cursor —
  // so the run's content order equals the serial (batch) order exactly,
  // and the per-run sender sort then matches the serial pass bit for bit.
  const std::size_t shards = static_cast<std::size_t>(pool.parallelism());
  const std::size_t m = deliver_.size();
  const std::size_t n = static_cast<std::size_t>(graph_->num_vertices());
  if (shard_count_.size() != shards) {
    shard_count_.assign(shards, std::vector<std::int64_t>(n, 0));
    shard_touched_.assign(shards, {});
  }
  if (receiver_stamp_.size() != n) receiver_stamp_.assign(n, -1);

  // Pass 1 (parallel): per-shard destination counts.
  pool.parallel_for(static_cast<int>(shards), [&](int s) {
    const std::size_t su = static_cast<std::size_t>(s);
    auto& count = shard_count_[su];
    auto& touched = shard_touched_[su];
    for (std::size_t i = m * su / shards; i < m * (su + 1) / shards; ++i) {
      const auto to = static_cast<std::size_t>(deliver_[i].to);
      if (count[to]++ == 0) touched.push_back(deliver_[i].to);
    }
  });

  // Receivers: union of the touched lists, deduped by round stamp, then
  // sorted ascending (the delivery contract).
  for (const auto& touched : shard_touched_) {
    for (const Vertex v : touched) {
      if (receiver_stamp_[static_cast<std::size_t>(v)] != stats_.rounds) {
        receiver_stamp_[static_cast<std::size_t>(v)] = stats_.rounds;
        receivers_.push_back(v);
      }
    }
  }
  std::sort(receivers_.begin(), receivers_.end());

  // Offsets: turn the per-shard counts into per-shard write cursors (an
  // exclusive prefix sum across shards within each receiver's run).
  std::int64_t offset = 0;
  for (const Vertex v : receivers_) {
    const auto sv = static_cast<std::size_t>(v);
    inbox_begin_[sv] = offset;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::int64_t c = shard_count_[s][sv];
      if (c != 0) {  // untouched (shard, v) slots must stay zero for reuse
        shard_count_[s][sv] = offset;
        offset += c;
      }
    }
    inbox_count_[sv] = offset - inbox_begin_[sv];
  }
  if (arena_.size() < m) arena_.resize(m);

  // Pass 2 (parallel): scatter at the cursors.
  pool.parallel_for(static_cast<int>(shards), [&](int s) {
    const std::size_t su = static_cast<std::size_t>(s);
    auto& cursor = shard_count_[su];
    for (std::size_t i = m * su / shards; i < m * (su + 1) / shards; ++i) {
      arena_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(deliver_[i].to)]++)] =
          deliver_[i].rcv;
    }
  });

  // Pass 3 (parallel): per-run sender sorts, receivers partitioned across
  // lanes; runs are independent, so order of execution is immaterial.
  const std::size_t r = receivers_.size();
  pool.parallel_for(static_cast<int>(shards), [&](int s) {
    const std::size_t su = static_cast<std::size_t>(s);
    for (std::size_t i = r * su / shards; i < r * (su + 1) / shards; ++i) {
      sort_inbox_run(receivers_[i]);
    }
  });

  // Reset the scratch counts (touched entries only).
  pool.parallel_for(static_cast<int>(shards), [&](int s) {
    const std::size_t su = static_cast<std::size_t>(s);
    for (const Vertex v : shard_touched_[su]) {
      shard_count_[su][static_cast<std::size_t>(v)] = 0;
    }
    shard_touched_[su].clear();
  });

  delivered_.swap(receivers_);
  receivers_.clear();
}

void Network::advance_rounds(std::int64_t k) {
  for (std::int64_t i = 0; i < k; ++i) advance_round();
}

}  // namespace usne::congest
