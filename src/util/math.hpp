#pragma once

// Small numeric helpers shared across the project.
//
// The size analysis of the paper works with real-valued degree thresholds
// deg_i = n^(2^i / kappa). Cluster-neighbour counts are integers compared
// against these thresholds, so we provide carefully-rounded helpers that keep
// the comparisons conservative (never claim the bound holds when it does
// not).

#include <cassert>
#include <cmath>
#include <cstdint>

namespace usne {

/// Integer power with 64-bit overflow saturation (returns INT64_MAX on
/// overflow). Exponent must be >= 0.
constexpr std::int64_t ipow_sat(std::int64_t base, int exp) noexcept {
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && result > INT64_MAX / base) return INT64_MAX;
    result *= base;
  }
  return result;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::int64_t x) noexcept {
  int bits = 0;
  std::int64_t v = 1;
  while (v < x) {
    v = (v > INT64_MAX / 2) ? INT64_MAX : v * 2;
    ++bits;
  }
  return bits;
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::int64_t x) noexcept {
  int bits = -1;
  while (x > 0) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

/// n^e for real exponent e, computed in long double. Used for size-bound
/// thresholds such as n^(1 + 1/kappa).
inline long double real_pow(std::int64_t n, long double e) noexcept {
  return std::pow(static_cast<long double>(n), e);
}

/// The paper's size bound n^(1+1/kappa), rounded *up* with a tiny relative
/// slack so that floating-point noise never makes a genuinely-satisfied
/// bound appear violated. (The algorithm guarantees |H| <= n^(1+1/kappa)
/// exactly; we allow |H| <= size_bound_edges(n, kappa).)
inline std::int64_t size_bound_edges(std::int64_t n, int kappa) noexcept {
  assert(kappa >= 1);
  const long double bound =
      real_pow(n, 1.0L + 1.0L / static_cast<long double>(kappa));
  return static_cast<std::int64_t>(std::floor(bound * (1.0L + 1e-12L) + 1e-9L));
}

/// Number of base-`base` digits needed to write every value in [0, n).
constexpr int digits_in_base(std::int64_t n, std::int64_t base) noexcept {
  int d = 1;
  std::int64_t v = base;
  while (v < n) {
    if (v > INT64_MAX / base) break;
    v *= base;
    ++d;
  }
  return d;
}

/// Extract digit `pos` (0 = least significant) of `value` in base `base`.
constexpr std::int64_t digit_at(std::int64_t value, std::int64_t base,
                                int pos) noexcept {
  for (int i = 0; i < pos; ++i) value /= base;
  return value % base;
}

/// ceil(a / b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace usne
