#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace usne {

Cli::Cli(int argc, char** argv, std::map<std::string, std::string> spec,
         bool allow_positional, std::set<std::string> switches)
    : spec_(std::move(spec)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      if (allow_positional) {
        positional_.push_back(arg);
      } else {
        errors_.push_back("unexpected positional argument: " + arg);
      }
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (switches.count(name) != 0) {
        value = "1";  // boolean switch: never consumes the next token
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else if (spec_.find(name) != spec_.end()) {
        errors_.push_back("flag --" + name + " requires a value");
        continue;
      }
    }
    if (spec_.find(name) == spec_.end()) {
      errors_.push_back("unknown flag: --" + name);
    } else {
      values_[name] = value;
    }
  }
}

bool Cli::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, help] : spec_) {
    out << "  --" << name << "  " << help << '\n';
  }
  return out.str();
}

}  // namespace usne
