#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace usne {

Cli::Cli(int argc, char** argv, std::map<std::string, std::string> spec)
    : spec_(std::move(spec)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      errors_.push_back("unexpected positional argument: " + arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";  // boolean switch
      }
    }
    if (spec_.find(name) == spec_.end()) {
      errors_.push_back("unknown flag: --" + name);
    } else {
      values_[name] = value;
    }
  }
}

bool Cli::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, help] : spec_) {
    out << "  --" << name << "  " << help << '\n';
  }
  return out.str();
}

}  // namespace usne
