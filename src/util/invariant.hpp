#pragma once

// Runtime invariant layer: machine-checked conservation laws for the hot
// subsystems.
//
// The repository's guarantees — bit-identical parallel CONGEST execution,
// deterministic transport injection, answer-stable serving — are enforced
// by the test suite at the *output* level (checksums, count diffs). This
// layer checks the *internal ledgers* those outputs rest on, at runtime,
// where a violation points at the component that broke conservation rather
// than at a drifted checksum three layers up:
//
//   kTransport   staged == delivered + dropped + in-flight (duplicates
//                accounted) across the Network / DeliveryModel handoff
//   kScheduler   parallel staged-send replay conservation and idle-round
//                accounting in the CONGEST Scheduler
//   kServeCache  the QueryEngine cache ledger: hits + misses == queries,
//                resident entries within the cache_mb budget
//   kSssp        SSSP kernel postconditions: source distance, ring
//                drained, relaxation fixpoint
//   kCsr         WeightedGraph::Csr structural validity (sorted offsets,
//                in-range targets, symmetric arcs)
//   kDaemon      net::Server request conservation: every well-framed
//                request is answered, rejected, or in flight — at
//                shutdown, accepted == answered + rejected and
//                in_flight == 0
//
// Two macro tiers:
//
//   USNE_CHECK(category, cond, msg)   always on, every build. For cold
//       points (program end, batch end, validators) where the check is
//       O(1)-ish and the invariant is load-bearing.
//   USNE_AUDIT(category, cond, msg)   debug-or-opt-in. Compiled in (unless
//       USNE_NO_AUDITS), but `cond` and `msg` are evaluated only while
//       audits_enabled() — a single relaxed load + predictable branch when
//       disabled, so release-path counts, checksums and qps are unchanged.
//       Audits default ON in debug builds (!NDEBUG) and OFF in release;
//       opt in at runtime via set_audits_enabled(true) or by exporting
//       USNE_AUDIT=1 before the process starts.
//
// A failing check increments the category's `fired` counter and dispatches
// the installed fail handler (default: throw InvariantViolation). Every
// evaluation increments `checked` — the counters are the proof that an
// audit category is actually exercised, surfaced by counters_json() (the
// stats hook usne_run embeds in its JSON records when audits are on, and
// scripts/check.sh asserts against).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace usne::inv {

/// Audit categories, one per instrumented subsystem ledger.
enum class Category : int {
  kTransport = 0,
  kScheduler,
  kServeCache,
  kSssp,
  kCsr,
  kDaemon,
};

inline constexpr int kNumCategories = 6;

/// Stable lowercase name ("transport" | "scheduler" | "serve_cache" |
/// "sssp" | "csr" | "daemon") for counters_json and fail messages.
const char* category_name(Category c) noexcept;

/// What the default fail handler throws.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Per-category evaluation/violation counts (cumulative since process
/// start or the last reset_counters()).
struct CategoryCounters {
  const char* name = nullptr;
  std::int64_t checked = 0;  ///< times a check in this category evaluated
  std::int64_t fired = 0;    ///< of those, how many failed
};

/// Called when a check fails, *after* the fired counter is bumped.
/// The default handler throws InvariantViolation("[category] expr: msg").
using FailHandler =
    std::function<void(Category, const char* expr, const std::string& msg)>;

/// Installs `handler` (empty = restore the default throwing handler) and
/// returns the previous one. Thread-safe; the handler runs outside the
/// registry lock, so it may itself check invariants.
FailHandler set_fail_handler(FailHandler handler);

/// Whether USNE_AUDIT sites evaluate. Initial value: true in debug builds
/// (!NDEBUG), otherwise the USNE_AUDIT environment variable ("1"/"on").
bool audits_enabled() noexcept;
void set_audits_enabled(bool on) noexcept;

/// Snapshot of every category's counters, in Category order.
std::vector<CategoryCounters> counters();

/// Zeroes all counters (tests).
void reset_counters() noexcept;

/// One-line JSON of the counters, sorted by category name:
/// {"csr": {"checked": N, "fired": M}, ...} — the stats hook usne_run
/// embeds when audits are enabled.
std::string counters_json();

/// RAII audit toggle for tests and tools.
class ScopedAuditsEnabled {
 public:
  explicit ScopedAuditsEnabled(bool on = true) : prev_(audits_enabled()) {
    set_audits_enabled(on);
  }
  ~ScopedAuditsEnabled() { set_audits_enabled(prev_); }
  ScopedAuditsEnabled(const ScopedAuditsEnabled&) = delete;
  ScopedAuditsEnabled& operator=(const ScopedAuditsEnabled&) = delete;

 private:
  bool prev_;
};

/// RAII fail-handler swap for tests (capture instead of throw).
class ScopedFailHandler {
 public:
  explicit ScopedFailHandler(FailHandler handler)
      : prev_(set_fail_handler(std::move(handler))) {}
  ~ScopedFailHandler() { set_fail_handler(std::move(prev_)); }
  ScopedFailHandler(const ScopedFailHandler&) = delete;
  ScopedFailHandler& operator=(const ScopedFailHandler&) = delete;

 private:
  FailHandler prev_;
};

namespace detail {
/// Bumps the category's checked counter (relaxed; safe from any thread).
void note_checked(Category c) noexcept;
/// Bumps the fired counter and dispatches the fail handler.
void fail(Category c, const char* expr, const std::string& msg);
}  // namespace detail

}  // namespace usne::inv

/// Always-on invariant check. `msg` is evaluated only on failure, so a
/// string build in the message position costs nothing on the hot path.
#define USNE_CHECK(category, cond, msg)                          \
  do {                                                           \
    ::usne::inv::detail::note_checked(category);                 \
    if (!(cond)) {                                               \
      ::usne::inv::detail::fail(category, #cond, (msg));         \
    }                                                            \
  } while (0)

/// Debug-or-opt-in audit: `cond` (which may be an expensive scan) and
/// `msg` are evaluated only while audits are enabled. Define
/// USNE_NO_AUDITS to compile every audit site out entirely.
#ifdef USNE_NO_AUDITS
#define USNE_AUDIT(category, cond, msg) \
  do {                                  \
  } while (0)
#else
#define USNE_AUDIT(category, cond, msg)       \
  do {                                        \
    if (::usne::inv::audits_enabled()) {      \
      USNE_CHECK(category, cond, msg);        \
    }                                         \
  } while (0)
#endif
