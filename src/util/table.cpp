#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace usne {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }

Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(double value, int digits) {
  return add(format_double(value, digits));
}

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      if (cells[c].find(',') != std::string::npos) {
        out << '"' << cells[c] << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "\n### " << title << "\n\n";
  os << markdown() << '\n';
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_count(std::int64_t value) {
  const std::string raw = std::to_string(value);
  std::string out;
  const std::size_t offset = raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i > 0 && (i + 3 - offset) % 3 == 0 && raw[i - 1] != '-') out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace usne
