#include "util/invariant.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>

namespace usne::inv {
namespace {

struct alignas(64) Slot {
  std::atomic<std::int64_t> checked{0};
  std::atomic<std::int64_t> fired{0};
};

Slot g_slots[kNumCategories];

bool initial_audits_enabled() noexcept {
#ifndef NDEBUG
  return true;
#else
  const char* env = std::getenv("USNE_AUDIT");
  return env != nullptr &&
         (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0);
#endif
}

std::atomic<bool> g_audits{initial_audits_enabled()};

void default_fail_handler(Category c, const char* expr,
                          const std::string& msg) {
  throw InvariantViolation(std::string("invariant violated [") +
                           category_name(c) + "] " + expr + ": " + msg);
}

std::mutex g_handler_mutex;
FailHandler g_handler;  // empty = default_fail_handler

}  // namespace

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::kTransport: return "transport";
    case Category::kScheduler: return "scheduler";
    case Category::kServeCache: return "serve_cache";
    case Category::kSssp: return "sssp";
    case Category::kCsr: return "csr";
    case Category::kDaemon: return "daemon";
  }
  return "?";
}

FailHandler set_fail_handler(FailHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  FailHandler prev = std::move(g_handler);
  g_handler = std::move(handler);
  return prev;
}

bool audits_enabled() noexcept {
  return g_audits.load(std::memory_order_relaxed);
}

void set_audits_enabled(bool on) noexcept {
  g_audits.store(on, std::memory_order_relaxed);
}

std::vector<CategoryCounters> counters() {
  std::vector<CategoryCounters> out(kNumCategories);
  for (int c = 0; c < kNumCategories; ++c) {
    out[static_cast<std::size_t>(c)] = {
        category_name(static_cast<Category>(c)),
        g_slots[c].checked.load(std::memory_order_relaxed),
        g_slots[c].fired.load(std::memory_order_relaxed)};
  }
  return out;
}

void reset_counters() noexcept {
  for (auto& slot : g_slots) {
    slot.checked.store(0, std::memory_order_relaxed);
    slot.fired.store(0, std::memory_order_relaxed);
  }
}

std::string counters_json() {
  // Category names happen to sort the same alphabetically and by enum
  // order except csr; emit alphabetically for a stable JSON record.
  std::vector<CategoryCounters> all = counters();
  std::sort(all.begin(), all.end(),
            [](const CategoryCounters& a, const CategoryCounters& b) {
              return std::strcmp(a.name, b.name) < 0;
            });
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << all[i].name << "\": {\"checked\": " << all[i].checked
        << ", \"fired\": " << all[i].fired << "}";
  }
  out << "}";
  return out.str();
}

namespace detail {

void note_checked(Category c) noexcept {
  g_slots[static_cast<int>(c)].checked.fetch_add(1, std::memory_order_relaxed);
}

void fail(Category c, const char* expr, const std::string& msg) {
  g_slots[static_cast<int>(c)].fired.fetch_add(1, std::memory_order_relaxed);
  FailHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    handler = g_handler;  // copy: the handler runs outside the lock
  }
  if (handler) {
    handler(c, expr, msg);
  } else {
    default_fail_handler(c, expr, msg);
  }
}

}  // namespace detail
}  // namespace usne::inv
