#pragma once

// Monotonic timing helpers — the one place in the repository that reads a
// clock for measurement.
//
// Every subsystem that needs wall time (obs spans, the scheduler's stage
// profile, net::Server's flush deadlines, bench drivers) goes through
// MonoClock / now_us() / Timer below instead of hand-rolling its own
// std::chrono boilerplate. One clock, one epoch, one unit convention
// (microseconds for integer timestamps, seconds for double durations), so
// timestamps from different layers are directly comparable — a trace span
// begun in net/ and an instant event emitted in serve/ land on the same
// timeline.
//
// The clock is std::chrono::steady_clock: monotonic, immune to NTP steps.
// Timing never feeds algorithm output (determinism_lint.py keeps wall
// clocks out of result paths); these helpers exist for measurement only.

#include <chrono>
#include <cstdint>

namespace usne {

/// The repository-wide monotonic measurement clock.
using MonoClock = std::chrono::steady_clock;

/// Monotonic timestamp in microseconds since an arbitrary (process-stable)
/// epoch. The integer-timestamp currency of the obs layer: span begin/end,
/// queue-wait deadlines, slow-query thresholds all trade in these.
inline std::int64_t mono_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             MonoClock::now().time_since_epoch())
      .count();
}

/// Microseconds elapsed between two MonoClock time points.
inline std::int64_t elapsed_us(MonoClock::time_point from,
                               MonoClock::time_point to) noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// Seconds elapsed between two MonoClock time points, as a double.
inline double elapsed_s(MonoClock::time_point from,
                        MonoClock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(MonoClock::now()) {}

  void reset() noexcept { start_ = MonoClock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const noexcept {
    return elapsed_s(start_, MonoClock::now());
  }

  /// Elapsed milliseconds since construction / last reset.
  double millis() const noexcept { return seconds() * 1e3; }

  /// Elapsed whole microseconds since construction / last reset.
  std::int64_t micros() const noexcept {
    return elapsed_us(start_, MonoClock::now());
  }

 private:
  MonoClock::time_point start_;
};

}  // namespace usne
