#pragma once

// Wall-clock timing helper used by benches and examples.

#include <chrono>

namespace usne {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last reset.
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace usne
