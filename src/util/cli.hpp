#pragma once

// Minimal command-line flag parser used by the example binaries.
//
// Supports "--name=value" and "--name value" forms plus boolean switches.
// Unknown flags are reported; examples use this to stay self-documenting.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace usne {

/// Parsed command-line flags with typed, defaulted accessors.
class Cli {
 public:
  /// Parses argv. `spec` maps flag name -> help text; flags not in the spec
  /// are collected into errors().
  Cli(int argc, char** argv, std::map<std::string, std::string> spec);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& errors() const { return errors_; }
  bool help_requested() const { return help_; }

  /// Renders a usage string from the spec.
  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> errors_;
  bool help_ = false;
};

}  // namespace usne
