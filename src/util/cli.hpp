#pragma once

// Minimal command-line flag parser used by the example binaries.
//
// Supports "--name=value" and "--name value" forms plus boolean switches.
// Unknown flags are reported; examples use this to stay self-documenting.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace usne {

/// Parsed command-line flags with typed, defaulted accessors.
class Cli {
 public:
  /// Parses argv. `spec` maps flag name -> help text; flags not in the spec
  /// are collected into errors(). Non-"--flag" arguments go to positional()
  /// when `allow_positional` is set and to errors() otherwise (the default —
  /// a stray `-n 8` typo must not silently fall back to defaults).
  ///
  /// Flags named in `switches` are boolean: they never consume the next
  /// token as a value ("--audit foo" leaves "foo" positional; use
  /// "--audit=false" for an explicit value). Every other flag requires a
  /// value — a bare "--json" is an error, not a silent "1".
  Cli(int argc, char** argv, std::map<std::string, std::string> spec,
      bool allow_positional = false, std::set<std::string> switches = {});

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flags: a bare switch ("--foo") and the values 1/true/yes/on
  /// are true; 0/false/no/off are false; anything else falls back.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that are not "--flag"s, in order of appearance (only
  /// populated when the constructor allowed them).
  const std::vector<std::string>& positional() const { return positional_; }

  const std::vector<std::string>& errors() const { return errors_; }
  bool help_requested() const { return help_; }

  /// Renders a usage string from the spec.
  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
  bool help_ = false;
};

}  // namespace usne
