#pragma once

// Deterministic pseudo-random number generation for the whole project.
//
// Everything in this repository that involves randomness (graph generators,
// randomized baselines, sampled stretch evaluation) is seeded explicitly and
// uses these generators, so every run is bit-for-bit reproducible.

#include <cstdint>
#include <limits>

namespace usne {

/// SplitMix64: fast, well-distributed 64-bit generator. Used both directly
/// and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide RNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased and fast. bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Degenerate but defined: below(0) would be UB in callers anyway.
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = next();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace usne
