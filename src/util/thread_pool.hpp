#pragma once

// Minimal persistent thread pool backing the parallel CONGEST round
// scheduler (and reusable by any other fan-out work).
//
// One pool = `parallelism` lanes: `parallelism - 1` long-lived background
// workers plus the calling thread, which always participates in
// parallel_for. Task indices are handed out through a shared cursor, so
// batches larger than the lane count load-balance automatically. The pool
// is deliberately tiny: no futures, no task queue — the only primitive the
// engine needs is "run fn(0..tasks) and wait for all of them".

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usne::util {

class ThreadPool {
 public:
  /// Creates a pool with `parallelism` total lanes (clamped to >= 1).
  /// `parallelism - 1` background threads are spawned immediately and live
  /// until destruction.
  explicit ThreadPool(int parallelism)
      : parallelism_(parallelism < 1 ? 1 : parallelism) {
    workers_.reserve(static_cast<std::size_t>(parallelism_ - 1));
    for (int w = 0; w + 1 < parallelism_; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  int parallelism() const noexcept { return parallelism_; }

  /// Invokes fn(i) once for every i in [0, tasks), distributed over the
  /// workers and the calling thread; returns when every index has
  /// completed. The first exception thrown by any invocation is rethrown
  /// here (remaining indices still run to completion). Not reentrant.
  void parallel_for(int tasks, const std::function<void(int)>& fn) {
    if (tasks <= 0) return;
    std::uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      total_ = tasks;
      next_ = 0;
      completed_ = 0;
      error_ = nullptr;
      generation = ++generation_;
    }
    job_cv_.notify_all();
    work_through(generation);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return completed_ == total_; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      work_through(seen);
    }
  }

  /// Drains task indices of batch `generation` until none remain. The
  /// unlocked `(*job_)` read is safe: job_ is published under the mutex
  /// before the generation bump and not cleared until every index of the
  /// batch has completed.
  void work_through(std::uint64_t generation) {
    for (;;) {
      int index;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (generation_ != generation || next_ >= total_) return;
        index = next_++;
      }
      std::exception_ptr error;
      try {
        (*job_)(index);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !error_) error_ = error;
      if (++completed_ == total_) done_cv_.notify_all();
    }
  }

  const int parallelism_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable job_cv_;   // wakes workers: new batch or stop
  std::condition_variable done_cv_;  // wakes the caller: batch complete
  const std::function<void(int)>* job_ = nullptr;
  int total_ = 0;
  int next_ = 0;
  int completed_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace usne::util
