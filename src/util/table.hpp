#pragma once

// Markdown / CSV table builder used by the bench binaries to print
// paper-style result tables.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace usne {

/// Accumulates rows of string cells and renders them as an aligned markdown
/// table (default) or CSV. Numeric convenience overloads format with a fixed
/// number of significant digits.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add() calls append cells to it.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);
  /// Formats with `digits` digits after the decimal point.
  Table& add(double value, int digits = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders as an aligned GitHub-flavoured markdown table.
  std::string markdown() const;
  /// Renders as CSV (no escaping beyond quoting cells with commas).
  std::string csv() const;

  /// Prints the markdown rendering, preceded by `title` as a heading.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal digits.
std::string format_double(double value, int digits);

/// Human-friendly large integer: 12,345,678.
std::string format_count(std::int64_t value);

}  // namespace usne
