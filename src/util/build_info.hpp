#pragma once

// Binary provenance: which source revision, compiler and build flags
// produced this process. Embedded in every long-form JSON record
// (usne_run --json, Server::stats_json) so bench rows and daemon stats are
// attributable to a binary — a perf delta whose two rows came from
// different build types is noise, not signal, and the build_info block
// makes that visible instead of discoverable.

#include <string>

namespace usne::util {

/// One-line JSON object (sorted keys):
///   {"audits_compiled": ..., "build_type": ..., "compiler": ...,
///    "git": ..., "ndebug": ..., "san": ..., "trace_compiled": ...}
/// git/build_type/san are stamped by CMake at configure time
/// ("unknown"/"" when built outside the CMake tree).
const std::string& build_info_json();

}  // namespace usne::util
