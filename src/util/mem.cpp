#include "util/mem.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace usne::util {
namespace {

/// Reads one "Vm...:  <kB> kB" line from /proc/self/status. Returns -1 when
/// the file or the field is missing (non-Linux), so callers can fall back.
std::int64_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::int64_t kb = -1;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, field, field_len) != 0 || line[field_len] != ':') {
      continue;
    }
    long long value = 0;
    if (std::sscanf(line + field_len + 1, "%lld", &value) == 1) kb = value;
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::int64_t current_rss_bytes() {
  const std::int64_t kb = proc_status_kb("VmRSS");
  return kb >= 0 ? kb * 1024 : 0;
}

std::int64_t peak_rss_bytes() {
  const std::int64_t kb = proc_status_kb("VmHWM");
  if (kb >= 0) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss);
#else
    return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

}  // namespace usne::util
