#pragma once

// Process memory accounting for the scale tier (bench_scale / E10) and
// `usne_run --json`.
//
// Million-vertex workloads are memory-bound long before they are
// compute-bound, so every scale row records peak RSS and bytes-per-edge
// next to wall time — a perf trajectory that ignores the working set would
// reward layouts that simply materialize everything twice.

#include <cstdint>

namespace usne::util {

/// Current resident set size in bytes (Linux: VmRSS from
/// /proc/self/status). 0 when unavailable.
std::int64_t current_rss_bytes();

/// Peak (high-water-mark) resident set size in bytes since process start
/// (Linux: VmHWM from /proc/self/status, falling back to
/// getrusage(RUSAGE_SELF).ru_maxrss). 0 when unavailable.
std::int64_t peak_rss_bytes();

/// peak_rss_bytes() in MiB, the unit the bench rows and JSON records use.
double peak_rss_mb();

}  // namespace usne::util
