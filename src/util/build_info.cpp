#include "util/build_info.hpp"

#include <sstream>

namespace usne::util {

namespace {

#ifndef USNE_GIT_DESCRIBE
#define USNE_GIT_DESCRIBE "unknown"
#endif
#ifndef USNE_BUILD_TYPE
#define USNE_BUILD_TYPE "unknown"
#endif
#ifndef USNE_SAN_NAME
#define USNE_SAN_NAME ""
#endif

std::string make_build_info_json() {
  std::ostringstream out;
  out << "{\"audits_compiled\": "
#ifdef USNE_NO_AUDITS
      << "false"
#else
      << "true"
#endif
      << ", \"build_type\": \"" << USNE_BUILD_TYPE << "\""
      << ", \"compiler\": \"" << __VERSION__ << "\""
      << ", \"git\": \"" << USNE_GIT_DESCRIBE << "\""
      << ", \"ndebug\": "
#ifdef NDEBUG
      << "true"
#else
      << "false"
#endif
      << ", \"san\": \"" << USNE_SAN_NAME << "\""
      << ", \"trace_compiled\": "
#ifdef USNE_NO_TRACE
      << "false"
#else
      << "true"
#endif
      << "}";
  return out.str();
}

}  // namespace

const std::string& build_info_json() {
  static const std::string json = make_build_info_json();
  return json;
}

}  // namespace usne::util
