#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace usne::net {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      inbuf_(std::move(other.inbuf_)),
      inbuf_off_(other.inbuf_off_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    inbuf_ = std::move(other.inbuf_);
    inbuf_off_ = other.inbuf_off_;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("Client: bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close();
    throw std::runtime_error("Client: connect to " + host + ":" +
                             std::to_string(port) + " failed: " + err);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  inbuf_.clear();
  inbuf_off_ = 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_frame(MsgType type, std::uint64_t request_id,
                        std::span<const std::uint8_t> payload,
                        std::uint16_t flags) {
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, type, request_id, payload, flags);
  send_raw(bytes);
}

void Client::send_raw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("Client: send failed: ") +
                             std::strerror(errno));
  }
}

bool Client::recv_frame(Frame& out) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const DecodeStatus st = decode_frame(inbuf_, inbuf_off_, out);
    if (st == DecodeStatus::kFrame) {
      // Compact once the buffer's consumed prefix dominates.
      if (inbuf_off_ > 64 * 1024 && inbuf_off_ * 2 > inbuf_.size()) {
        inbuf_.erase(inbuf_.begin(),
                     inbuf_.begin() + static_cast<std::ptrdiff_t>(inbuf_off_));
        inbuf_off_ = 0;
      }
      return true;
    }
    if (st != DecodeStatus::kNeedMore) {
      throw std::runtime_error(std::string("Client: bad response frame: ") +
                               decode_status_name(st));
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return false;  // orderly EOF
    throw std::runtime_error(std::string("Client: recv failed: ") +
                             std::strerror(errno));
  }
}

Frame Client::call(MsgType type, std::span<const std::uint8_t> payload,
                   std::uint16_t flags) {
  const std::uint64_t id = next_request_id_++;
  send_frame(type, id, payload, flags);
  Frame f;
  for (;;) {
    if (!recv_frame(f)) {
      throw std::runtime_error("Client: connection closed mid-call");
    }
    // Blocking single-caller clients see responses in request order, but
    // tolerate interleaving anyway: skip frames for other request ids.
    if (f.request_id != id) continue;
    break;
  }
  if (f.type == MsgType::kBusy || f.type == MsgType::kError) {
    ErrorCode code = ErrorCode::kNone;
    std::string message;
    if (!parse_error(f.payload, code, message)) {
      throw std::runtime_error("Client: undecodable error response");
    }
    throw RpcError(code, std::string(error_code_name(code)) + ": " + message);
  }
  return f;
}

std::vector<std::uint8_t> Client::ping(std::span<const std::uint8_t> token) {
  Frame f = call(MsgType::kPing, token);
  if (f.type != MsgType::kPong) {
    throw std::runtime_error("Client: unexpected ping response type");
  }
  return std::move(f.payload);
}

Dist Client::query_pair(Vertex u, Vertex v) {
  const Frame f = call(MsgType::kPair, encode_pair_request(u, v));
  Dist d = 0;
  if (f.type != MsgType::kPairReply || !parse_dist_reply(f.payload, d)) {
    throw std::runtime_error("Client: bad pair reply");
  }
  return d;
}

Dist Client::query_all_folded(Vertex source) {
  const Frame f =
      call(MsgType::kSingleSource, encode_single_source_request(source));
  Dist d = 0;
  if (f.type != MsgType::kSingleSourceReply ||
      !parse_dist_reply(f.payload, d)) {
    throw std::runtime_error("Client: bad single-source reply");
  }
  return d;
}

std::vector<Dist> Client::query_all(Vertex source) {
  const Frame f = call(MsgType::kSingleSource,
                       encode_single_source_request(source), kFlagFullVector);
  std::vector<Dist> dist;
  if (f.type != MsgType::kSingleSourceReply ||
      !parse_dist_vector_reply(f.payload, dist)) {
    throw std::runtime_error("Client: bad single-source vector reply");
  }
  return dist;
}

std::vector<Dist> Client::query_batch(std::span<const serve::Query> queries) {
  const Frame f = call(MsgType::kBatch, encode_batch_request(queries));
  std::vector<Dist> answers;
  if (f.type != MsgType::kBatchReply ||
      !parse_batch_reply(f.payload, answers) ||
      answers.size() != queries.size()) {
    throw std::runtime_error("Client: bad batch reply");
  }
  return answers;
}

std::string Client::stats_json() {
  const Frame f = call(MsgType::kStats, {});
  if (f.type != MsgType::kStatsReply) {
    throw std::runtime_error("Client: bad stats reply");
  }
  if (f.payload.empty()) return {};
  return std::string(reinterpret_cast<const char*>(f.payload.data()),
                     f.payload.size());
}

std::string Client::metrics_text() {
  const Frame f = call(MsgType::kMetrics, {});
  if (f.type != MsgType::kMetricsReply) {
    throw std::runtime_error("Client: bad metrics reply");
  }
  if (f.payload.empty()) return {};
  return std::string(reinterpret_cast<const char*>(f.payload.data()),
                     f.payload.size());
}

}  // namespace usne::net
