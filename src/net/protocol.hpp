#pragma once

// usne wire protocol v1: length-prefixed, checksummed binary frames.
//
// The serving daemon (net/server.hpp) and its clients speak a minimal
// request/response protocol over TCP. Every message is one frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic            0x55534E45 ("USNE"), little-endian
//        4     1  version          kProtocolVersion (1)
//        5     1  type             MsgType
//        6     2  flags            per-type modifier bits (kFlagFullVector)
//        8     4  payload_len      bytes following the header (<= 1 MiB)
//       12     4  payload_checksum FNV-1a/32 over the payload bytes
//       16     8  request_id       echoed verbatim in the response frame
//       24     -  payload
//
// All integers are little-endian, serialized byte-by-byte (no struct
// punning, no host-order assumptions). request_id lets clients pipeline:
// responses are matched by id, never by arrival order. The checksum turns
// silent payload corruption into an explicit kBadChecksum rejection.
//
// Request types and payloads (responses echo request_id, set the reply
// type, and are themselves framed and checksummed):
//
//   kPing          ()                     -> kPong (payload echoed)
//   kPair          (u32 u, u32 v)         -> kPairReply (i64 dist)
//   kSingleSource  (u32 source)           -> kSingleSourceReply:
//                                            i64 checksum_fold, or with
//                                            kFlagFullVector the full
//                                            (u32 n, n x i64) vector
//   kBatch         (u32 count, count x (u8 all, u32 u, u32 v))
//                                         -> kBatchReply (u32 count,
//                                            count x i64; `all` slots hold
//                                            checksum_fold — identical to
//                                            serve::BatchResult::answers)
//   kStats         ()                     -> kStatsReply (UTF-8 JSON)
//   kMetrics       ()                     -> kMetricsReply (UTF-8 Prometheus
//                                            text exposition of the global
//                                            obs::Registry)
//
// Error responses: kBusy (admission control rejected the request — retry
// later) and kError (protocol/payload problem), both carrying
// (u16 ErrorCode, UTF-8 message).
//
// decode_frame and the parse_* helpers are pure functions over byte
// buffers: tests/test_net.cpp exercises every malformed-frame path without
// a socket or an engine in sight, which is what makes "malformed frames
// never touch the engine" a provable property rather than a hope.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "serve/workload.hpp"

namespace usne::net {

inline constexpr std::uint32_t kMagic = 0x55534E45u;  // "USNE"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::uint32_t kMaxBatchItems = 65536;

/// Frame types. Requests have the high bit clear; responses set it.
enum class MsgType : std::uint8_t {
  kPing = 0x01,
  kPair = 0x02,
  kSingleSource = 0x03,
  kBatch = 0x04,
  kStats = 0x05,
  kMetrics = 0x06,

  kPong = 0x81,
  kPairReply = 0x82,
  kSingleSourceReply = 0x83,
  kBatchReply = 0x84,
  kStatsReply = 0x85,
  kMetricsReply = 0x86,
  kBusy = 0xEB,
  kError = 0xEE,
};

/// True for the six request types a server accepts.
bool is_request_type(std::uint8_t raw) noexcept;
/// True for any type byte defined by this protocol version.
bool is_known_type(std::uint8_t raw) noexcept;
const char* msg_type_name(MsgType type) noexcept;

/// kSingleSource flag: respond with the full distance vector instead of
/// the folded checksum.
inline constexpr std::uint16_t kFlagFullVector = 0x1;

/// Error codes carried by kBusy / kError payloads.
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBadType = 1,       ///< well-framed but not a request type
  kMalformed = 2,     ///< payload didn't parse / vertex out of range
  kBusy = 3,          ///< admission control: queue or in-flight cap hit
  kShuttingDown = 4,  ///< server is draining
};
const char* error_code_name(ErrorCode code) noexcept;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a/32 over the payload bytes.
std::uint32_t payload_checksum(std::span<const std::uint8_t> payload) noexcept;

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t flags = 0);

enum class DecodeStatus {
  kNeedMore,     ///< not enough bytes buffered yet — read more
  kFrame,        ///< one frame decoded; offset advanced past it
  kBadMagic,     ///< stream is not speaking this protocol — close it
  kBadVersion,   ///< header intact but wrong protocol version
  kBadType,      ///< type byte not defined by this version
  kOversized,    ///< payload_len exceeds kMaxPayloadBytes
  kBadChecksum,  ///< payload bytes do not match payload_checksum
};
const char* decode_status_name(DecodeStatus status) noexcept;

/// Attempts to decode one frame from buf[offset..). On kFrame, fills
/// `frame` and advances `offset` past it; on kNeedMore, leaves offset
/// untouched; on any error, offset is left at the bad frame (the caller
/// should reject and close — resynchronizing a corrupt byte stream is not
/// attempted).
DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& offset, Frame& frame);

// --- typed payload encoding / parsing --------------------------------------
// Parsers return false on any size/count mismatch without touching `out`
// beyond clearing it; they never throw and never read out of bounds.

std::vector<std::uint8_t> encode_pair_request(Vertex u, Vertex v);
bool parse_pair_request(std::span<const std::uint8_t> payload, Vertex& u,
                        Vertex& v);

std::vector<std::uint8_t> encode_single_source_request(Vertex source);
bool parse_single_source_request(std::span<const std::uint8_t> payload,
                                 Vertex& source);

std::vector<std::uint8_t> encode_batch_request(
    std::span<const serve::Query> queries);
bool parse_batch_request(std::span<const std::uint8_t> payload,
                         std::vector<serve::Query>& out);

std::vector<std::uint8_t> encode_dist_reply(Dist d);
bool parse_dist_reply(std::span<const std::uint8_t> payload, Dist& d);

std::vector<std::uint8_t> encode_dist_vector_reply(
    std::span<const Dist> dist);
bool parse_dist_vector_reply(std::span<const std::uint8_t> payload,
                             std::vector<Dist>& out);

std::vector<std::uint8_t> encode_batch_reply(std::span<const Dist> answers);
bool parse_batch_reply(std::span<const std::uint8_t> payload,
                       std::vector<Dist>& out);

std::vector<std::uint8_t> encode_error(ErrorCode code,
                                       std::string_view message);
bool parse_error(std::span<const std::uint8_t> payload, ErrorCode& code,
                 std::string& message);

}  // namespace usne::net
