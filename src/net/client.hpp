#pragma once

// usne::net::Client — a minimal blocking client for the usne wire protocol.
//
// One TCP connection, synchronous request/response RPCs. This is the
// reference implementation of the client side of net/protocol.hpp: the
// integration tests (tests/test_net.cpp) and usne_loadgen both drive the
// daemon through it, and its raw send_frame/recv_frame layer doubles as the
// fault injector (send_raw writes arbitrary bytes, so malformed-frame
// handling is testable over a real socket).
//
// Thread model: a Client is NOT thread-safe — one connection, one caller.
// Concurrency is achieved by opening more Clients (the daemon multiplexes
// them), which is also how the load generator models independent clients.
//
// kBusy responses surface as RpcError with code() == ErrorCode::kBusy so
// callers can implement retry; any transport or protocol failure throws
// std::runtime_error.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/protocol.hpp"
#include "serve/workload.hpp"

namespace usne::net {

/// A kBusy or kError response, decoded. code() distinguishes admission
/// rejection (retryable) from protocol/payload errors (caller bug).
class RpcError : public std::runtime_error {
 public:
  RpcError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (blocking) to host:port. Throws std::runtime_error on
  /// failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  // --- RPCs (each sends one request and blocks for its response) ----------

  /// Round-trips a kPing carrying `token`; returns the echoed payload.
  std::vector<std::uint8_t> ping(std::span<const std::uint8_t> token = {});

  /// Point-to-point approximate distance.
  Dist query_pair(Vertex u, Vertex v);

  /// Single-source answer folded to the engine's checksum_fold value.
  Dist query_all_folded(Vertex source);

  /// Full single-source distance vector (kFlagFullVector).
  std::vector<Dist> query_all(Vertex source);

  /// Batch of queries; answers positionally aligned with `queries`,
  /// bit-identical to serve::QueryEngine::serve on the same batch.
  std::vector<Dist> query_batch(std::span<const serve::Query> queries);

  /// The daemon's STATS JSON.
  std::string stats_json();

  /// The daemon's METRICS page (Prometheus text exposition of its global
  /// obs::Registry).
  std::string metrics_text();

  // --- raw frame layer (tests, fault injection) ----------------------------

  /// Sends one well-formed frame.
  void send_frame(MsgType type, std::uint64_t request_id,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t flags = 0);

  /// Writes arbitrary bytes to the socket — the malformed-frame hook.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Blocks for one frame. Returns false on orderly EOF (daemon closed the
  /// connection); throws on a malformed response.
  bool recv_frame(Frame& out);

 private:
  /// Sends `frame_payload` as `type` and waits for the response to this
  /// request_id, translating kBusy/kError into RpcError.
  Frame call(MsgType type, std::span<const std::uint8_t> payload,
             std::uint16_t flags = 0);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> inbuf_;
  std::size_t inbuf_off_ = 0;
};

}  // namespace usne::net
