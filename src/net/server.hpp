#pragma once

// usne::net::Server — the network serving daemon behind `usne_served`.
//
// A long-running TCP front-end for serve::QueryEngine: one I/O thread runs
// an epoll (Linux) or poll (portable fallback) event loop over all client
// sockets, decoding frames (net/protocol.hpp) and admitting engine-bound
// requests into a bounded batching queue; N worker threads pop requests in
// coalesced groups (flush when the queue reaches batch_max or the oldest
// entry has waited flush_us) and answer them against an atomically
// swappable engine snapshot. Responses flow back to the I/O thread through
// a response queue plus a wake pipe, so workers never touch a socket.
//
// Admission control / backpressure: a request that would overflow the
// queue (max_queue) or its connection's in-flight cap
// (max_inflight_per_conn) is answered immediately with kBusy — bounded
// memory, explicit signal, client retries. PING, STATS and METRICS bypass
// admission (they never touch the engine), so health and observability stay
// responsive exactly when the daemon is saturated.
//
// Graceful reload: reload(new_engine) flips a shared_ptr behind a mutex.
// Workers snapshot the pointer per batch, so requests in flight finish on
// the engine they were admitted under and later batches pick up the new
// one — zero dropped requests, no socket churn. Engines with a different
// vertex count are rejected (queued queries must stay answerable).
//
// Observability: per-worker lock-free serve::LatencyHistograms (merged on
// demand), cumulative counters, and QueryEngine::cache_stats_delta for
// per-interval cache rates — all surfaced by the STATS request and
// stats_json(). A started server additionally registers a collector with
// the global obs::Registry mirroring ServerStats as usne_net_* series, and
// the METRICS request returns the registry's Prometheus text page (answered
// inline by the I/O thread, like STATS). Request-lifecycle trace spans
// (net.read / net.batch_coalesce / net.engine / net.write) and the
// usne_net_queue_wait_us / usne_net_request_latency_us histograms cover the
// path from socket read to socket write.
//
// Request conservation (inv::Category::kDaemon): every well-framed request
// is eventually answered, rejected, or in flight —
//
//   accepted == answered + rejected_busy + rejected_error + in_flight
//
// holds at every counter snapshot, and in_flight == 0 once stop() has
// drained. Header-level garbage (bad magic/version/checksum/oversized)
// never enters the ledger: it is counted in protocol_errors and the
// connection is closed without engine involvement.

#include <cstdint>
#include <memory>
#include <string>

#include "serve/query_engine.hpp"

namespace usne::net {

struct ServerOptions {
  /// Listen address. Tests and check.sh bind loopback.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;

  /// Worker threads answering requests (>= 1).
  int workers = 2;

  /// Admission bound: engine-bound requests queued but not yet being
  /// processed. At the bound, new requests get kBusy.
  int max_queue = 1024;

  /// Per-connection cap on admitted-but-unanswered requests; the second
  /// backpressure lever (one greedy pipelining client cannot monopolize
  /// the queue).
  int max_inflight_per_conn = 256;

  /// Batching queue flush thresholds: a worker pops as soon as the queue
  /// holds batch_max requests, or the oldest queued request has waited
  /// flush_us microseconds, whichever comes first.
  int batch_max = 32;
  std::int64_t flush_us = 500;

  /// Close connections idle (no traffic, nothing in flight) longer than
  /// this. <= 0 disables idle harvesting.
  std::int64_t idle_timeout_ms = 30000;

  /// Per-connection write-buffer cap; a client that stops reading while
  /// responses pile past this is closed rather than buffered forever.
  std::size_t max_write_buffer = 8u << 20;
};

/// Monotone counter snapshot (plus two instantaneous gauges: queue_depth,
/// in_flight). See the conservation law in the header comment.
struct ServerStats {
  std::int64_t accepted_connections = 0;
  std::int64_t closed_connections = 0;
  std::int64_t accepted_requests = 0;  ///< well-framed requests, incl. BUSY
  std::int64_t answered_requests = 0;  ///< successful replies produced
  std::int64_t rejected_busy = 0;      ///< admission-control kBusy replies
  std::int64_t rejected_error = 0;     ///< kError replies (malformed payload…)
  std::int64_t protocol_errors = 0;    ///< framing-level garbage; conn closed
  std::int64_t idle_closed = 0;        ///< connections harvested by the timeout
  std::int64_t reloads = 0;            ///< successful engine swaps
  std::int64_t queue_depth = 0;        ///< gauge: queued, not yet popped
  std::int64_t in_flight = 0;          ///< gauge: admitted, not yet answered
};

/// The daemon. Construct with an engine, start(), serve until stop().
/// All public methods are thread-safe; stop() is idempotent and also runs
/// from the destructor.
class Server {
 public:
  Server(std::shared_ptr<serve::QueryEngine> engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the I/O + worker threads. Throws
  /// std::runtime_error if the socket cannot be set up.
  void start();

  /// Graceful shutdown: stop accepting, let workers drain the queue,
  /// flush every write buffer (bounded by a ~5 s hard deadline), then
  /// join all threads and audit the conservation ledger.
  void stop();

  /// Actual bound port (after start(); resolves port 0).
  std::uint16_t port() const noexcept;

  /// Swaps the serving engine (see header comment). Throws
  /// std::invalid_argument if `engine` is null or its vertex count
  /// differs from the current engine's.
  void reload(std::shared_ptr<serve::QueryEngine> engine);

  /// Current engine snapshot (what the next batch will be served by).
  std::shared_ptr<serve::QueryEngine> engine() const;

  ServerStats stats() const;

  /// One-line JSON: ServerStats counters, merged latency histogram,
  /// cumulative cache stats, per-interval cache stats
  /// (cache_stats_delta), the binary's build_info block, uptime_s since
  /// start(), and — when audits are enabled — the invariant counters. What
  /// the STATS request returns and `usne_served --json` embeds at shutdown.
  std::string stats_json() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace usne::net
