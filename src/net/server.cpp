#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__) && !defined(USNE_NET_USE_POLL)
#define USNE_NET_EPOLL 1
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/latency_histogram.hpp"
#include "util/build_info.hpp"
#include "util/invariant.hpp"
#include "util/timer.hpp"

namespace usne::net {
namespace {

using Clock = MonoClock;

constexpr std::uint64_t kListenKey = 0;
constexpr std::uint64_t kWakeKey = 1;
constexpr std::uint64_t kFirstConnId = 2;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
}

// One readiness notification from the poller.
struct PollEvent {
  std::uint64_t key = 0;
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

#ifdef USNE_NET_EPOLL

/// Linux edge of the event loop: epoll, O(ready) per wait.
class Poller {
 public:
  Poller() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~Poller() {
    if (fd_ >= 0) ::close(fd_);
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }

  void add(int fd, std::uint64_t key, bool rd, bool wr) {
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.u64 = key;
    ::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void update(int fd, std::uint64_t key, bool rd, bool wr) {
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.u64 = key;
    ::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) { ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr); }

  void wait(int timeout_ms, std::vector<PollEvent>& out) {
    out.clear();
    epoll_event evs[64];
    const int n = ::epoll_wait(fd_, evs, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.key = evs[i].data.u64;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.hangup = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
  }

 private:
  static std::uint32_t mask(bool rd, bool wr) {
    return (rd ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
           (wr ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  }
  int fd_;
};

#else  // poll(2) fallback — portable, O(registered) per wait

class Poller {
 public:
  bool ok() const noexcept { return true; }

  void add(int fd, std::uint64_t key, bool rd, bool wr) {
    entries_.push_back({fd, key, rd, wr});
  }

  void update(int fd, std::uint64_t key, bool rd, bool wr) {
    for (Entry& e : entries_) {
      if (e.fd == fd) {
        e = {fd, key, rd, wr};
        return;
      }
    }
    entries_.push_back({fd, key, rd, wr});
  }

  void remove(int fd) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].fd == fd) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  void wait(int timeout_ms, std::vector<PollEvent>& out) {
    out.clear();
    fds_.clear();
    for (const Entry& e : entries_) {
      pollfd p{};
      p.fd = e.fd;
      p.events = static_cast<short>((e.rd ? POLLIN : 0) | (e.wr ? POLLOUT : 0));
      fds_.push_back(p);
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (fds_[i].revents == 0) continue;
      PollEvent e;
      e.key = entries_[i].key;
      e.readable = (fds_[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0;
      e.writable = (fds_[i].revents & POLLOUT) != 0;
      e.hangup = (fds_[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  struct Entry {
    int fd;
    std::uint64_t key;
    bool rd;
    bool wr;
  };
  std::vector<Entry> entries_;
  std::vector<pollfd> fds_;
};

#endif

std::string cache_json(const serve::CacheStats& c) {
  std::ostringstream out;
  out << "{\"coalesced\": " << c.coalesced << ", \"entries\": " << c.entries
      << ", \"evictions\": " << c.evictions << ", \"hits\": " << c.hits
      << ", \"misses\": " << c.misses << ", \"sssp_runs\": " << c.sssp_runs
      << "}";
  return out.str();
}

}  // namespace

class Server::Impl {
 public:
  Impl(std::shared_ptr<serve::QueryEngine> engine, ServerOptions options)
      : opt_(std::move(options)), engine_(std::move(engine)) {
    if (!engine_) throw std::invalid_argument("Server: null engine");
    if (opt_.workers < 1) opt_.workers = 1;
    if (opt_.batch_max < 1) opt_.batch_max = 1;
    if (opt_.max_queue < 1) opt_.max_queue = 1;
    if (opt_.max_inflight_per_conn < 1) opt_.max_inflight_per_conn = 1;
    hist_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int w = 0; w < opt_.workers; ++w) {
      hist_.push_back(std::make_unique<serve::LatencyHistogram>());
    }
  }

  ~Impl() { stop(); }

  void start() {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (started_) return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("Server: socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("Server: bad host " + opt_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd_, 128) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("Server: bind/listen on " + opt_.host + ":" +
                               std::to_string(opt_.port) + " failed: " +
                               std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("Server: pipe() failed");
    }
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
    set_nonblocking(wake_rd_);
    set_nonblocking(wake_wr_);

    io_thread_ = std::thread([this] { run_io(); });
    for (int w = 0; w < opt_.workers; ++w) {
      workers_.emplace_back([this, w] { run_worker(w); });
    }
    start_time_ = Clock::now();

    // Mirror ServerStats into the global metrics registry. A collector
    // (not handles) so the page reflects the same atomics the invariant
    // ledger audits — the two can never drift apart.
    collector_id_ = obs::Registry::global().add_collector([this] {
      const ServerStats s = stats();
      std::vector<obs::Sample> out;
      out.push_back({"usne_net_accepted_connections_total",
                     s.accepted_connections, true});
      out.push_back({"usne_net_accepted_requests_total",
                     s.accepted_requests, true});
      out.push_back({"usne_net_answered_requests_total",
                     s.answered_requests, true});
      out.push_back({"usne_net_closed_connections_total",
                     s.closed_connections, true});
      out.push_back({"usne_net_idle_closed_total", s.idle_closed, true});
      out.push_back({"usne_net_in_flight", s.in_flight, false});
      out.push_back({"usne_net_protocol_errors_total",
                     s.protocol_errors, true});
      out.push_back({"usne_net_queue_depth", s.queue_depth, false});
      out.push_back({"usne_net_rejected_busy_total", s.rejected_busy, true});
      out.push_back({"usne_net_rejected_error_total",
                     s.rejected_error, true});
      out.push_back({"usne_net_reloads_total", s.reloads, true});
      return out;
    });
    collector_registered_ = true;
    started_ = true;
  }

  void stop() {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;

    // Phase 1: stop admitting. The I/O thread sees stopping_, closes the
    // listen socket and drops read interest; workers drain what's queued.
    {
      std::lock_guard<std::mutex> qlock(queue_mutex_);
      stopping_.store(true);
    }
    queue_cv_.notify_all();
    wake();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }

    // Phase 2: workers are done, every response is in the response queue
    // or a write buffer. Let the I/O thread flush, bounded by a hard
    // deadline so a wedged client can't hold shutdown hostage.
    drain_deadline_ = Clock::now() + std::chrono::seconds(5);
    drain_mode_.store(true);
    wake();
    if (io_thread_.joinable()) io_thread_.join();

    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    wake_rd_ = wake_wr_ = -1;

    // The conservation ledger (inv::Category::kDaemon). Quiesced: no
    // thread is mutating counters any more.
    const ServerStats s = stats();
    USNE_CHECK(inv::Category::kDaemon,
               s.accepted_requests ==
                   s.answered_requests + s.rejected_busy + s.rejected_error,
               "request conservation: accepted=" +
                   std::to_string(s.accepted_requests) + " answered=" +
                   std::to_string(s.answered_requests) + " busy=" +
                   std::to_string(s.rejected_busy) + " error=" +
                   std::to_string(s.rejected_error));
    USNE_CHECK(inv::Category::kDaemon,
               s.in_flight == 0 && s.queue_depth == 0,
               "drained shutdown: in_flight=" + std::to_string(s.in_flight) +
                   " queue_depth=" + std::to_string(s.queue_depth));
    USNE_AUDIT(inv::Category::kDaemon,
               s.accepted_connections == s.closed_connections,
               "connection conservation: accepted=" +
                   std::to_string(s.accepted_connections) + " closed=" +
                   std::to_string(s.closed_connections));

    if (collector_registered_) {
      obs::Registry::global().remove_collector(collector_id_);
      collector_registered_ = false;
    }
  }

  std::uint16_t port() const noexcept { return bound_port_; }

  void reload(std::shared_ptr<serve::QueryEngine> next) {
    if (!next) throw std::invalid_argument("Server::reload: null engine");
    std::lock_guard<std::mutex> lock(engine_mutex_);
    if (next->emulator().num_vertices() !=
        engine_->emulator().num_vertices()) {
      throw std::invalid_argument(
          "Server::reload: vertex count mismatch (" +
          std::to_string(next->emulator().num_vertices()) + " vs " +
          std::to_string(engine_->emulator().num_vertices()) +
          ") — queued queries must stay answerable");
    }
    engine_ = std::move(next);
    reloads_.fetch_add(1, std::memory_order_relaxed);
  }

  std::shared_ptr<serve::QueryEngine> engine() const {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    return engine_;
  }

  ServerStats stats() const {
    ServerStats s;
    s.accepted_connections =
        accepted_connections_.load(std::memory_order_relaxed);
    s.closed_connections = closed_connections_.load(std::memory_order_relaxed);
    s.accepted_requests = accepted_requests_.load(std::memory_order_relaxed);
    s.answered_requests = answered_requests_.load(std::memory_order_relaxed);
    s.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
    s.rejected_error = rejected_error_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
    s.reloads = reloads_.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
    s.in_flight = in_flight_.load(std::memory_order_relaxed);
    return s;
  }

  std::string stats_json() const {
    const ServerStats s = stats();
    serve::LatencyHistogram merged;
    for (const auto& h : hist_) merged.merge_from(*h);
    const std::shared_ptr<serve::QueryEngine> eng = engine();
    const serve::CacheStats cumulative = eng->cache_stats();
    const serve::CacheStats interval = eng->cache_stats_delta();

    std::ostringstream out;
    out << "{\"accepted_connections\": " << s.accepted_connections
        << ", \"accepted_requests\": " << s.accepted_requests
        << ", \"answered_requests\": " << s.answered_requests
        << ", \"build_info\": " << util::build_info_json()
        << ", \"cache\": " << cache_json(cumulative)
        << ", \"cache_interval\": " << cache_json(interval)
        << ", \"closed_connections\": " << s.closed_connections
        << ", \"idle_closed\": " << s.idle_closed
        << ", \"in_flight\": " << s.in_flight;
    if (inv::audits_enabled()) {
      out << ", \"invariants\": " << inv::counters_json();
    }
    out << ", \"latency\": " << merged.stats_json()
        << ", \"protocol_errors\": " << s.protocol_errors
        << ", \"queue_depth\": " << s.queue_depth
        << ", \"rejected_busy\": " << s.rejected_busy
        << ", \"rejected_error\": " << s.rejected_error
        << ", \"reloads\": " << s.reloads
        << ", \"uptime_s\": " << elapsed_s(start_time_, Clock::now())
        << ", \"workers\": " << opt_.workers << "}";
    return out.str();
  }

 private:
  // One admitted engine-bound request, queued for a worker.
  struct Work {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    MsgType type = MsgType::kPing;
    std::uint16_t flags = 0;
    std::vector<std::uint8_t> payload;
    Clock::time_point enqueued;
  };

  // A framed reply on its way back to the I/O thread. `completes` marks
  // replies that settle an admitted request (the conn's in-flight count
  // drops when it is routed).
  struct Response {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> bytes;
    bool completes = false;
  };

  // Per-connection state, owned exclusively by the I/O thread. Keyed by a
  // monotonically increasing id in a std::map: iteration order is the
  // admission order, deterministic by construction.
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    int in_flight = 0;
    Clock::time_point last_activity;
  };

  void wake() {
    if (wake_wr_ < 0) return;
    const char byte = 1;
    // EAGAIN means the pipe already holds a pending wake — good enough.
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
  }

  // ---- I/O thread ---------------------------------------------------------

  void run_io() {
    Poller poller;
    std::map<std::uint64_t, Conn> conns;
    std::uint64_t next_conn_id = kFirstConnId;
    std::vector<PollEvent> events;
    std::vector<std::uint8_t> rdbuf(64 * 1024);
    bool reads_disabled = false;

    poller.add(listen_fd_, kListenKey, true, false);
    poller.add(wake_rd_, kWakeKey, true, false);

    auto close_conn = [&](std::uint64_t id) {
      auto it = conns.find(id);
      if (it == conns.end()) return;
      poller.remove(it->second.fd);
      ::close(it->second.fd);
      conns.erase(it);
      closed_connections_.fetch_add(1, std::memory_order_relaxed);
    };

    // Flushes c.out; returns false if the connection died.
    auto flush = [&](std::uint64_t id, Conn& c) -> bool {
      USNE_TRACE_SPAN("net.write");
      while (c.out_off < c.out.size()) {
        const ssize_t n =
            ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                   MSG_NOSIGNAL);
        if (n > 0) {
          c.out_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          poller.update(c.fd, id, !reads_disabled, true);
          return true;
        }
        close_conn(id);
        return false;
      }
      c.out.clear();
      c.out_off = 0;
      poller.update(c.fd, id, !reads_disabled, false);
      return true;
    };

    // Appends a frame to c.out and flushes; enforces the write-buffer cap.
    auto send_now = [&](std::uint64_t id, Conn& c,
                        std::vector<std::uint8_t>&& bytes) -> bool {
      if (c.out.size() - c.out_off + bytes.size() > opt_.max_write_buffer) {
        close_conn(id);
        return false;
      }
      if (c.out.empty()) {
        c.out = std::move(bytes);
      } else {
        c.out.insert(c.out.end(), bytes.begin(), bytes.end());
      }
      return flush(id, c);
    };

    // Handles one decoded frame; returns false if the conn was closed.
    auto handle_frame = [&](std::uint64_t id, Conn& c, Frame&& f) -> bool {
      if (!is_request_type(static_cast<std::uint8_t>(f.type))) {
        accepted_requests_.fetch_add(1, std::memory_order_relaxed);
        rejected_error_.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::uint8_t> frame_bytes;
        append_frame(frame_bytes, MsgType::kError, f.request_id,
                     encode_error(ErrorCode::kBadType, "not a request type"));
        return send_now(id, c, std::move(frame_bytes));
      }
      switch (f.type) {
        case MsgType::kPing: {
          // Health probe: answered inline, bypasses admission.
          accepted_requests_.fetch_add(1, std::memory_order_relaxed);
          answered_requests_.fetch_add(1, std::memory_order_relaxed);
          std::vector<std::uint8_t> frame_bytes;
          append_frame(frame_bytes, MsgType::kPong, f.request_id, f.payload);
          return send_now(id, c, std::move(frame_bytes));
        }
        case MsgType::kStats: {
          // Observability must stay responsive under saturation: answered
          // inline by the I/O thread, never queued.
          accepted_requests_.fetch_add(1, std::memory_order_relaxed);
          answered_requests_.fetch_add(1, std::memory_order_relaxed);
          const std::string json = stats_json();
          const auto* p = reinterpret_cast<const std::uint8_t*>(json.data());
          std::vector<std::uint8_t> frame_bytes;
          append_frame(frame_bytes, MsgType::kStatsReply, f.request_id,
                       {p, json.size()});
          return send_now(id, c, std::move(frame_bytes));
        }
        case MsgType::kMetrics: {
          // The Prometheus page: same inline, bypass-admission contract as
          // kStats, so scrapes succeed while the engine queue is saturated.
          accepted_requests_.fetch_add(1, std::memory_order_relaxed);
          answered_requests_.fetch_add(1, std::memory_order_relaxed);
          const std::string page = obs::Registry::global().prometheus_text();
          const auto* p = reinterpret_cast<const std::uint8_t*>(page.data());
          std::vector<std::uint8_t> frame_bytes;
          append_frame(frame_bytes, MsgType::kMetricsReply, f.request_id,
                       {p, page.size()});
          return send_now(id, c, std::move(frame_bytes));
        }
        default: {
          // Engine-bound: admission control, then the batching queue.
          accepted_requests_.fetch_add(1, std::memory_order_relaxed);
          const bool queue_full =
              queue_depth_.load(std::memory_order_relaxed) >= opt_.max_queue;
          const bool conn_full = c.in_flight >= opt_.max_inflight_per_conn;
          if (queue_full || conn_full) {
            rejected_busy_.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint8_t> frame_bytes;
            append_frame(
                frame_bytes, MsgType::kBusy, f.request_id,
                encode_error(ErrorCode::kBusy, queue_full ? "queue full"
                                                          : "in-flight cap"));
            return send_now(id, c, std::move(frame_bytes));
          }
          in_flight_.fetch_add(1, std::memory_order_relaxed);
          c.in_flight += 1;
          Work w;
          w.conn_id = id;
          w.request_id = f.request_id;
          w.type = f.type;
          w.flags = f.flags;
          w.payload = std::move(f.payload);
          w.enqueued = Clock::now();
          {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            work_queue_.push_back(std::move(w));
            queue_depth_.fetch_add(1, std::memory_order_relaxed);
          }
          queue_cv_.notify_one();
          return true;
        }
      }
    };

    auto read_conn = [&](std::uint64_t id, Conn& c) {
      USNE_TRACE_SPAN("net.read");
      for (;;) {
        const ssize_t n = ::recv(c.fd, rdbuf.data(), rdbuf.size(), 0);
        if (n > 0) {
          c.in.insert(c.in.end(), rdbuf.begin(), rdbuf.begin() + n);
          c.last_activity = Clock::now();
          if (static_cast<std::size_t>(n) < rdbuf.size()) break;
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_conn(id);  // orderly EOF or hard error
        return;
      }
      std::size_t off = 0;
      Frame f;
      for (;;) {
        const DecodeStatus st = decode_frame(c.in, off, f);
        if (st == DecodeStatus::kFrame) {
          if (!handle_frame(id, c, std::move(f))) return;  // conn closed
          continue;
        }
        if (st == DecodeStatus::kNeedMore) break;
        // Framing-level garbage: not a request, never enters the request
        // ledger. The stream is unrecoverable — close it.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_conn(id);
        return;
      }
      if (off > 0) {
        c.in.erase(c.in.begin(),
                   c.in.begin() + static_cast<std::ptrdiff_t>(off));
      }
    };

    auto accept_loop = [&] {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        set_nonblocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const std::uint64_t id = next_conn_id++;
        Conn c;
        c.fd = fd;
        c.last_activity = Clock::now();
        conns.emplace(id, std::move(c));
        poller.add(fd, id, true, false);
        accepted_connections_.fetch_add(1, std::memory_order_relaxed);
      }
    };

    auto route_responses = [&] {
      std::deque<Response> batch;
      {
        std::lock_guard<std::mutex> lock(response_mutex_);
        batch.swap(responses_);
      }
      for (Response& r : batch) {
        auto it = conns.find(r.conn_id);
        if (it == conns.end()) continue;  // client left; reply is dropped
        Conn& c = it->second;
        if (r.completes) {
          c.in_flight -= 1;
          c.last_activity = Clock::now();
        }
        send_now(r.conn_id, c, std::move(r.bytes));
      }
    };

    std::vector<std::uint64_t> doomed;
    auto idle_harvest = [&](Clock::time_point now) {
      if (opt_.idle_timeout_ms <= 0) return;
      doomed.clear();
      for (const auto& [id, c] : conns) {
        if (c.in_flight > 0 || c.out_off < c.out.size()) continue;
        if (elapsed_us(c.last_activity, now) >= opt_.idle_timeout_ms * 1000) {
          doomed.push_back(id);
        }
      }
      for (std::uint64_t id : doomed) {
        idle_closed_.fetch_add(1, std::memory_order_relaxed);
        close_conn(id);
      }
    };

    for (;;) {
      const bool draining = drain_mode_.load(std::memory_order_acquire);
      poller.wait(draining ? 10 : 50, events);
      const Clock::time_point now = Clock::now();

      if (stopping_.load(std::memory_order_relaxed) && !reads_disabled) {
        reads_disabled = true;
        if (listen_fd_ >= 0) {
          poller.remove(listen_fd_);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        for (const auto& [id, c] : conns) {
          poller.update(c.fd, id, false, c.out_off < c.out.size());
        }
      }

      for (const PollEvent& ev : events) {
        if (ev.key == kListenKey) {
          if (!reads_disabled) accept_loop();
          continue;
        }
        if (ev.key == kWakeKey) {
          char drainbuf[256];
          while (::read(wake_rd_, drainbuf, sizeof(drainbuf)) > 0) {
          }
          continue;
        }
        auto it = conns.find(ev.key);
        if (it == conns.end()) continue;  // closed earlier this round
        if (ev.hangup) {
          close_conn(ev.key);
          continue;
        }
        if (ev.writable) {
          if (!flush(ev.key, it->second)) continue;
        }
        if (ev.readable && !reads_disabled) read_conn(ev.key, it->second);
      }

      route_responses();
      if (!draining) idle_harvest(now);

      if (draining) {
        bool responses_pending;
        {
          std::lock_guard<std::mutex> lock(response_mutex_);
          responses_pending = !responses_.empty();
        }
        bool outs_pending = false;
        for (const auto& [id, c] : conns) {
          if (c.out_off < c.out.size()) {
            outs_pending = true;
            break;
          }
        }
        if ((!responses_pending && !outs_pending) || now >= drain_deadline_) {
          break;
        }
      }
    }

    doomed.clear();
    for (const auto& [id, c] : conns) doomed.push_back(id);
    for (std::uint64_t id : doomed) close_conn(id);
  }

  // ---- worker threads -----------------------------------------------------

  void run_worker(int w) {
    std::vector<Work> group;
    const auto flush_window = std::chrono::microseconds(
        opt_.flush_us > 0 ? opt_.flush_us : 0);
    for (;;) {
      group.clear();
      {
        USNE_TRACE_SPAN("net.batch_coalesce");
        std::unique_lock<std::mutex> lock(queue_mutex_);
        for (;;) {
          if (work_queue_.empty()) {
            if (stopping_.load(std::memory_order_relaxed)) return;
            queue_cv_.wait(lock);
            continue;
          }
          if (stopping_.load(std::memory_order_relaxed) ||
              work_queue_.size() >=
                  static_cast<std::size_t>(opt_.batch_max)) {
            break;
          }
          const Clock::time_point deadline =
              work_queue_.front().enqueued + flush_window;
          if (Clock::now() >= deadline) break;
          queue_cv_.wait_until(lock, deadline);
        }
        const std::size_t take = std::min(
            work_queue_.size(), static_cast<std::size_t>(opt_.batch_max));
        for (std::size_t i = 0; i < take; ++i) {
          group.push_back(std::move(work_queue_.front()));
          work_queue_.pop_front();
        }
        queue_depth_.fetch_sub(static_cast<std::int64_t>(take),
                               std::memory_order_relaxed);
      }
      // More work may remain (another coalesced group's worth): hand it to
      // a sibling before going heads-down on this group.
      queue_cv_.notify_one();
      process_group(group, w);
    }
  }

  void process_group(std::vector<Work>& group, int w) {
    // One engine snapshot per group: requests admitted before a reload()
    // finish on the engine they saw; the swap lands between groups.
    const std::shared_ptr<serve::QueryEngine> eng = engine();
    const Vertex n = eng->emulator().num_vertices();
    std::deque<Response> out;

    for (Work& wk : group) {
      USNE_TRACE_SPAN("net.engine");
      std::vector<std::uint8_t> reply;
      MsgType rtype = MsgType::kError;
      std::uint16_t rflags = 0;
      bool ok = true;

      static serve::LatencyHistogram& queue_wait_us =
          obs::histogram("usne_net_queue_wait_us");
      queue_wait_us.record(
          static_cast<std::uint64_t>(elapsed_us(wk.enqueued, Clock::now())));

      switch (wk.type) {
        case MsgType::kPair: {
          Vertex u = 0;
          Vertex v = 0;
          if (!parse_pair_request(wk.payload, u, v) || u < 0 || v < 0 ||
              u >= n || v >= n) {
            ok = false;
            break;
          }
          reply = encode_dist_reply(eng->query(u, v));
          rtype = MsgType::kPairReply;
          break;
        }
        case MsgType::kSingleSource: {
          Vertex s = 0;
          if (!parse_single_source_request(wk.payload, s) || s < 0 || s >= n) {
            ok = false;
            break;
          }
          const serve::SsspResult dist = eng->query_all(s);
          if ((wk.flags & kFlagFullVector) != 0) {
            reply = encode_dist_vector_reply(*dist);
            rflags = kFlagFullVector;
          } else {
            reply = encode_dist_reply(serve::checksum_fold(*dist));
          }
          rtype = MsgType::kSingleSourceReply;
          break;
        }
        case MsgType::kBatch: {
          std::vector<serve::Query> queries;
          if (!parse_batch_request(wk.payload, queries)) {
            ok = false;
            break;
          }
          for (const serve::Query& q : queries) {
            if (q.u < 0 || q.u >= n || (!q.all && (q.v < 0 || q.v >= n))) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          const serve::BatchResult r = eng->serve(queries, 1);
          reply = encode_batch_reply(r.answers);
          rtype = MsgType::kBatchReply;
          break;
        }
        default:
          ok = false;  // unreachable: only engine-bound types are queued
          break;
      }

      std::vector<std::uint8_t> frame_bytes;
      if (ok) {
        answered_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t lat_us =
            static_cast<std::uint64_t>(elapsed_us(wk.enqueued, Clock::now()));
        hist_[static_cast<std::size_t>(w)]->record(lat_us);
        static serve::LatencyHistogram& request_latency_us =
            obs::histogram("usne_net_request_latency_us");
        request_latency_us.record(lat_us);
        append_frame(frame_bytes, rtype, wk.request_id, reply, rflags);
      } else {
        rejected_error_.fetch_add(1, std::memory_order_relaxed);
        append_frame(frame_bytes, MsgType::kError, wk.request_id,
                     encode_error(ErrorCode::kMalformed, "bad payload"));
      }
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      out.push_back({wk.conn_id, std::move(frame_bytes), true});
    }

    {
      std::lock_guard<std::mutex> lock(response_mutex_);
      for (Response& r : out) responses_.push_back(std::move(r));
    }
    wake();
  }

  // ---- state ---------------------------------------------------------------

  ServerOptions opt_;

  mutable std::mutex engine_mutex_;
  std::shared_ptr<serve::QueryEngine> engine_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t bound_port_ = 0;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Work> work_queue_;

  std::mutex response_mutex_;
  std::deque<Response> responses_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_mode_{false};
  Clock::time_point drain_deadline_{};

  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool stopped_ = false;
  Clock::time_point start_time_ = Clock::now();
  std::size_t collector_id_ = 0;
  bool collector_registered_ = false;

  std::atomic<std::int64_t> accepted_connections_{0};
  std::atomic<std::int64_t> closed_connections_{0};
  std::atomic<std::int64_t> accepted_requests_{0};
  std::atomic<std::int64_t> answered_requests_{0};
  std::atomic<std::int64_t> rejected_busy_{0};
  std::atomic<std::int64_t> rejected_error_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> idle_closed_{0};
  std::atomic<std::int64_t> reloads_{0};
  std::atomic<std::int64_t> queue_depth_{0};
  std::atomic<std::int64_t> in_flight_{0};

  std::vector<std::unique_ptr<serve::LatencyHistogram>> hist_;
};

Server::Server(std::shared_ptr<serve::QueryEngine> engine,
               ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(engine), std::move(options))) {}

Server::~Server() = default;

void Server::start() { impl_->start(); }
void Server::stop() { impl_->stop(); }
std::uint16_t Server::port() const noexcept { return impl_->port(); }
void Server::reload(std::shared_ptr<serve::QueryEngine> engine) {
  impl_->reload(std::move(engine));
}
std::shared_ptr<serve::QueryEngine> Server::engine() const {
  return impl_->engine();
}
ServerStats Server::stats() const { return impl_->stats(); }
std::string Server::stats_json() const { return impl_->stats_json(); }

}  // namespace usne::net
