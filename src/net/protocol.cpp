#include "net/protocol.hpp"

#include <cstring>

namespace usne::net {
namespace {

constexpr std::uint32_t kFnv32Seed = 2166136261u;
constexpr std::uint32_t kFnv32Prime = 16777619u;

// Little-endian scalar writers/readers over raw byte vectors. Byte-by-byte
// on purpose: the wire format must not depend on host endianness or struct
// layout, and the compiler folds these into single moves on x86 anyway.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

bool is_request_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(MsgType::kPing) &&
         raw <= static_cast<std::uint8_t>(MsgType::kMetrics);
}

bool is_known_type(std::uint8_t raw) noexcept {
  if (is_request_type(raw)) return true;
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kPong:
    case MsgType::kPairReply:
    case MsgType::kSingleSourceReply:
    case MsgType::kBatchReply:
    case MsgType::kStatsReply:
    case MsgType::kMetricsReply:
    case MsgType::kBusy:
    case MsgType::kError:
      return true;
    default:
      return false;
  }
}

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kPair: return "pair";
    case MsgType::kSingleSource: return "single_source";
    case MsgType::kBatch: return "batch";
    case MsgType::kStats: return "stats";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kPong: return "pong";
    case MsgType::kPairReply: return "pair_reply";
    case MsgType::kSingleSourceReply: return "single_source_reply";
    case MsgType::kBatchReply: return "batch_reply";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kMetricsReply: return "metrics_reply";
    case MsgType::kBusy: return "busy";
    case MsgType::kError: return "error";
  }
  return "?";
}

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadType: return "bad_type";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kShuttingDown: return "shutting_down";
  }
  return "?";
}

const char* decode_status_name(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kNeedMore: return "need_more";
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadType: return "bad_type";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadChecksum: return "bad_checksum";
  }
  return "?";
}

std::uint32_t payload_checksum(std::span<const std::uint8_t> payload) noexcept {
  std::uint32_t h = kFnv32Seed;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= kFnv32Prime;
  }
  return h;
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload,
                  std::uint16_t flags) {
  out.reserve(out.size() + kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, flags);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, payload_checksum(payload));
  put_u64(out, request_id);
  out.insert(out.end(), payload.begin(), payload.end());
}

DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& offset, Frame& frame) {
  if (buf.size() - offset < kHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buf.data() + offset;
  if (get_u32(h) != kMagic) return DecodeStatus::kBadMagic;
  if (h[4] != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (!is_known_type(h[5])) return DecodeStatus::kBadType;
  const std::uint32_t payload_len = get_u32(h + 8);
  if (payload_len > kMaxPayloadBytes) return DecodeStatus::kOversized;
  if (buf.size() - offset < kHeaderBytes + payload_len) {
    return DecodeStatus::kNeedMore;
  }
  const std::uint8_t* payload = h + kHeaderBytes;
  if (payload_checksum({payload, payload_len}) != get_u32(h + 12)) {
    return DecodeStatus::kBadChecksum;
  }
  frame.type = static_cast<MsgType>(h[5]);
  frame.flags = get_u16(h + 6);
  frame.request_id = get_u64(h + 16);
  frame.payload.assign(payload, payload + payload_len);
  offset += kHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

std::vector<std::uint8_t> encode_pair_request(Vertex u, Vertex v) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(u));
  put_u32(out, static_cast<std::uint32_t>(v));
  return out;
}

bool parse_pair_request(std::span<const std::uint8_t> payload, Vertex& u,
                        Vertex& v) {
  if (payload.size() != 8) return false;
  u = static_cast<Vertex>(get_u32(payload.data()));
  v = static_cast<Vertex>(get_u32(payload.data() + 4));
  return true;
}

std::vector<std::uint8_t> encode_single_source_request(Vertex source) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(source));
  return out;
}

bool parse_single_source_request(std::span<const std::uint8_t> payload,
                                 Vertex& source) {
  if (payload.size() != 4) return false;
  source = static_cast<Vertex>(get_u32(payload.data()));
  return true;
}

std::vector<std::uint8_t> encode_batch_request(
    std::span<const serve::Query> queries) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + queries.size() * 9);
  put_u32(out, static_cast<std::uint32_t>(queries.size()));
  for (const serve::Query& q : queries) {
    out.push_back(q.all ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(q.u));
    put_u32(out, static_cast<std::uint32_t>(q.v));
  }
  return out;
}

bool parse_batch_request(std::span<const std::uint8_t> payload,
                         std::vector<serve::Query>& out) {
  out.clear();
  if (payload.size() < 4) return false;
  const std::uint32_t count = get_u32(payload.data());
  if (count > kMaxBatchItems) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 9) return false;
  out.reserve(count);
  const std::uint8_t* p = payload.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += 9) {
    if (p[0] > 1) {
      out.clear();
      return false;
    }
    serve::Query q;
    q.all = (p[0] == 1);
    q.u = static_cast<Vertex>(get_u32(p + 1));
    q.v = static_cast<Vertex>(get_u32(p + 5));
    out.push_back(q);
  }
  return true;
}

std::vector<std::uint8_t> encode_dist_reply(Dist d) {
  std::vector<std::uint8_t> out;
  put_u64(out, static_cast<std::uint64_t>(d));
  return out;
}

bool parse_dist_reply(std::span<const std::uint8_t> payload, Dist& d) {
  if (payload.size() != 8) return false;
  d = static_cast<Dist>(get_u64(payload.data()));
  return true;
}

std::vector<std::uint8_t> encode_dist_vector_reply(
    std::span<const Dist> dist) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + dist.size() * 8);
  put_u32(out, static_cast<std::uint32_t>(dist.size()));
  for (Dist d : dist) put_u64(out, static_cast<std::uint64_t>(d));
  return out;
}

bool parse_dist_vector_reply(std::span<const std::uint8_t> payload,
                             std::vector<Dist>& out) {
  out.clear();
  if (payload.size() < 4) return false;
  const std::uint32_t count = get_u32(payload.data());
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 8) return false;
  out.reserve(count);
  const std::uint8_t* p = payload.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += 8) {
    out.push_back(static_cast<Dist>(get_u64(p)));
  }
  return true;
}

std::vector<std::uint8_t> encode_batch_reply(std::span<const Dist> answers) {
  return encode_dist_vector_reply(answers);
}

bool parse_batch_reply(std::span<const std::uint8_t> payload,
                       std::vector<Dist>& out) {
  return parse_dist_vector_reply(payload, out);
}

std::vector<std::uint8_t> encode_error(ErrorCode code,
                                       std::string_view message) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + message.size());
  put_u16(out, static_cast<std::uint16_t>(code));
  // push_back, not insert: GCC 12's -Warray-bounds misfires on the
  // memcpy inside vector::insert here (bugzilla 105329 family).
  for (char ch : message) out.push_back(static_cast<std::uint8_t>(ch));
  return out;
}

bool parse_error(std::span<const std::uint8_t> payload, ErrorCode& code,
                 std::string& message) {
  if (payload.size() < 2) return false;
  code = static_cast<ErrorCode>(get_u16(payload.data()));
  message.assign(reinterpret_cast<const char*>(payload.data()) + 2,
                 payload.size() - 2);
  return true;
}

}  // namespace usne::net
