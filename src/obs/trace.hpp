#pragma once

// Span tracing into per-thread fixed-size ring buffers, dumped as Chrome
// trace-event JSON (load the file at chrome://tracing or ui.perfetto.dev).
//
// Hot-path contract:
//   * tracing disabled (the default): one relaxed atomic load per
//     begin/end/instant call — no clock read, no write, no branch beyond
//     the flag test;
//   * tracing enabled: one clock read plus one write into a thread-local
//     ring (no locks, no allocation after the ring exists);
//   * compiled out (-DUSNE_NO_TRACE): the USNE_TRACE_* macros expand to
//     nothing and a TU using only the macros references no obs symbol at
//     all (asserted by check.sh's compile-out probe).
//
// Each thread writes its own ring; rings are registered in a global table
// so trace_dump_chrome_json() can walk them. A full ring overwrites its
// oldest events (newest-biased: the tail of a run is what you usually
// debug). Event names must be string literals (the ring stores the
// pointer).
//
// Dump/reset are *quiescent* operations: call them when no thread is
// concurrently recording (after workers joined / the daemon stopped).
// Recording itself is safe from any number of threads at once.
//
// Timestamps come from the repository-wide monotonic clock
// (util/timer.hpp); they feed the trace file only, never algorithm output.

#include <cstdint>
#include <string>

namespace usne::obs {

/// One ring-buffer slot. `phase` follows the Chrome trace-event convention:
/// 'B' span begin, 'E' span end, 'i' instant.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (literal)
  std::int64_t ts_us = 0;      ///< MonoClock microseconds
  std::uint32_t tid = 0;       ///< small sequential thread id (not OS tid)
  char phase = 'i';
};

/// Global on/off switch. Off by default; begin/end/instant are no-ops (one
/// relaxed load) while off.
void trace_set_enabled(bool on) noexcept;
bool trace_enabled() noexcept;

/// Record into the calling thread's ring (created on first use). `name`
/// must be a string literal / static storage.
void trace_begin(const char* name) noexcept;
void trace_end(const char* name) noexcept;
void trace_instant(const char* name) noexcept;

/// Records 'E' regardless of the enabled flag — TraceSpan's destructor
/// path, so a span opened while enabled still closes after a mid-span
/// disable and dumps stay balanced.
void trace_end_always(const char* name) noexcept;

/// Per-thread ring capacity for rings created *after* this call (default
/// 16384 events). Test support for exercising wraparound cheaply.
void trace_set_ring_capacity(std::size_t events);

/// Events currently retained across all rings / events overwritten by
/// wraparound since the last reset. Quiescent reads.
std::size_t trace_retained_events();
std::int64_t trace_dropped_events();

/// All retained events, merged across rings and sorted by (ts, tid), as a
/// Chrome trace-event JSON document. Quiescent.
std::string trace_dump_chrome_json();

/// Clears every ring (capacities and thread registrations are kept).
/// Quiescent.
void trace_reset();

/// RAII span: records 'B' at construction and 'E' at destruction when
/// tracing was enabled at construction time (so a span open across a
/// disable still closes — dumps stay balanced).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(name), active_(trace_enabled()) {
    if (active_) trace_begin(name_);
  }
  ~TraceSpan() {
    if (active_) trace_end_always(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool active_;
};

}  // namespace usne::obs

// Macro layer: the only obs interface hot paths use directly, so that
// -DUSNE_NO_TRACE removes every reference (symbol-free, not just inert).
#ifdef USNE_NO_TRACE
#define USNE_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#define USNE_TRACE_INSTANT(name) \
  do {                           \
  } while (false)
#else
#define USNE_OBS_CONCAT_INNER(a, b) a##b
#define USNE_OBS_CONCAT(a, b) USNE_OBS_CONCAT_INNER(a, b)
#define USNE_TRACE_SPAN(name) \
  ::usne::obs::TraceSpan USNE_OBS_CONCAT(usne_trace_span_, __LINE__)(name)
#define USNE_TRACE_INSTANT(name) ::usne::obs::trace_instant(name)
#endif
