#include "obs/metrics.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace usne::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

void check_name(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: malformed metric name '" + name +
                                "' (want [a-zA-Z_][a-zA-Z0-9_]*)");
  }
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || hists_.count(name) != 0) {
    throw std::invalid_argument("obs: '" + name +
                                "' already registered as a different type");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || hists_.count(name) != 0) {
    throw std::invalid_argument("obs: '" + name +
                                "' already registered as a different type");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

serve::LatencyHistogram& Registry::histogram(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::invalid_argument("obs: '" + name +
                                "' already registered as a different type");
  }
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<serve::LatencyHistogram>();
  return *slot;
}

std::size_t Registry::add_collector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::remove_collector(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

// A scrape snapshot: scalar series (owned + collected, last write wins on a
// name collision — deterministic because collectors run in registration
// order) plus pointers to the owned histograms. Built under mu_; the
// histogram pointers stay valid because series are never erased.
struct Registry::Scrape {
  std::map<std::string, std::pair<std::int64_t, bool>> scalars;  // -> (v, ctr)
  std::map<std::string, const serve::LatencyHistogram*> hists;
};

Registry::Scrape Registry::collect() const {
  std::vector<Collector> collectors;
  Scrape s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      s.scalars[name] = {c->value(), true};
    }
    for (const auto& [name, g] : gauges_) {
      s.scalars[name] = {g->value(), false};
    }
    for (const auto& [name, h] : hists_) s.hists[name] = h.get();
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  // Collectors run outside mu_: they may touch arbitrary subsystem locks
  // (the daemon's stats mutex), and a collector resolving a handle via
  // Registry::counter would deadlock under mu_.
  for (const auto& fn : collectors) {
    for (Sample& smp : fn()) {
      s.scalars[smp.name] = {smp.value, smp.is_counter};
    }
  }
  return s;
}

std::string Registry::prometheus_text() const {
  const Scrape s = collect();
  std::ostringstream out;
  // Scalars and histograms interleave in global name order so the page is
  // one sorted sequence (scrape-to-scrape byte-stable for fixed state).
  auto it_s = s.scalars.begin();
  auto it_h = s.hists.begin();
  while (it_s != s.scalars.end() || it_h != s.hists.end()) {
    const bool scalar_first =
        it_h == s.hists.end() ||
        (it_s != s.scalars.end() && it_s->first < it_h->first);
    if (scalar_first) {
      out << "# TYPE " << it_s->first
          << (it_s->second.second ? " counter\n" : " gauge\n");
      out << it_s->first << ' ' << it_s->second.first << '\n';
      ++it_s;
    } else {
      const std::string& name = it_h->first;
      const serve::LatencyHistogram& h = *it_h->second;
      out << "# TYPE " << name << " histogram\n";
      std::int64_t cumulative = 0;
      for (int b = 0; b < serve::LatencyHistogram::kBucketCount; ++b) {
        const std::int64_t n = h.bucket_count(b);
        if (n == 0) continue;
        cumulative += n;
        out << name << "_bucket{le=\""
            << serve::LatencyHistogram::bucket_upper_bound(b) << "\"} "
            << cumulative << '\n';
      }
      out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
      out << name << "_sum " << h.sum() << '\n';
      out << name << "_count " << h.count() << '\n';
      ++it_h;
    }
  }
  return out.str();
}

std::string Registry::json() const {
  const Scrape s = collect();
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, vc] : s.scalars) {
    if (!vc.second) continue;
    out << (first ? "" : ", ") << '"' << name << "\": " << vc.first;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, vc] : s.scalars) {
    if (vc.second) continue;
    out << (first ? "" : ", ") << '"' << name << "\": " << vc.first;
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.hists) {
    out << (first ? "" : ", ") << '"' << name << "\": " << h->stats_json();
    first = false;
  }
  out << "}}";
  return out.str();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : hists_) h->reset();
}

}  // namespace usne::obs
