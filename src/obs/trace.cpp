#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/timer.hpp"

namespace usne::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// One thread's ring. Written only by its owning thread; read by the
/// quiescent dump/reset paths.
struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t id)
      : events(capacity), tid(id) {}

  std::vector<TraceEvent> events;  // fixed capacity, slot = head % size
  std::uint64_t head = 0;          // total events ever written
  std::uint32_t tid = 0;
};

/// Global ring table. Rings are owned here (shared_ptr) so they outlive
/// their threads — a dump after a worker exits still sees its events.
struct RingTable {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::size_t capacity = 16384;
  std::uint32_t next_tid = 1;
};

RingTable& table() {
  static RingTable t;
  return t;
}

Ring& this_thread_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    RingTable& t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    auto r = std::make_shared<Ring>(t.capacity, t.next_tid++);
    t.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void push_event(const char* name, char phase) noexcept {
  Ring& r = this_thread_ring();
  TraceEvent& slot = r.events[static_cast<std::size_t>(
      r.head % static_cast<std::uint64_t>(r.events.size()))];
  slot.name = name;
  slot.ts_us = mono_now_us();
  slot.tid = r.tid;
  slot.phase = phase;
  ++r.head;
}

}  // namespace

void trace_set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void trace_begin(const char* name) noexcept {
  if (trace_enabled()) push_event(name, 'B');
}

void trace_end(const char* name) noexcept {
  if (trace_enabled()) push_event(name, 'E');
}

void trace_end_always(const char* name) noexcept { push_event(name, 'E'); }

void trace_instant(const char* name) noexcept {
  if (trace_enabled()) push_event(name, 'i');
}

void trace_set_ring_capacity(std::size_t events) {
  RingTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.capacity = std::max<std::size_t>(1, events);
}

std::size_t trace_retained_events() {
  RingTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  std::size_t total = 0;
  for (const auto& r : t.rings) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(r->head, r->events.size()));
  }
  return total;
}

std::int64_t trace_dropped_events() {
  RingTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  std::int64_t dropped = 0;
  for (const auto& r : t.rings) {
    if (r->head > r->events.size()) {
      dropped += static_cast<std::int64_t>(r->head - r->events.size());
    }
  }
  return dropped;
}

std::string trace_dump_chrome_json() {
  std::vector<TraceEvent> all;
  {
    RingTable& t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    for (const auto& r : t.rings) {
      const std::uint64_t cap = r->events.size();
      const std::uint64_t kept = std::min<std::uint64_t>(r->head, cap);
      // Oldest retained event first: the ring wrapped iff head > cap, in
      // which case slot head % cap is the oldest.
      const std::uint64_t start = r->head > cap ? r->head % cap : 0;
      for (std::uint64_t i = 0; i < kept; ++i) {
        all.push_back(
            r->events[static_cast<std::size_t>((start + i) % cap)]);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : all) {
    out << (first ? "" : ", ") << "{\"name\": \"" << e.name
        << "\", \"ph\": \"" << e.phase << "\", \"ts\": " << e.ts_us
        << ", \"pid\": 1, \"tid\": " << e.tid << "}";
    first = false;
  }
  out << "]}";
  return out.str();
}

void trace_reset() {
  RingTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  for (auto& r : t.rings) r->head = 0;
}

}  // namespace usne::obs
