#pragma once

// Process-global metrics registry: named counters, gauges and log-bucket
// histograms, exported as JSON and as the Prometheus text exposition
// format.
//
// Design goals, in order:
//
//   1. Hot paths touch pre-resolved handles, never the registry. A
//      subsystem resolves `obs::Counter&` / `obs::Gauge&` /
//      `serve::LatencyHistogram&` once at setup (registry lookup under a
//      mutex) and then increments a relaxed atomic — the same cost as the
//      hand-rolled counters the daemon already had. Handles stay valid for
//      the life of the process (the registry never erases a series).
//   2. Subsystems that already own their counters do not double-count.
//      net::Server's ServerStats and the QueryEngine cache keep their
//      existing atomics; they register a *collector* — a callback run at
//      scrape time that snapshots those atomics into named samples. The
//      metrics page is therefore exactly as consistent as the underlying
//      ledger it mirrors (check.sh reconciles the daemon page against the
//      `daemon` invariant ledger at quiescence).
//   3. Deterministic output: series are emitted in sorted name order, so
//      two scrapes of the same state are byte-identical.
//
// Naming schema (enforced): `usne_<layer>_<name>` — e.g.
// `usne_net_accepted_total`, `usne_serve_slow_queries_total`,
// `usne_congest_rounds_total`. Counters end in `_total`; histograms are fed
// microseconds and end in `_us`. Names must match
// [a-zA-Z_][a-zA-Z0-9_]* (the Prometheus charset, no labels).
//
// Histograms reuse serve::LatencyHistogram — the serving stack's lock-free
// HdrHistogram-lite — and are exported as genuine Prometheus histograms:
// cumulative `_bucket{le="..."}` series (non-empty buckets only, plus
// +Inf), `_sum` and `_count`.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/latency_histogram.hpp"

namespace usne::obs {

/// Monotonically increasing counter. add() is a relaxed atomic increment —
/// any thread, no locks.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, in-flight counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One scrape-time sample produced by a collector callback.
struct Sample {
  std::string name;        ///< full metric name (usne_<layer>_<name>)
  std::int64_t value = 0;  ///< sampled value
  bool is_counter = true;  ///< Prometheus TYPE: counter vs gauge
};

/// The registry. One process-global instance (global()); tests may hold
/// private instances. Series are created on first use and never erased, so
/// returned references are stable handles safe to cache on hot paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry every subsystem registers into.
  static Registry& global();

  /// Resolves (creating on first use) the named series. Throws
  /// std::invalid_argument on a malformed name or when the name is already
  /// registered as a different series type.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  serve::LatencyHistogram& histogram(const std::string& name);

  /// A collector snapshots externally-owned state into samples at scrape
  /// time. Returns an id for remove_collector (needed by owners whose
  /// lifetime is shorter than the process — net::Server deregisters in its
  /// destructor).
  using Collector = std::function<std::vector<Sample>()>;
  std::size_t add_collector(Collector fn);
  void remove_collector(std::size_t id);

  /// Prometheus text exposition (version 0.0.4): HELP-less `# TYPE` +
  /// sample lines, series sorted by name, collector samples merged in.
  std::string prometheus_text() const;

  /// One-line JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, max_us, mean_us, p50_us, ...}}}, all keys
  /// sorted. Collector samples fold into counters/gauges by type.
  std::string json() const;

  /// Zeroes every owned counter/gauge/histogram (collectors are untouched —
  /// they mirror external state). Test support.
  void reset_values();

 private:
  struct Scrape;  // collected snapshot, built under mu_
  Scrape collect() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<serve::LatencyHistogram>> hists_;
  std::map<std::size_t, Collector> collectors_;
  std::size_t next_collector_id_ = 0;
};

/// Convenience: pre-resolved handles into the global registry.
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline serve::LatencyHistogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace usne::obs
