#pragma once

// Immutable unweighted undirected graph in compressed-sparse-row form, plus
// a builder that normalizes arbitrary edge lists (dedup, self-loop removal).
//
// This is the substrate every algorithm in the repository runs on: the input
// graph G = (V, E) of the paper.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace usne {

/// Vertex identifier. Vertices are always [0, n).
using Vertex = std::int32_t;

/// Distances in G (hop counts) and in emulators (weighted). 64-bit because
/// emulator edge weights are sums of graph distances and the stretch
/// recurrences produce large thresholds.
using Dist = std::int64_t;

/// Sentinel for "unreachable".
inline constexpr Dist kInfDist = INT64_MAX / 4;

/// Undirected edge with u <= v after normalization.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable CSR graph. Construct via GraphBuilder or from_edges().
class Graph {
 public:
  Graph() = default;

  /// Builds from a normalized, deduplicated edge list. Typically reached via
  /// GraphBuilder; asserts normalization in debug builds.
  Graph(Vertex n, std::vector<Edge> edges);

  Vertex num_vertices() const noexcept { return n_; }
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Neighbors of v, sorted ascending.
  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::int64_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Offset of v's adjacency run in the underlying CSR storage; valid for
  /// v in [0, n] (csr_offset(n) == 2|E|). Directed-edge slot arithmetic
  /// (e.g. the CONGEST per-edge cap) builds on this instead of poking at
  /// span data pointers, which is undefined on an empty graph and fragile
  /// against storage changes.
  std::int64_t csr_offset(Vertex v) const noexcept { return offsets_[v]; }

  std::int64_t max_degree() const noexcept { return max_degree_; }

  /// The normalized (u <= v), sorted edge list.
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// True if (u, v) is an edge. O(log deg(u)).
  bool has_edge(Vertex u, Vertex v) const noexcept;

 private:
  Vertex n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::int64_t> offsets_;  // size n_+1
  std::vector<Vertex> adjacency_;      // size 2|E|
  std::int64_t max_degree_ = 0;
};

/// Incremental edge-list accumulator. Normalizes on build():
///  * drops self loops,
///  * deduplicates parallel edges,
///  * orients every edge as u <= v and sorts.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex n) : n_(n) {}

  /// Adds an undirected edge; out-of-range endpoints are rejected (returns
  /// false) rather than silently clamped.
  bool add_edge(Vertex u, Vertex v);

  Vertex num_vertices() const noexcept { return n_; }
  std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Finalizes into an immutable Graph. The builder may be reused afterwards
  /// (it keeps its edges).
  Graph build() const;

 private:
  Vertex n_;
  std::vector<Edge> edges_;
};

}  // namespace usne
