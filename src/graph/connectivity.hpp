#pragma once

// Connectivity helpers: component labelling and spanning forests.
//
// The paper's [EP01] baseline uses a "ground partition" whose spanning
// forest contributes up to n-1 extra emulator edges; we need spanning
// forests to reproduce that baseline faithfully.

#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Labels connected components; returns component id per vertex (ids are
/// dense, assigned in order of the smallest vertex in the component).
std::vector<Vertex> connected_components(const Graph& g);

/// Number of connected components.
Vertex num_components(const Graph& g);

/// BFS spanning forest: one tree per component, rooted at its smallest
/// vertex. Returned as a list of tree edges.
std::vector<Edge> spanning_forest(const Graph& g);

}  // namespace usne
