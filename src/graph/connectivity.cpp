#include "graph/connectivity.hpp"

#include <vector>

namespace usne {

std::vector<Vertex> connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> component(static_cast<std::size_t>(n), -1);
  std::vector<Vertex> queue;
  Vertex next_id = 0;
  for (Vertex start = 0; start < n; ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    component[static_cast<std::size_t>(start)] = next_id;
    queue.assign(1, start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const Vertex u : g.neighbors(queue[head])) {
        if (component[static_cast<std::size_t>(u)] == -1) {
          component[static_cast<std::size_t>(u)] = next_id;
          queue.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

Vertex num_components(const Graph& g) {
  const auto comp = connected_components(g);
  Vertex max_id = -1;
  for (const Vertex c : comp) max_id = std::max(max_id, c);
  return max_id + 1;
}

std::vector<Edge> spanning_forest(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<Edge> forest;
  std::vector<Vertex> queue;
  for (Vertex start = 0; start < n; ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = true;
    queue.assign(1, start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (const Vertex u : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          forest.push_back({std::min(u, v), std::max(u, v)});
          queue.push_back(u);
        }
      }
    }
  }
  return forest;
}

}  // namespace usne
