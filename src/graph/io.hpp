#pragma once

// Edge-list serialization for graphs and emulators.
//
// Format: first line "n m" (or "n m weighted"), then one edge per line
// ("u v" or "u v w"). Lines starting with '#' are comments.

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

void write_graph(std::ostream& os, const Graph& g);
void write_weighted_graph(std::ostream& os, const WeightedGraph& g);

/// Returns nullopt on malformed input (negative ids, bad header, ...).
std::optional<Graph> read_graph(std::istream& is);
std::optional<WeightedGraph> read_weighted_graph(std::istream& is);

/// Convenience file wrappers. Return false / nullopt on I/O failure.
bool save_graph(const std::string& path, const Graph& g);
std::optional<Graph> load_graph(const std::string& path);

}  // namespace usne
