#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "graph/stream_gen.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

std::uint64_t pair_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

std::int64_t max_edges(Vertex n) {
  return static_cast<std::int64_t>(n) * (n - 1) / 2;
}

}  // namespace

Graph gen_gnm(Vertex n, std::int64_t m, std::uint64_t seed) {
  m = std::min(m, max_edges(n));
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(static_cast<std::size_t>(m) * 2);
  while (static_cast<std::int64_t>(used.size()) < m) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (used.insert(pair_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph gen_connected_gnm(Vertex n, std::int64_t m, std::uint64_t seed) {
  m = std::min(std::max<std::int64_t>(m, n - 1), max_edges(n));
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(static_cast<std::size_t>(m) * 2);

  // Random spanning path: a uniform permutation chained together.
  std::vector<Vertex> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  for (Vertex i = 0; i + 1 < n; ++i) {
    builder.add_edge(perm[static_cast<std::size_t>(i)],
                     perm[static_cast<std::size_t>(i) + 1]);
    used.insert(pair_key(perm[static_cast<std::size_t>(i)],
                         perm[static_cast<std::size_t>(i) + 1]));
  }
  while (static_cast<std::int64_t>(used.size()) < m) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (used.insert(pair_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph gen_random_regular(Vertex n, int d, std::uint64_t seed) {
  assert(d >= 1);
  Rng rng(seed);
  // Configuration model: d stubs per vertex, random perfect matching on
  // stubs; self-loops and duplicates silently dropped by the builder.
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (Vertex v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.below(i)]);
  }
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    builder.add_edge(stubs[i], stubs[i + 1]);
  }
  return builder.build();
}

Graph gen_grid(Vertex rows, Vertex cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph gen_torus(Vertex rows, Vertex cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return builder.build();
}

Graph gen_hypercube(int dims) {
  assert(dims >= 0 && dims < 26);
  const Vertex n = static_cast<Vertex>(1) << dims;
  GraphBuilder builder(n);
  for (Vertex v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      const Vertex u = v ^ (static_cast<Vertex>(1) << b);
      if (v < u) builder.add_edge(v, u);
    }
  }
  return builder.build();
}

Graph gen_path(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

Graph gen_cycle(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  if (n >= 3) builder.add_edge(n - 1, 0);
  return builder.build();
}

Graph gen_star(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

Graph gen_complete(Vertex n) {
  GraphBuilder builder(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph gen_tree(Vertex n, int arity) {
  assert(arity >= 1);
  GraphBuilder builder(n);
  for (Vertex v = 1; v < n; ++v) builder.add_edge(v, (v - 1) / arity);
  return builder.build();
}

Graph gen_barabasi_albert(Vertex n, int attach, std::uint64_t seed) {
  assert(attach >= 1);
  Rng rng(seed);
  GraphBuilder builder(n);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is degree-proportional sampling.
  std::vector<Vertex> targets;
  const Vertex seed_size = static_cast<Vertex>(std::min<std::int64_t>(attach + 1, n));
  for (Vertex u = 0; u < seed_size; ++u) {
    for (Vertex v = u + 1; v < seed_size; ++v) {
      builder.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (Vertex v = seed_size; v < n; ++v) {
    std::unordered_set<Vertex> chosen;
    while (static_cast<int>(chosen.size()) < attach && !targets.empty()) {
      const Vertex t = targets[rng.below(targets.size())];
      if (t != v) chosen.insert(t);
    }
    // Insert in sorted order, not unordered_set iteration order: the order
    // feeds both the edge list and the `targets` pool future draws index
    // into, so it must not depend on the standard library's hash layout.
    std::vector<Vertex> picks(chosen.begin(), chosen.end());
    std::sort(picks.begin(), picks.end());
    for (const Vertex t : picks) {
      builder.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return builder.build();
}

Graph gen_watts_strogatz(Vertex n, int k, double rewire_p, std::uint64_t seed) {
  assert(k >= 2);
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> used;
  for (Vertex v = 0; v < n; ++v) {
    for (int j = 1; j <= k / 2; ++j) {
      Vertex u = static_cast<Vertex>((v + j) % n);
      if (rng.chance(rewire_p)) {
        // Rewire to a uniform non-self target not already used.
        for (int attempt = 0; attempt < 16; ++attempt) {
          const Vertex cand =
              static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
          if (cand != v && used.find(pair_key(v, cand)) == used.end()) {
            u = cand;
            break;
          }
        }
      }
      if (u != v && used.insert(pair_key(v, u)).second) builder.add_edge(v, u);
    }
  }
  return builder.build();
}

Graph gen_caveman(Vertex cliques, Vertex clique_size) {
  const Vertex n = cliques * clique_size;
  GraphBuilder builder(n);
  for (Vertex c = 0; c < cliques; ++c) {
    const Vertex base = c * clique_size;
    for (Vertex i = 0; i < clique_size; ++i) {
      for (Vertex j = i + 1; j < clique_size; ++j) {
        builder.add_edge(base + i, base + j);
      }
    }
    // Link this clique's last vertex to the next clique's first vertex.
    if (cliques > 1) {
      const Vertex next_base = ((c + 1) % cliques) * clique_size;
      builder.add_edge(base + clique_size - 1, next_base);
    }
  }
  return builder.build();
}

Graph gen_dumbbell(Vertex clique_size, Vertex bridge) {
  const Vertex n = 2 * clique_size + bridge;
  GraphBuilder builder(n);
  for (Vertex i = 0; i < clique_size; ++i) {
    for (Vertex j = i + 1; j < clique_size; ++j) {
      builder.add_edge(i, j);
      builder.add_edge(clique_size + bridge + i, clique_size + bridge + j);
    }
  }
  Vertex prev = clique_size - 1;
  for (Vertex b = 0; b < bridge; ++b) {
    builder.add_edge(prev, clique_size + b);
    prev = clique_size + b;
  }
  builder.add_edge(prev, clique_size + bridge);  // into second clique
  return builder.build();
}

Graph gen_family(const std::string& family, Vertex n, std::uint64_t seed) {
  if (family == "er") return gen_connected_gnm(n, 4 * static_cast<std::int64_t>(n), seed);
  if (family == "er_sparse") return gen_gnm(n, 2 * static_cast<std::int64_t>(n), seed);
  if (family == "ba") return gen_barabasi_albert(n, 3, seed);
  if (family == "grid") {
    const Vertex side = std::max<Vertex>(2, static_cast<Vertex>(std::lround(std::sqrt(n))));
    return gen_grid(side, side);
  }
  if (family == "torus") {
    const Vertex side = std::max<Vertex>(3, static_cast<Vertex>(std::lround(std::sqrt(n))));
    return gen_torus(side, side);
  }
  if (family == "hypercube") {
    int dims = 0;
    while ((static_cast<Vertex>(1) << (dims + 1)) <= n) ++dims;
    return gen_hypercube(dims);
  }
  if (family == "path") return gen_path(n);
  if (family == "cycle") return gen_cycle(n);
  if (family == "star") return gen_star(n);
  if (family == "tree") return gen_tree(n, 2);
  if (family == "ws") return gen_watts_strogatz(n, 6, 0.1, seed);
  if (family == "caveman") {
    const Vertex size = 8;
    return gen_caveman(std::max<Vertex>(1, n / size), size);
  }
  if (family == "dumbbell") {
    const Vertex k = std::max<Vertex>(3, n / 3);
    return gen_dumbbell(k, std::max<Vertex>(1, n - 2 * k));
  }
  if (family == "regular") return gen_random_regular(n, 4, seed);
  if (family == "rmat") {
    // Power-of-two vertex count like hypercube; ~8 undirected edges per
    // vertex (the Graph500 edge factor after dedup).
    int scale = 0;
    while ((static_cast<Vertex>(1) << (scale + 1)) <= n) ++scale;
    return stream_rmat(scale, 8 * (static_cast<std::int64_t>(1) << scale),
                       seed);
  }
  if (family == "complete") return gen_complete(std::min<Vertex>(n, 64));
  assert(false && "unknown graph family");
  return Graph();
}

const std::vector<std::string>& all_families() {
  static const std::vector<std::string> families = {
      "er",   "ba",     "grid",    "torus",    "hypercube", "path", "cycle",
      "star", "tree",   "ws",      "caveman",  "dumbbell",  "regular",
      "rmat"};
  return families;
}

}  // namespace usne
