#pragma once

// Streamed graph generators for the million-vertex scale tier (E10).
//
// The classic generators (graph/generators.hpp) keep an unordered_set of
// edge keys next to a GraphBuilder edge list and then let build() sort a
// *copy* — roughly 70 bytes per edge at peak, three materializations of the
// edge set. At n >= 10^6 that wall, not the algorithms, is what limits
// experiment size.
//
// These generators produce the same kind of graphs with one edge array and
// one CSR, never materializing adjacency twice:
//
//  * candidates are drawn in bounded chunks, appended to the (sorted,
//    unique) accumulated prefix, sorted, merged in place and deduplicated —
//    no hash set, no builder copy;
//  * the loop tops up until *exactly* m unique edges exist (no truncation
//    bias: a graph never silently ships fewer edges than asked);
//  * the final Graph is constructed straight from the sorted-unique edge
//    list, so the CSR is built exactly once.
//
// Peak generator-owned memory is ~sizeof(Edge) per edge plus the chunk
// buffer; StreamGenReport accounts it so the scale bench can assert the
// bytes-per-edge budget instead of guessing from RSS alone.
//
// Determinism: same (n, m, seed) => same graph, independent of chunk size
// internals. These are distinct families from gen_gnm et al. (the draw
// order differs), so they do not replace the classic generators where a
// historical seed matters.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace usne {

/// Memory/work accounting of one streamed generation.
struct StreamGenReport {
  std::int64_t edges = 0;       ///< unique edges in the returned graph
  std::int64_t candidates = 0;  ///< random endpoint pairs drawn (incl. dups)
  std::int64_t rounds = 0;      ///< top-up sort/merge/unique rounds
  /// High-water mark of generator-owned buffers (edge array capacity plus
  /// any scaffolding like the spanning permutation), in bytes. Excludes
  /// the returned Graph's own CSR.
  std::int64_t peak_bytes = 0;
  /// peak_bytes / edges — the number the scale tier budgets against.
  double bytes_per_edge = 0;

  /// One-line JSON (sorted keys) embedded in BENCH_scale.json rows.
  std::string stats_json() const;
};

/// Streamed Erdős–Rényi G(n, m): exactly min(m, n(n-1)/2) distinct uniform
/// edges.
Graph stream_gnm(Vertex n, std::int64_t m, std::uint64_t seed,
                 StreamGenReport* report = nullptr);

/// Streamed connected G(n, m): a uniformly random spanning path first, then
/// uniform top-up to exactly m edges (m is clamped to [n-1, n(n-1)/2]).
/// The scale tier's default workload — distances all finite.
Graph stream_connected_gnm(Vertex n, std::int64_t m, std::uint64_t seed,
                           StreamGenReport* report = nullptr);

/// Streamed R-MAT (Graph500/GAPBS lineage, quadrant probabilities
/// a=0.57 b=0.19 c=0.19 d=0.05) on 2^scale vertices with exactly m unique
/// edges. R-MAT re-draws collide heavily on the hot quadrant, so candidate
/// draws are capped at 64 * m; in the (pathological) case the cap is hit,
/// the remainder tops up with uniform edges — still exactly m, still
/// deterministic.
Graph stream_rmat(int scale, std::int64_t m, std::uint64_t seed,
                  StreamGenReport* report = nullptr);

}  // namespace usne
