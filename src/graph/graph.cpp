#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace usne {

Graph::Graph(Vertex n, std::vector<Edge> edges)
    : n_(n), edges_(std::move(edges)), offsets_(static_cast<std::size_t>(n) + 1, 0) {
  assert(n >= 0);
  adjacency_.resize(edges_.size() * 2);

  // Count degrees.
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n), 0);
  for (const Edge& e : edges_) {
    assert(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u < e.v);
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  for (Vertex v = 0; v < n; ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + degree[static_cast<std::size_t>(v)];
    max_degree_ = std::max(max_degree_, degree[static_cast<std::size_t>(v)]);
  }

  // Fill adjacency.
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  for (Vertex v = 0; v < n; ++v) {
    auto begin = adjacency_.begin() + offsets_[static_cast<std::size_t>(v)];
    auto end = adjacency_.begin() + offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(begin, end);
  }
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_ || u == v) return false;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  return true;
}

Graph GraphBuilder::build() const {
  std::vector<Edge> normalized = edges_;
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());
  return Graph(n_, std::move(normalized));
}

}  // namespace usne
