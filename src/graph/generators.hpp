#pragma once

// Synthetic graph generators: the workload library for every experiment.
//
// All generators are deterministic given a seed; unweighted and undirected.
// Families cover the spectrum the emulator literature cares about: sparse
// random (ER), heavy-tailed (Barabási–Albert), high-girth lattices (grid /
// torus / hypercube), trees, small-world, and pathological shapes (star —
// the order-dependence example of paper §2.1.1 — dumbbell, caveman).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges (or the maximum
/// possible if m exceeds it).
Graph gen_gnm(Vertex n, std::int64_t m, std::uint64_t seed);

/// Erdős–Rényi G(n, m) post-processed to be connected: a uniformly random
/// spanning path is laid down first, remaining edges drawn uniformly.
/// Convenient for stretch experiments (distances all finite).
Graph gen_connected_gnm(Vertex n, std::int64_t m, std::uint64_t seed);

/// Random d-regular-ish multigraph via configuration model; collisions and
/// loops dropped, so degrees are <= d but concentrated at d.
Graph gen_random_regular(Vertex n, int d, std::uint64_t seed);

/// 2D grid, rows x cols vertices.
Graph gen_grid(Vertex rows, Vertex cols);

/// 2D torus (grid with wraparound), rows x cols vertices.
Graph gen_torus(Vertex rows, Vertex cols);

/// Hypercube on 2^dims vertices.
Graph gen_hypercube(int dims);

/// Path on n vertices.
Graph gen_path(Vertex n);

/// Cycle on n vertices.
Graph gen_cycle(Vertex n);

/// Star: center 0 connected to all others (paper §2.1.1 example).
Graph gen_star(Vertex n);

/// Complete graph on n vertices.
Graph gen_complete(Vertex n);

/// Balanced b-ary tree on n vertices (vertex i's parent is (i-1)/b).
Graph gen_tree(Vertex n, int arity);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices proportionally to degree.
Graph gen_barabasi_albert(Vertex n, int attach, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k/2 neighbours each side,
/// each edge rewired with probability p.
Graph gen_watts_strogatz(Vertex n, int k, double rewire_p, std::uint64_t seed);

/// Connected caveman: `cliques` cliques of `clique_size` vertices linked in
/// a ring. Dense local clusters — stresses the superclustering machinery.
Graph gen_caveman(Vertex cliques, Vertex clique_size);

/// Dumbbell: two cliques of size k joined by a path of length `bridge`.
Graph gen_dumbbell(Vertex clique_size, Vertex bridge);

/// Named-family dispatcher used by parameterized tests and benches.
/// Families: er, ba, grid, torus, hypercube, path, cycle, star, tree,
/// ws, caveman, dumbbell, regular, complete.
/// `n` is a target size; the generator may round (e.g. grids use sqrt).
Graph gen_family(const std::string& family, Vertex n, std::uint64_t seed);

/// All family names gen_family accepts.
const std::vector<std::string>& all_families();

}  // namespace usne
