#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace usne {
namespace {

bool read_header(std::istream& is, std::int64_t& n, std::int64_t& m,
                 bool& weighted) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> n >> m)) return false;
    weighted = static_cast<bool>(ls >> tag) && tag == "weighted";
    return n >= 0 && m >= 0;
  }
  return false;
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

void write_weighted_graph(std::ostream& os, const WeightedGraph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << " weighted\n";
  for (const WeightedEdge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

std::optional<Graph> read_graph(std::istream& is) {
  std::int64_t n = 0;
  std::int64_t m = 0;
  bool weighted = false;
  if (!read_header(is, n, m, weighted) || weighted) return std::nullopt;
  if (n > INT32_MAX) return std::nullopt;
  GraphBuilder builder(static_cast<Vertex>(n));
  std::string line;
  std::int64_t seen = 0;
  while (seen < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!(ls >> u >> v)) return std::nullopt;
    if (u < 0 || v < 0 || u >= n || v >= n) return std::nullopt;
    builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    ++seen;
  }
  if (seen != m) return std::nullopt;
  return builder.build();
}

std::optional<WeightedGraph> read_weighted_graph(std::istream& is) {
  std::int64_t n = 0;
  std::int64_t m = 0;
  bool weighted = false;
  if (!read_header(is, n, m, weighted) || !weighted) return std::nullopt;
  if (n > INT32_MAX) return std::nullopt;
  WeightedGraph g(static_cast<Vertex>(n));
  std::string line;
  std::int64_t seen = 0;
  while (seen < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::int64_t u = 0;
    std::int64_t v = 0;
    Dist w = 0;
    if (!(ls >> u >> v >> w)) return std::nullopt;
    if (u < 0 || v < 0 || u >= n || v >= n || w <= 0) return std::nullopt;
    g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v), w);
    ++seen;
  }
  if (seen != m) return std::nullopt;
  return g;
}

bool save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) return false;
  write_graph(os, g);
  return static_cast<bool>(os);
}

std::optional<Graph> load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return read_graph(is);
}

}  // namespace usne
