#pragma once

// Weighted undirected graph used to represent emulators H.
//
// An emulator is a weighted graph on the same vertex set as G whose edge
// weights are (at least) graph distances. Construction algorithms may try to
// insert the same pair twice (e.g. both endpoints were interconnected in
// different phases); insertion keeps the minimum weight, which can only make
// the emulator better and never violates d_H >= d_G.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Weighted undirected edge (u <= v after normalization).
struct WeightedEdge {
  Vertex u = 0;
  Vertex v = 0;
  Dist w = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Mutable weighted graph with min-weight edge deduplication and an
/// on-demand CSR adjacency for shortest-path queries.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(Vertex n) : n_(n) {}

  Vertex num_vertices() const noexcept { return n_; }
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Inserts (u, v, w); keeps the smaller weight if the pair exists.
  /// Self-loops and out-of-range endpoints are rejected (returns false).
  /// Weights must be positive.
  bool add_edge(Vertex u, Vertex v, Dist w);

  /// All edges, normalized u <= v, in insertion order of first occurrence.
  const std::vector<WeightedEdge>& edges() const noexcept { return edges_; }

  /// Weight of edge (u,v) or kInfDist when absent. May build the lazy
  /// per-edge index on first call after from_edges.
  Dist edge_weight(Vertex u, Vertex v) const;

  /// Neighbor list entry for adjacency(): target vertex + weight.
  struct Arc {
    Vertex to = 0;
    Dist w = 0;
  };

  /// Non-owning view over the packed CSR adjacency: one contiguous `arcs`
  /// array indexed by `offsets` runs. The shortest-path kernels
  /// (path/sssp_kernel.hpp) iterate this flat layout directly — no
  /// per-vertex accessor call, no lazy-rebuild branch, and the next run's
  /// arcs are prefetchable — instead of calling adjacency(v) per vertex.
  /// Invalidated by add_edge, like adjacency().
  struct Csr {
    Vertex n = 0;
    const std::int64_t* offsets = nullptr;  // n + 1 entries
    const Arc* arcs = nullptr;              // offsets[n] entries (= 2|E|)

    std::int64_t num_arcs() const noexcept { return n == 0 ? 0 : offsets[n]; }
    std::span<const Arc> row(Vertex v) const noexcept {
      return {arcs + offsets[v], arcs + offsets[v + 1]};
    }
    std::int64_t degree(Vertex v) const noexcept {
      return offsets[v + 1] - offsets[v];
    }
  };

  /// Builds (once, lazily) and returns the adjacency of v. Invalidated by
  /// add_edge; rebuilt on next access.
  std::span<const Arc> adjacency(Vertex v) const;

  /// Builds (once, lazily) the packed CSR and returns a view over it.
  Csr csr() const;

  /// Bulk construction from an already-normalized edge list: every edge
  /// u < v, no duplicates, positive weights. Skips the per-edge hash index
  /// entirely (built lazily only if add_edge / edge_weight is called
  /// later), so a million-edge graph costs ~sizeof(WeightedEdge) per edge
  /// plus the CSR — the path the streamed generators and the scale bench
  /// use. Throws std::invalid_argument on a malformed list.
  static WeightedGraph from_edges(Vertex n, std::vector<WeightedEdge> edges);

  /// Bulk construction of the unit-weight view of an unweighted graph
  /// (every edge weight 1) via from_edges — serving G itself at scale.
  static WeightedGraph unit_weights(const Graph& g);

  /// Merges all edges of `other` into this graph (min-weight dedup).
  void merge(const WeightedGraph& other);

  /// Builds the CSR (if needed) and checks it with validate_csr through
  /// the kCsr invariant category: the default fail handler throws
  /// inv::InvariantViolation on a corrupt structure.
  void validate() const;

 private:
  static std::uint64_t key(Vertex u, Vertex v) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }
  void ensure_adjacency() const;
  void ensure_index() const;

  Vertex n_ = 0;
  std::vector<WeightedEdge> edges_;

  // key -> edges_ pos. Built eagerly by add_edge, lazily (on first
  // add_edge/edge_weight) for from_edges graphs.
  mutable std::unordered_map<std::uint64_t, std::size_t> index_;
  mutable bool index_valid_ = true;  // empty graph: trivially valid

  // Lazy CSR adjacency cache.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::int64_t> offsets_;
  mutable std::vector<Arc> arcs_;
};

/// Structural validator of a Csr view: offsets start at 0 and are
/// non-decreasing, every arc targets a distinct in-range vertex with a
/// positive weight, and the adjacency is symmetric — every arc (u, v, w)
/// has a matching (v, u, w). Returns false and fills `error` (when given)
/// with the first violation found. O(arcs log arcs) — meant for audits and
/// tests, not per-query paths. usne::build runs it over every constructed
/// H when invariant audits are enabled.
bool validate_csr(const WeightedGraph::Csr& g, std::string* error = nullptr);

}  // namespace usne
