#pragma once

// Weighted undirected graph used to represent emulators H.
//
// An emulator is a weighted graph on the same vertex set as G whose edge
// weights are (at least) graph distances. Construction algorithms may try to
// insert the same pair twice (e.g. both endpoints were interconnected in
// different phases); insertion keeps the minimum weight, which can only make
// the emulator better and never violates d_H >= d_G.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Weighted undirected edge (u <= v after normalization).
struct WeightedEdge {
  Vertex u = 0;
  Vertex v = 0;
  Dist w = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Mutable weighted graph with min-weight edge deduplication and an
/// on-demand CSR adjacency for shortest-path queries.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(Vertex n) : n_(n) {}

  Vertex num_vertices() const noexcept { return n_; }
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Inserts (u, v, w); keeps the smaller weight if the pair exists.
  /// Self-loops and out-of-range endpoints are rejected (returns false).
  /// Weights must be positive.
  bool add_edge(Vertex u, Vertex v, Dist w);

  /// All edges, normalized u <= v, in insertion order of first occurrence.
  const std::vector<WeightedEdge>& edges() const noexcept { return edges_; }

  /// Weight of edge (u,v) or kInfDist when absent.
  Dist edge_weight(Vertex u, Vertex v) const noexcept;

  /// Neighbor list entry for adjacency(): target vertex + weight.
  struct Arc {
    Vertex to = 0;
    Dist w = 0;
  };

  /// Builds (once, lazily) and returns the adjacency of v. Invalidated by
  /// add_edge; rebuilt on next access.
  std::span<const Arc> adjacency(Vertex v) const;

  /// Merges all edges of `other` into this graph (min-weight dedup).
  void merge(const WeightedGraph& other);

 private:
  static std::uint64_t key(Vertex u, Vertex v) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }
  void ensure_adjacency() const;

  Vertex n_ = 0;
  std::vector<WeightedEdge> edges_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> edges_ pos

  // Lazy CSR adjacency cache.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::int64_t> offsets_;
  mutable std::vector<Arc> arcs_;
};

}  // namespace usne
