#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <tuple>

#include "util/invariant.hpp"

namespace usne {

bool WeightedGraph::add_edge(Vertex u, Vertex v, Dist w) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_ || u == v || w <= 0) return false;
  if (u > v) std::swap(u, v);
  ensure_index();
  const std::uint64_t k = key(u, v);
  const auto [it, inserted] = index_.try_emplace(k, edges_.size());
  if (inserted) {
    edges_.push_back({u, v, w});
    adjacency_valid_ = false;
  } else if (w < edges_[it->second].w) {
    edges_[it->second].w = w;
    adjacency_valid_ = false;
  }
  return true;
}

Dist WeightedGraph::edge_weight(Vertex u, Vertex v) const {
  if (u > v) std::swap(u, v);
  ensure_index();
  const auto it = index_.find(key(u, v));
  return it == index_.end() ? kInfDist : edges_[it->second].w;
}

std::span<const WeightedGraph::Arc> WeightedGraph::adjacency(Vertex v) const {
  ensure_adjacency();
  return {arcs_.data() + offsets_[static_cast<std::size_t>(v)],
          arcs_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
}

WeightedGraph::Csr WeightedGraph::csr() const {
  ensure_adjacency();
  return {n_, offsets_.data(), arcs_.data()};
}

WeightedGraph WeightedGraph::from_edges(Vertex n,
                                        std::vector<WeightedEdge> edges) {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const WeightedEdge& e = edges[i];
    if (e.u < 0 || e.v >= n || e.u >= e.v || e.w <= 0) {
      throw std::invalid_argument(
          "WeightedGraph::from_edges: edge list not normalized");
    }
    if (i > 0 && edges[i - 1].u == e.u && edges[i - 1].v == e.v) {
      throw std::invalid_argument(
          "WeightedGraph::from_edges: duplicate edge");
    }
  }
  WeightedGraph h(n);
  h.edges_ = std::move(edges);
  h.index_valid_ = false;  // built on demand by add_edge / edge_weight
  return h;
}

WeightedGraph WeightedGraph::unit_weights(const Graph& g) {
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) edges.push_back({e.u, e.v, 1});
  return from_edges(g.num_vertices(), std::move(edges));
}

void WeightedGraph::ensure_index() const {
  if (index_valid_) return;
  index_.reserve(edges_.size() * 2);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    index_.emplace(key(edges_[i].u, edges_[i].v), i);
  }
  index_valid_ = true;
}

void WeightedGraph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const WeightedEdge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  arcs_.assign(edges_.size() * 2, {});
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const WeightedEdge& e : edges_) {
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = {e.v, e.w};
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = {e.u, e.w};
  }
  adjacency_valid_ = true;
}

void WeightedGraph::merge(const WeightedGraph& other) {
  assert(other.n_ <= n_);
  for (const WeightedEdge& e : other.edges_) add_edge(e.u, e.v, e.w);
}

void WeightedGraph::validate() const {
  std::string error;
  const bool ok = validate_csr(csr(), &error);
  USNE_CHECK(inv::Category::kCsr, ok, error);
}

bool validate_csr(const WeightedGraph::Csr& g, std::string* error) {
  const auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  if (g.n < 0) return fail("negative vertex count");
  if (g.n == 0) return true;  // empty view: trivially valid
  if (g.offsets == nullptr || (g.arcs == nullptr && g.offsets[g.n] != 0)) {
    return fail("null CSR storage");
  }
  if (g.offsets[0] != 0) {
    return fail("offsets[0] = " + std::to_string(g.offsets[0]) + ", not 0");
  }
  for (Vertex v = 0; v < g.n; ++v) {
    if (g.offsets[v] > g.offsets[v + 1]) {
      return fail("offsets decrease at vertex " + std::to_string(v));
    }
  }
  for (Vertex v = 0; v < g.n; ++v) {
    for (const auto& arc : g.row(v)) {
      if (arc.to < 0 || arc.to >= g.n) {
        return fail("arc (" + std::to_string(v) + " -> " +
                    std::to_string(arc.to) + ") targets out of range");
      }
      if (arc.to == v) return fail("self loop at vertex " + std::to_string(v));
      if (arc.w <= 0) {
        return fail("non-positive weight " + std::to_string(arc.w) +
                    " on arc (" + std::to_string(v) + " -> " +
                    std::to_string(arc.to) + ")");
      }
    }
  }
  // Symmetry: the multiset of directed arcs must equal its own transpose.
  // Rows are not target-sorted (they follow edge-list order), so compare
  // sorted (u, v, w) triples against sorted (v, u, w) triples.
  struct Triple {
    Vertex u, v;
    Dist w;
  };
  const auto triple_less = [](const Triple& a, const Triple& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  };
  const auto triple_eq = [](const Triple& a, const Triple& b) {
    return a.u == b.u && a.v == b.v && a.w == b.w;
  };
  const std::size_t arcs = static_cast<std::size_t>(g.num_arcs());
  std::vector<Triple> forward, reverse;
  forward.reserve(arcs);
  reverse.reserve(arcs);
  for (Vertex v = 0; v < g.n; ++v) {
    for (const auto& arc : g.row(v)) {
      forward.push_back({v, arc.to, arc.w});
      reverse.push_back({arc.to, v, arc.w});
    }
  }
  std::sort(forward.begin(), forward.end(), triple_less);
  std::sort(reverse.begin(), reverse.end(), triple_less);
  for (std::size_t i = 1; i < arcs; ++i) {
    if (forward[i].u == forward[i - 1].u && forward[i].v == forward[i - 1].v) {
      return fail("duplicate arc (" + std::to_string(forward[i].u) + " -> " +
                  std::to_string(forward[i].v) + ")");
    }
  }
  for (std::size_t i = 0; i < arcs; ++i) {
    if (!triple_eq(forward[i], reverse[i])) {
      return fail("asymmetric adjacency near arc (" +
                  std::to_string(forward[i].u) + " -> " +
                  std::to_string(forward[i].v) + ", w " +
                  std::to_string(forward[i].w) + ")");
    }
  }
  return true;
}

}  // namespace usne
