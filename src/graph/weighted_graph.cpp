#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cassert>

namespace usne {

bool WeightedGraph::add_edge(Vertex u, Vertex v, Dist w) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_ || u == v || w <= 0) return false;
  if (u > v) std::swap(u, v);
  const std::uint64_t k = key(u, v);
  const auto [it, inserted] = index_.try_emplace(k, edges_.size());
  if (inserted) {
    edges_.push_back({u, v, w});
    adjacency_valid_ = false;
  } else if (w < edges_[it->second].w) {
    edges_[it->second].w = w;
    adjacency_valid_ = false;
  }
  return true;
}

Dist WeightedGraph::edge_weight(Vertex u, Vertex v) const noexcept {
  if (u > v) std::swap(u, v);
  const auto it = index_.find(key(u, v));
  return it == index_.end() ? kInfDist : edges_[it->second].w;
}

std::span<const WeightedGraph::Arc> WeightedGraph::adjacency(Vertex v) const {
  ensure_adjacency();
  return {arcs_.data() + offsets_[static_cast<std::size_t>(v)],
          arcs_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
}

void WeightedGraph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const WeightedEdge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  arcs_.assign(edges_.size() * 2, {});
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const WeightedEdge& e : edges_) {
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = {e.v, e.w};
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = {e.u, e.w};
  }
  adjacency_valid_ = true;
}

void WeightedGraph::merge(const WeightedGraph& other) {
  assert(other.n_ <= n_);
  for (const WeightedEdge& e : other.edges_) add_edge(e.u, e.v, e.w);
}

}  // namespace usne
