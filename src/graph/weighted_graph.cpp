#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace usne {

bool WeightedGraph::add_edge(Vertex u, Vertex v, Dist w) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_ || u == v || w <= 0) return false;
  if (u > v) std::swap(u, v);
  ensure_index();
  const std::uint64_t k = key(u, v);
  const auto [it, inserted] = index_.try_emplace(k, edges_.size());
  if (inserted) {
    edges_.push_back({u, v, w});
    adjacency_valid_ = false;
  } else if (w < edges_[it->second].w) {
    edges_[it->second].w = w;
    adjacency_valid_ = false;
  }
  return true;
}

Dist WeightedGraph::edge_weight(Vertex u, Vertex v) const {
  if (u > v) std::swap(u, v);
  ensure_index();
  const auto it = index_.find(key(u, v));
  return it == index_.end() ? kInfDist : edges_[it->second].w;
}

std::span<const WeightedGraph::Arc> WeightedGraph::adjacency(Vertex v) const {
  ensure_adjacency();
  return {arcs_.data() + offsets_[static_cast<std::size_t>(v)],
          arcs_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
}

WeightedGraph::Csr WeightedGraph::csr() const {
  ensure_adjacency();
  return {n_, offsets_.data(), arcs_.data()};
}

WeightedGraph WeightedGraph::from_edges(Vertex n,
                                        std::vector<WeightedEdge> edges) {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const WeightedEdge& e = edges[i];
    if (e.u < 0 || e.v >= n || e.u >= e.v || e.w <= 0) {
      throw std::invalid_argument(
          "WeightedGraph::from_edges: edge list not normalized");
    }
    if (i > 0 && edges[i - 1].u == e.u && edges[i - 1].v == e.v) {
      throw std::invalid_argument(
          "WeightedGraph::from_edges: duplicate edge");
    }
  }
  WeightedGraph h(n);
  h.edges_ = std::move(edges);
  h.index_valid_ = false;  // built on demand by add_edge / edge_weight
  return h;
}

WeightedGraph WeightedGraph::unit_weights(const Graph& g) {
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) edges.push_back({e.u, e.v, 1});
  return from_edges(g.num_vertices(), std::move(edges));
}

void WeightedGraph::ensure_index() const {
  if (index_valid_) return;
  index_.reserve(edges_.size() * 2);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    index_.emplace(key(edges_[i].u, edges_[i].v), i);
  }
  index_valid_ = true;
}

void WeightedGraph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const WeightedEdge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  arcs_.assign(edges_.size() * 2, {});
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const WeightedEdge& e : edges_) {
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = {e.v, e.w};
    arcs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = {e.u, e.w};
  }
  adjacency_valid_ = true;
}

void WeightedGraph::merge(const WeightedGraph& other) {
  assert(other.n_ <= n_);
  for (const WeightedEdge& e : other.edges_) add_edge(e.u, e.v, e.w);
}

}  // namespace usne
