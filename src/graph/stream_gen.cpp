#include "graph/stream_gen.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace usne {
namespace {

/// Candidates per top-up round. Bounds the sort window (and the transient
/// growth of the edge buffer) without affecting the result: the dedup loop
/// is exact for any chunk size.
constexpr std::int64_t kChunkEdges = std::int64_t{1} << 20;

std::int64_t max_edges(Vertex n) {
  return static_cast<std::int64_t>(n) * (n - 1) / 2;
}

void account_peak(StreamGenReport* report, std::int64_t bytes) {
  if (report) report->peak_bytes = std::max(report->peak_bytes, bytes);
}

/// Appends up to `chunk` candidates drawn by `draw` (which may reject by
/// returning {x, x}), then restores the sorted-unique invariant of `edges`.
/// Returns the number of candidates drawn.
template <typename DrawFn>
std::int64_t top_up_round(std::vector<Edge>& edges, std::int64_t target,
                          std::int64_t chunk, DrawFn&& draw) {
  const std::size_t sorted_prefix = edges.size();
  const std::int64_t need =
      std::min(chunk, target - static_cast<std::int64_t>(sorted_prefix));
  std::int64_t drawn = 0;
  while (static_cast<std::int64_t>(edges.size() - sorted_prefix) < need) {
    auto [u, v] = draw();
    ++drawn;
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.push_back({u, v});
  }
  std::sort(edges.begin() + static_cast<std::ptrdiff_t>(sorted_prefix),
            edges.end());
  std::inplace_merge(edges.begin(),
                     edges.begin() + static_cast<std::ptrdiff_t>(sorted_prefix),
                     edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return drawn;
}

Graph finish(Vertex n, std::vector<Edge> edges, StreamGenReport* report) {
  account_peak(report, static_cast<std::int64_t>(edges.capacity() *
                                                 sizeof(Edge)));
  if (report) {
    report->edges = static_cast<std::int64_t>(edges.size());
    report->bytes_per_edge =
        report->edges > 0
            ? static_cast<double>(report->peak_bytes) /
                  static_cast<double>(report->edges)
            : 0;
  }
  // Sorted-unique already: the Graph constructor builds the CSR directly,
  // the first and only adjacency materialization.
  return Graph(n, std::move(edges));
}

}  // namespace

std::string StreamGenReport::stats_json() const {
  std::ostringstream out;
  out << "{\"bytes_per_edge\": " << format_double(bytes_per_edge, 1)
      << ", \"candidates\": " << candidates
      << ", \"edges\": " << edges
      << ", \"peak_bytes\": " << peak_bytes
      << ", \"rounds\": " << rounds << "}";
  return out.str();
}

Graph stream_gnm(Vertex n, std::int64_t m, std::uint64_t seed,
                 StreamGenReport* report) {
  m = std::min(m, max_edges(n));
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(std::max<std::int64_t>(m, 0)));
  const auto draw = [&rng, n]() -> std::pair<Vertex, Vertex> {
    return {static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n))),
            static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)))};
  };
  while (static_cast<std::int64_t>(edges.size()) < m) {
    const std::int64_t drawn = top_up_round(edges, m, kChunkEdges, draw);
    if (report) {
      ++report->rounds;
      report->candidates += drawn;
    }
  }
  return finish(n, std::move(edges), report);
}

Graph stream_connected_gnm(Vertex n, std::int64_t m, std::uint64_t seed,
                           StreamGenReport* report) {
  if (n <= 0) return Graph(std::max<Vertex>(n, 0), {});
  m = std::min(std::max<std::int64_t>(m, n - 1), max_edges(n));
  Rng rng(seed);

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  {
    // Random spanning path: a uniform permutation chained together. The
    // permutation is the only scaffolding and is freed before top-up.
    std::vector<Vertex> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    for (Vertex i = 0; i + 1 < n; ++i) {
      Vertex u = perm[static_cast<std::size_t>(i)];
      Vertex v = perm[static_cast<std::size_t>(i) + 1];
      if (u > v) std::swap(u, v);
      edges.push_back({u, v});
    }
    account_peak(report,
                 static_cast<std::int64_t>(edges.capacity() * sizeof(Edge) +
                                           perm.capacity() * sizeof(Vertex)));
  }
  std::sort(edges.begin(), edges.end());

  const auto draw = [&rng, n]() -> std::pair<Vertex, Vertex> {
    return {static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n))),
            static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)))};
  };
  while (static_cast<std::int64_t>(edges.size()) < m) {
    const std::int64_t drawn = top_up_round(edges, m, kChunkEdges, draw);
    if (report) {
      ++report->rounds;
      report->candidates += drawn;
    }
  }
  return finish(n, std::move(edges), report);
}

Graph stream_rmat(int scale, std::int64_t m, std::uint64_t seed,
                  StreamGenReport* report) {
  const Vertex n = static_cast<Vertex>(Vertex{1} << scale);
  m = std::min(m, max_edges(n));
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(std::max<std::int64_t>(m, 0)));

  // Graph500 quadrant split: P(top-left) = a dominates, producing the
  // heavy-tailed degree distribution.
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  const auto draw_rmat = [&rng, scale]() -> std::pair<Vertex, Vertex> {
    Vertex u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // top-left: both bits 0
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    return {u, v};
  };

  const std::int64_t draw_cap = 64 * std::max<std::int64_t>(m, 1);
  std::int64_t drawn_total = 0;
  while (static_cast<std::int64_t>(edges.size()) < m &&
         drawn_total < draw_cap) {
    const std::int64_t drawn =
        top_up_round(edges, m, kChunkEdges, draw_rmat);
    drawn_total += drawn;
    if (report) {
      ++report->rounds;
      report->candidates += drawn;
    }
  }
  // Pathological duplicate rate (tiny scale, m near the quadrant's
  // capacity): fill the remainder uniformly so the contract of exactly m
  // edges holds. Deterministic — the uniform draws continue the same rng.
  const auto draw_uniform = [&rng, n]() -> std::pair<Vertex, Vertex> {
    return {static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n))),
            static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)))};
  };
  while (static_cast<std::int64_t>(edges.size()) < m) {
    const std::int64_t drawn =
        top_up_round(edges, m, kChunkEdges, draw_uniform);
    if (report) {
      ++report->rounds;
      report->candidates += drawn;
    }
  }
  return finish(n, std::move(edges), report);
}

}  // namespace usne
