#pragma once

// Stretch evaluation: how well does d_H approximate d_G?
//
// Exact mode runs full APSP on both graphs (n up to a few thousand);
// sampled mode evaluates a deterministic pseudo-random pair sample for
// larger graphs. Reported per pair: multiplicative stretch d_H/d_G and
// additive surplus d_H - d_G; aggregated as max/mean, plus the fraction of
// pairs violating a given (alpha, beta) budget (must be 0 for a correct
// construction).

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Aggregated stretch statistics over the evaluated pairs.
struct StretchReport {
  std::int64_t pairs = 0;           // evaluated (connected, u != v) pairs
  double max_mult = 0;              // max d_H/d_G
  double mean_mult = 0;             // mean d_H/d_G
  Dist max_additive = 0;            // max d_H - d_G
  double mean_additive = 0;         // mean d_H - d_G
  std::int64_t violations = 0;      // pairs with d_H > alpha*d_G + beta
  std::int64_t underruns = 0;       // pairs with d_H < d_G (must be 0)
  Dist worst_pair_dg = 0;           // d_G of the worst additive pair

  bool ok() const { return violations == 0 && underruns == 0; }
};

/// Exact evaluation over all pairs (BFS from every vertex + Dijkstra on H
/// from every vertex). Quadratic; use for n <= ~2000.
StretchReport evaluate_stretch_exact(const Graph& g, const WeightedGraph& h,
                                     double alpha, Dist beta);

/// Sampled evaluation: `sources` BFS sources chosen deterministically from
/// `seed`, all pairs (source, v) evaluated.
StretchReport evaluate_stretch_sampled(const Graph& g, const WeightedGraph& h,
                                       double alpha, Dist beta, int sources,
                                       std::uint64_t seed);

}  // namespace usne
