#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"
#include "util/table.hpp"

namespace usne {

double size_bound_ratio(const WeightedGraph& h, Vertex n, int kappa) {
  const long double bound =
      real_pow(n, 1.0L + 1.0L / static_cast<long double>(kappa));
  if (bound <= 0) return 0;
  return static_cast<double>(static_cast<long double>(h.num_edges()) / bound);
}

double ultra_sparse_excess(const WeightedGraph& h, Vertex n) {
  if (n == 0) return 0;
  return static_cast<double>(h.num_edges() - n) / static_cast<double>(n);
}

int ultra_sparse_kappa(Vertex n, double f) {
  const double log_n = std::log2(static_cast<double>(std::max<Vertex>(n, 2)));
  return std::max(2, static_cast<int>(std::ceil(f * log_n)));
}

std::string ratio_str(double r) { return format_double(r, 4); }

}  // namespace usne
