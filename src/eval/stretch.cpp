#include "eval/stretch.hpp"

#include <algorithm>

#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

void accumulate(StretchReport& report, Dist dg, Dist dh, double alpha,
                Dist beta) {
  if (dg == kInfDist) return;  // disconnected pair: nothing to check
  ++report.pairs;
  if (dh < dg) ++report.underruns;
  const Dist add = (dh == kInfDist) ? kInfDist : dh - dg;
  const double mult =
      (dh == kInfDist) ? 1e18 : static_cast<double>(dh) / static_cast<double>(dg);
  if (add > report.max_additive) {
    report.max_additive = add;
    report.worst_pair_dg = dg;
  }
  report.max_mult = std::max(report.max_mult, mult);
  report.mean_mult += mult;
  report.mean_additive += static_cast<double>(add);
  const double budget = alpha * static_cast<double>(dg) + static_cast<double>(beta);
  if (static_cast<double>(dh) > budget + 1e-9) ++report.violations;
}

void finalize(StretchReport& report) {
  if (report.pairs > 0) {
    report.mean_mult /= static_cast<double>(report.pairs);
    report.mean_additive /= static_cast<double>(report.pairs);
  }
}

StretchReport evaluate_from_sources(const Graph& g, const WeightedGraph& h,
                                    double alpha, Dist beta,
                                    const std::vector<Vertex>& sources) {
  StretchReport report;
  for (const Vertex s : sources) {
    const std::vector<Dist> dg = bfs_distances(g, s);
    const std::vector<Dist> dh = dijkstra(h, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == s) continue;
      accumulate(report, dg[static_cast<std::size_t>(v)],
                 dh[static_cast<std::size_t>(v)], alpha, beta);
    }
  }
  finalize(report);
  return report;
}

}  // namespace

StretchReport evaluate_stretch_exact(const Graph& g, const WeightedGraph& h,
                                     double alpha, Dist beta) {
  std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  return evaluate_from_sources(g, h, alpha, beta, all);
}

StretchReport evaluate_stretch_sampled(const Graph& g, const WeightedGraph& h,
                                       double alpha, Dist beta, int sources,
                                       std::uint64_t seed) {
  Rng rng(seed);
  const Vertex n = g.num_vertices();
  std::vector<Vertex> chosen;
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  const int want = std::min<std::int64_t>(sources, n);
  while (static_cast<int>(chosen.size()) < want) {
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (!used[static_cast<std::size_t>(v)]) {
      used[static_cast<std::size_t>(v)] = true;
      chosen.push_back(v);
    }
  }
  return evaluate_from_sources(g, h, alpha, beta, chosen);
}

}  // namespace usne
