#pragma once

// Size metrics shared by the bench binaries: bound ratios and
// ultra-sparsity excess.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// |H| / n^(1+1/kappa): must be <= 1 for Algorithm 1 (paper's headline:
/// the leading constant is exactly 1).
double size_bound_ratio(const WeightedGraph& h, Vertex n, int kappa);

/// (|H| - n) / n: the o(1) excess of the ultra-sparse regime (Cor. 2.15).
double ultra_sparse_excess(const WeightedGraph& h, Vertex n);

/// kappa = ceil(f * log2 n) used for the ultra-sparse experiments.
int ultra_sparse_kappa(Vertex n, double f);

/// Formats a ratio as "0.9731" / "1.0452" style string.
std::string ratio_str(double r);

}  // namespace usne
