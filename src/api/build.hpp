#pragma once

// Unified construction API — the single front door to every emulator and
// spanner construction in the repository.
//
// The paper defines one family of constructions; historically the repo
// exposed them as nine unrelated free functions, each with its own
// params/options/result triple, so every bench, example and test
// re-implemented the same dispatch, metering and JSON glue. This header
// replaces that with a string-keyed registry:
//
//   BuildSpec spec;
//   spec.algorithm = "emulator_congest";          // see usne::algorithms()
//   spec.params = {.n = 0, .kappa = 4, .eps = 0.4, .rho = 0.49};
//   spec.exec.num_threads = 4;
//   BuildOutput out = usne::build(g, spec);
//   out.h().num_edges(); out.alpha; out.beta; out.stats.at("rounds");
//
// Every registered algorithm is a *thin adapter* over the corresponding
// legacy builder (core/*, baselines/*): semantics, outputs and the
// round/message/word counts are bit-for-bit identical to calling the free
// function directly (enforced by tests/test_api.cpp and the scripts/check.sh
// registry smoke pass). The legacy functions remain the implementation
// layer; new scenario work (fault injection, async delivery, new workloads)
// plugs into this registry instead of adding a tenth bespoke entry point.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "core/cluster.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Unified numeric parameters. Each algorithm consumes the subset it
/// understands (see AlgorithmInfo::uses_rho / uses_seed in describe()):
/// centralized Algorithm 1 reads {n, kappa, eps}; the §3/§4 constructions
/// additionally read rho; the randomized baselines read the seed from
/// ExecOptions.
struct ParamSet {
  /// Size parameter fed to the schedule computation. 0 (the default) means
  /// "use g.num_vertices()" — the common case.
  Vertex n = 0;
  int kappa = 4;
  double eps = 0.25;
  double rho = 0.45;

  /// When true, use the paper's §2.2.4/§3.2.4 rescaling (compute_rescaled):
  /// eps is then the *target* multiplicative stretch, not the internal
  /// recurrence parameter. Only supported where the legacy params type
  /// offers it (AlgorithmInfo::supports_rescale); build() throws otherwise.
  bool rescale = false;
};

/// Execution knobs shared by all constructions. Each algorithm consumes the
/// subset that applies; the rest are ignored (e.g. num_threads for a
/// centralized build).
struct ExecOptions {
  /// Worker lanes for the CONGEST parallel round scheduler (1 = serial,
  /// 0 = hardware concurrency). Counts and outputs are bit-for-bit
  /// identical for any value.
  int num_threads = 1;

  /// Retain partition snapshots / edge logs / per-node knowledge for
  /// auditing. Disable for large benchmarks.
  bool keep_audit_data = true;

  /// Hub threshold multiplier of the distributed emulator (paper: 2).
  int hub_threshold_factor = 2;

  /// Seed for the randomized baselines (emulator_tz06, emulator_en17).
  std::uint64_t seed = 1;

  /// Delivery model for the CONGEST simulator's links
  /// (congest/transport.hpp): Ideal (default), Faulty (seeded per-message
  /// drop/duplicate), or Async (seeded per-message latency). Only the
  /// CONGEST algorithms consume it (AlgorithmInfo::supports_transport);
  /// build() rejects a non-ideal model on any other algorithm rather than
  /// silently running the ideal path. Injected-event counters surface in
  /// BuildOutput::transport and, for non-ideal models, in the StatsMap as
  /// transport_dropped / transport_duplicated / transport_delayed.
  congest::TransportSpec transport{};

  /// Serving hint: request degree-descending vertex renumbering inside any
  /// QueryEngine later wrapped around this build's H (hot hubs cluster at
  /// the front of the CSR — prefetch-friendly on skewed graphs). The
  /// construction itself never sees a renumbered G — the paper's
  /// constructions are vertex-order dependent (§2.1.1), so renumbering the
  /// input would change H. This flag only flows through
  /// BuildOutput::degree_sort into serve::ServeOptions::Renumber::kInherit,
  /// and the engine maps every answer back to original ids: H, stats,
  /// checksums and stretch guarantees are bit-identical either way.
  bool degree_sort = false;

  /// Collect the per-task construction profile (BuildOutput::profile):
  /// scheduler stage times — deliver/compute/replay/end_round — per
  /// (phase, task), the `usne_run --profile` view. CONGEST algorithms
  /// only; centralized builds ignore it. Measurement only: counts, H and
  /// every checksum are bit-identical with profiling on or off, and the
  /// default (off) reads no clocks in the scheduler at all.
  bool profile = false;
};

/// A complete, serializable description of one build: which algorithm plus
/// all parameters. The unit of dispatch for benches, examples and usne_run.
struct BuildSpec {
  std::string algorithm;
  ParamSet params;
  ExecOptions exec;
};

/// Uniform counters reported by every build (sorted keys, ready for JSON):
/// always "edges", "vertices", "phases", "interconnect_edges",
/// "supercluster_edges"; CONGEST variants add "rounds", "messages", "words".
using StatsMap = std::map<std::string, std::int64_t>;

/// Static metadata of a registered algorithm (usne::describe()).
struct AlgorithmInfo {
  std::string name;
  std::string summary;  // one line, shown by `usne_run --describe`
  std::string kind;     // "emulator" | "spanner"
  std::string model;    // "centralized" | "congest"
  bool deterministic = true;
  bool uses_rho = false;
  bool uses_seed = false;
  bool supports_rescale = false;
  bool baseline = false;  // false for the five paper variants

  /// True when the algorithm runs on the CONGEST simulator and therefore
  /// honours ExecOptions::transport (non-ideal delivery models). build()
  /// rejects non-ideal transports on algorithms without this flag.
  bool supports_transport = false;
};

/// Output of usne::build(): the constructed graph H, the computed
/// (alpha, beta) stretch guarantee, the uniform StatsMap, and — when
/// ExecOptions::keep_audit_data was set — the full legacy audit bundle
/// (partition snapshots, edge log, per-node local knowledge).
struct BuildOutput {
  std::string algorithm;

  /// The legacy result bundle: H plus phase stats, and the audit data iff
  /// keep_audit_data was requested. Identical to what the corresponding
  /// free function returns.
  BuildResult result;

  /// Round/message/word metering (CONGEST variants; zeros otherwise).
  congest::NetworkStats net;

  /// Injected-event counters of the delivery model (all zero under the
  /// Ideal transport and for centralized algorithms).
  congest::TransportCounters transport;

  /// Per-node local edge knowledge (CONGEST emulator only; empty otherwise).
  std::vector<std::vector<std::pair<Vertex, Dist>>> local;

  /// Construction profile (ExecOptions::profile): labeled per-(phase, task)
  /// scheduler stage times, e.g. "p0.detect". Empty unless requested.
  std::vector<congest::PhaseProfileEntry> profile;

  /// True when `net` is meaningful (the algorithm ran on the simulator).
  bool distributed = false;

  /// Computed stretch guarantee d_H <= alpha * d_G + beta. The randomized
  /// baselines carry no deterministic per-instance guarantee
  /// (has_guarantee = false, alpha = 0, beta = 0) — exactly the gap the
  /// paper closes.
  bool has_guarantee = false;
  double alpha = 0;
  Dist beta = 0;

  /// Forwarded ExecOptions::degree_sort — the serving-layer renumbering
  /// hint a QueryEngine constructed from this output inherits (see
  /// serve::Renumber::kInherit). Never affects H itself.
  bool degree_sort = false;

  /// Human-readable schedule description (params.describe() where
  /// available).
  std::string params_description;

  StatsMap stats;

  /// The constructed emulator/spanner.
  const WeightedGraph& h() const noexcept { return result.h; }

  /// Both-endpoints-know check for the CONGEST emulator (paper §3.1's
  /// distinctive obligation). Trivially true for every other variant
  /// (spanner edges are the endpoints' own incident graph edges;
  /// centralized builds have no notion of local knowledge).
  bool endpoints_consistent() const;

  /// One-line JSON record of this build:
  /// {"algo": ..., "alpha": ..., "beta": ..., "stats": {...}} with stats
  /// keys in sorted order — the uniform format consumed by scripts/check.sh.
  std::string stats_json() const;
};

/// Names of all registered algorithms, sorted.
std::vector<std::string> algorithms();

/// True if `name` is a registered algorithm.
bool is_registered(const std::string& name);

/// Metadata for a registered algorithm. Throws std::invalid_argument with
/// the list of known names when `name` is not registered.
const AlgorithmInfo& describe(const std::string& name);

/// Builds `spec.algorithm` on g. Throws std::invalid_argument on an unknown
/// name or an unsupported rescale request; parameter-validation errors of
/// the underlying params types propagate unchanged.
BuildOutput build(const Graph& g, const BuildSpec& spec);

}  // namespace usne
