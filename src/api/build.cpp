#include "api/build.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "baselines/en17_emulator.hpp"
#include "baselines/ep01_emulator.hpp"
#include "baselines/tz06_emulator.hpp"
#include "core/emulator_centralized.hpp"
#include "core/emulator_distributed.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "core/spanner_distributed.hpp"
#include "util/invariant.hpp"

namespace usne {
namespace {

using BuildFn =
    std::function<BuildOutput(const Graph&, const BuildSpec&, const AlgorithmInfo&)>;

struct Entry {
  AlgorithmInfo info;
  BuildFn fn;
};

Vertex resolve_n(const Graph& g, const BuildSpec& spec) {
  return spec.params.n > 0 ? spec.params.n : g.num_vertices();
}

CentralizedParams central_params(const Graph& g, const BuildSpec& s) {
  const Vertex n = resolve_n(g, s);
  return s.params.rescale
             ? CentralizedParams::compute_rescaled(n, s.params.kappa, s.params.eps)
             : CentralizedParams::compute(n, s.params.kappa, s.params.eps);
}

DistributedParams dist_params(const Graph& g, const BuildSpec& s) {
  const Vertex n = resolve_n(g, s);
  return s.params.rescale
             ? DistributedParams::compute_rescaled(n, s.params.kappa, s.params.rho,
                                                   s.params.eps)
             : DistributedParams::compute(n, s.params.kappa, s.params.rho,
                                          s.params.eps);
}

SpannerParams spanner_params(const Graph& g, const BuildSpec& s) {
  return SpannerParams::compute(resolve_n(g, s), s.params.kappa, s.params.rho,
                                s.params.eps);
}

/// Packages a legacy BuildResult into the uniform output (moves, no copies —
/// the adapters must stay bit-for-bit transparent, including cost).
BuildOutput pack(const AlgorithmInfo& info, BuildResult&& r) {
  BuildOutput out;
  out.algorithm = info.name;
  out.result = std::move(r);
  out.stats["edges"] = out.result.h.num_edges();
  out.stats["vertices"] = out.result.h.num_vertices();
  out.stats["phases"] = static_cast<std::int64_t>(out.result.phases.size());
  out.stats["interconnect_edges"] = out.result.interconnect_edges();
  out.stats["supercluster_edges"] = out.result.supercluster_edges();
  return out;
}

void add_guarantee(BuildOutput& out, const PhaseSchedule& sched,
                   std::string description) {
  out.has_guarantee = true;
  out.alpha = sched.alpha_bound();
  out.beta = sched.beta_bound();
  out.params_description = std::move(description);
}

void add_net(BuildOutput& out, const congest::NetworkStats& net) {
  out.distributed = true;
  out.net = net;
  out.stats["rounds"] = net.rounds;
  out.stats["messages"] = net.messages;
  out.stats["words"] = net.words;
}

/// Surfaces the delivery model's injected-event counters. The stats keys
/// appear only for non-ideal models so the Ideal StatsMap stays
/// bit-identical to the pre-transport registry output.
void add_transport(BuildOutput& out, const congest::TransportCounters& tc,
                   const congest::TransportSpec& spec) {
  out.transport = tc;
  if (spec.model != congest::TransportModel::kIdeal) {
    out.stats["transport_dropped"] = tc.dropped;
    out.stats["transport_duplicated"] = tc.duplicated;
    out.stats["transport_delayed"] = tc.delayed;
  }
}

const std::vector<Entry>& registry() {
  static const std::vector<Entry> table = [] {
    std::vector<Entry> t;

    // --- the five paper variants -------------------------------------
    t.push_back(
        {{"emulator_centralized",
          "Algorithm 1 (paper SS2): exact ultra-sparse emulator, <= n^(1+1/kappa)",
          "emulator", "centralized", /*deterministic=*/true, /*uses_rho=*/false,
          /*uses_seed=*/false, /*supports_rescale=*/true, /*baseline=*/false},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = central_params(g, s);
           CentralizedOptions o;
           o.keep_audit_data = s.exec.keep_audit_data;
           auto out = pack(info, build_emulator_centralized(g, params, o));
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"emulator_fast",
          "SS3.3 fast centralized simulation: O~(|E| n^rho) per phase",
          "emulator", "centralized", true, /*uses_rho=*/true, false,
          /*supports_rescale=*/true, false},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = dist_params(g, s);
           FastOptions o;
           o.keep_audit_data = s.exec.keep_audit_data;
           auto out = pack(info, build_emulator_fast(g, params, o));
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"emulator_congest",
          "SS3.1 CONGEST construction: O(beta n^rho) rounds, both endpoints know",
          "emulator", "congest", true, /*uses_rho=*/true, false,
          /*supports_rescale=*/true, false, /*supports_transport=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = dist_params(g, s);
           DistributedOptions o;
           o.keep_audit_data = s.exec.keep_audit_data;
           o.hub_threshold_factor = s.exec.hub_threshold_factor;
           o.num_threads = s.exec.num_threads;
           o.transport = s.exec.transport;
           o.profile = s.exec.profile;
           auto r = build_emulator_distributed(g, params, o);
           auto out = pack(info, std::move(r.base));
           add_net(out, r.net);
           add_transport(out, r.transport, s.exec.transport);
           out.local = std::move(r.local);
           out.profile = std::move(r.profile);
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"spanner",
          "SS4 near-additive spanner ([EN17a] degree sequence), subgraph of G",
          "spanner", "centralized", true, /*uses_rho=*/true, false, false,
          false},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = spanner_params(g, s);
           SpannerOptions o;
           o.keep_audit_data = s.exec.keep_audit_data;
           auto out = pack(info, build_spanner(g, params, o));
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"spanner_congest",
          "SS4 spanner in CONGEST: mark-upcast superclustering, no hubs",
          "spanner", "congest", true, /*uses_rho=*/true, false, false, false,
          /*supports_transport=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = spanner_params(g, s);
           auto r = build_spanner_congest(g, params, s.exec.keep_audit_data,
                                          s.exec.num_threads, s.exec.transport,
                                          s.exec.profile);
           auto out = pack(info, std::move(r.base));
           add_net(out, r.net);
           add_transport(out, r.transport, s.exec.transport);
           out.profile = std::move(r.profile);
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    // --- the four baselines ------------------------------------------
    t.push_back(
        {{"spanner_em19",
          "[EM19] baseline: SS4 skeleton with the SS3 degree sequence, "
          "O(beta n^(1+1/kappa)) edges",
          "spanner", "centralized", true, /*uses_rho=*/true, false,
          /*supports_rescale=*/true, /*baseline=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = dist_params(g, s);
           SpannerOptions o;
           o.keep_audit_data = s.exec.keep_audit_data;
           auto out = pack(info, build_spanner_em19(g, params, o));
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"spanner_congest_em19",
          "[EM19] baseline in CONGEST (round-for-round comparison)",
          "spanner", "congest", true, /*uses_rho=*/true, false,
          /*supports_rescale=*/true, /*baseline=*/true,
          /*supports_transport=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = dist_params(g, s);
           auto r = build_spanner_congest_em19(g, params, s.exec.keep_audit_data,
                                               s.exec.num_threads,
                                               s.exec.transport,
                                               s.exec.profile);
           auto out = pack(info, std::move(r.base));
           add_net(out, r.net);
           add_transport(out, r.transport, s.exec.transport);
           out.profile = std::move(r.profile);
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"emulator_ep01",
          "[EP01] baseline: ground partition forces >= 2n - O(1) edges",
          "emulator", "centralized", true, false, false,
          /*supports_rescale=*/true, /*baseline=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const auto params = central_params(g, s);
           auto out = pack(info, build_emulator_ep01(g, params));
           add_guarantee(out, params.schedule, params.describe());
           return out;
         }});

    t.push_back(
        {{"emulator_tz06",
          "[TZ06] baseline: randomized sampling, O(n^(1+1/kappa)) expected",
          "emulator", "centralized", /*deterministic=*/false, false,
          /*uses_seed=*/true, false, /*baseline=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const Vertex n = resolve_n(g, s);
           auto out =
               pack(info, build_emulator_tz06(g, n, s.params.kappa, s.exec.seed));
           std::ostringstream desc;
           desc << "tz06: n=" << n << " kappa=" << s.params.kappa
                << " seed=" << s.exec.seed << " (randomized, no per-instance "
                << "guarantee)";
           out.params_description = desc.str();
           return out;
         }});

    t.push_back(
        {{"emulator_en17",
          "[EN17a] baseline: randomized linear-size, no deterministic bound",
          "emulator", "centralized", /*deterministic=*/false, false,
          /*uses_seed=*/true, false, /*baseline=*/true},
         [](const Graph& g, const BuildSpec& s, const AlgorithmInfo& info) {
           const Vertex n = resolve_n(g, s);
           auto out = pack(info, build_emulator_en17(g, n, s.params.kappa,
                                                     s.params.eps, s.exec.seed));
           std::ostringstream desc;
           desc << "en17: n=" << n << " kappa=" << s.params.kappa
                << " eps=" << s.params.eps << " seed=" << s.exec.seed
                << " (randomized, no per-instance guarantee)";
           out.params_description = desc.str();
           return out;
         }});

    return t;
  }();
  return table;
}

const Entry& find_entry(const std::string& name) {
  for (const Entry& e : registry()) {
    if (e.info.name == name) return e;
  }
  std::ostringstream msg;
  msg << "unknown algorithm '" << name << "'; registered:";
  for (const std::string& known : algorithms()) msg << ' ' << known;
  throw std::invalid_argument(msg.str());
}

}  // namespace

bool BuildOutput::endpoints_consistent() const {
  if (local.empty()) return true;
  return endpoints_know_all_edges(result.h, local);
}

std::string BuildOutput::stats_json() const {
  std::ostringstream out;
  out << "{\"algo\": \"" << algorithm << "\", \"alpha\": " << alpha
      << ", \"beta\": " << beta << ", \"stats\": {";
  bool first = true;
  for (const auto& [key, value] : stats) {
    if (!first) out << ", ";
    out << '"' << key << "\": " << value;
    first = false;
  }
  out << "}}";
  return out.str();
}

std::vector<std::string> algorithms() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Entry& e : registry()) names.push_back(e.info.name);
  std::sort(names.begin(), names.end());
  return names;
}

bool is_registered(const std::string& name) {
  for (const Entry& e : registry()) {
    if (e.info.name == name) return true;
  }
  return false;
}

const AlgorithmInfo& describe(const std::string& name) {
  return find_entry(name).info;
}

BuildOutput build(const Graph& g, const BuildSpec& spec) {
  const Entry& entry = find_entry(spec.algorithm);
  if (spec.params.rescale && !entry.info.supports_rescale) {
    throw std::invalid_argument("algorithm '" + spec.algorithm +
                                "' does not support eps rescaling");
  }
  spec.exec.transport.validate();
  if (spec.exec.transport.model != congest::TransportModel::kIdeal &&
      !entry.info.supports_transport) {
    throw std::invalid_argument(
        "algorithm '" + spec.algorithm + "' does not run on the CONGEST "
        "simulator, so the '" +
        std::string(
            congest::transport_model_name(spec.exec.transport.model)) +
        "' transport does not apply; non-ideal transports are supported by "
        "the algorithms usne::describe() flags with supports_transport");
  }
  BuildOutput out = entry.fn(g, spec, entry.info);
  // Serving hint only — set here, once, so no adapter can forget it and no
  // construction ever consumes it (H must not depend on vertex order hints).
  out.degree_sort = spec.exec.degree_sort;
  // Structural audit of the constructed H: whatever the algorithm did, the
  // emulator/spanner it hands back must be a well-formed symmetric CSR
  // before anything downstream (serving, eval, persistence) trusts it.
  if (inv::audits_enabled()) {
    std::string error;
    USNE_CHECK(inv::Category::kCsr, validate_csr(out.h().csr(), &error),
               error);
  }
  return out;
}

}  // namespace usne
