#include "path/apsp.hpp"

#include "path/bfs.hpp"
#include "path/dijkstra.hpp"

namespace usne {

DistanceMatrix apsp_unweighted(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> data(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                         kInfDist);
  for (Vertex s = 0; s < n; ++s) {
    const auto dist = bfs_distances(g, s);
    std::copy(dist.begin(), dist.end(),
              data.begin() + static_cast<std::size_t>(s) * static_cast<std::size_t>(n));
  }
  return DistanceMatrix(n, std::move(data));
}

DistanceMatrix apsp_weighted(const WeightedGraph& h) {
  const Vertex n = h.num_vertices();
  std::vector<Dist> data(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                         kInfDist);
  for (Vertex s = 0; s < n; ++s) {
    const auto dist = dijkstra(h, s);
    std::copy(dist.begin(), dist.end(),
              data.begin() + static_cast<std::size_t>(s) * static_cast<std::size_t>(n));
  }
  return DistanceMatrix(n, std::move(data));
}

}  // namespace usne
