#include "path/sssp_kernel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/invariant.hpp"

namespace usne {
namespace {

/// Largest power of two <= delta, as a shift. Kernel buckets are indexed by
/// dist >> shift, so widths are always rounded down to a power of two.
int delta_shift(Dist delta) noexcept {
  int shift = 0;
  while ((Dist{2} << shift) <= delta) ++shift;
  return shift;
}

/// Audit-only exactness postcondition: a finished SSSP vector is a
/// relaxation fixpoint (no arc can still improve a distance, and nothing
/// reachable was missed) with dist[source] == 0. O(arcs) — evaluated only
/// while inv::audits_enabled().
bool sssp_fixpoint_ok(const WeightedGraph::Csr& g, Vertex source,
                      const std::vector<Dist>& dist) noexcept {
  if (dist[static_cast<std::size_t>(source)] != 0) return false;
  for (Vertex v = 0; v < g.n; ++v) {
    const Dist dv = dist[static_cast<std::size_t>(v)];
    if (dv == kInfDist) continue;
    if (dv < 0) return false;
    for (const auto& arc : g.row(v)) {
      if (dist[static_cast<std::size_t>(arc.to)] > dv + arc.w) return false;
    }
  }
  return true;
}

}  // namespace

SsspKernel parse_sssp_kernel(const std::string& name) {
  if (name == "dial") return SsspKernel::kDial;
  if (name == "delta") return SsspKernel::kDelta;
  throw std::invalid_argument("unknown SSSP kernel '" + name +
                              "' (expected dial | delta)");
}

const char* sssp_kernel_name(SsspKernel kernel) noexcept {
  switch (kernel) {
    case SsspKernel::kDial: return "dial";
    case SsspKernel::kDelta: return "delta";
  }
  return "?";
}

std::int64_t SsspScratch::resident_bytes() const noexcept {
  std::int64_t bytes = static_cast<std::int64_t>(
      ring_.capacity() * sizeof(std::vector<Vertex>) +
      frontier_.capacity() * sizeof(Vertex) +
      settled_.capacity() * sizeof(Vertex) +
      stamp_.capacity() * sizeof(std::uint32_t));
  for (const auto& slot : ring_) {
    bytes += static_cast<std::int64_t>(slot.capacity() * sizeof(Vertex));
  }
  return bytes;
}

void SsspScratch::reset_ring(std::size_t slots) {
  if (ring_.size() < slots) ring_.resize(slots);
  // Slots keep their capacity across queries — that is the point of the
  // scratch. A correctly terminated kernel leaves every slot empty, so
  // these clears are no-ops in steady state.
  for (auto& slot : ring_) slot.clear();
  frontier_.clear();
  settled_.clear();
}

void SsspScratch::next_generation(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    generation_ = 0;
  }
  if (++generation_ == 0) {  // 32-bit wrap: reset lazily, once per 4G queries
    std::fill(stamp_.begin(), stamp_.end(), 0);
    generation_ = 1;
  }
}

Dist max_edge_weight(const WeightedGraph::Csr& g) noexcept {
  Dist max_w = 0;
  const std::int64_t arcs = g.num_arcs();
  for (std::int64_t i = 0; i < arcs; ++i) max_w = std::max(max_w, g.arcs[i].w);
  return max_w;
}

Dist auto_delta(const WeightedGraph::Csr& g) noexcept {
  const std::int64_t arcs = g.num_arcs();
  if (arcs == 0) return 1;
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < arcs; ++i) total += g.arcs[i].w;
  const Dist mean = std::max<Dist>(1, total / arcs);
  Dist delta = 1;
  while (delta < mean) delta <<= 1;
  return delta;
}

std::vector<Dist> dial_sssp_csr(const WeightedGraph::Csr& g, Vertex source,
                                Dist max_w, SsspScratch& scratch) {
  const std::size_t n = static_cast<std::size_t>(g.n);
  std::vector<Dist> dist(n, kInfDist);
  if (n == 0) return dist;
  // Circular ring: while processing distance d, live entries span
  // (d, d + max_w], so max_w + 1 slots never collide.
  const std::size_t slots = static_cast<std::size_t>(max_w) + 1;
  scratch.reset_ring(slots);
  auto* ring = scratch.ring_.data();
  auto& frontier = scratch.frontier_;

  dist[static_cast<std::size_t>(source)] = 0;
  ring[0].push_back(source);
  std::int64_t pending = 1;
  std::size_t settled = 0;

  for (Dist d = 0; pending > 0; ++d) {
    auto& slot = ring[static_cast<std::size_t>(d) % slots];
    if (slot.empty()) continue;
    frontier.swap(slot);  // weights are >= 1: nothing relaxes back into d
    pending -= static_cast<std::int64_t>(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (i + 1 < frontier.size()) {
        const auto nxt = static_cast<std::size_t>(frontier[i + 1]);
        __builtin_prefetch(&dist[nxt]);
        __builtin_prefetch(&g.arcs[g.offsets[nxt]]);
      }
      const Vertex v = frontier[i];
      if (dist[static_cast<std::size_t>(v)] != d) continue;  // stale entry
      ++settled;
      for (const auto& arc : g.row(v)) {
        const Dist nd = d + arc.w;
        if (nd < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          ring[static_cast<std::size_t>(nd) % slots].push_back(arc.to);
          ++pending;
        }
      }
    }
    frontier.clear();
    if (settled == n) break;
  }
  // Early settled-exit may leave stale entries in the ring; clear them so
  // the next query's reset_ring stays O(slots).

  // Postconditions. Always-on: the ring settles each vertex at most once,
  // so settling more than n of them means the ring slots collided (the
  // max_w + 1 sizing bound was violated). Audit: the result is a
  // relaxation fixpoint — exactness, checked against every arc.
  USNE_CHECK(inv::Category::kSssp,
             settled <= n && dist[static_cast<std::size_t>(source)] == 0,
             "dial ring settled " + std::to_string(settled) + " of " +
                 std::to_string(n) + " vertices (source dist " +
                 std::to_string(dist[static_cast<std::size_t>(source)]) + ")");
  USNE_AUDIT(inv::Category::kSssp, sssp_fixpoint_ok(g, source, dist),
             "dial result is not a shortest-path fixpoint from source " +
                 std::to_string(source));
  return dist;
}

std::vector<Dist> delta_sssp_csr(const WeightedGraph::Csr& g, Vertex source,
                                 Dist max_w, Dist delta,
                                 SsspScratch& scratch) {
  const std::size_t n = static_cast<std::size_t>(g.n);
  std::vector<Dist> dist(n, kInfDist);
  if (n == 0) return dist;
  if (delta < 1) delta = 1;
  const int shift = delta_shift(delta);
  delta = Dist{1} << shift;
  // Live buckets while draining bucket k span [k, k + 1 + (max_w >> shift)]
  // (a light target can cross into k + 1, a heavy one reaches at most
  // dist + max_w), so that many ring slots never collide.
  const std::size_t slots = static_cast<std::size_t>(max_w >> shift) + 2;
  scratch.reset_ring(slots);
  scratch.next_generation(n);
  auto* ring = scratch.ring_.data();
  auto& frontier = scratch.frontier_;
  auto& settled = scratch.settled_;
  auto* stamp = scratch.stamp_.data();
  const std::uint32_t generation = scratch.generation_;

  dist[static_cast<std::size_t>(source)] = 0;
  ring[0].push_back(source);
  std::int64_t pending = 1;

  for (Dist k = 0; pending > 0; ++k) {
    auto& slot = ring[static_cast<std::size_t>(k) % slots];
    settled.clear();
    // Bucket fusion: drain bucket k to a light-edge fixpoint locally —
    // vertices relaxed back into k are swept in the same loop, without
    // touching the ring scan or any other bucket.
    while (!slot.empty()) {
      frontier.swap(slot);
      pending -= static_cast<std::int64_t>(frontier.size());
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i + 1 < frontier.size()) {
          const auto nxt = static_cast<std::size_t>(frontier[i + 1]);
          __builtin_prefetch(&dist[nxt]);
          __builtin_prefetch(&g.arcs[g.offsets[nxt]]);
        }
        const Vertex v = frontier[i];
        const Dist dv = dist[static_cast<std::size_t>(v)];
        if ((dv >> shift) != k) continue;  // stale or moved buckets
        if (stamp[static_cast<std::size_t>(v)] != generation) {
          stamp[static_cast<std::size_t>(v)] = generation;
          settled.push_back(v);
        }
        for (const auto& arc : g.row(v)) {
          if (arc.w > delta) continue;  // light edges only in the fixpoint
          const Dist nd = dv + arc.w;
          if (nd < dist[static_cast<std::size_t>(arc.to)]) {
            dist[static_cast<std::size_t>(arc.to)] = nd;
            ring[static_cast<std::size_t>(nd >> shift) % slots].push_back(
                arc.to);
            ++pending;
          }
        }
      }
      frontier.clear();
    }
    // Heavy edges once per settled vertex, at its (now final) distance.
    // Heavy targets land strictly past bucket k, so this never reopens it.
    for (const Vertex v : settled) {
      const Dist dv = dist[static_cast<std::size_t>(v)];
      for (const auto& arc : g.row(v)) {
        if (arc.w <= delta) continue;
        const Dist nd = dv + arc.w;
        if (nd < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          ring[static_cast<std::size_t>(nd >> shift) % slots].push_back(
              arc.to);
          ++pending;
        }
      }
    }
  }
  // Postconditions: the bucket loop only exits once every ring entry is
  // consumed (pending is the live-entry ledger), and the audit proves the
  // fused light/heavy drain still reached the exact fixpoint.
  USNE_CHECK(inv::Category::kSssp,
             pending == 0 && dist[static_cast<std::size_t>(source)] == 0,
             "delta-stepping ended with " + std::to_string(pending) +
                 " ring entries pending (source dist " +
                 std::to_string(dist[static_cast<std::size_t>(source)]) + ")");
  USNE_AUDIT(inv::Category::kSssp, sssp_fixpoint_ok(g, source, dist),
             "delta-stepping result is not a shortest-path fixpoint from "
             "source " +
                 std::to_string(source));
  return dist;
}

std::vector<Vertex> degree_sorted_order(const WeightedGraph::Csr& g) {
  std::vector<Vertex> by_degree(static_cast<std::size_t>(g.n));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](Vertex a, Vertex b) {
                     return g.degree(a) > g.degree(b);
                   });
  std::vector<Vertex> new_of_old(static_cast<std::size_t>(g.n));
  for (std::size_t pos = 0; pos < by_degree.size(); ++pos) {
    new_of_old[static_cast<std::size_t>(by_degree[pos])] =
        static_cast<Vertex>(pos);
  }
  return new_of_old;
}

WeightedGraph::Csr renumber_csr(const WeightedGraph::Csr& g,
                                const std::vector<Vertex>& new_of_old,
                                std::vector<std::int64_t>& offsets,
                                std::vector<WeightedGraph::Arc>& arcs) {
  const std::size_t n = static_cast<std::size_t>(g.n);
  offsets.assign(n + 1, 0);
  for (Vertex old = 0; old < g.n; ++old) {
    offsets[static_cast<std::size_t>(new_of_old[static_cast<std::size_t>(
        old)]) + 1] = g.degree(old);
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  arcs.resize(static_cast<std::size_t>(g.num_arcs()));
  for (Vertex old = 0; old < g.n; ++old) {
    std::int64_t cursor =
        offsets[static_cast<std::size_t>(new_of_old[static_cast<std::size_t>(old)])];
    for (const auto& arc : g.row(old)) {
      arcs[static_cast<std::size_t>(cursor++)] = {
          new_of_old[static_cast<std::size_t>(arc.to)], arc.w};
    }
  }
  return {g.n, offsets.data(), arcs.data()};
}

}  // namespace usne
