#pragma once

// Breadth-first search primitives on the unweighted input graph G.
//
// The constructions in the paper only ever need *depth-bounded* explorations
// (to depth delta_i or 2*delta_i), so the bounded variants are first-class
// here and reused everywhere.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Full single-source BFS. Returns distance per vertex (kInfDist when
/// unreachable).
std::vector<Dist> bfs_distances(const Graph& g, Vertex source);

/// Depth-bounded single-source BFS.
///
/// Writes distances into `dist` (must be pre-sized to n and filled with
/// kInfDist); records every vertex it touched into `touched` so the caller
/// can cheaply reset `dist` afterwards. This makes repeated bounded
/// explorations O(ball size) instead of O(n).
void bounded_bfs(const Graph& g, Vertex source, Dist depth,
                 std::vector<Dist>& dist, std::vector<Vertex>& touched);

/// Depth-bounded multi-source BFS: distance to the nearest source, plus the
/// id of that source (ties broken toward the smaller source id — this is the
/// deterministic tie-break rule used by the BFS forests of Section 3).
struct MultiSourceBfsResult {
  std::vector<Dist> dist;       // distance to nearest source (kInfDist if none)
  std::vector<Vertex> source;   // winning source id, -1 if unreached
  std::vector<Vertex> parent;   // BFS-tree parent, -1 for sources/unreached
};
MultiSourceBfsResult multi_source_bfs(const Graph& g,
                                      std::span<const Vertex> sources,
                                      Dist depth);

/// Eccentricity of `source` (max finite BFS distance).
Dist eccentricity(const Graph& g, Vertex source);

}  // namespace usne
