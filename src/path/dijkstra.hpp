#pragma once

// Dijkstra on weighted graphs — used to answer distance queries on
// emulators H, and in "hybrid" mode on H plus the original graph edges
// (emulator distances are defined on H alone; the hybrid mode exists for
// the distance-oracle application example).

#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Single-source Dijkstra on a weighted graph. Returns distances
/// (kInfDist when unreachable).
std::vector<Dist> dijkstra(const WeightedGraph& h, Vertex source);

/// Single-source Dijkstra over the union of a weighted graph and an
/// unweighted graph (unit weights). Used by the approximate-shortest-path
/// oracle: queries run on H ∪ G restricted to H's edges plus unit edges.
std::vector<Dist> dijkstra_union(const WeightedGraph& h, const Graph& g,
                                 Vertex source);

/// Point-to-point distance on a weighted graph (early-exit Dijkstra).
Dist dijkstra_distance(const WeightedGraph& h, Vertex source, Vertex target);

/// Dial's algorithm: single-source shortest paths with a bucket queue,
/// O(V + E + max_distance). The right tool for emulators, whose weights are
/// small integers (graph distances bounded by the delta_i thresholds) — it
/// removes Dijkstra's heap log-factor and makes distance queries on an
/// ultra-sparse H genuinely cheaper than BFS on a dense G (bench E8).
std::vector<Dist> dial_sssp(const WeightedGraph& h, Vertex source);

}  // namespace usne
