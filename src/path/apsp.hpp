#pragma once

// Exact all-pairs shortest paths for verification on small graphs.
//
// Stretch verification in the test suite is exact: we compare d_H (Dijkstra
// on H) against d_G (BFS from every vertex) for every pair. This module is
// only intended for n up to a few thousand.

#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Dense n x n distance matrix of an unweighted graph (BFS from each
/// vertex). kInfDist where unreachable.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  DistanceMatrix(Vertex n, std::vector<Dist> data)
      : n_(n), data_(std::move(data)) {}

  Dist at(Vertex u, Vertex v) const {
    return data_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(v)];
  }
  Vertex size() const { return n_; }

 private:
  Vertex n_ = 0;
  std::vector<Dist> data_;
};

/// Exact APSP on an unweighted graph.
DistanceMatrix apsp_unweighted(const Graph& g);

/// Exact APSP on a weighted graph (Dijkstra from each vertex).
DistanceMatrix apsp_weighted(const WeightedGraph& h);

}  // namespace usne
