#pragma once

// GAPBS-grade single-source shortest-path kernels for the serving hot path.
//
// The original dial_sssp (path/dijkstra.hpp) is a textbook Dial that
// allocates a fresh bucket-per-distance array every call and walks the
// adjacency through the lazy per-vertex accessor. At n >= 10^6 that is the
// whole serving cost, so these kernels apply the standard shared-memory
// SSSP engineering (the GAPBS / Meyer–Sanders delta-stepping lineage):
//
//  * flat frontier arrays over a packed CSR view (WeightedGraph::Csr) —
//    one offsets/arcs pair, iterated directly, next row prefetched;
//  * a circular bucket ring sized by the maximum edge weight (Dial) or by
//    max_w / delta (delta-stepping) instead of one bucket per distance
//    value, so bucket storage is O(W) not O(diameter * W);
//  * bucket fusion: the current bucket is drained to a fixpoint locally
//    (re-relaxed vertices that fall back into it are processed in the same
//    sweep) before the ring advances;
//  * reusable per-thread scratch (SsspScratch) — steady-state queries
//    allocate only the result vector they hand to the cache.
//
// Every kernel computes exact distances on H, so results are bit-identical
// to dial_sssp / dijkstra on every workload — enforced by
// tests/test_serve_kernels.cpp and the bench_scale checksum gates.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Kernel selector for serve::QueryEngine (ServeOptions::kernel).
enum class SsspKernel {
  kDial,   ///< circular-ring Dial: exact, O(V + E + diameter) bucket ops
  kDelta,  ///< delta-stepping with light/heavy split and bucket fusion
};

/// "dial" | "delta". Throws std::invalid_argument listing the names.
SsspKernel parse_sssp_kernel(const std::string& name);
const char* sssp_kernel_name(SsspKernel kernel) noexcept;

/// Reusable buffers for the flat-frontier kernels. One instance per serving
/// thread (the engine keeps them thread_local): buffers grow to the largest
/// (n, max_w/delta) seen and are recycled wholesale — a steady-state query
/// performs no frontier/bucket allocation.
class SsspScratch {
 public:
  /// Total bytes currently held by the scratch buffers (capacity, not
  /// size) — the per-thread memory cost the scale bench accounts for.
  std::int64_t resident_bytes() const noexcept;

 private:
  friend std::vector<Dist> dial_sssp_csr(const WeightedGraph::Csr& g,
                                         Vertex source, Dist max_w,
                                         SsspScratch& scratch);
  friend std::vector<Dist> delta_sssp_csr(const WeightedGraph::Csr& g,
                                          Vertex source, Dist max_w,
                                          Dist delta, SsspScratch& scratch);

  void reset_ring(std::size_t slots);
  /// Bumps the visit generation, resetting stamps lazily (O(n) only when
  /// the stamp array grows or the 32-bit generation wraps).
  void next_generation(std::size_t n);

  std::vector<std::vector<Vertex>> ring_;  // circular bucket frontiers
  std::vector<Vertex> frontier_;           // current bucket being drained
  std::vector<Vertex> settled_;            // per-bucket settled list (delta)
  std::vector<std::uint32_t> stamp_;       // visit generation per vertex
  std::uint32_t generation_ = 0;
};

/// Exact SSSP with a circular Dial ring of max_w + 1 flat buckets.
/// `max_w` must be >= the largest edge weight in g (pass max_edge_weight).
std::vector<Dist> dial_sssp_csr(const WeightedGraph::Csr& g, Vertex source,
                                Dist max_w, SsspScratch& scratch);

/// Exact delta-stepping: buckets of width `delta` (a power of two), light
/// edges (w <= delta) relaxed to a fixpoint within the bucket, heavy edges
/// once per settled vertex. delta = 1 degenerates to Dial. `max_w` must be
/// >= the largest edge weight in g.
std::vector<Dist> delta_sssp_csr(const WeightedGraph::Csr& g, Vertex source,
                                 Dist max_w, Dist delta, SsspScratch& scratch);

/// Largest edge weight in g (0 for an edgeless graph). One O(E) scan; the
/// engine computes it once at construction.
Dist max_edge_weight(const WeightedGraph::Csr& g) noexcept;

/// Heuristic bucket width for delta_sssp_csr: the mean edge weight rounded
/// up to a power of two (>= 1). Matches the GAPBS guidance that delta near
/// the average weight balances bucket count against re-relaxation.
Dist auto_delta(const WeightedGraph::Csr& g) noexcept;

/// Degree-descending vertex order for cache-friendly renumbering:
/// new_of_old[v] is v's new id when vertices are sorted by degree
/// (descending, ties by old id so the order is deterministic). Hot hubs
/// cluster at the front of the dist array and the CSR, which is what makes
/// the renumbered kernels prefetch-friendly on skewed graphs.
std::vector<Vertex> degree_sorted_order(const WeightedGraph::Csr& g);

/// The CSR of g with vertices renumbered by `new_of_old` (storage for the
/// result is appended to `offsets`/`arcs`, which must outlive the view).
WeightedGraph::Csr renumber_csr(const WeightedGraph::Csr& g,
                                const std::vector<Vertex>& new_of_old,
                                std::vector<std::int64_t>& offsets,
                                std::vector<WeightedGraph::Arc>& arcs);

}  // namespace usne
