#include "path/bfs.hpp"

#include <algorithm>
#include <cassert>

namespace usne {

std::vector<Dist> bfs_distances(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  std::vector<Vertex> queue;
  queue.reserve(static_cast<std::size_t>(n));
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const Dist dv = dist[static_cast<std::size_t>(v)];
    for (const Vertex u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == kInfDist) {
        dist[static_cast<std::size_t>(u)] = dv + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

void bounded_bfs(const Graph& g, Vertex source, Dist depth,
                 std::vector<Dist>& dist, std::vector<Vertex>& touched) {
  assert(dist.size() == static_cast<std::size_t>(g.num_vertices()));
  touched.clear();
  dist[static_cast<std::size_t>(source)] = 0;
  touched.push_back(source);
  // `touched` doubles as the BFS queue: vertices are appended in distance
  // order, so iterating it front-to-back is exactly the BFS order.
  for (std::size_t head = 0; head < touched.size(); ++head) {
    const Vertex v = touched[head];
    const Dist dv = dist[static_cast<std::size_t>(v)];
    if (dv >= depth) continue;
    for (const Vertex u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == kInfDist) {
        dist[static_cast<std::size_t>(u)] = dv + 1;
        touched.push_back(u);
      }
    }
  }
}

MultiSourceBfsResult multi_source_bfs(const Graph& g,
                                      std::span<const Vertex> sources,
                                      Dist depth) {
  const Vertex n = g.num_vertices();
  MultiSourceBfsResult result;
  result.dist.assign(static_cast<std::size_t>(n), kInfDist);
  result.source.assign(static_cast<std::size_t>(n), -1);
  result.parent.assign(static_cast<std::size_t>(n), -1);

  // Seed sources in ascending id order so that on equal distance the
  // smaller source id wins deterministically (queue order is stable).
  std::vector<Vertex> queue;
  std::vector<Vertex> sorted(sources.begin(), sources.end());
  std::sort(sorted.begin(), sorted.end());
  for (const Vertex s : sorted) {
    assert(s >= 0 && s < n);
    if (result.dist[static_cast<std::size_t>(s)] == 0) continue;  // duplicate
    result.dist[static_cast<std::size_t>(s)] = 0;
    result.source[static_cast<std::size_t>(s)] = s;
    queue.push_back(s);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    const Dist dv = result.dist[static_cast<std::size_t>(v)];
    if (dv >= depth) continue;
    for (const Vertex u : g.neighbors(v)) {
      if (result.dist[static_cast<std::size_t>(u)] == kInfDist) {
        result.dist[static_cast<std::size_t>(u)] = dv + 1;
        result.source[static_cast<std::size_t>(u)] =
            result.source[static_cast<std::size_t>(v)];
        result.parent[static_cast<std::size_t>(u)] = v;
        queue.push_back(u);
      }
    }
  }
  return result;
}

Dist eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  Dist ecc = 0;
  for (const Dist d : dist) {
    if (d != kInfDist) ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace usne
