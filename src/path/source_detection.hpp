#pragma once

// Centralized (S, d, k)-source detection (Lenzen–Peleg [LP13] semantics).
//
// For every vertex v, computes the k nearest sources within distance d,
// where "nearest" orders by (distance, source id) lexicographically — the
// deterministic specialization used throughout this repository.
//
// This is (a) the workhorse of the fast centralized construction (paper
// §3.3), which simulates the distributed algorithm without paying message
// passing, and (b) the ground truth against which the CONGEST Algorithm 2
// implementation is tested.
//
// Correctness of truncated propagation: if s is among the k best sources of
// v (by (dist, id)) via a shortest path through u, then s is among the k
// best sources of u — so finalizing entries in global (dist, id) order and
// keeping only k per vertex is exact.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// One detected source at a vertex.
struct SourceHit {
  Vertex source = -1;
  Dist dist = kInfDist;
  Vertex pred = -1;  // predecessor vertex on a shortest path (=-1 at source)

  friend bool operator==(const SourceHit&, const SourceHit&) = default;
};

/// Per-vertex detection lists.
class SourceDetection {
 public:
  SourceDetection() = default;
  SourceDetection(Vertex n, std::vector<std::vector<SourceHit>> hits)
      : n_(n), hits_(std::move(hits)) {}

  Vertex num_vertices() const { return n_; }

  /// The (<= k) nearest sources of v, sorted by (dist, source id).
  std::span<const SourceHit> at(Vertex v) const {
    return hits_[static_cast<std::size_t>(v)];
  }

  /// Distance from v to `source` if detected at v, else kInfDist.
  Dist distance_to(Vertex v, Vertex source) const;

  /// Reconstructs a shortest path from v back to `source` using predecessor
  /// pointers (empty if source not detected at v). The returned path is
  /// [v, ..., source].
  std::vector<Vertex> path_to(Vertex v, Vertex source) const;

 private:
  Vertex n_ = 0;
  std::vector<std::vector<SourceHit>> hits_;
};

/// Exact k-nearest-sources-within-d detection.
SourceDetection detect_sources(const Graph& g, std::span<const Vertex> sources,
                               Dist depth, std::size_t k);

}  // namespace usne
