#include "path/source_detection.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace usne {

Dist SourceDetection::distance_to(Vertex v, Vertex source) const {
  for (const SourceHit& hit : hits_[static_cast<std::size_t>(v)]) {
    if (hit.source == source) return hit.dist;
  }
  return kInfDist;
}

std::vector<Vertex> SourceDetection::path_to(Vertex v, Vertex source) const {
  std::vector<Vertex> path;
  Vertex cur = v;
  while (cur != -1) {
    path.push_back(cur);
    if (cur == source) return path;
    const auto& hits = hits_[static_cast<std::size_t>(cur)];
    const auto it = std::find_if(hits.begin(), hits.end(), [&](const SourceHit& h) {
      return h.source == source;
    });
    if (it == hits.end()) return {};  // source not detected along the chain
    cur = it->pred;
  }
  return {};
}

SourceDetection detect_sources(const Graph& g, std::span<const Vertex> sources,
                               Dist depth, std::size_t k) {
  const Vertex n = g.num_vertices();
  std::vector<std::vector<SourceHit>> hits(static_cast<std::size_t>(n));

  // Layered wavefront (no heap): entries of distance d are finalized in
  // stride d, within a stride sorted by source id — exactly the global
  // (dist, source) order of the definition. A vertex whose list is full
  // neither records nor forwards, which is safe by the prefix property
  // (see header): if s is among the k-nearest of v via a shortest path
  // through w, s is among the k-nearest of w. Work: O(|E| * k) arrivals
  // with O(k) dedup each, no log factor.
  struct Arrival {
    Vertex source;
    Vertex pred;
  };
  std::vector<std::vector<Arrival>> arrivals(static_cast<std::size_t>(n));
  std::vector<Vertex> touched;  // vertices with arrivals this stride

  // pending[v] = sources newly recorded at v in the previous stride.
  std::vector<std::vector<Vertex>> pending(static_cast<std::size_t>(n));
  std::vector<Vertex> active;

  std::vector<Vertex> sorted(sources.begin(), sources.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const Vertex s : sorted) {
    assert(s >= 0 && s < n);
    if (k == 0) break;
    hits[static_cast<std::size_t>(s)].push_back({s, 0, -1});
    pending[static_cast<std::size_t>(s)].push_back(s);
    active.push_back(s);
  }

  for (Dist d = 1; d <= depth && !active.empty(); ++d) {
    touched.clear();
    for (const Vertex v : active) {
      for (const Vertex src : pending[static_cast<std::size_t>(v)]) {
        for (const Vertex u : g.neighbors(v)) {
          auto& list = hits[static_cast<std::size_t>(u)];
          if (list.size() >= k) continue;  // full: never records more
          auto& in = arrivals[static_cast<std::size_t>(u)];
          if (in.empty()) touched.push_back(u);
          in.push_back({src, v});
        }
      }
      pending[static_cast<std::size_t>(v)].clear();
    }
    active.clear();

    std::sort(touched.begin(), touched.end());
    for (const Vertex u : touched) {
      auto& in = arrivals[static_cast<std::size_t>(u)];
      // Smallest source ids first; ties in pred resolved to the smallest
      // pred for determinism.
      std::sort(in.begin(), in.end(), [](const Arrival& a, const Arrival& b) {
        return a.source != b.source ? a.source < b.source : a.pred < b.pred;
      });
      auto& list = hits[static_cast<std::size_t>(u)];
      Vertex last = -1;
      for (const Arrival& a : in) {
        if (list.size() >= k) break;
        if (a.source == last) continue;  // duplicate within the stride
        last = a.source;
        bool known = false;
        for (const SourceHit& h : list) {
          if (h.source == a.source) {
            known = true;
            break;
          }
        }
        if (known) continue;
        list.push_back({a.source, d, a.pred});
        pending[static_cast<std::size_t>(u)].push_back(a.source);
      }
      in.clear();
      if (!pending[static_cast<std::size_t>(u)].empty()) active.push_back(u);
    }
  }

  for (auto& list : hits) {
    std::sort(list.begin(), list.end(), [](const SourceHit& a, const SourceHit& b) {
      return a.dist != b.dist ? a.dist < b.dist : a.source < b.source;
    });
  }
  return SourceDetection(n, std::move(hits));
}

}  // namespace usne
