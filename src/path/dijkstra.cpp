#include "path/dijkstra.hpp"

#include <queue>
#include <utility>
#include <vector>

namespace usne {
namespace {

using QueueEntry = std::pair<Dist, Vertex>;  // (distance, vertex), min-heap

using MinHeap =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

std::vector<Dist> dijkstra(const WeightedGraph& h, Vertex source) {
  const Vertex n = h.num_vertices();
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    for (const auto& arc : h.adjacency(v)) {
      const Dist nd = d + arc.w;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

std::vector<Dist> dijkstra_union(const WeightedGraph& h, const Graph& g,
                                 Vertex source) {
  const Vertex n = h.num_vertices();
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& arc : h.adjacency(v)) {
      const Dist nd = d + arc.w;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
    for (const Vertex u : g.neighbors(v)) {
      const Dist nd = d + 1;
      if (nd < dist[static_cast<std::size_t>(u)]) {
        dist[static_cast<std::size_t>(u)] = nd;
        heap.push({nd, u});
      }
    }
  }
  return dist;
}

std::vector<Dist> dial_sssp(const WeightedGraph& h, Vertex source) {
  const Vertex n = h.num_vertices();
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  // Buckets indexed by tentative distance; grown on demand. Total work is
  // O(V + E + max finite distance).
  std::vector<std::vector<Vertex>> buckets(1);
  dist[static_cast<std::size_t>(source)] = 0;
  buckets[0].push_back(source);
  std::size_t settled = 0;
  for (std::size_t d = 0; d < buckets.size(); ++d) {
    // Iterate by index: relaxations may grow `buckets` (and even this
    // bucket, though only with stale entries).
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const Vertex v = buckets[d][i];
      if (dist[static_cast<std::size_t>(v)] != static_cast<Dist>(d)) continue;
      ++settled;
      for (const auto& arc : h.adjacency(v)) {
        const Dist nd = static_cast<Dist>(d) + arc.w;
        if (nd < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          if (static_cast<std::size_t>(nd) >= buckets.size()) {
            buckets.resize(static_cast<std::size_t>(nd) + 1);
          }
          buckets[static_cast<std::size_t>(nd)].push_back(arc.to);
        }
      }
    }
    buckets[d].clear();
    buckets[d].shrink_to_fit();
    if (settled == static_cast<std::size_t>(n)) break;
  }
  return dist;
}

Dist dijkstra_distance(const WeightedGraph& h, Vertex source, Vertex target) {
  const Vertex n = h.num_vertices();
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (v == target) return d;
    if (d != dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& arc : h.adjacency(v)) {
      const Dist nd = d + arc.w;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return kInfDist;
}

}  // namespace usne
