#include "hopset/hopset.hpp"

#include <algorithm>

#include "path/bfs.hpp"

namespace usne {
namespace {

/// One Bellman–Ford relaxation round over G u H. Returns true if any
/// distance improved.
bool relax_round(const Graph& g, const WeightedGraph& h,
                 const std::vector<Dist>& current, std::vector<Dist>& next) {
  next = current;
  bool improved = false;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Dist dv = current[static_cast<std::size_t>(v)];
    if (dv >= kInfDist) continue;
    for (const Vertex u : g.neighbors(v)) {
      if (dv + 1 < next[static_cast<std::size_t>(u)]) {
        next[static_cast<std::size_t>(u)] = dv + 1;
        improved = true;
      }
    }
    if (h.num_edges() > 0) {
      for (const auto& arc : h.adjacency(v)) {
        if (dv + arc.w < next[static_cast<std::size_t>(arc.to)]) {
          next[static_cast<std::size_t>(arc.to)] = dv + arc.w;
          improved = true;
        }
      }
    }
  }
  return improved;
}

}  // namespace

std::vector<Dist> limited_hop_distances(const Graph& g, const WeightedGraph& h,
                                        Vertex source, int hops) {
  std::vector<Dist> current(static_cast<std::size_t>(g.num_vertices()), kInfDist);
  current[static_cast<std::size_t>(source)] = 0;
  std::vector<Dist> next;
  for (int i = 0; i < hops; ++i) {
    if (!relax_round(g, h, current, next)) break;
    current.swap(next);
  }
  return current;
}

HopboundReport measure_hopbound(const Graph& g, const WeightedGraph& h,
                                const std::vector<Vertex>& sources, double eps,
                                Dist beta, int max_hops) {
  HopboundReport report;

  // Exact distances per source (the budget baseline).
  std::vector<std::vector<Dist>> exact;
  exact.reserve(sources.size());
  for (const Vertex s : sources) exact.push_back(bfs_distances(g, s));
  for (const auto& d : exact) {
    for (const Dist x : d) {
      if (x != kInfDist && x > 0) ++report.pairs;
    }
  }

  // Incremental Bellman–Ford per source; after each round, check whether
  // every pair is within budget.
  std::vector<std::vector<Dist>> current(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    current[i].assign(static_cast<std::size_t>(g.num_vertices()), kInfDist);
    current[i][static_cast<std::size_t>(sources[i])] = 0;
  }
  std::vector<Dist> scratch;

  for (int hop = 1; hop <= max_hops; ++hop) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (relax_round(g, h, current[i], scratch)) current[i].swap(scratch);
    }
    bool all_ok = true;
    double worst = 1.0;
    for (std::size_t i = 0; i < sources.size() && all_ok; ++i) {
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const Dist d = exact[i][static_cast<std::size_t>(v)];
        if (d == kInfDist || d == 0) continue;
        const Dist got = current[i][static_cast<std::size_t>(v)];
        const double budget =
            (1.0 + eps) * static_cast<double>(d) + static_cast<double>(beta);
        if (static_cast<double>(got) > budget + 1e-9) {
          all_ok = false;
          break;
        }
        worst = std::max(worst, static_cast<double>(got) / static_cast<double>(d));
      }
    }
    if (all_ok) {
      report.hopbound = hop;
      report.worst_ratio = worst;
      return report;
    }
  }
  return report;
}

}  // namespace usne
