#pragma once

// Hopsets from near-additive emulators — the connection the paper's
// introduction highlights ("a strong connection between them and hopsets
// was discovered in [EN16a, EN17a, HP17]").
//
// For a weighted edge set H over the vertices of G, the h-hop-limited
// distance d^(h)_{G u H}(u, v) is the length of the shortest u-v path using
// at most h edges of G u H (graph edges have weight 1). H is a
// (beta, eps)-hopset if d^(beta)_{G u H}(u, v) <= (1+eps) d_G(u, v) for all
// pairs. Near-additive emulators act as hopsets: a single emulator edge
// spans up to delta_ell graph hops, so the hop-limited distance converges
// to (1+eps)d + beta within a small number of hops — the mechanism behind
// parallel/distributed shortest-path algorithms built on these objects
// ([Coh94, EN16a, ASZ20]).
//
// This module provides hop-limited Bellman–Ford evaluation and a hopbound
// measurement harness (bench E9, example).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Single-source hop-limited distances on G u H: exactly `hops` rounds of
/// Bellman–Ford, O(hops * (|E| + |H|)). H may be empty.
std::vector<Dist> limited_hop_distances(const Graph& g, const WeightedGraph& h,
                                        Vertex source, int hops);

/// Result of a hopbound measurement.
struct HopboundReport {
  /// Smallest h such that every evaluated pair satisfied
  /// d^(h) <= (1+eps) * d_G + beta; -1 if not reached within max_hops.
  int hopbound = -1;
  /// Worst d^(h)/d ratio at the returned hopbound.
  double worst_ratio = 0.0;
  std::int64_t pairs = 0;
};

/// Measures the hopbound of H as a hopset for G over all pairs from
/// `sources`: the smallest h with d^(h)(s, v) <= (1+eps) d_G(s, v) + beta.
/// Runs incremental Bellman–Ford per source (at most max_hops rounds).
HopboundReport measure_hopbound(const Graph& g, const WeightedGraph& h,
                                const std::vector<Vertex>& sources, double eps,
                                Dist beta, int max_hops);

}  // namespace usne
