#include "oracle/distance_oracle.hpp"

#include <cmath>

#include "core/emulator_fast.hpp"

namespace usne {
namespace {

DistributedParams oracle_params(const Graph& g, const OracleOptions& options) {
  const Vertex n = g.num_vertices();
  int kappa = options.kappa;
  if (kappa <= 0) {
    kappa = std::max(
        3, static_cast<int>(std::ceil(2.0 * std::log2(std::max<double>(n, 4)))));
  }
  return DistributedParams::compute(n, kappa, options.rho, options.eps);
}

serve::QueryEngine make_engine(const Graph& g, const DistributedParams& params,
                               const OracleOptions& options) {
  FastOptions fast_options;
  fast_options.keep_audit_data = false;
  serve::ServeOptions serve_options;
  serve_options.cache_mb = options.cache_mb;
  serve_options.cache_shards = options.cache_shards;
  return serve::QueryEngine(build_emulator_fast(g, params, fast_options).h,
                            params.schedule.alpha_bound(),
                            params.schedule.beta_bound(), serve_options);
}

}  // namespace

ApproxDistanceOracle::ApproxDistanceOracle(const Graph& g,
                                           OracleOptions options)
    : params_(oracle_params(g, options)),
      engine_(make_engine(g, params_, options)) {}

}  // namespace usne
