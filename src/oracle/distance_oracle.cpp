#include "oracle/distance_oracle.hpp"

#include <cmath>

#include "core/emulator_fast.hpp"
#include "path/dijkstra.hpp"

namespace usne {

ApproxDistanceOracle::ApproxDistanceOracle(const Graph& g, OracleOptions options) {
  const Vertex n = g.num_vertices();
  int kappa = options.kappa;
  if (kappa <= 0) {
    kappa = std::max(
        3, static_cast<int>(std::ceil(2.0 * std::log2(std::max<double>(n, 4)))));
  }
  params_ = DistributedParams::compute(n, kappa, options.rho, options.eps);
  FastOptions fast_options;
  fast_options.keep_audit_data = false;
  h_ = build_emulator_fast(g, params_, fast_options).h;
}

const std::vector<Dist>& ApproxDistanceOracle::query_all(Vertex source) const {
  if (!cached_source_ || *cached_source_ != source) {
    cached_dist_ = dial_sssp(h_, source);
    cached_source_ = source;
  }
  return cached_dist_;
}

Dist ApproxDistanceOracle::query(Vertex u, Vertex v) const {
  // Reuse the cache if either endpoint matches it (distances are symmetric).
  if (cached_source_ && *cached_source_ == v) {
    return cached_dist_[static_cast<std::size_t>(u)];
  }
  return query_all(u)[static_cast<std::size_t>(v)];
}

}  // namespace usne
