#pragma once

// Approximate distance oracle built on an ultra-sparse near-additive
// emulator — the application the paper's introduction motivates
// ("numerous applications for computing almost shortest paths").
//
// Since the serve subsystem landed, this class is a thin compatibility
// wrapper over serve::QueryEngine: preprocessing builds one emulator H
// with ~n + o(n) edges (fast §3.3 builder), and queries are delegated to
// the engine — Dial's bucket-queue SSSP on H behind a sharded LRU cache of
// per-source results. That replaces the old single-entry `mutable` cache,
// which was mutated without synchronization and therefore unsafe to query
// from two threads; every method here is now thread-safe. Every answer d
// satisfies
//
//   d_G(u,v) <= d <= alpha * d_G(u,v) + beta
//
// with (alpha, beta) reported by the oracle.
//
// Migration note: query_all() now returns a serve::SsspView *by value*
// (shared ownership of the cached vector) instead of a reference into the
// oracle. `const auto& all = oracle.query_all(s)` keeps working unchanged;
// code that spelled the type `const std::vector<Dist>&` should hold a
// SsspView (or use .vec()). New code should use serve::QueryEngine
// directly — engine() exposes the wrapped instance, including batch
// serving and cache statistics.

#include <cstdint>

#include "core/params.hpp"
#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"
#include "serve/query_engine.hpp"

namespace usne {

/// Tuning knobs for the oracle. Defaults target the ultra-sparse regime.
struct OracleOptions {
  /// Sparsity parameter; 0 = automatic (ceil(2 * log2 n), i.e. omega(log n)
  /// scale so |H| = n + o(n)).
  int kappa = 0;
  /// Running-time exponent of the §3.3 builder.
  double rho = 0.3;
  /// Internal eps of the schedule (see CentralizedParams::compute).
  double eps = 0.25;
  /// SSSP cache budget of the underlying engine (see serve::ServeOptions).
  double cache_mb = 64.0;
  /// Cache lock shards (0 = engine default).
  int cache_shards = 0;
};

/// Preprocess-once / query-many approximate distance oracle. Thread-safe:
/// any number of threads may query concurrently.
class ApproxDistanceOracle {
 public:
  /// Builds the emulator. Throws std::invalid_argument on bad options.
  explicit ApproxDistanceOracle(const Graph& g, OracleOptions options = {});

  /// Point-to-point approximate distance (kInfDist if disconnected).
  Dist query(Vertex u, Vertex v) const { return engine_.query(u, v); }

  /// All approximate distances from `source` (cached; shared ownership —
  /// see the migration note above).
  serve::SsspView query_all(Vertex source) const {
    return serve::SsspView(engine_.query_all(source));
  }

  /// The stretch guarantee of every answer.
  double alpha() const { return params_.schedule.alpha_bound(); }
  Dist beta() const { return params_.schedule.beta_bound(); }

  /// The underlying emulator.
  const WeightedGraph& emulator() const { return engine_.emulator(); }
  std::int64_t emulator_edges() const { return emulator().num_edges(); }
  int kappa() const { return params_.kappa; }

  /// The serving engine answering the queries (batch API, cache stats).
  const serve::QueryEngine& engine() const { return engine_; }

 private:
  // Computed before engine_ (member order matters: the engine is built
  // from the emulator these params produce).
  DistributedParams params_;
  serve::QueryEngine engine_;
};

}  // namespace usne
