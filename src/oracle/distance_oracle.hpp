#pragma once

// Approximate distance oracle built on an ultra-sparse near-additive
// emulator — the application the paper's introduction motivates
// ("numerous applications for computing almost shortest paths").
//
// Preprocessing builds one emulator H with ~n + o(n) edges (fast §3.3
// builder); queries run Dial's bucket-queue SSSP on H, so per-query cost
// depends on n (and the small emulator weights), not on |E(G)|. Every
// answer d satisfies
//
//   d_G(u,v) <= d <= alpha * d_G(u,v) + beta
//
// with (alpha, beta) reported by the oracle. Single-source results are
// cached, so query streams grouped by source cost one SSSP each.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// Tuning knobs for the oracle. Defaults target the ultra-sparse regime.
struct OracleOptions {
  /// Sparsity parameter; 0 = automatic (ceil(2 * log2 n), i.e. omega(log n)
  /// scale so |H| = n + o(n)).
  int kappa = 0;
  /// Running-time exponent of the §3.3 builder.
  double rho = 0.3;
  /// Internal eps of the schedule (see CentralizedParams::compute).
  double eps = 0.25;
};

/// Preprocess-once / query-many approximate distance oracle.
class ApproxDistanceOracle {
 public:
  /// Builds the emulator. Throws std::invalid_argument on bad options.
  explicit ApproxDistanceOracle(const Graph& g, OracleOptions options = {});

  /// Point-to-point approximate distance (kInfDist if disconnected).
  Dist query(Vertex u, Vertex v) const;

  /// All approximate distances from `source` (cached).
  const std::vector<Dist>& query_all(Vertex source) const;

  /// The stretch guarantee of every answer.
  double alpha() const { return params_.schedule.alpha_bound(); }
  Dist beta() const { return params_.schedule.beta_bound(); }

  /// The underlying emulator.
  const WeightedGraph& emulator() const { return h_; }
  std::int64_t emulator_edges() const { return h_.num_edges(); }
  int kappa() const { return params_.kappa; }

 private:
  DistributedParams params_;
  WeightedGraph h_;
  // Single-entry SSSP cache: query streams are typically grouped by source.
  mutable std::optional<Vertex> cached_source_;
  mutable std::vector<Dist> cached_dist_;
};

}  // namespace usne
