#include "core/emulator_distributed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/engine.hpp"
#include "congest/ruling_set.hpp"

namespace usne {
namespace {

using congest::BfsForest;
using congest::DetectResult;
using congest::Message;
using congest::Network;
using congest::NodeProgram;
using congest::Outbox;
using congest::Received;
using congest::RulingSet;
using congest::Scheduler;
using congest::Word;

// Message tags used by the backtracking convergecast / notification epochs.
// (Disjoint from the tags of the congest/ primitives.)
constexpr Word kUp = 10;         // <kUp, origin, origin_depth>
constexpr Word kNotify = 11;     // <kNotify, origin, center, weight>  routed
constexpr Word kGroupEdge = 12;  // <kGroupEdge, center, origin, weight>  broadcast

/// An up-travelling convergecast message.
struct UpMsg {
  Vertex origin = -1;
  Dist origin_depth = 0;
};

/// State shared across the helpers of one build.
struct Builder {
  const Graph* g = nullptr;
  const DistributedParams* params = nullptr;
  DistributedOptions options;
  Network net;
  DistributedBuildResult out;

  // Phase-local: clusters of P_i and index-by-center.
  std::vector<Cluster> current;
  std::vector<std::int32_t> cluster_of;  // center -> index in current, else -1
  std::vector<bool> superclustered;      // per center, this phase

  explicit Builder(const Graph& graph) : g(&graph), net(graph) {}

  void log_edge(Vertex u, Vertex v, Dist w, int phase, EdgeKind kind,
                Vertex charged) {
    out.base.h.add_edge(u, v, w);
    if (options.keep_audit_data) {
      out.base.edge_log.push_back({u, v, w, phase, kind, charged});
    }
  }

  void learn_local(Vertex v, Vertex other, Dist w) {
    auto& list = out.local[static_cast<std::size_t>(v)];
    for (auto& [o, weight] : list) {
      if (o == other) {
        weight = std::min(weight, w);
        return;
      }
    }
    list.emplace_back(other, w);
  }

  bool is_center(Vertex v) const {
    const std::int32_t c = cluster_of[static_cast<std::size_t>(v)];
    return c != -1 && current[static_cast<std::size_t>(c)].center == v;
  }
};

/// State shared between the two engine programs of Task 3's second half:
/// the up-cast collection, per-origin routing, down-cast queues, and the
/// supercluster-forming helpers.
struct BacktrackCtx {
  Builder& b;
  const BfsForest& forest;
  int phase;
  PhaseStats& stats;
  std::vector<Cluster>& next;

  Dist depth_limit = 0;
  std::int64_t hub_threshold = 0;
  std::int64_t stride_rounds = 0;

  std::vector<std::vector<Vertex>> children;
  // Vertices bucketed by tree depth (senders of stride s have depth
  // depth_limit - s).
  std::vector<std::vector<Vertex>> by_depth;
  // Collected messages and per-origin routing (which child delivered it).
  std::vector<std::vector<UpMsg>> collected;
  std::vector<std::map<Vertex, Vertex>> route;
  // Down-notification queues: per (node, neighbour) pipelines.
  congest::PipelinedQueues<Message> down;

  BacktrackCtx(Builder& builder, const BfsForest& f, int ph, double deg,
               PhaseStats& st, std::vector<Cluster>& nxt)
      : b(builder), forest(f), phase(ph), stats(st), next(nxt) {
    const Graph& g = *b.g;
    const Vertex n = g.num_vertices();
    const Dist delta = b.params->schedule.delta[static_cast<std::size_t>(ph)];
    const Dist rul = b.params->rul[static_cast<std::size_t>(ph)];
    depth_limit = rul + delta;
    const std::int64_t capdeg =
        static_cast<std::int64_t>(std::ceil(deg - 1e-9));
    const std::int64_t factor = std::max(1, b.options.hub_threshold_factor);
    hub_threshold = factor * capdeg + 2;
    stride_rounds = factor * capdeg + 2;

    children = forest.children();
    by_depth.resize(static_cast<std::size_t>(depth_limit) + 1);
    for (Vertex v = 0; v < n; ++v) {
      if (forest.spanned(v) && forest.depth[static_cast<std::size_t>(v)] > 0) {
        by_depth[static_cast<std::size_t>(
                     forest.depth[static_cast<std::size_t>(v)])]
            .push_back(v);
      }
    }
    collected.resize(static_cast<std::size_t>(n));
    route.resize(static_cast<std::size_t>(n));
    down.resize(n);
    // Seed: every spanned center holds its own message.
    for (Vertex v = 0; v < n; ++v) {
      if (forest.spanned(v) && b.is_center(v)) {
        collected[static_cast<std::size_t>(v)].push_back(
            {v, forest.depth[static_cast<std::size_t>(v)]});
      }
    }
  }

  void enqueue_down(Vertex from, Vertex to, const Message& m) {
    down.push(from, to, m);
  }

  Cluster& new_super(Vertex center) {
    Cluster c;
    c.center = center;
    next.push_back(std::move(c));
    return next.back();
  }

  void join(Cluster& super, Vertex origin) {
    const Cluster& cl = b.current[static_cast<std::size_t>(
        b.cluster_of[static_cast<std::size_t>(origin)])];
    super.members.insert(super.members.end(), cl.members.begin(),
                         cl.members.end());
    b.superclustered[static_cast<std::size_t>(origin)] = true;
  }
};

/// The backtracking convergecast (Task 3 second half, up direction) as a
/// NodeProgram: depth_limit strides of stride_rounds rounds. At each stride
/// boundary the next depth layer makes its hub decisions centrally (a hub
/// splits and forms superclusters on the spot); within a stride the
/// surviving senders pipeline one collected <origin, depth> message per
/// round toward their parents.
///
/// Parallel audit: on_round appends only to collected[v] and route[v] —
/// state keyed by the receiving vertex — so the fan-out is race-free as
/// is. Hub decisions and all shared-state mutation live in end_round
/// (serial).
class BacktrackProgram final : public NodeProgram {
 public:
  explicit BacktrackProgram(BacktrackCtx& ctx)
      : ctx_(ctx), total_rounds_(ctx.depth_limit * ctx.stride_rounds) {}

  void init(Outbox& out) override {
    if (total_rounds_ == 0) return;
    hub_decide(0);
    send_entries(0, out);
  }

  void on_round(std::int64_t, Vertex v, std::span<const Received> inbox,
                Outbox&) override {
    for (const Received& r : inbox) {
      if (r.msg.words[0] != kUp) continue;
      const Vertex origin = static_cast<Vertex>(r.msg.words[1]);
      ctx_.collected[static_cast<std::size_t>(v)].push_back(
          {origin, r.msg.words[2]});
      ctx_.route[static_cast<std::size_t>(v)][origin] = r.from;
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    if (round + 1 >= total_rounds_) return;
    const std::int64_t t = round % ctx_.stride_rounds;
    if (t == ctx_.stride_rounds - 1) {
      hub_decide(round / ctx_.stride_rounds + 1);
      send_entries(0, out);
    } else {
      send_entries(t + 1, out);
    }
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= total_rounds_;
  }

 private:
  void send_entries(std::int64_t t, Outbox& out) {
    for (const auto& [v, msgs] : to_send_) {
      if (static_cast<std::int64_t>(msgs.size()) > t) {
        const UpMsg& um = msgs[static_cast<std::size_t>(t)];
        out.send(v, ctx_.forest.parent[static_cast<std::size_t>(v)],
                 Message::of(kUp, um.origin, um.origin_depth));
      }
    }
  }

  /// Hub decisions for stride `s` happen at send time: a sender holding >=
  /// hub_threshold messages splits from its tree and forms superclusters
  /// locally instead of forwarding.
  void hub_decide(Dist s) {
    BacktrackCtx& c = ctx_;
    Builder& b = c.b;
    const Dist sender_depth = c.depth_limit - s;
    const auto& senders = c.by_depth[static_cast<std::size_t>(sender_depth)];

    to_send_.clear();
    for (const Vertex v : senders) {
      auto& m = c.collected[static_cast<std::size_t>(v)];
      if (m.empty()) continue;
      if (static_cast<std::int64_t>(m.size()) < c.hub_threshold) {
        to_send_.emplace_back(v, std::move(m));
        m.clear();
        continue;
      }

      // --- v is a hub. ---
      ++c.stats.hub_events;
      const Dist dv = c.forest.depth[static_cast<std::size_t>(v)];
      if (b.is_center(v)) {
        // v forms a single supercluster around itself.
        Cluster& super = c.new_super(v);
        c.join(super, v);
        for (const UpMsg& um : m) {
          if (um.origin == v) continue;
          const Dist w = um.origin_depth - dv;
          b.log_edge(v, um.origin, w, c.phase, EdgeKind::kSupercluster,
                     um.origin);
          ++c.stats.supercluster_edges;
          b.learn_local(v, um.origin, w);
          c.join(super, um.origin);
          c.enqueue_down(v, c.route[static_cast<std::size_t>(v)][um.origin],
                         Message::of(kNotify, um.origin, v, w));
        }
      } else {
        // Partition children greedily into groups of message count in
        // [2deg+2, 6deg+6]; one supercluster per group.
        std::map<Vertex, std::vector<UpMsg>> per_child;
        for (const UpMsg& um : m) {
          per_child[c.route[static_cast<std::size_t>(v)][um.origin]].push_back(
              um);
        }
        std::vector<std::vector<Vertex>> groups;  // children per group
        std::vector<std::int64_t> group_count;
        groups.emplace_back();
        group_count.push_back(0);
        for (const auto& [child, msgs] : per_child) {
          groups.back().push_back(child);
          group_count.back() += static_cast<std::int64_t>(msgs.size());
          if (group_count.back() >= c.hub_threshold) {
            groups.emplace_back();
            group_count.push_back(0);
          }
        }
        if (group_count.back() < c.hub_threshold && groups.size() > 1) {
          // Merge the underfull tail group into its predecessor.
          auto tail = std::move(groups.back());
          groups.pop_back();
          group_count[groups.size() - 1] += group_count.back();
          group_count.pop_back();
          for (const Vertex child : tail) groups.back().push_back(child);
        }
        for (const auto& group : groups) {
          // Z_j: origins delivered via this group's children.
          std::vector<UpMsg> z;
          for (const Vertex child : group) {
            const auto& msgs = per_child[child];
            z.insert(z.end(), msgs.begin(), msgs.end());
          }
          if (z.empty()) continue;
          const Vertex r =
              std::min_element(z.begin(), z.end(),
                               [](const UpMsg& a, const UpMsg& x) {
                                 return a.origin < x.origin;
                               })
                  ->origin;
          Dist r_depth = 0;
          for (const UpMsg& um : z) {
            if (um.origin == r) r_depth = um.origin_depth;
          }
          Cluster& super = c.new_super(r);
          for (const UpMsg& um : z) {
            c.join(super, um.origin);
            if (um.origin == r) continue;
            const Dist w = (um.origin_depth - dv) + (r_depth - dv);
            b.log_edge(r, um.origin, w, c.phase, EdgeKind::kSupercluster,
                       um.origin);
            ++c.stats.supercluster_edges;
          }
          // Broadcast <center, origin, weight> down the group's subtrees;
          // every member of Z_j (including r) learns its part.
          for (const Vertex child : group) {
            for (const UpMsg& um : z) {
              if (um.origin == r) continue;
              const Dist w = (um.origin_depth - dv) + (r_depth - dv);
              c.enqueue_down(v, child, Message::of(kGroupEdge, r, um.origin, w));
            }
          }
        }
      }
      m.clear();
    }
  }

  BacktrackCtx& ctx_;
  std::int64_t total_rounds_ = 0;
  std::vector<std::pair<Vertex, std::vector<UpMsg>>> to_send_;
};

/// The notification epoch (Task 3 down direction) as a NodeProgram: routed
/// kNotify messages retrace the convergecast routes to their origins and
/// kGroupEdge broadcasts flood whole subtrees, all pipelined one message
/// per edge per round. The schedule is fixed (depth_limit + 4*factor*capdeg
/// + 16 rounds) but ends early once every queue has drained.
///
/// Parallel audit: on_round writes b.out.local[v] (per-vertex) and pushes
/// into the down-cast pipeline keyed by v — PipelinedQueues::push is safe
/// for concurrent distinct sources (atomic item counter). route/children
/// are only read here.
class NotifyProgram final : public NodeProgram {
 public:
  NotifyProgram(BacktrackCtx& ctx, std::int64_t epoch)
      : ctx_(ctx), epoch_(epoch) {}

  void init(Outbox& out) override { send_phase(out); }

  void on_round(std::int64_t, Vertex v, std::span<const Received> inbox,
                Outbox&) override {
    BacktrackCtx& c = ctx_;
    for (const Received& r : inbox) {
      const Word tag = r.msg.words[0];
      if (tag == kNotify) {
        const Vertex origin = static_cast<Vertex>(r.msg.words[1]);
        const Vertex center = static_cast<Vertex>(r.msg.words[2]);
        const Dist w = r.msg.words[3];
        if (origin == v) {
          c.b.learn_local(v, center, w);
        } else {
          c.enqueue_down(v, c.route[static_cast<std::size_t>(v)][origin],
                         r.msg);
        }
      } else if (tag == kGroupEdge) {
        const Vertex center = static_cast<Vertex>(r.msg.words[1]);
        const Vertex origin = static_cast<Vertex>(r.msg.words[2]);
        const Dist w = r.msg.words[3];
        if (v == center) c.b.learn_local(v, origin, w);
        if (v == origin) c.b.learn_local(v, center, w);
        for (const Vertex child : c.children[static_cast<std::size_t>(v)]) {
          c.enqueue_down(v, child, r.msg);
        }
      }
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    if ((!any_sent_ && ctx_.down.queued() == 0) || round + 1 >= epoch_) {
      finished_ = true;
      return;
    }
    send_phase(out);
  }

  bool done(std::int64_t) const override { return finished_; }

 private:
  void send_phase(Outbox& out) {
    any_sent_ = ctx_.down.drain_round(
        [&](Vertex from, Vertex to, const Message& msg) {
          out.send(from, to, msg);
        });
  }

  BacktrackCtx& ctx_;
  std::int64_t epoch_;
  bool any_sent_ = false;
  bool finished_ = false;
};

/// Runs the backtracking convergecast with hub splitting (Task 3 second
/// half) through the engine. Fills `next` with the new superclusters and
/// marks joined centers.
void backtrack_superclusters(Builder& b, const BfsForest& forest, int phase,
                             double deg, PhaseStats& stats,
                             std::vector<Cluster>& next) {
  BacktrackCtx ctx(b, forest, phase, deg, stats, next);
  Scheduler scheduler(b.net);

  // ---- Strides (up-cast) ----
  BacktrackProgram up(ctx);
  scheduler.run(up);

  // ---- Root consumption ----
  const Vertex n = b.g->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (!forest.spanned(v) || forest.depth[static_cast<std::size_t>(v)] != 0) {
      continue;
    }
    auto& m = ctx.collected[static_cast<std::size_t>(v)];
    // The root is popular (ruling set member), so it always forms its
    // supercluster, even if every neighbour was consumed by hubs.
    Cluster& super = ctx.new_super(v);
    if (b.is_center(v)) ctx.join(super, v);
    for (const UpMsg& um : m) {
      if (um.origin == v) continue;
      const Dist w = um.origin_depth;  // root depth is 0; exact BFS distance
      b.log_edge(v, um.origin, w, phase, EdgeKind::kSupercluster, um.origin);
      ++stats.supercluster_edges;
      b.learn_local(v, um.origin, w);
      ctx.join(super, um.origin);
      ctx.enqueue_down(v, ctx.route[static_cast<std::size_t>(v)][um.origin],
                       Message::of(kNotify, um.origin, v, w));
    }
    m.clear();
  }

  // ---- Notification epoch (down-cast) ----
  const std::int64_t capdeg = static_cast<std::int64_t>(std::ceil(deg - 1e-9));
  const std::int64_t factor = std::max(1, b.options.hub_threshold_factor);
  const std::int64_t epoch = ctx.depth_limit + 4 * factor * capdeg + 16;
  NotifyProgram down(ctx, epoch);
  scheduler.run(down);

  // Drain check: all queues must be empty within the fixed epoch — under
  // lossless synchronous delivery. A faulty/async transport may delay
  // arrivals past the epoch, legitimately marooning queued notifications.
  assert(ctx.down.queued() == 0 || !b.net.transport().ideal());
}

}  // namespace

bool endpoints_know_all_edges(
    const WeightedGraph& h,
    const std::vector<std::vector<std::pair<Vertex, Dist>>>& local) {
  for (const WeightedEdge& e : h.edges()) {
    bool at_u = false;
    bool at_v = false;
    for (const auto& [o, w] : local[static_cast<std::size_t>(e.u)]) {
      if (o == e.v && w == e.w) at_u = true;
    }
    for (const auto& [o, w] : local[static_cast<std::size_t>(e.v)]) {
      if (o == e.u && w == e.w) at_v = true;
    }
    if (!at_u || !at_v) return false;
  }
  return true;
}

bool DistributedBuildResult::endpoints_consistent() const {
  return endpoints_know_all_edges(base.h, local);
}

DistributedBuildResult build_emulator_distributed(
    const Graph& g, const DistributedParams& params,
    const DistributedOptions& options) {
  const Vertex n = g.num_vertices();
  if (params.n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const PhaseSchedule& sched = params.schedule;
  const int ell = sched.ell();

  Builder b(g);
  b.params = &params;
  b.options = options;
  b.net.set_execution_threads(options.num_threads);
  b.net.configure_transport(options.transport);
  b.out.base.h = WeightedGraph(n);
  b.out.base.u_level.assign(static_cast<std::size_t>(n), -1);
  b.out.base.u_center.assign(static_cast<std::size_t>(n), -1);
  b.out.local.assign(static_cast<std::size_t>(n), {});
  b.cluster_of.assign(static_cast<std::size_t>(n), -1);

  b.current = singleton_partition(n);
  if (options.keep_audit_data) b.out.base.partitions.push_back(b.current);

  // Construction profiling: the schedulers of every task accumulate stage
  // times into one sink on the network; prof_snap cuts a labeled per-task
  // delta — the exact pattern the round metering below uses with
  // b.net.stats().rounds.
  congest::StageTimes prof_acc;
  congest::StageTimes prof_mark;
  if (options.profile) b.net.set_profile_sink(&prof_acc);
  const auto prof_snap = [&](int phase, const char* task) {
    if (!options.profile) return;
    b.out.profile.push_back(
        {"p" + std::to_string(phase) + "." + task, prof_acc - prof_mark});
    prof_mark = prof_acc;
  };

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];
    const std::int64_t cap =
        static_cast<std::int64_t>(std::ceil(deg_i - 1e-9)) + 1;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(b.current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    for (std::size_t c = 0; c < b.current.size(); ++c) {
      centers.push_back(b.current[c].center);
      b.cluster_of[static_cast<std::size_t>(b.current[c].center)] =
          static_cast<std::int32_t>(c);
    }
    std::sort(centers.begin(), centers.end());
    b.superclustered.assign(static_cast<std::size_t>(n), false);

    // Task 1: popular-cluster detection.
    std::int64_t mark = b.net.stats().rounds;
    const DetectResult det1 = congest::detect_congest(b.net, centers, delta_i, cap);
    stats.rounds_detect = b.net.stats().rounds - mark;
    prof_snap(i, "detect");

    std::vector<Vertex> popular;
    for (const Vertex c : centers) {
      if (static_cast<double>(det1.heard_others(c)) + 1e-9 >= deg_i) {
        popular.push_back(c);
      }
    }
    stats.popular = static_cast<std::int64_t>(popular.size());

    std::vector<Cluster> next;
    if (i < ell && !popular.empty()) {
      // Task 2: ruling set.
      mark = b.net.stats().rounds;
      const RulingSet ruling = congest::compute_ruling_set(
          b.net, popular, 2 * delta_i, params.ruling_base);
      stats.rounds_ruling = b.net.stats().rounds - mark;
      prof_snap(i, "ruling");

      // Task 3: BFS forest + backtracking with hub splitting.
      mark = b.net.stats().rounds;
      const Dist rul_i = params.rul[static_cast<std::size_t>(i)];
      const BfsForest forest =
          congest::build_bfs_forest(b.net, ruling.members, rul_i + delta_i);
      stats.rounds_forest = b.net.stats().rounds - mark;
      prof_snap(i, "forest");

      mark = b.net.stats().rounds;
      backtrack_superclusters(b, forest, i, deg_i, stats, next);
      stats.rounds_backtrack = b.net.stats().rounds - mark;
      prof_snap(i, "backtrack");
    }

    // Interconnection. U_i = clusters never superclustered.
    std::vector<Vertex> u_centers;
    for (const Vertex c : centers) {
      if (!b.superclustered[static_cast<std::size_t>(c)]) u_centers.push_back(c);
    }
    stats.unclustered = static_cast<std::int64_t>(u_centers.size());

    mark = b.net.stats().rounds;
    if (i < ell) {
      // Second detection run so the non-U side learns the edges too.
      const DetectResult det2 =
          congest::detect_congest(b.net, u_centers, delta_i, cap);
      for (const Vertex c : u_centers) {
        const Cluster& cl = b.current[static_cast<std::size_t>(
            b.cluster_of[static_cast<std::size_t>(c)])];
        for (const Vertex m : cl.members) {
          b.out.base.u_level[static_cast<std::size_t>(m)] = i;
          b.out.base.u_center[static_cast<std::size_t>(m)] = c;
        }
        for (const SourceHit& h : det1.hits[static_cast<std::size_t>(c)]) {
          if (h.source == c) continue;
          b.log_edge(c, h.source, h.dist, i, EdgeKind::kInterconnect, c);
          ++stats.interconnect_edges;
          b.learn_local(c, h.source, h.dist);
        }
      }
      // Reverse knowledge from det2.
      for (const Vertex c : centers) {
        for (const SourceHit& h : det2.hits[static_cast<std::size_t>(c)]) {
          if (h.source == c) continue;
          b.learn_local(c, h.source, h.dist);
        }
      }
    } else {
      // Last phase: everyone is in U_ell; det1 already gave symmetric
      // knowledge (all clusters unpopular).
      for (const Vertex c : u_centers) {
        const Cluster& cl = b.current[static_cast<std::size_t>(
            b.cluster_of[static_cast<std::size_t>(c)])];
        for (const Vertex m : cl.members) {
          b.out.base.u_level[static_cast<std::size_t>(m)] = i;
          b.out.base.u_center[static_cast<std::size_t>(m)] = c;
        }
        for (const SourceHit& h : det1.hits[static_cast<std::size_t>(c)]) {
          if (h.source == c) continue;
          b.log_edge(c, h.source, h.dist, i, EdgeKind::kInterconnect, c);
          ++stats.interconnect_edges;
          b.learn_local(c, h.source, h.dist);
        }
      }
    }
    stats.rounds_interconnect = b.net.stats().rounds - mark;
    prof_snap(i, "interconnect");

    for (const Vertex c : centers) b.cluster_of[static_cast<std::size_t>(c)] = -1;
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    stats.rounds = stats.rounds_detect + stats.rounds_ruling +
                   stats.rounds_forest + stats.rounds_backtrack +
                   stats.rounds_interconnect;
    b.out.base.phases.push_back(stats);
    b.current = std::move(next);
    if (options.keep_audit_data) b.out.base.partitions.push_back(b.current);
  }

  assert(b.current.empty());
  b.net.set_profile_sink(nullptr);
  b.out.base.total_rounds = b.net.stats().rounds;
  b.out.net = b.net.stats();
  b.out.transport = b.net.transport().counters();
  return b.out;
}

}  // namespace usne
