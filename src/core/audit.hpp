#pragma once

// Invariant auditors mirroring the paper's analysis:
//
//   Lemma 2.1 / 3.5:  superclusters contain >= deg_i + 1 clusters
//                     (root superclusters; hub superclusters >= 2deg_i + 2),
//   Lemma 2.2:        superclusters of a phase are pairwise disjoint,
//   Lemma 2.5 / 3.8:  Rad(P_i) <= R_i (cluster radii measured in H),
//   Lemma 2.8:        P_i u U^(i-1) is a partition of V,
//   Lemma 2.9:        partitions are laminar across phases,
//   eq. (2)-(4)/(18): per-phase edge counts within the charging bounds,
//   Lemma 2.4 / eq. (19): |H| <= n^(1+1/kappa).
//
// The auditors consume the BuildResult bundle produced with
// keep_audit_data=true and report human-readable failures.

#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Outcome of an audit: ok() iff no failure messages.
struct AuditReport {
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string to_string() const;
  void fail(std::string message) { failures.push_back(std::move(message)); }
};

/// Checks partition validity of every snapshot and that the U-levels tile V
/// (Lemma 2.8 + the final U^(ell) partition).
AuditReport audit_partitions(const BuildResult& result, Vertex n);

/// Checks laminarity: every cluster of P_{i+1} is a union of clusters of
/// P_i (Lemma 2.9).
AuditReport audit_laminarity(const BuildResult& result);

/// Checks cluster radii against the schedule's R_i, measured as distances
/// in H from the cluster center to members (Lemma 2.5 / 3.8).
/// Radii are verified on P_i snapshots for i in [1, ell].
AuditReport audit_radii(const BuildResult& result, const PhaseSchedule& sched);

/// Checks the per-phase charging bounds: interconnection insertions
/// <= |U_i| * deg_i and superclustering insertions <= |P_i| - |P_{i+1}|
/// (counted per insertion attempt, as in the analysis), plus the total
/// size bound |H| <= n^(1+1/kappa).
AuditReport audit_charging(const BuildResult& result, Vertex n, int kappa);

/// Checks every emulator edge weight is >= the exact distance in G
/// (emulator validity) — and == when `exact` is set (centralized builds).
AuditReport audit_edge_weights(const BuildResult& result, const Graph& g,
                               bool exact);

/// Runs all audits applicable to an emulator build.
AuditReport audit_all(const BuildResult& result, const Graph& g,
                      const PhaseSchedule& sched, int kappa, bool exact_weights);

}  // namespace usne
