#pragma once

// Near-additive spanners — the paper's §4.
//
// Same SAI skeleton as the emulator, but every insertion of a weighted
// emulator edge (u, v, d) is replaced by inserting an actual u-v path of
// length <= d from G, so H is a *subgraph* of G:
//   * superclustering: the root-paths of joining centers inside the BFS
//     forest F_i (<= n-1 forest edges per phase);
//   * interconnection: the recorded shortest path between the two centers.
//
// The §4 construction uses the [EN17a]-style degree sequence (SpannerParams:
// gamma = max{2, log log kappa}, transition phase n^(rho/2)), which makes
// the per-phase interconnection path cost decay geometrically and yields
// O(n^(1+1/kappa)) total edges. Running the *same* skeleton with the §3
// degree sequence instead reproduces the [EM19] baseline with its
// O(beta * n^(1+1/kappa)) edges — the comparison of bench E5.
//
// Both builders run as centralized simulations of the distributed algorithm
// (paper §3.3); round schedules are inherited from the §3 construction.

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

struct SpannerOptions {
  bool keep_audit_data = true;
};

/// §4 spanner with the [EN17a] degree sequence. All edges have weight 1 and
/// exist in G.
BuildResult build_spanner(const Graph& g, const SpannerParams& params,
                          const SpannerOptions& options = {});

/// [EM19] baseline: the same path-insertion skeleton driven by the §3
/// degree sequence. Edge count is Theta(beta) times larger at equal kappa.
BuildResult build_spanner_em19(const Graph& g, const DistributedParams& params,
                               const SpannerOptions& options = {});

/// True if every edge of h is an edge of g (the spanner subgraph property).
bool is_subgraph(const WeightedGraph& h, const Graph& g);

}  // namespace usne
