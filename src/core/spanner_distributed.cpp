#include "core/spanner_distributed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/ruling_set.hpp"

namespace usne {
namespace {

using congest::BfsForest;
using congest::DetectResult;
using congest::Message;
using congest::Network;
using congest::Received;
using congest::RulingSet;
using congest::Word;

constexpr Word kJoinMark = 20;  // <kJoinMark>            up the forest
constexpr Word kPathMark = 21;  // <kPathMark, source>    along pred chains

/// Superclustering mark-up-cast: every spanned center holds a mark; marks
/// propagate one hop per round toward the roots with per-vertex dedup, so
/// each tree edge carries at most one kJoinMark ever. Every vertex that
/// held a mark adds its parent edge. Runs exactly `depth_limit` rounds.
void markupcast(Network& net, const BfsForest& forest,
                const std::vector<bool>& is_center, Dist depth_limit,
                WeightedGraph& h, std::vector<ChargedEdge>* log, int phase,
                std::int64_t& edge_counter) {
  const Vertex n = net.num_vertices();
  std::vector<bool> marked(static_cast<std::size_t>(n), false);
  std::vector<Vertex> fresh;  // marked this round, send next round
  for (Vertex v = 0; v < n; ++v) {
    if (forest.spanned(v) && is_center[static_cast<std::size_t>(v)] &&
        forest.depth[static_cast<std::size_t>(v)] > 0) {
      marked[static_cast<std::size_t>(v)] = true;
      fresh.push_back(v);
    }
  }
  auto add_parent_edge = [&](Vertex v) {
    const Vertex p = forest.parent[static_cast<std::size_t>(v)];
    if (p == -1) return;
    h.add_edge(v, p, 1);
    ++edge_counter;
    if (log) {
      log->push_back({std::min(v, p), std::max(v, p), 1, phase,
                      EdgeKind::kSupercluster, v});
    }
  };
  for (const Vertex v : fresh) add_parent_edge(v);

  for (Dist round = 0; round < depth_limit; ++round) {
    for (const Vertex v : fresh) {
      const Vertex p = forest.parent[static_cast<std::size_t>(v)];
      if (p != -1) net.send(v, p, Message::of(kJoinMark));
    }
    net.advance_round();
    fresh.clear();
    for (const Vertex v : net.delivered_to()) {
      if (marked[static_cast<std::size_t>(v)]) continue;
      bool got_mark = false;
      for (const Received& r : net.inbox(v)) {
        got_mark |= (r.msg.words[0] == kJoinMark);
      }
      if (got_mark && forest.spanned(v) &&
          forest.depth[static_cast<std::size_t>(v)] > 0) {
        marked[static_cast<std::size_t>(v)] = true;
        add_parent_edge(v);
        fresh.push_back(v);
      }
    }
  }
}

/// Interconnection path-marking: every U_i center sends one kPathMark per
/// neighbouring center along the Algorithm 2 predecessor chain; relays add
/// the edge toward their predecessor and forward. Pipelined one message per
/// edge per round; runs until drained (bounded by delta * cap + slack).
void path_marks(Network& net, const DetectResult& det,
                const std::vector<Vertex>& u_centers, Dist delta,
                std::int64_t cap, WeightedGraph& h,
                std::vector<ChargedEdge>* log, int phase,
                std::int64_t& edge_counter) {
  const Vertex n = net.num_vertices();
  // Per-vertex queue of (next_hop, source) marks to forward.
  std::vector<std::deque<std::pair<Vertex, Vertex>>> queue(
      static_cast<std::size_t>(n));
  std::int64_t queued = 0;
  // Marks already forwarded from a vertex: re-forwarding the same source is
  // redundant (the downstream chain is already marked).
  std::unordered_set<std::uint64_t> forwarded;
  const auto key = [](Vertex v, Vertex src) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           static_cast<std::uint32_t>(src);
  };

  auto enqueue = [&](Vertex at, Vertex source, Vertex charged) {
    if (!forwarded.insert(key(at, source)).second) return;  // already done
    // The hop toward `source` is this vertex's recorded predecessor.
    const auto& hits = det.hits[static_cast<std::size_t>(at)];
    const auto it = std::find_if(hits.begin(), hits.end(), [&](const SourceHit& s) {
      return s.source == source;
    });
    if (it == hits.end() || it->pred == -1) return;  // arrived (or untraceable)
    h.add_edge(at, it->pred, 1);
    ++edge_counter;
    if (log) {
      log->push_back({std::min(at, it->pred), std::max(at, it->pred), 1, phase,
                      EdgeKind::kSpannerPath, charged});
    }
    queue[static_cast<std::size_t>(at)].push_back({it->pred, source});
    ++queued;
  };

  for (const Vertex c : u_centers) {
    for (const SourceHit& hit : det.hits[static_cast<std::size_t>(c)]) {
      if (hit.source == c) continue;
      enqueue(c, hit.source, c);
    }
  }

  // Drain fully; the hard ceiling only guards against a logic error (every
  // mark travels <= delta hops and per-vertex dedup bounds total traffic).
  const std::int64_t hard_ceiling =
      (delta + 2) * (cap + 2) * 16 + static_cast<std::int64_t>(n) + 1024;
  for (std::int64_t t = 0; queued > 0; ++t) {
    if (t > hard_ceiling) {
      throw std::logic_error("path_marks failed to drain within its ceiling");
    }
    for (Vertex v = 0; v < n; ++v) {
      auto& q = queue[static_cast<std::size_t>(v)];
      if (q.empty()) continue;
      std::vector<std::pair<Vertex, Vertex>> deferred;
      std::vector<Vertex> used;
      while (!q.empty()) {
        const auto [to, source] = q.front();
        q.pop_front();
        if (std::find(used.begin(), used.end(), to) != used.end()) {
          deferred.push_back({to, source});
          continue;
        }
        used.push_back(to);
        --queued;
        net.send(v, to, Message::of(kPathMark, source));
      }
      for (const auto& d : deferred) q.push_back(d);
    }
    net.advance_round();
    for (const Vertex v : net.delivered_to()) {
      for (const Received& r : net.inbox(v)) {
        if (r.msg.words[0] != kPathMark) continue;
        const Vertex source = static_cast<Vertex>(r.msg.words[1]);
        if (v == source) continue;  // mark arrived
        enqueue(v, source, source);
      }
    }
  }
  assert(queued == 0);
}

DistributedSpannerResult build_impl(const Graph& g, Vertex params_n,
                                    const PhaseSchedule& sched,
                                    const std::vector<Dist>& rul,
                                    std::int64_t ruling_base,
                                    bool keep_audit_data) {
  const Vertex n = g.num_vertices();
  if (params_n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const int ell = sched.ell();

  DistributedSpannerResult out;
  out.base.h = WeightedGraph(n);
  out.base.u_level.assign(static_cast<std::size_t>(n), -1);
  out.base.u_center.assign(static_cast<std::size_t>(n), -1);

  Network net(g);
  std::vector<Cluster> current = singleton_partition(n);
  if (keep_audit_data) out.base.partitions.push_back(current);
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);
  std::vector<bool> is_center(static_cast<std::size_t>(n), false);

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];
    const Dist rul_i = rul[static_cast<std::size_t>(i)];
    const std::int64_t cap =
        static_cast<std::int64_t>(std::ceil(deg_i - 1e-9)) + 1;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      centers.push_back(current[c].center);
      cluster_of[static_cast<std::size_t>(current[c].center)] =
          static_cast<std::int32_t>(c);
      is_center[static_cast<std::size_t>(current[c].center)] = true;
    }
    std::sort(centers.begin(), centers.end());

    std::int64_t mark = net.stats().rounds;
    const DetectResult det = congest::detect_congest(net, centers, delta_i, cap);
    stats.rounds_detect = net.stats().rounds - mark;

    std::vector<Vertex> popular;
    for (const Vertex c : centers) {
      if (static_cast<double>(det.heard_others(c)) + 1e-9 >= deg_i) {
        popular.push_back(c);
      }
    }
    stats.popular = static_cast<std::int64_t>(popular.size());

    std::vector<Cluster> next;
    std::vector<bool> superclustered(static_cast<std::size_t>(n), false);
    if (i < ell && !popular.empty()) {
      mark = net.stats().rounds;
      const RulingSet ruling =
          congest::compute_ruling_set(net, popular, 2 * delta_i, ruling_base);
      stats.rounds_ruling = net.stats().rounds - mark;

      mark = net.stats().rounds;
      const BfsForest forest =
          congest::build_bfs_forest(net, ruling.members, rul_i + delta_i);
      stats.rounds_forest = net.stats().rounds - mark;

      mark = net.stats().rounds;
      markupcast(net, forest, is_center, rul_i + delta_i, out.base.h,
                 keep_audit_data ? &out.base.edge_log : nullptr, i,
                 stats.supercluster_edges);
      stats.rounds_backtrack = net.stats().rounds - mark;

      // Supercluster membership (audit bookkeeping; one per tree).
      std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
      for (const Vertex r : ruling.members) {
        super_of[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(next.size());
        Cluster super;
        super.center = r;
        next.push_back(std::move(super));
      }
      for (const Vertex c : centers) {
        const Vertex root = forest.root[static_cast<std::size_t>(c)];
        if (root == -1) continue;
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(root)])];
        const Cluster& joined =
            current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
        super.members.insert(super.members.end(), joined.members.begin(),
                             joined.members.end());
        superclustered[static_cast<std::size_t>(c)] = true;
      }
    }

    // Interconnection.
    std::vector<Vertex> u_centers;
    for (const Vertex c : centers) {
      if (!superclustered[static_cast<std::size_t>(c)]) u_centers.push_back(c);
    }
    stats.unclustered = static_cast<std::int64_t>(u_centers.size());
    for (const Vertex c : u_centers) {
      const Cluster& cl = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(c)])];
      for (const Vertex m : cl.members) {
        out.base.u_level[static_cast<std::size_t>(m)] = i;
        out.base.u_center[static_cast<std::size_t>(m)] = c;
      }
    }
    mark = net.stats().rounds;
    path_marks(net, det, u_centers, delta_i, cap, out.base.h,
               keep_audit_data ? &out.base.edge_log : nullptr, i,
               stats.interconnect_edges);
    stats.rounds_interconnect = net.stats().rounds - mark;

    for (const Vertex c : centers) {
      cluster_of[static_cast<std::size_t>(c)] = -1;
      is_center[static_cast<std::size_t>(c)] = false;
    }
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    stats.rounds = stats.rounds_detect + stats.rounds_ruling +
                   stats.rounds_forest + stats.rounds_backtrack +
                   stats.rounds_interconnect;
    out.base.phases.push_back(stats);
    current = std::move(next);
    if (keep_audit_data) out.base.partitions.push_back(current);
  }

  assert(current.empty());
  out.base.total_rounds = net.stats().rounds;
  out.net = net.stats();
  return out;
}

}  // namespace

DistributedSpannerResult build_spanner_congest(const Graph& g,
                                               const SpannerParams& params,
                                               bool keep_audit_data) {
  return build_impl(g, params.n, params.schedule, params.rul,
                    params.ruling_base, keep_audit_data);
}

DistributedSpannerResult build_spanner_congest_em19(
    const Graph& g, const DistributedParams& params, bool keep_audit_data) {
  return build_impl(g, params.n, params.schedule, params.rul,
                    params.ruling_base, keep_audit_data);
}

}  // namespace usne
