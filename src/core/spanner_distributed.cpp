#include "core/spanner_distributed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/engine.hpp"
#include "congest/ruling_set.hpp"

namespace usne {
namespace {

using congest::BfsForest;
using congest::DetectResult;
using congest::Message;
using congest::Network;
using congest::NodeProgram;
using congest::Outbox;
using congest::Received;
using congest::RulingSet;
using congest::Scheduler;
using congest::Word;

constexpr Word kJoinMark = 20;  // <kJoinMark>            up the forest
constexpr Word kPathMark = 21;  // <kPathMark, source>    along pred chains

/// Superclustering mark-up-cast as a NodeProgram: every spanned center
/// holds a mark; marks propagate one hop per round toward the roots with
/// per-vertex dedup, so each tree edge carries at most one kJoinMark ever.
/// Every vertex that held a mark adds its parent edge. Runs exactly
/// `depth_limit` rounds.
///
/// Parallel audit: on_round writes marked_[v] (byte-wide, per-vertex) and
/// stages newly marked vertices in per-shard buffers; the shared spanner
/// graph / edge log / counter are touched only from end_round, where the
/// shard merge (ascending shard = ascending vertex) reproduces the serial
/// edge order exactly.
class MarkUpcastProgram final : public NodeProgram {
 public:
  MarkUpcastProgram(Vertex n, const BfsForest& forest,
                    const std::vector<bool>& is_center, Dist depth_limit,
                    WeightedGraph& h, std::vector<ChargedEdge>* log, int phase,
                    std::int64_t& edge_counter)
      : forest_(forest),
        depth_limit_(depth_limit),
        h_(h),
        log_(log),
        phase_(phase),
        edge_counter_(edge_counter) {
    marked_.assign(static_cast<std::size_t>(n), 0);
    for (Vertex v = 0; v < n; ++v) {
      if (forest.spanned(v) && is_center[static_cast<std::size_t>(v)] &&
          forest.depth[static_cast<std::size_t>(v)] > 0) {
        marked_[static_cast<std::size_t>(v)] = 1;
        fresh_.push_back(v);
      }
    }
    for (const Vertex v : fresh_) add_parent_edge(v);
  }

  void set_shards(std::size_t shards) override { newly_marked_.reset(shards); }

  void init(Outbox& out) override {
    if (depth_limit_ > 0) send_marks(out);
    fresh_.clear();
  }

  void on_round(std::int64_t, Vertex v, std::span<const Received> inbox,
                Outbox& out) override {
    if (marked_[static_cast<std::size_t>(v)]) return;
    bool got_mark = false;
    for (const Received& r : inbox) {
      got_mark |= (r.msg.words[0] == kJoinMark);
    }
    if (got_mark && forest_.spanned(v) &&
        forest_.depth[static_cast<std::size_t>(v)] > 0) {
      marked_[static_cast<std::size_t>(v)] = 1;
      newly_marked_.push(out.shard(), v);
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    newly_marked_.drain_into(fresh_);
    for (const Vertex v : fresh_) add_parent_edge(v);
    if (round + 1 < depth_limit_) send_marks(out);
    fresh_.clear();
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= depth_limit_;
  }

 private:
  void send_marks(Outbox& out) {
    for (const Vertex v : fresh_) {
      const Vertex p = forest_.parent[static_cast<std::size_t>(v)];
      if (p != -1) out.send(v, p, Message::of(kJoinMark));
    }
  }

  void add_parent_edge(Vertex v) {
    const Vertex p = forest_.parent[static_cast<std::size_t>(v)];
    if (p == -1) return;
    h_.add_edge(v, p, 1);
    ++edge_counter_;
    if (log_) {
      log_->push_back({std::min(v, p), std::max(v, p), 1, phase_,
                       EdgeKind::kSupercluster, v});
    }
  }

  const BfsForest& forest_;
  Dist depth_limit_;
  WeightedGraph& h_;
  std::vector<ChargedEdge>* log_;
  int phase_;
  std::int64_t& edge_counter_;
  std::vector<std::uint8_t> marked_;
  std::vector<Vertex> fresh_;     // marked this round, send next round
  congest::Sharded<Vertex> newly_marked_;  // per-shard staging for fresh_
};

/// Interconnection path-marking as a NodeProgram: every U_i center sends
/// one kPathMark per neighbouring center along the Algorithm 2 predecessor
/// chain; relays add the edge toward their predecessor and forward. Marks
/// are pipelined one message per edge per round and the program runs until
/// drained (a hard ceiling guards against logic errors only).
///
/// Parallel audit: the relay step (forwarded-set dedup, spanner edge adds,
/// queue pushes) mutates shared state, so on_round only records mark
/// arrivals in per-shard buffers; end_round replays them in ascending
/// shard order — identical to the serial arrival order — before draining
/// the pipeline.
class PathMarksProgram final : public NodeProgram {
 public:
  PathMarksProgram(Vertex n, const DetectResult& det,
                   const std::vector<Vertex>& u_centers, Dist delta,
                   std::int64_t cap, WeightedGraph& h,
                   std::vector<ChargedEdge>* log, int phase,
                   std::int64_t& edge_counter)
      : det_(det),
        h_(h),
        log_(log),
        phase_(phase),
        edge_counter_(edge_counter),
        hard_ceiling_((delta + 2) * (cap + 2) * 16 +
                      static_cast<std::int64_t>(n) + 1024),
        queue_(n) {
    for (const Vertex c : u_centers) {
      for (const SourceHit& hit : det.hits[static_cast<std::size_t>(c)]) {
        if (hit.source == c) continue;
        enqueue(c, hit.source, c);
      }
    }
  }

  void set_shards(std::size_t shards) override { arrivals_.reset(shards); }

  void init(Outbox& out) override {
    if (queue_.queued() == 0) {
      finished_ = true;
      return;
    }
    send_phase(out);
  }

  void on_round(std::int64_t, Vertex v, std::span<const Received> inbox,
                Outbox& out) override {
    for (const Received& r : inbox) {
      if (r.msg.words[0] != kPathMark) continue;
      const Vertex source = static_cast<Vertex>(r.msg.words[1]);
      if (v == source) continue;  // mark arrived
      arrivals_.push(out.shard(), {v, source});
    }
  }

  void end_round(std::int64_t round, Outbox& out) override {
    arrivals_.drain_into(arrival_buf_);
    for (const Arrival& a : arrival_buf_) enqueue(a.at, a.source, a.source);
    arrival_buf_.clear();
    if (queue_.queued() == 0) {
      finished_ = true;
      return;
    }
    if (round + 1 > hard_ceiling_) {
      throw std::logic_error("path_marks failed to drain within its ceiling");
    }
    send_phase(out);
  }

  bool done(std::int64_t) const override { return finished_; }

 private:
  void enqueue(Vertex at, Vertex source, Vertex charged) {
    // Re-forwarding the same source from the same vertex is redundant (the
    // downstream chain is already marked).
    if (!forwarded_.insert(key(at, source)).second) return;
    // The hop toward `source` is this vertex's recorded predecessor.
    const auto& hits = det_.hits[static_cast<std::size_t>(at)];
    const auto it =
        std::find_if(hits.begin(), hits.end(),
                     [&](const SourceHit& s) { return s.source == source; });
    if (it == hits.end() || it->pred == -1) return;  // arrived (or untraceable)
    h_.add_edge(at, it->pred, 1);
    ++edge_counter_;
    if (log_) {
      log_->push_back({std::min(at, it->pred), std::max(at, it->pred), 1,
                       phase_, EdgeKind::kSpannerPath, charged});
    }
    queue_.push(at, it->pred, source);
  }

  void send_phase(Outbox& out) {
    queue_.drain_round([&](Vertex from, Vertex to, Vertex source) {
      out.send(from, to, Message::of(kPathMark, source));
    });
  }

  static std::uint64_t key(Vertex v, Vertex src) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           static_cast<std::uint32_t>(src);
  }

  /// A kPathMark delivery observed by on_round, relayed in end_round.
  struct Arrival {
    Vertex at;
    Vertex source;
  };

  const DetectResult& det_;
  WeightedGraph& h_;
  std::vector<ChargedEdge>* log_;
  int phase_;
  std::int64_t& edge_counter_;
  std::int64_t hard_ceiling_;
  // Per-vertex queues of (next_hop, source) marks to forward.
  congest::PipelinedQueues<Vertex> queue_;
  std::unordered_set<std::uint64_t> forwarded_;
  congest::Sharded<Arrival> arrivals_;  // per-shard arrival staging
  std::vector<Arrival> arrival_buf_;    // reused merge buffer
  bool finished_ = false;
};

DistributedSpannerResult build_impl(const Graph& g, Vertex params_n,
                                    const PhaseSchedule& sched,
                                    const std::vector<Dist>& rul,
                                    std::int64_t ruling_base,
                                    bool keep_audit_data, int num_threads,
                                    const congest::TransportSpec& transport,
                                    bool profile) {
  const Vertex n = g.num_vertices();
  if (params_n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const int ell = sched.ell();

  DistributedSpannerResult out;
  out.base.h = WeightedGraph(n);
  out.base.u_level.assign(static_cast<std::size_t>(n), -1);
  out.base.u_center.assign(static_cast<std::size_t>(n), -1);

  Network net(g);
  net.set_execution_threads(num_threads);
  net.configure_transport(transport);
  Scheduler scheduler(net);

  // Construction profiling: one stage-time sink on the network, cut into
  // labeled per-task deltas — the same delta pattern the round metering
  // uses with net.stats().rounds.
  congest::StageTimes prof_acc;
  congest::StageTimes prof_mark;
  if (profile) net.set_profile_sink(&prof_acc);
  const auto prof_snap = [&](int phase, const char* task) {
    if (!profile) return;
    out.profile.push_back(
        {"p" + std::to_string(phase) + "." + task, prof_acc - prof_mark});
    prof_mark = prof_acc;
  };

  std::vector<Cluster> current = singleton_partition(n);
  if (keep_audit_data) out.base.partitions.push_back(current);
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);
  std::vector<bool> is_center(static_cast<std::size_t>(n), false);

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];
    const Dist rul_i = rul[static_cast<std::size_t>(i)];
    const std::int64_t cap =
        static_cast<std::int64_t>(std::ceil(deg_i - 1e-9)) + 1;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      centers.push_back(current[c].center);
      cluster_of[static_cast<std::size_t>(current[c].center)] =
          static_cast<std::int32_t>(c);
      is_center[static_cast<std::size_t>(current[c].center)] = true;
    }
    std::sort(centers.begin(), centers.end());

    std::int64_t mark = net.stats().rounds;
    const DetectResult det = congest::detect_congest(net, centers, delta_i, cap);
    stats.rounds_detect = net.stats().rounds - mark;
    prof_snap(i, "detect");

    std::vector<Vertex> popular;
    for (const Vertex c : centers) {
      if (static_cast<double>(det.heard_others(c)) + 1e-9 >= deg_i) {
        popular.push_back(c);
      }
    }
    stats.popular = static_cast<std::int64_t>(popular.size());

    std::vector<Cluster> next;
    std::vector<bool> superclustered(static_cast<std::size_t>(n), false);
    if (i < ell && !popular.empty()) {
      mark = net.stats().rounds;
      const RulingSet ruling =
          congest::compute_ruling_set(net, popular, 2 * delta_i, ruling_base);
      stats.rounds_ruling = net.stats().rounds - mark;
      prof_snap(i, "ruling");

      mark = net.stats().rounds;
      const BfsForest forest =
          congest::build_bfs_forest(net, ruling.members, rul_i + delta_i);
      stats.rounds_forest = net.stats().rounds - mark;
      prof_snap(i, "forest");

      mark = net.stats().rounds;
      MarkUpcastProgram upcast(n, forest, is_center, rul_i + delta_i,
                               out.base.h,
                               keep_audit_data ? &out.base.edge_log : nullptr,
                               i, stats.supercluster_edges);
      scheduler.run(upcast);
      stats.rounds_backtrack = net.stats().rounds - mark;
      prof_snap(i, "upcast");

      // Supercluster membership (audit bookkeeping; one per tree).
      std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
      for (const Vertex r : ruling.members) {
        super_of[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(next.size());
        Cluster super;
        super.center = r;
        next.push_back(std::move(super));
      }
      for (const Vertex c : centers) {
        const Vertex root = forest.root[static_cast<std::size_t>(c)];
        if (root == -1) continue;
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(root)])];
        const Cluster& joined =
            current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
        super.members.insert(super.members.end(), joined.members.begin(),
                             joined.members.end());
        superclustered[static_cast<std::size_t>(c)] = true;
      }
    }

    // Interconnection.
    std::vector<Vertex> u_centers;
    for (const Vertex c : centers) {
      if (!superclustered[static_cast<std::size_t>(c)]) u_centers.push_back(c);
    }
    stats.unclustered = static_cast<std::int64_t>(u_centers.size());
    for (const Vertex c : u_centers) {
      const Cluster& cl = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(c)])];
      for (const Vertex m : cl.members) {
        out.base.u_level[static_cast<std::size_t>(m)] = i;
        out.base.u_center[static_cast<std::size_t>(m)] = c;
      }
    }
    mark = net.stats().rounds;
    PathMarksProgram marks(n, det, u_centers, delta_i, cap, out.base.h,
                           keep_audit_data ? &out.base.edge_log : nullptr, i,
                           stats.interconnect_edges);
    scheduler.run(marks);
    stats.rounds_interconnect = net.stats().rounds - mark;
    prof_snap(i, "interconnect");

    for (const Vertex c : centers) {
      cluster_of[static_cast<std::size_t>(c)] = -1;
      is_center[static_cast<std::size_t>(c)] = false;
    }
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    stats.rounds = stats.rounds_detect + stats.rounds_ruling +
                   stats.rounds_forest + stats.rounds_backtrack +
                   stats.rounds_interconnect;
    out.base.phases.push_back(stats);
    current = std::move(next);
    if (keep_audit_data) out.base.partitions.push_back(current);
  }

  assert(current.empty());
  net.set_profile_sink(nullptr);
  out.base.total_rounds = net.stats().rounds;
  out.net = net.stats();
  out.transport = net.transport().counters();
  return out;
}

}  // namespace

DistributedSpannerResult build_spanner_congest(
    const Graph& g, const SpannerParams& params, bool keep_audit_data,
    int num_threads, const congest::TransportSpec& transport, bool profile) {
  return build_impl(g, params.n, params.schedule, params.rul,
                    params.ruling_base, keep_audit_data, num_threads,
                    transport, profile);
}

DistributedSpannerResult build_spanner_congest_em19(
    const Graph& g, const DistributedParams& params, bool keep_audit_data,
    int num_threads, const congest::TransportSpec& transport, bool profile) {
  return build_impl(g, params.n, params.schedule, params.rul,
                    params.ruling_base, keep_audit_data, num_threads,
                    transport, profile);
}

}  // namespace usne
