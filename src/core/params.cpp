#include "core/params.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace usne {
namespace {

/// Segment length L_i = ceil((1/eps)^i), at least 1.
Dist segment_length(double eps, int i) {
  const double value = std::pow(1.0 / eps, i);
  if (value >= 1e17) return static_cast<Dist>(1e17);  // guard; never reached in practice
  return std::max<Dist>(1, static_cast<Dist>(std::ceil(value - 1e-9)));
}

/// Fills the delta / radius / beta / alpha recurrences given deg and the
/// radius step rule. `radius_step(i)` returns R_{i+1} - R_i as a function of
/// delta_i (already stored).
template <typename RadiusStep>
void fill_schedule(PhaseSchedule& s, double eps, RadiusStep radius_step) {
  const int ell = s.ell();
  s.seg.resize(static_cast<std::size_t>(ell) + 1);
  s.delta.resize(static_cast<std::size_t>(ell) + 1);
  s.radius.assign(static_cast<std::size_t>(ell) + 2, 0);
  s.beta.assign(static_cast<std::size_t>(ell) + 1, 0);
  s.alpha.assign(static_cast<std::size_t>(ell) + 1, 1.0);

  for (int i = 0; i <= ell; ++i) {
    s.seg[static_cast<std::size_t>(i)] = segment_length(eps, i);
    s.delta[static_cast<std::size_t>(i)] =
        s.seg[static_cast<std::size_t>(i)] + 2 * s.radius[static_cast<std::size_t>(i)];
    s.radius[static_cast<std::size_t>(i) + 1] =
        s.radius[static_cast<std::size_t>(i)] + radius_step(i);
    if (i >= 1) {
      s.beta[static_cast<std::size_t>(i)] =
          2 * s.beta[static_cast<std::size_t>(i) - 1] +
          6 * s.radius[static_cast<std::size_t>(i)];
      s.alpha[static_cast<std::size_t>(i)] =
          s.alpha[static_cast<std::size_t>(i) - 1] +
          static_cast<double>(s.beta[static_cast<std::size_t>(i)]) /
              static_cast<double>(s.seg[static_cast<std::size_t>(i)]);
    }
  }
}

/// Shared rescaling search: the largest internal eps in (lo, eps_target]
/// whose schedule (produced by `make`) has alpha_ell <= 1 + eps_target.
/// alpha decreases monotonically as eps shrinks (beta_i and 1/L_i both
/// shrink), so a binary search converges; 60 iterations give full double
/// precision.
template <typename Make>
auto rescale_search(double eps_target, Make make) {
  if (!(eps_target > 0.0 && eps_target < 1.0)) {
    throw std::invalid_argument("eps_target must be in (0, 1)");
  }
  double lo = 1e-9;
  double hi = eps_target;
  // If even the full eps_target satisfies the budget, use it directly.
  if (make(hi).schedule.alpha_bound() <= 1.0 + eps_target) return make(hi);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (make(mid).schedule.alpha_bound() <= 1.0 + eps_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return make(lo);
}

void check_common(Vertex n, int kappa, double eps) {
  if (n < 0) throw std::invalid_argument("n must be non-negative");
  if (kappa < 1) throw std::invalid_argument("kappa must be >= 1");
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("eps must be in (0, 1)");
  }
}

}  // namespace

double ep01_degree(Vertex n, int kappa, int phase) {
  const double exponent =
      static_cast<double>(ipow_sat(2, phase)) / static_cast<double>(kappa);
  return std::pow(static_cast<double>(std::max<Vertex>(n, 1)), exponent);
}

std::int64_t emulator_size_bound(Vertex n, int kappa) {
  return size_bound_edges(n, kappa);
}

CentralizedParams CentralizedParams::compute(Vertex n, int kappa, double eps) {
  check_common(n, kappa, eps);
  CentralizedParams p;
  p.n = n;
  p.kappa = kappa;
  p.eps = eps;

  // ell = ceil(log2((kappa+1)/2)); the smallest ell with kappa <= 2^(ell+1)-1,
  // which guarantees |P_ell| <= deg_ell (paper eq. 1).
  int ell = 0;
  while (ipow_sat(2, ell + 1) - 1 < kappa) ++ell;

  p.schedule.deg.resize(static_cast<std::size_t>(ell) + 1);
  for (int i = 0; i <= ell; ++i) {
    p.schedule.deg[static_cast<std::size_t>(i)] = ep01_degree(n, kappa, i);
  }
  // Centralized radius step: R_{i+1} = 2 delta_i + R_i.
  fill_schedule(p.schedule, eps, [&](int i) {
    return 2 * p.schedule.delta[static_cast<std::size_t>(i)];
  });
  return p;
}

CentralizedParams CentralizedParams::compute_rescaled(Vertex n, int kappa,
                                                      double eps_target) {
  return rescale_search(eps_target, [&](double eps) {
    return CentralizedParams::compute(n, kappa, eps);
  });
}

double CentralizedParams::closed_form_beta() const {
  const int ell = schedule.ell();
  return 30.0 * std::pow(1.0 / eps, ell - 1);
}

std::string CentralizedParams::describe() const {
  std::ostringstream out;
  out << "CentralizedParams{n=" << n << " kappa=" << kappa << " eps=" << eps
      << " ell=" << schedule.ell() << " beta=" << schedule.beta_bound()
      << " alpha=" << schedule.alpha_bound() << " delta=[";
  for (std::size_t i = 0; i < schedule.delta.size(); ++i) {
    out << (i ? "," : "") << schedule.delta[i];
  }
  out << "] deg=[";
  for (std::size_t i = 0; i < schedule.deg.size(); ++i) {
    out << (i ? "," : "") << schedule.deg[i];
  }
  out << "]}";
  return out.str();
}

DistributedParams DistributedParams::compute(Vertex n, int kappa, double rho,
                                             double eps) {
  check_common(n, kappa, eps);
  if (kappa < 2) throw std::invalid_argument("distributed variant needs kappa >= 2");
  if (!(rho > 1.0 / kappa && rho < 0.5)) {
    throw std::invalid_argument("rho must satisfy 1/kappa < rho < 1/2");
  }
  DistributedParams p;
  p.n = n;
  p.kappa = kappa;
  p.rho = rho;
  p.eps = eps;

  // i0 = floor(log2(kappa*rho)); ell = i0 + ceil((kappa+1)/(kappa*rho)) - 1.
  const double kr = kappa * rho;
  p.i0 = static_cast<int>(std::floor(std::log2(kr)));
  const int ell =
      p.i0 + static_cast<int>(std::ceil((kappa + 1.0) / kr)) - 1;

  const double n_rho = std::pow(static_cast<double>(std::max<Vertex>(n, 2)), rho);
  p.ruling_base =
      std::max<std::int64_t>(2, static_cast<std::int64_t>(std::ceil(n_rho - 1e-9)));
  p.ruling_levels = digits_in_base(std::max<Vertex>(n, 2), p.ruling_base);

  p.schedule.deg.resize(static_cast<std::size_t>(ell) + 1);
  for (int i = 0; i <= ell; ++i) {
    p.schedule.deg[static_cast<std::size_t>(i)] =
        (i <= p.i0) ? ep01_degree(n, kappa, i) : n_rho;
  }

  p.rul.assign(static_cast<std::size_t>(ell) + 1, 0);
  // Distributed radius step: R_{i+1} = 2 (rul_i + delta_i) + R_i, with
  // rul_i = levels * (2 delta_i + 1) from our ruling-set construction.
  fill_schedule(p.schedule, eps, [&](int i) {
    const Dist delta = p.schedule.delta[static_cast<std::size_t>(i)];
    p.rul[static_cast<std::size_t>(i)] =
        static_cast<Dist>(p.ruling_levels) * (2 * delta + 1);
    return 2 * (p.rul[static_cast<std::size_t>(i)] + delta);
  });
  return p;
}

DistributedParams DistributedParams::compute_rescaled(Vertex n, int kappa,
                                                      double rho,
                                                      double eps_target) {
  return rescale_search(eps_target, [&](double eps) {
    return DistributedParams::compute(n, kappa, rho, eps);
  });
}

std::string DistributedParams::describe() const {
  std::ostringstream out;
  out << "DistributedParams{n=" << n << " kappa=" << kappa << " rho=" << rho
      << " eps=" << eps << " i0=" << i0 << " ell=" << schedule.ell()
      << " base=" << ruling_base << " levels=" << ruling_levels
      << " beta=" << schedule.beta_bound() << " alpha=" << schedule.alpha_bound()
      << "}";
  return out.str();
}

SpannerParams SpannerParams::compute(Vertex n, int kappa, double rho, double eps) {
  check_common(n, kappa, eps);
  if (kappa < 2) throw std::invalid_argument("spanner variant needs kappa >= 2");
  if (!(rho >= 1.0 / kappa && rho <= 0.5)) {
    throw std::invalid_argument("rho must satisfy 1/kappa <= rho <= 1/2");
  }
  SpannerParams p;
  p.n = n;
  p.kappa = kappa;
  p.rho = rho;
  p.eps = eps;

  // gamma = max{2, log log kappa}.
  const double loglog =
      kappa >= 4 ? std::log2(std::log2(static_cast<double>(kappa))) : 0.0;
  p.gamma = std::max(2, static_cast<int>(std::ceil(loglog - 1e-9)));

  // i0 = min{ floor(log_gamma(kappa*rho)), floor(kappa*rho) }.
  const double kr = kappa * rho;
  const int by_log = kr >= 1.0
                         ? static_cast<int>(std::floor(std::log(kr) /
                                                       std::log(static_cast<double>(p.gamma))))
                         : 0;
  const int by_linear = static_cast<int>(std::floor(kr));
  p.i0 = std::max(0, std::min(by_log, by_linear));

  const int ell = p.i0 + static_cast<int>(std::ceil(1.0 / rho - 0.5));

  const double nd = static_cast<double>(std::max<Vertex>(n, 2));
  const double n_rho = std::pow(nd, rho);
  p.ruling_base =
      std::max<std::int64_t>(2, static_cast<std::int64_t>(std::ceil(n_rho - 1e-9)));
  p.ruling_levels = digits_in_base(std::max<Vertex>(n, 2), p.ruling_base);

  p.schedule.deg.resize(static_cast<std::size_t>(ell) + 1);
  for (int i = 0; i <= ell; ++i) {
    double deg = 0;
    if (i <= p.i0) {
      // deg_i = n^((2^i - 1)/(gamma*kappa) + 1/kappa).
      const double exponent =
          (static_cast<double>(ipow_sat(2, i)) - 1.0) /
              (static_cast<double>(p.gamma) * kappa) +
          1.0 / kappa;
      deg = std::pow(nd, exponent);
    } else if (i == p.i0 + 1) {
      deg = std::pow(nd, rho / 2.0);  // transition phase
    } else {
      deg = n_rho;
    }
    p.schedule.deg[static_cast<std::size_t>(i)] = deg;
  }

  p.rul.assign(static_cast<std::size_t>(ell) + 1, 0);
  fill_schedule(p.schedule, eps, [&](int i) {
    const Dist delta = p.schedule.delta[static_cast<std::size_t>(i)];
    p.rul[static_cast<std::size_t>(i)] =
        static_cast<Dist>(p.ruling_levels) * (2 * delta + 1);
    return 2 * (p.rul[static_cast<std::size_t>(i)] + delta);
  });
  return p;
}

std::string SpannerParams::describe() const {
  std::ostringstream out;
  out << "SpannerParams{n=" << n << " kappa=" << kappa << " rho=" << rho
      << " eps=" << eps << " gamma=" << gamma << " i0=" << i0
      << " ell=" << schedule.ell() << " beta=" << schedule.beta_bound() << "}";
  return out.str();
}

}  // namespace usne
