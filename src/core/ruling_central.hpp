#pragma once

// Centralized counterpart of the distributed digit-sweep ruling set
// (congest/ruling_set.hpp) — identical semantics, computed with bounded
// multi-source BFS floods instead of messages. Used by the fast centralized
// construction (paper §3.3) and the spanner builder; tests assert it agrees
// with the CONGEST implementation exactly.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

struct CentralRulingSet {
  std::vector<Vertex> members;  // ascending
  Dist separation = 0;          // q + 2
  Dist covering = 0;            // levels * (q + 1)
};

/// Ruling set for `w` with separation parameter q, ID digits in base `base`.
CentralRulingSet ruling_set_central(const Graph& g, const std::vector<Vertex>& w,
                                    Dist q, std::int64_t base);

}  // namespace usne
