#pragma once

// Distributed construction of ultra-sparse near-additive emulators in the
// CONGEST model — the paper's §3.1, executed on the simulator of
// src/congest/ with full round/message accounting and cap enforcement.
//
// Per phase i (superclustering step, i < ell):
//   Task 1  Popular-cluster detection: Algorithm 2 (modified Bellman–Ford)
//           from the centers of P_i, delta_i strides with forwarding cap
//           deg_i + 1.
//   Task 2  Deterministic ruling set S_i on the popular centers W_i with
//           separation parameter q = 2*delta_i (digit sweep, base ~ n^rho).
//   Task 3  BFS forest rooted at S_i to depth rul_i + delta_i, then a
//           backtracking convergecast of <origin, depth> messages toward
//           the roots, in rul_i + delta_i strides of 2*deg_i + 2 rounds.
//           A vertex holding >= 2*deg_i + 2 messages is a *hub*: it splits
//           from its tree and forms superclusters locally — itself as
//           center if it is a cluster center, otherwise one supercluster
//           per greedily-packed child group of message count in
//           [2*deg_i+2, 6*deg_i+6], centered at the smallest member.
//           A final pipelined down-cast informs every joining center of its
//           new center and superclustering-edge weight, so that BOTH
//           endpoints of every emulator edge know it (the paper's central
//           correctness obligation for emulators in CONGEST).
//   Interconnection  clusters never superclustered form U_i; a second
//           Algorithm 2 run from U_i centers gives the reverse endpoints
//           their knowledge; edge weights are exact graph distances.
//
// The returned result carries, besides the emulator and audit data, the
// per-node local edge knowledge accumulated *only* through received
// messages — endpoints_consistent() verifies the both-endpoints-know
// property against H.

#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

struct DistributedOptions {
  bool keep_audit_data = true;

  /// Hub threshold multiplier (paper: 2, i.e. a vertex holding >=
  /// 2*deg_i + 2 messages splits). Exposed for the ablation bench E7c;
  /// larger values split later (fewer, larger superclusters, more per-edge
  /// pipeline rounds). Must be >= 1.
  int hub_threshold_factor = 2;

  /// Worker lanes for the parallel round scheduler (1 = serial, 0 =
  /// hardware concurrency). The engine is deterministic: round/message/
  /// word counts and every output are bit-for-bit identical for any value
  /// — only wall-clock time changes.
  int num_threads = 1;

  /// Delivery model for the simulated links (congest/transport.hpp).
  /// Ideal (the default) reproduces the classic synchronous CONGEST
  /// semantics bit-for-bit; Faulty/Async inject seeded drops/duplicates
  /// and latencies — the construction then runs its fixed schedule over
  /// degraded traffic (deterministically for a fixed seed at any thread
  /// count), which is the robustness workload, not a correctness claim.
  congest::TransportSpec transport{};

  /// Collect the per-task scheduler stage profile
  /// (DistributedBuildResult::profile). Measurement only — counts and H
  /// are bit-identical either way; off (the default) costs zero clock
  /// reads.
  bool profile = false;
};

/// Result of a distributed build: the usual audit bundle plus network
/// metering and per-node local knowledge.
struct DistributedBuildResult {
  BuildResult base;
  congest::NetworkStats net;

  /// Injected-event counters of the delivery model (all zero under Ideal).
  congest::TransportCounters transport;

  /// Construction profile: one entry per (phase, task) — "p0.detect",
  /// "p0.ruling", ... — with the scheduler stage times that task accrued.
  /// Empty unless DistributedOptions::profile was set.
  std::vector<congest::PhaseProfileEntry> profile;

  /// local[v] = edges (other, weight) that vertex v learned about through
  /// the protocol. Every emulator edge (u,v,w) must appear in local[u] and
  /// local[v] with the same weight.
  std::vector<std::vector<std::pair<Vertex, Dist>>> local;

  /// Verifies the both-endpoints-know property for every edge of base.h.
  bool endpoints_consistent() const;
};

/// True if every edge of h appears, with identical weight, in the local
/// knowledge lists of both endpoints — the paper's both-endpoints-know
/// property. Shared by DistributedBuildResult and the unified API's
/// BuildOutput.
bool endpoints_know_all_edges(
    const WeightedGraph& h,
    const std::vector<std::vector<std::pair<Vertex, Dist>>>& local);

/// Runs the §3.1 construction on a fresh Network over g.
DistributedBuildResult build_emulator_distributed(
    const Graph& g, const DistributedParams& params,
    const DistributedOptions& options = {});

}  // namespace usne
