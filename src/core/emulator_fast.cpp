#include "core/emulator_fast.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/ruling_central.hpp"
#include "path/bfs.hpp"
#include "path/source_detection.hpp"

namespace usne {

BuildResult build_emulator_fast(const Graph& g, const DistributedParams& params,
                                const FastOptions& options) {
  const Vertex n = g.num_vertices();
  if (params.n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const PhaseSchedule& sched = params.schedule;
  const int ell = sched.ell();

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  if (options.keep_audit_data) result.partitions.push_back(current);

  auto log_edge = [&](Vertex u, Vertex v, Dist w, int phase, EdgeKind kind,
                      Vertex charged) {
    result.h.add_edge(u, v, w);
    if (options.keep_audit_data) {
      result.edge_log.push_back({u, v, w, phase, kind, charged});
    }
  };

  // cluster index by center, valid within a phase.
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];
    const Dist rul_i = params.rul[static_cast<std::size_t>(i)];
    const std::int64_t cap =
        static_cast<std::int64_t>(std::ceil(deg_i - 1e-9)) + 1;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    centers.reserve(current.size());
    for (std::size_t c = 0; c < current.size(); ++c) {
      centers.push_back(current[c].center);
      cluster_of[static_cast<std::size_t>(current[c].center)] =
          static_cast<std::int32_t>(c);
    }
    std::sort(centers.begin(), centers.end());

    // Task 1: capped source detection; popular = hears >= deg_i others.
    const SourceDetection detect =
        detect_sources(g, centers, delta_i, static_cast<std::size_t>(cap));
    std::vector<Vertex> popular;
    for (const Vertex c : centers) {
      std::size_t others = 0;
      for (const SourceHit& h : detect.at(c)) {
        if (h.source != c) ++others;
      }
      if (static_cast<double>(others) + 1e-9 >= deg_i) popular.push_back(c);
    }
    stats.popular = static_cast<std::int64_t>(popular.size());

    std::vector<Cluster> next;
    std::vector<bool> superclustered(static_cast<std::size_t>(n), false);

    if (i < ell && !popular.empty()) {
      // Task 2: ruling set on the popular centers.
      const CentralRulingSet ruling =
          ruling_set_central(g, popular, 2 * delta_i, params.ruling_base);

      // Task 3: BFS forest to depth rul_i + delta_i; one supercluster per
      // tree (no hub splitting in the centralized simulation, §3.3).
      const MultiSourceBfsResult forest =
          multi_source_bfs(g, ruling.members, rul_i + delta_i);

      std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
      for (const Vertex r : ruling.members) {
        super_of[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(next.size());
        Cluster super;
        super.center = r;
        next.push_back(std::move(super));
      }
      for (const Vertex c : centers) {
        const Vertex root = forest.source[static_cast<std::size_t>(c)];
        if (root == -1) continue;  // unspanned -> U_i
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(root)])];
        const Cluster& joined =
            current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
        super.members.insert(super.members.end(), joined.members.begin(),
                             joined.members.end());
        superclustered[static_cast<std::size_t>(c)] = true;
        if (c != root) {
          log_edge(root, c, forest.dist[static_cast<std::size_t>(c)], i,
                   EdgeKind::kSupercluster, c);
          ++stats.supercluster_edges;
        }
      }
    }

    // Interconnection: unspanned clusters form U_i and connect to all their
    // neighbouring centers (exact lists — they and their neighbours are
    // unpopular, Lemma 3.4).
    for (const Vertex c : centers) {
      if (superclustered[static_cast<std::size_t>(c)]) continue;
      ++stats.unclustered;
      const Cluster& cluster =
          current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
      for (const Vertex m : cluster.members) {
        result.u_level[static_cast<std::size_t>(m)] = i;
        result.u_center[static_cast<std::size_t>(m)] = c;
      }
      for (const SourceHit& h : detect.at(c)) {
        if (h.source == c) continue;
        log_edge(c, h.source, h.dist, i, EdgeKind::kInterconnect, c);
        ++stats.interconnect_edges;
      }
    }

    for (const Vertex c : centers) cluster_of[static_cast<std::size_t>(c)] = -1;
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
    if (options.keep_audit_data) result.partitions.push_back(current);
  }

  assert(current.empty());
  for (Vertex v = 0; v < n; ++v) {
    assert(result.u_level[static_cast<std::size_t>(v)] != -1);
    (void)v;
  }
  return result;
}

}  // namespace usne
