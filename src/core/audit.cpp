#include "core/audit.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/math.hpp"

namespace usne {

std::string AuditReport::to_string() const {
  if (ok()) return "audit: ok";
  std::ostringstream out;
  out << "audit: " << failures.size() << " failure(s)\n";
  for (const auto& f : failures) out << "  - " << f << '\n';
  return out.str();
}

AuditReport audit_partitions(const BuildResult& result, Vertex n) {
  AuditReport report;
  if (result.partitions.empty()) {
    report.fail("no partition snapshots (keep_audit_data was off?)");
    return report;
  }

  // Per-phase: P_i is a partial partition; P_i plus clusters already in U
  // covers V exactly (Lemma 2.8).
  for (std::size_t i = 0; i < result.partitions.size(); ++i) {
    const auto& p = result.partitions[i];
    if (!is_partial_partition(p, n)) {
      report.fail("P_" + std::to_string(i) + " is not a partial partition");
      continue;
    }
    std::vector<bool> covered(static_cast<std::size_t>(n), false);
    for (const Cluster& c : p) {
      for (const Vertex v : c.members) covered[static_cast<std::size_t>(v)] = true;
    }
    for (Vertex v = 0; v < n; ++v) {
      const int lvl = result.u_level[static_cast<std::size_t>(v)];
      const bool in_u_before = lvl >= 0 && lvl < static_cast<int>(i);
      if (covered[static_cast<std::size_t>(v)] == in_u_before) {
        report.fail("vertex " + std::to_string(v) + " violates Lemma 2.8 at P_" +
                    std::to_string(i));
        break;
      }
    }
  }

  // U^(ell) partitions V: every vertex has a U-level.
  for (Vertex v = 0; v < n; ++v) {
    if (result.u_level[static_cast<std::size_t>(v)] < 0) {
      report.fail("vertex " + std::to_string(v) + " never joined any U_i");
      break;
    }
  }
  return report;
}

AuditReport audit_laminarity(const BuildResult& result) {
  AuditReport report;
  if (result.partitions.size() < 2) return report;
  const std::size_t levels = result.partitions.size();
  // For each consecutive pair: every member set of P_{i+1} must be a union
  // of member sets of P_i. Use a vertex -> cluster map of P_i.
  for (std::size_t i = 0; i + 1 < levels; ++i) {
    std::unordered_map<Vertex, std::int32_t> owner;
    for (std::size_t c = 0; c < result.partitions[i].size(); ++c) {
      for (const Vertex v : result.partitions[i][c].members) {
        owner[v] = static_cast<std::int32_t>(c);
      }
    }
    for (const Cluster& super : result.partitions[i + 1]) {
      // Count how many members of each P_i cluster appear; all-or-nothing.
      std::unordered_map<std::int32_t, std::size_t> seen;
      for (const Vertex v : super.members) {
        const auto it = owner.find(v);
        if (it == owner.end()) {
          report.fail("P_" + std::to_string(i + 1) +
                      " contains a vertex outside P_" + std::to_string(i));
          return report;
        }
        ++seen[it->second];
      }
      // det-lint: allow(failure path only -- the verdict is order-independent)
      for (const auto& [c, count] : seen) {
        if (count != result.partitions[i][static_cast<std::size_t>(c)].members.size()) {
          report.fail("cluster of P_" + std::to_string(i + 1) +
                      " splits a cluster of P_" + std::to_string(i) +
                      " (laminarity violated, Lemma 2.9)");
          return report;
        }
      }
    }
  }
  return report;
}

AuditReport audit_radii(const BuildResult& result, const PhaseSchedule& sched) {
  AuditReport report;
  for (std::size_t i = 0; i < result.partitions.size() && i < sched.radius.size();
       ++i) {
    const Dist bound = sched.radius[i];
    for (const Cluster& c : result.partitions[i]) {
      if (c.members.size() <= 1) continue;
      const std::vector<Dist> dist = dijkstra(result.h, c.center);
      for (const Vertex v : c.members) {
        if (dist[static_cast<std::size_t>(v)] > bound) {
          report.fail("Rad violation at P_" + std::to_string(i) + ": center " +
                      std::to_string(c.center) + " to " + std::to_string(v) +
                      " = " + std::to_string(dist[static_cast<std::size_t>(v)]) +
                      " > R_i = " + std::to_string(bound));
          return report;
        }
      }
    }
  }
  return report;
}

AuditReport audit_charging(const BuildResult& result, Vertex n, int kappa) {
  AuditReport report;

  for (const PhaseStats& p : result.phases) {
    // Interconnection: < deg_i edges per U_i cluster (paper: unpopular means
    // |Gamma| < deg_i). Allow the U_i == 0 degenerate case.
    const double ic_bound =
        static_cast<double>(p.unclustered) * p.deg_threshold;
    if (static_cast<double>(p.interconnect_edges) > ic_bound + 1e-6) {
      report.fail("phase " + std::to_string(p.phase) +
                  ": interconnection edges " + std::to_string(p.interconnect_edges) +
                  " exceed |U_i| * deg_i = " + std::to_string(ic_bound));
    }
    // Superclustering (incl. buffer joins): exactly |P_i| - |U_i| - |P_{i+1}|
    // insertions for the centralized build; distributed interconnection may
    // double-log symmetric pairs, so we check <=.
    const std::int64_t sc_bound = p.clusters_in - p.unclustered - p.clusters_out;
    if (p.supercluster_edges + p.buffer_join_edges > std::max<std::int64_t>(sc_bound, 0)) {
      report.fail("phase " + std::to_string(p.phase) + ": superclustering edges " +
                  std::to_string(p.supercluster_edges + p.buffer_join_edges) +
                  " exceed |P_i| - |U_i| - |P_{i+1}| = " + std::to_string(sc_bound));
    }
  }

  const std::int64_t bound = size_bound_edges(n, kappa);
  if (result.h.num_edges() > bound) {
    report.fail("|H| = " + std::to_string(result.h.num_edges()) +
                " exceeds n^(1+1/kappa) = " + std::to_string(bound));
  }
  return report;
}

AuditReport audit_edge_weights(const BuildResult& result, const Graph& g,
                               bool exact) {
  AuditReport report;
  // Group edges by endpoint u and BFS once per distinct u.
  std::vector<std::vector<std::pair<Vertex, Dist>>> by_u(
      static_cast<std::size_t>(g.num_vertices()));
  for (const WeightedEdge& e : result.h.edges()) {
    by_u[static_cast<std::size_t>(e.u)].push_back({e.v, e.w});
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (by_u[static_cast<std::size_t>(u)].empty()) continue;
    const std::vector<Dist> dist = bfs_distances(g, u);
    for (const auto& [v, w] : by_u[static_cast<std::size_t>(u)]) {
      const Dist d = dist[static_cast<std::size_t>(v)];
      if (w < d || (exact && w != d)) {
        report.fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
                    ") weight " + std::to_string(w) + " vs d_G " +
                    std::to_string(d));
        return report;
      }
    }
  }
  return report;
}

AuditReport audit_all(const BuildResult& result, const Graph& g,
                      const PhaseSchedule& sched, int kappa,
                      bool exact_weights) {
  AuditReport report;
  for (AuditReport r :
       {audit_partitions(result, g.num_vertices()), audit_laminarity(result),
        audit_radii(result, sched), audit_charging(result, g.num_vertices(), kappa),
        audit_edge_weights(result, g, exact_weights)}) {
    for (auto& f : r.failures) report.failures.push_back(std::move(f));
  }
  return report;
}

}  // namespace usne
