#include "core/cluster.hpp"

#include <algorithm>
#include <sstream>

namespace usne {

const char* edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kInterconnect: return "interconnect";
    case EdgeKind::kSupercluster: return "supercluster";
    case EdgeKind::kBufferJoin: return "buffer-join";
    case EdgeKind::kSpannerPath: return "spanner-path";
    case EdgeKind::kGroundPartition: return "ground-partition";
  }
  return "?";
}

std::int64_t BuildResult::interconnect_edges() const {
  std::int64_t count = 0;
  for (const PhaseStats& p : phases) count += p.interconnect_edges;
  return count;
}

std::int64_t BuildResult::supercluster_edges() const {
  std::int64_t count = 0;
  for (const PhaseStats& p : phases) {
    count += p.supercluster_edges + p.buffer_join_edges;
  }
  return count;
}

std::string BuildResult::summary() const {
  std::ostringstream out;
  out << "|H|=" << h.num_edges() << " phases=" << phases.size();
  for (const PhaseStats& p : phases) {
    out << " [i=" << p.phase << " |P|=" << p.clusters_in << " |U|=" << p.unclustered
        << " pop=" << p.popular << " ic=" << p.interconnect_edges
        << " sc=" << p.supercluster_edges << " bj=" << p.buffer_join_edges << "]";
  }
  if (total_rounds > 0) out << " rounds=" << total_rounds;
  return out.str();
}

std::vector<Cluster> singleton_partition(Vertex n) {
  std::vector<Cluster> p0(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    p0[static_cast<std::size_t>(v)].center = v;
    p0[static_cast<std::size_t>(v)].members = {v};
  }
  return p0;
}

bool is_partial_partition(const std::vector<Cluster>& clusters, Vertex n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const Cluster& c : clusters) {
    if (c.center < 0 || c.center >= n) return false;
    bool center_found = false;
    for (const Vertex v : c.members) {
      if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
      seen[static_cast<std::size_t>(v)] = true;
      center_found |= (v == c.center);
    }
    if (!center_found) return false;
  }
  return true;
}

}  // namespace usne
