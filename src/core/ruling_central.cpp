#include "core/ruling_central.hpp"

#include <algorithm>

#include "path/bfs.hpp"
#include "util/math.hpp"

namespace usne {

CentralRulingSet ruling_set_central(const Graph& g, const std::vector<Vertex>& w,
                                    Dist q, std::int64_t base) {
  base = std::max<std::int64_t>(base, 2);
  const Vertex n = g.num_vertices();
  const int levels = digits_in_base(std::max<Vertex>(n, 2), base);

  CentralRulingSet result;
  result.separation = q + 2;
  result.covering = static_cast<Dist>(levels) * (q + 1);

  std::vector<Vertex> candidates = w;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (int level = levels - 1; level >= 0 && candidates.size() > 1; --level) {
    std::vector<Vertex> selected;
    std::vector<Vertex> last_batch;
    std::vector<bool> covered(static_cast<std::size_t>(n), false);

    for (std::int64_t val = base - 1; val >= 0; --val) {
      // Coverage flood from the batch selected in the previous sweep step.
      if (!last_batch.empty()) {
        const MultiSourceBfsResult flood = multi_source_bfs(g, last_batch, q + 1);
        for (Vertex v = 0; v < n; ++v) {
          if (flood.dist[static_cast<std::size_t>(v)] != kInfDist) {
            covered[static_cast<std::size_t>(v)] = true;
          }
        }
      }
      last_batch.clear();
      for (const Vertex v : candidates) {
        if (digit_at(v, base, level) != val) continue;
        if (!covered[static_cast<std::size_t>(v)]) {
          selected.push_back(v);
          last_batch.push_back(v);
        }
      }
    }
    std::sort(selected.begin(), selected.end());
    candidates = std::move(selected);
  }

  result.members = std::move(candidates);
  return result;
}

}  // namespace usne
