#pragma once

// Parameter engine for all constructions in the paper.
//
// Computes the phase count, degree thresholds, distance thresholds and the
// stretch recurrences:
//
//  Centralized (paper §2.1.2):
//    ell    = ceil(log2((kappa+1)/2))
//    deg_i  = n^(2^i / kappa)
//    L_i    = ceil((1/eps)^i)           (segment length; paper uses (1/eps)^i)
//    delta_i = L_i + 2 R_i
//    R_0 = 0,  R_{i+1} = 2 delta_i + R_i
//
//  Distributed (paper §3.1.1, adjusted to the actual ruling-set covering
//  radius of our [SEW13]-family construction, see congest/ruling_set.hpp):
//    i0   = floor(log2(kappa * rho)),  ell = i0 + ceil((kappa+1)/(kappa rho)) - 1
//    deg_i = n^(2^i/kappa) for i <= i0, n^rho afterwards
//    rul_i = c * (2 delta_i + 1)        (c = ruling-set digit levels)
//    R_{i+1} = 2 (rul_i + delta_i) + R_i
//
//  Spanner (paper §4): [EN17a]-style degree sequence with
//    gamma = max{2, log log kappa},  i0 = min{floor(log_gamma(kappa rho)),
//    floor(kappa rho)}, transition phase deg = n^(rho/2), ell' = i0 +
//    ceil(1/rho - 1/2).
//
//  Stretch recurrences (Lemma 2.10, valid for all variants given R_i):
//    beta_0 = 0,   beta_i  = 2 beta_{i-1} + 6 R_i
//    alpha_0 = 1,  alpha_i = alpha_{i-1} + beta_i / L_i
//
// The (alpha_ell, beta_ell) pair is the *computed* stretch guarantee the
// test suite verifies — tighter than the paper's closed forms (eq. 12/13),
// which we also expose for comparison.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace usne {

/// Which degree sequence a SAI construction uses. The paper's main result
/// uses Ep01 (the point of §2 is that the *original* sequence suffices);
/// En17 is the optimized sequence used by the §4 spanner and by the
/// degree-sequence ablation (bench E7).
enum class DegreeSequence { Ep01, En17 };

/// Shared per-phase schedule for any SAI construction.
struct PhaseSchedule {
  std::vector<double> deg;   // popularity thresholds deg_i (real-valued)
  std::vector<Dist> seg;     // segment lengths L_i
  std::vector<Dist> delta;   // distance thresholds delta_i
  std::vector<Dist> radius;  // radius bounds R_i  (size ell+2: R_0..R_{ell+1})
  std::vector<Dist> beta;    // additive stretch recurrence beta_i
  std::vector<double> alpha; // multiplicative stretch recurrence alpha_i

  int ell() const { return static_cast<int>(deg.size()) - 1; }
  Dist beta_bound() const { return beta.back(); }
  double alpha_bound() const { return alpha.back(); }
};

/// Parameters of the centralized Algorithm 1 (paper §2).
struct CentralizedParams {
  Vertex n = 0;
  int kappa = 2;
  double eps = 0.25;
  PhaseSchedule schedule;

  /// Validates inputs and computes the schedule. Throws std::invalid_argument
  /// on n < 0, kappa < 1 or eps outside (0, 1). NOTE: `eps` here is the
  /// *internal* parameter of the recurrences; the resulting multiplicative
  /// stretch is alpha_ell = 1 + O(eps * ell), not 1 + eps. Use
  /// compute_rescaled() to target a final stretch directly.
  static CentralizedParams compute(Vertex n, int kappa, double eps);

  /// The paper's rescaling (§2.2.4): picks the largest internal eps whose
  /// computed alpha_ell is at most 1 + eps_target, so the result is a true
  /// (1 + eps_target, beta)-emulator. Strictly better beta than the paper's
  /// crude eps' = 34*eps*ell substitution because it uses the exact
  /// recurrences. Requires eps_target in (0, 1).
  static CentralizedParams compute_rescaled(Vertex n, int kappa,
                                            double eps_target);

  /// The paper's closed-form beta estimate 30 * (1/eps)^(ell-1) (eq. 12),
  /// for comparison against the computed recurrence.
  double closed_form_beta() const;

  std::string describe() const;
};

/// Parameters of the distributed / fast-centralized construction (paper §3).
struct DistributedParams {
  Vertex n = 0;
  int kappa = 4;
  double rho = 0.45;
  double eps = 0.25;
  int i0 = 0;  // last exponential-growth phase

  // Ruling-set geometry (our digit-sweep construction).
  std::int64_t ruling_base = 2;  // b = max(2, ceil(n^rho))
  int ruling_levels = 1;         // c = number of base-b digits of n

  std::vector<Dist> rul;  // covering radii rul_i = c * (2 delta_i + 1)
  PhaseSchedule schedule;

  /// Validates and computes. Requires kappa >= 2, 1/kappa < rho < 0.5,
  /// 0 < eps < 1; throws std::invalid_argument otherwise. As with the
  /// centralized variant, `eps` is internal; see compute_rescaled().
  static DistributedParams compute(Vertex n, int kappa, double rho, double eps);

  /// §3.2.4 rescaling: largest internal eps with alpha_ell <= 1 + eps_target.
  static DistributedParams compute_rescaled(Vertex n, int kappa, double rho,
                                            double eps_target);

  std::string describe() const;
};

/// Parameters of the near-additive spanner construction (paper §4).
struct SpannerParams {
  Vertex n = 0;
  int kappa = 4;
  double rho = 0.45;
  double eps = 0.25;
  int gamma = 2;
  int i0 = 0;

  std::int64_t ruling_base = 2;
  int ruling_levels = 1;
  std::vector<Dist> rul;
  PhaseSchedule schedule;

  static SpannerParams compute(Vertex n, int kappa, double rho, double eps);

  std::string describe() const;
};

/// deg_i = n^(2^i/kappa) for the Ep01 sequence (used by several modules).
double ep01_degree(Vertex n, int kappa, int phase);

/// The paper's size bound n^(1+1/kappa) (as a count of edges, rounded with
/// care — see util/math.hpp).
std::int64_t emulator_size_bound(Vertex n, int kappa);

}  // namespace usne
