#pragma once

// Centralized construction of ultra-sparse near-additive emulators —
// the paper's Algorithm 1 (§2.1).
//
// Superclustering-and-interconnection with the original [EP01] degree
// sequence deg_i = n^(2^i/kappa) and the paper's buffer-set N_i mechanism:
//
//  * Phase i processes the centers of P_i sequentially. A popped center rC
//    explores to depth delta_i; Gamma(rC) = centers still in S_i u N_i
//    within delta_i. Edges (rC, rC') of weight d_G(rC, rC') are added for
//    all rC' in Gamma(rC).
//  * If |Gamma(rC)| < deg_i, the cluster joins U_i (edges charged to rC:
//    interconnection).
//  * Otherwise a supercluster around rC absorbs C and all clusters of
//    Gamma(rC) (edges charged to the joining centers: superclustering), and
//    every center rC'' in S_i at distance in (delta_i, 2*delta_i] moves to
//    the buffer N_i with this supercluster as its fallback.
//  * At the end of the phase, buffered centers that were never absorbed
//    join their fallback supercluster via a buffer-join edge of weight
//    d_G(root, rC'') <= 2*delta_i, charged to rC''.
//
// Guarantees (verified by the audit module and the test suite):
//   |H| <= n^(1+1/kappa)  (exactly; leading constant 1 — Lemma 2.4),
//   d_G <= d_H <= alpha_ell * d_G + beta_ell  (Lemma 2.10 with the computed
//   recurrences), every edge weight equals the exact graph distance.

#include <vector>

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Options for the centralized builder.
struct CentralizedOptions {
  /// Processing order of cluster centers within every phase. Empty =
  /// ascending vertex id (the deterministic default). The paper notes the
  /// popular/unpopular designation depends on this order (§2.1.1, star
  /// example); tests exercise both orders through this hook.
  std::vector<Vertex> processing_order;

  /// When true, partition snapshots (P_0..P_{ell+1}) and the edge log are
  /// retained in the result for auditing. Disable for large benchmarks.
  bool keep_audit_data = true;
};

/// Runs Algorithm 1. The graph may be disconnected; explorations never
/// cross components and the guarantees hold per component.
BuildResult build_emulator_centralized(const Graph& g,
                                       const CentralizedParams& params,
                                       const CentralizedOptions& options = {});

}  // namespace usne
