#pragma once

// Cluster and partial-partition machinery shared by all SAI constructions,
// plus the per-build bookkeeping (edge charging log, phase statistics,
// partition snapshots) that the audit module and the benches consume.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace usne {

/// A cluster: a designated center r_C in C plus the member vertices.
struct Cluster {
  Vertex center = -1;
  std::vector<Vertex> members;  // includes center

  std::size_t size() const { return members.size(); }
};

/// How an emulator/spanner edge was inserted — mirrors the paper's charging
/// argument (§2.2.1): interconnection edges are charged to the unpopular
/// center that added them; superclustering edges to the center that joined
/// a new supercluster; buffer-join edges (centralized N_i mechanism) to the
/// buffered center that fell back to its supercluster.
enum class EdgeKind : std::uint8_t {
  kInterconnect,
  kSupercluster,
  kBufferJoin,
  kSpannerPath,
  kGroundPartition,  // [EP01] baseline only
};

const char* edge_kind_name(EdgeKind kind);

/// One logged edge insertion. Duplicate inserts into the WeightedGraph are
/// still logged — the charging audit counts attempted insertions exactly as
/// the paper's analysis does.
struct ChargedEdge {
  Vertex u = -1;
  Vertex v = -1;
  Dist w = 0;
  int phase = -1;
  EdgeKind kind = EdgeKind::kInterconnect;
  Vertex charged_to = -1;
};

/// Per-phase counters reported by the builders.
struct PhaseStats {
  int phase = -1;
  std::int64_t clusters_in = 0;        // |P_i|
  std::int64_t clusters_out = 0;       // |P_{i+1}|
  std::int64_t unclustered = 0;        // |U_i|
  std::int64_t popular = 0;            // number of popular clusters seen
  std::int64_t interconnect_edges = 0;
  std::int64_t supercluster_edges = 0;
  std::int64_t buffer_join_edges = 0;
  std::int64_t hub_events = 0;  // distributed Task 3: vertices that split
  double deg_threshold = 0;
  Dist delta = 0;
  // Distributed builds only:
  std::int64_t rounds = 0;
  std::int64_t rounds_detect = 0;
  std::int64_t rounds_ruling = 0;
  std::int64_t rounds_forest = 0;
  std::int64_t rounds_backtrack = 0;
  std::int64_t rounds_interconnect = 0;
};

/// Full output of a SAI build: the emulator/spanner H plus everything the
/// audits need. The partition snapshots record P_i at the *start* of each
/// phase i (snapshot[i] = P_i), with snapshot[ell+1] = P_{ell+1} (empty for
/// a correct run).
struct BuildResult {
  WeightedGraph h;
  std::vector<PhaseStats> phases;
  std::vector<ChargedEdge> edge_log;
  std::vector<std::vector<Cluster>> partitions;  // P_0 .. P_{ell+1}
  std::vector<int> u_level;     // per vertex: phase i with v in some C in U_i
  std::vector<Vertex> u_center; // per vertex: center of that cluster
  std::int64_t total_rounds = 0;  // distributed builds; 0 otherwise

  std::int64_t interconnect_edges() const;
  std::int64_t supercluster_edges() const;
  std::string summary() const;
};

/// Builds the singleton partition P_0 = {{v} : v in V}.
std::vector<Cluster> singleton_partition(Vertex n);

/// True if `clusters` form a partial partition of [0, n): members pairwise
/// disjoint, centers belong to their own cluster.
bool is_partial_partition(const std::vector<Cluster>& clusters, Vertex n);

}  // namespace usne
