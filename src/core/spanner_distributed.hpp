#pragma once

// Distributed CONGEST construction of near-additive spanners — the paper's
// §4, run on the simulator with full round/message metering.
//
// The spanner variant is *simpler* than the emulator in CONGEST (paper §4:
// "the construction of superclusters becomes simpler... there is no need to
// define hub-vertices"), because path edges are added locally:
//
//   * Superclustering: after the BFS forest is built, every spanned center
//     convergecasts a single 1-word join mark toward its root; every vertex
//     that holds a mark adds its parent edge to H. No per-origin payload
//     ever travels, so no hub splitting is needed and each tree edge
//     carries at most one mark (deduplicated by the relays).
//   * Interconnection: a cluster in U_i traces a path-mark along the
//     recorded Algorithm 2 predecessor chain to each neighbouring center;
//     every relay adds the edge to its predecessor. Marks are pipelined one
//     per edge per round.
//
// Both endpoints of every spanner edge trivially know it (it is their own
// incident graph edge). Driven by SpannerParams (Corollary 4.4) or by
// DistributedParams (the [EM19] baseline, for round-for-round comparison).

#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

struct DistributedSpannerResult {
  BuildResult base;
  congest::NetworkStats net;

  /// Injected-event counters of the delivery model (all zero under Ideal).
  congest::TransportCounters transport;

  /// Construction profile: one entry per (phase, task) — "p0.detect",
  /// "p0.ruling", ... — with the scheduler stage times that task accrued.
  /// Empty unless `profile` was requested.
  std::vector<congest::PhaseProfileEntry> profile;
};

/// §4 spanner (EN17a-style degree sequence) in CONGEST. `num_threads`
/// selects the engine's parallel round fan-out (1 = serial, 0 = hardware
/// concurrency); results are bit-for-bit identical for any value.
/// `transport` selects the delivery model (congest/transport.hpp): Ideal
/// (the default) is the classic synchronous semantics; Faulty/Async run
/// the same fixed schedule over seeded drops/duplicates/latencies,
/// deterministically for a fixed seed at any thread count.
/// `profile` collects the per-task scheduler stage profile (measurement
/// only; outputs and counts are bit-identical either way).
DistributedSpannerResult build_spanner_congest(
    const Graph& g, const SpannerParams& params, bool keep_audit_data = true,
    int num_threads = 1, const congest::TransportSpec& transport = {},
    bool profile = false);

/// [EM19] baseline (§3 degree sequence) in CONGEST.
DistributedSpannerResult build_spanner_congest_em19(
    const Graph& g, const DistributedParams& params,
    bool keep_audit_data = true, int num_threads = 1,
    const congest::TransportSpec& transport = {}, bool profile = false);

}  // namespace usne
