#include "core/emulator_centralized.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "path/bfs.hpp"

namespace usne {
namespace {

/// Per-center status within a phase.
enum class Status : std::uint8_t { kInS, kInN, kSuperclustered, kInU };

}  // namespace

BuildResult build_emulator_centralized(const Graph& g,
                                       const CentralizedParams& params,
                                       const CentralizedOptions& options) {
  const Vertex n = g.num_vertices();
  if (params.n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const PhaseSchedule& sched = params.schedule;
  const int ell = sched.ell();

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  if (options.keep_audit_data) result.partitions.push_back(current);

  // Scratch for bounded BFS (reset via the touched list).
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  std::vector<Vertex> touched;

  // Per-vertex phase state (indexed by center vertex id).
  std::vector<Status> status(static_cast<std::size_t>(n));
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> fallback(static_cast<std::size_t>(n), -1);
  std::vector<Dist> fallback_dist(static_cast<std::size_t>(n), 0);

  auto log_edge = [&](Vertex u, Vertex v, Dist w, int phase, EdgeKind kind,
                      Vertex charged) {
    result.h.add_edge(u, v, w);
    if (options.keep_audit_data) {
      result.edge_log.push_back({u, v, w, phase, kind, charged});
    }
  };

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    // Initialize phase state.
    std::vector<Vertex> centers;
    centers.reserve(current.size());
    for (std::size_t c = 0; c < current.size(); ++c) {
      const Vertex rc = current[c].center;
      status[static_cast<std::size_t>(rc)] = Status::kInS;
      cluster_of[static_cast<std::size_t>(rc)] = static_cast<std::int32_t>(c);
      centers.push_back(rc);
    }
    std::sort(centers.begin(), centers.end());

    // Processing order: the caller's, filtered to actual centers, followed
    // by any centers the caller did not mention (ascending).
    std::vector<Vertex> order;
    if (!options.processing_order.empty()) {
      std::vector<bool> listed(static_cast<std::size_t>(n), false);
      for (const Vertex v : options.processing_order) {
        if (v >= 0 && v < n && cluster_of[static_cast<std::size_t>(v)] != -1 &&
            !listed[static_cast<std::size_t>(v)]) {
          // Only centers of the current phase participate.
          bool is_center = std::binary_search(centers.begin(), centers.end(), v);
          if (is_center) {
            order.push_back(v);
            listed[static_cast<std::size_t>(v)] = true;
          }
        }
      }
      for (const Vertex v : centers) {
        if (!listed[static_cast<std::size_t>(v)]) order.push_back(v);
      }
    } else {
      order = centers;
    }

    std::vector<Cluster> next;          // P_{i+1}
    std::vector<Vertex> buffered;       // members of N_i, insertion order

    for (const Vertex rc : order) {
      if (status[static_cast<std::size_t>(rc)] != Status::kInS) continue;
      // Remove rc from S_i before the exploration (rc is not in Gamma(rc)).
      // Explore to 2*delta_i: Gamma needs delta_i; the buffer rule needs
      // (delta_i, 2*delta_i].
      bounded_bfs(g, rc, 2 * delta_i, dist, touched);

      // Gamma(rc): centers currently in S_i u N_i within delta_i.
      std::vector<Vertex> gamma;
      for (const Vertex v : touched) {
        if (v == rc) continue;
        if (dist[static_cast<std::size_t>(v)] > delta_i) continue;
        const Status st = status[static_cast<std::size_t>(v)];
        if (cluster_of[static_cast<std::size_t>(v)] != -1 &&
            (st == Status::kInS || st == Status::kInN)) {
          // Only centers of P_i clusters count.
          if (current[static_cast<std::size_t>(
                          cluster_of[static_cast<std::size_t>(v)])].center == v) {
            gamma.push_back(v);
          }
        }
      }
      std::sort(gamma.begin(), gamma.end());

      const bool popular =
          static_cast<double>(gamma.size()) + 1e-9 >= deg_i;

      Cluster& own = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(rc)])];

      if (!popular) {
        // Interconnection: edges charged to rc.
        for (const Vertex v : gamma) {
          log_edge(rc, v, dist[static_cast<std::size_t>(v)], i,
                   EdgeKind::kInterconnect, rc);
          ++stats.interconnect_edges;
        }
        status[static_cast<std::size_t>(rc)] = Status::kInU;
        ++stats.unclustered;
        for (const Vertex m : own.members) {
          result.u_level[static_cast<std::size_t>(m)] = i;
          result.u_center[static_cast<std::size_t>(m)] = rc;
        }
      } else {
        // Popular: form a supercluster around rc.
        ++stats.popular;
        Cluster super;
        super.center = rc;
        super.members = own.members;
        status[static_cast<std::size_t>(rc)] = Status::kSuperclustered;
        for (const Vertex v : gamma) {
          log_edge(rc, v, dist[static_cast<std::size_t>(v)], i,
                   EdgeKind::kSupercluster, v);
          ++stats.supercluster_edges;
          const Cluster& joined = current[static_cast<std::size_t>(
              cluster_of[static_cast<std::size_t>(v)])];
          super.members.insert(super.members.end(), joined.members.begin(),
                               joined.members.end());
          status[static_cast<std::size_t>(v)] = Status::kSuperclustered;
        }
        const std::int32_t super_index = static_cast<std::int32_t>(next.size());

        // Buffer rule: centers of S_i at distance in (delta_i, 2*delta_i]
        // move to N_i with this supercluster as fallback.
        for (const Vertex v : touched) {
          if (v == rc) continue;
          const Dist d = dist[static_cast<std::size_t>(v)];
          if (d <= delta_i || d > 2 * delta_i) continue;
          if (status[static_cast<std::size_t>(v)] != Status::kInS) continue;
          if (cluster_of[static_cast<std::size_t>(v)] == -1 ||
              current[static_cast<std::size_t>(
                          cluster_of[static_cast<std::size_t>(v)])].center != v) {
            continue;
          }
          status[static_cast<std::size_t>(v)] = Status::kInN;
          fallback[static_cast<std::size_t>(v)] = super_index;
          fallback_dist[static_cast<std::size_t>(v)] = d;
          buffered.push_back(v);
        }
        next.push_back(std::move(super));
      }

      // Reset the bounded-BFS scratch for the next center.
      for (const Vertex v : touched) dist[static_cast<std::size_t>(v)] = kInfDist;
      touched.clear();
    }

    // End of phase: buffered centers that were never absorbed join their
    // fallback supercluster.
    std::sort(buffered.begin(), buffered.end());
    for (const Vertex v : buffered) {
      if (status[static_cast<std::size_t>(v)] != Status::kInN) continue;
      const std::int32_t super_index = fallback[static_cast<std::size_t>(v)];
      Cluster& super = next[static_cast<std::size_t>(super_index)];
      log_edge(super.center, v, fallback_dist[static_cast<std::size_t>(v)], i,
               EdgeKind::kBufferJoin, v);
      ++stats.buffer_join_edges;
      const Cluster& joined = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(v)])];
      super.members.insert(super.members.end(), joined.members.begin(),
                           joined.members.end());
      status[static_cast<std::size_t>(v)] = Status::kSuperclustered;
    }

    // Clean per-phase state for the centers of this phase.
    for (const Vertex rc : centers) {
      cluster_of[static_cast<std::size_t>(rc)] = -1;
      fallback[static_cast<std::size_t>(rc)] = -1;
    }

    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
    if (options.keep_audit_data) result.partitions.push_back(current);
  }

  // Paper eq. (1): no popular clusters in phase ell, hence P_{ell+1} = {}.
  assert(current.empty());

  // U^(ell) partitions V: every vertex must carry a u_level.
  for (Vertex v = 0; v < n; ++v) {
    assert(result.u_level[static_cast<std::size_t>(v)] != -1);
    (void)v;
  }
  return result;
}

}  // namespace usne
