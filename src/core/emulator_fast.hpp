#pragma once

// Fast centralized construction of ultra-sparse near-additive emulators —
// the paper's §3.3: a centralized simulation of the distributed algorithm.
//
// Per phase i:
//   1. (S, delta_i, deg_i+1)-source detection from the centers of P_i
//      (capped k-nearest; see path/source_detection.hpp). Popular centers
//      are those that hear >= deg_i other centers.
//   2. A deterministic digit-sweep ruling set S_i on the popular centers
//      with separation parameter q = 2*delta_i.
//   3. A BFS forest rooted at S_i to depth rul_i + delta_i; one supercluster
//      per tree (no hub splitting — unnecessary centrally, §3.3), with
//      emulator edges (root, center, d_G(root, center)) for every spanned
//      center.
//   4. Unspanned clusters form U_i and interconnect with all their
//      neighbouring centers (their detection lists are exact because they
//      are unpopular with unpopular neighbours — Lemma 3.4 / Theorem 3.1).
//
// Runs in O~(|E| * n^rho) per phase — the scalable builder used by the
// large-n experiments (bench E2, E6). Produces the same guarantees as the
// distributed construction: |H| <= n^(1+1/kappa), stretch (alpha_ell,
// beta_ell) from DistributedParams.

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

struct FastOptions {
  bool keep_audit_data = true;
};

/// Runs the §3.3 construction.
BuildResult build_emulator_fast(const Graph& g, const DistributedParams& params,
                                const FastOptions& options = {});

}  // namespace usne
