#include "core/spanner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/ruling_central.hpp"
#include "path/bfs.hpp"
#include "path/source_detection.hpp"

namespace usne {
namespace {

/// Shared implementation: SAI with path insertion, parameterized by the
/// phase schedule (either SpannerParams or DistributedParams provides it).
BuildResult build_spanner_impl(const Graph& g, Vertex params_n,
                               const PhaseSchedule& sched,
                               const std::vector<Dist>& rul,
                               std::int64_t ruling_base,
                               const SpannerOptions& options) {
  const Vertex n = g.num_vertices();
  if (params_n != n) {
    throw std::invalid_argument("params were computed for a different n");
  }
  const int ell = sched.ell();

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  if (options.keep_audit_data) result.partitions.push_back(current);

  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);

  // Inserts the consecutive unit edges of `path` into H.
  auto add_path = [&](const std::vector<Vertex>& path, int phase, EdgeKind kind,
                      Vertex charged, std::int64_t& counter) {
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      result.h.add_edge(path[j], path[j + 1], 1);
      if (options.keep_audit_data) {
        result.edge_log.push_back(
            {std::min(path[j], path[j + 1]), std::max(path[j], path[j + 1]), 1,
             phase, kind, charged});
      }
      ++counter;
    }
  };

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];
    const Dist rul_i = rul[static_cast<std::size_t>(i)];
    const std::int64_t cap =
        static_cast<std::int64_t>(std::ceil(deg_i - 1e-9)) + 1;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      centers.push_back(current[c].center);
      cluster_of[static_cast<std::size_t>(current[c].center)] =
          static_cast<std::int32_t>(c);
    }
    std::sort(centers.begin(), centers.end());

    const SourceDetection detect =
        detect_sources(g, centers, delta_i, static_cast<std::size_t>(cap));
    std::vector<Vertex> popular;
    for (const Vertex c : centers) {
      std::size_t others = 0;
      for (const SourceHit& h : detect.at(c)) {
        if (h.source != c) ++others;
      }
      if (static_cast<double>(others) + 1e-9 >= deg_i) popular.push_back(c);
    }
    stats.popular = static_cast<std::int64_t>(popular.size());

    std::vector<Cluster> next;
    std::vector<bool> superclustered(static_cast<std::size_t>(n), false);

    if (i < ell && !popular.empty()) {
      const CentralRulingSet ruling =
          ruling_set_central(g, popular, 2 * delta_i, ruling_base);
      const MultiSourceBfsResult forest =
          multi_source_bfs(g, ruling.members, rul_i + delta_i);

      std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
      for (const Vertex r : ruling.members) {
        super_of[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(next.size());
        Cluster super;
        super.center = r;
        next.push_back(std::move(super));
      }
      for (const Vertex c : centers) {
        const Vertex root = forest.source[static_cast<std::size_t>(c)];
        if (root == -1) continue;
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(root)])];
        const Cluster& joined =
            current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
        super.members.insert(super.members.end(), joined.members.begin(),
                             joined.members.end());
        superclustered[static_cast<std::size_t>(c)] = true;
        if (c != root) {
          // Superclustering: add the forest root-path of c.
          std::vector<Vertex> path;
          Vertex cur = c;
          while (cur != -1) {
            path.push_back(cur);
            cur = forest.parent[static_cast<std::size_t>(cur)];
          }
          assert(path.back() == root);
          add_path(path, i, EdgeKind::kSupercluster, c,
                   stats.supercluster_edges);
        }
      }
    }

    // Interconnection: unspanned clusters connect along recorded shortest
    // paths to all their neighbouring centers.
    for (const Vertex c : centers) {
      if (superclustered[static_cast<std::size_t>(c)]) continue;
      ++stats.unclustered;
      const Cluster& cluster =
          current[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(c)])];
      for (const Vertex m : cluster.members) {
        result.u_level[static_cast<std::size_t>(m)] = i;
        result.u_center[static_cast<std::size_t>(m)] = c;
      }
      for (const SourceHit& h : detect.at(c)) {
        if (h.source == c) continue;
        const std::vector<Vertex> path = detect.path_to(c, h.source);
        assert(!path.empty());
        add_path(path, i, EdgeKind::kSpannerPath, c, stats.interconnect_edges);
      }
    }

    for (const Vertex c : centers) cluster_of[static_cast<std::size_t>(c)] = -1;
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
    if (options.keep_audit_data) result.partitions.push_back(current);
  }

  assert(current.empty());
  return result;
}

}  // namespace

BuildResult build_spanner(const Graph& g, const SpannerParams& params,
                          const SpannerOptions& options) {
  return build_spanner_impl(g, params.n, params.schedule, params.rul,
                            params.ruling_base, options);
}

BuildResult build_spanner_em19(const Graph& g, const DistributedParams& params,
                               const SpannerOptions& options) {
  return build_spanner_impl(g, params.n, params.schedule, params.rul,
                            params.ruling_base, options);
}

bool is_subgraph(const WeightedGraph& h, const Graph& g) {
  for (const WeightedEdge& e : h.edges()) {
    if (e.w != 1 || !g.has_edge(e.u, e.v)) return false;
  }
  return true;
}

}  // namespace usne
