#pragma once

// [EM19] Elkin–Matar PODC'19 baseline: near-additive spanners in low
// polynomial deterministic CONGEST time, with O(beta * n^(1+1/kappa)) edges.
//
// Structurally this is the §4 path-insertion skeleton driven by the §3
// degree sequence (no transition phase, no [EN17a] geometric decay): every
// interconnection inserts a path of length up to delta_i ~ beta, which is
// exactly where the beta factor in the size comes from. The implementation
// is shared with core/spanner.hpp (build_spanner_em19); this header is the
// baseline's public face and adds the convenience wrapper used by benches.

#include "core/params.hpp"
#include "core/spanner.hpp"

namespace usne {

/// Builds the EM19 baseline spanner with default rho/eps choices suitable
/// for size comparisons at a given kappa.
BuildResult build_spanner_em19_default(const Graph& g, Vertex n, int kappa,
                                       double rho, double eps);

}  // namespace usne
