#pragma once

// [EN17a] Elkin–Neiman baseline (SODA'17): randomized sampled
// superclustering, as characterized in the paper's §2:
//
//   cluster centers are sampled with probability 1/deg_i; every cluster
//   whose center lies within delta_i of a sampled center joins the nearest
//   sampled cluster. Clusters with no sampled center nearby become
//   unclustered and interconnect with all cluster centers within delta_i.
//
// Uses the optimized [EN17a] degree sequence deg_i =
// n^((2^i - 1)/(gamma*kappa) + 1/kappa), which gives linear-size emulators
// in expectation — but with a leading constant > 1 and per-phase analysis
// that cannot reach the exact n^(1+1/kappa) of Algorithm 1 (paper §2:
// "the size analysis of [EN17a] ... cannot be used to provide ultra-sparse
// emulators"). Randomized; no deterministic guarantee.

#include <cstdint>

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Runs the EN17a-style randomized construction.
BuildResult build_emulator_en17(const Graph& g, Vertex n, int kappa, double eps,
                                std::uint64_t seed);

}  // namespace usne
