#include "baselines/tz06_emulator.hpp"

#include <algorithm>
#include <cmath>

#include "path/bfs.hpp"
#include "util/rng.hpp"

namespace usne {

BuildResult build_emulator_tz06(const Graph& g, Vertex n, int kappa,
                                std::uint64_t seed) {
  Rng rng(seed);
  int ell = 0;
  while ((std::int64_t{1} << (ell + 1)) - 1 < kappa) ++ell;
  ++ell;  // one extra level whose sampling probability is 0 (termination)

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  std::vector<Vertex> touched;
  std::vector<bool> is_center_now(static_cast<std::size_t>(n), false);
  std::vector<bool> sampled(static_cast<std::size_t>(n), false);
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);

  for (int i = 0; i <= ell && !current.empty(); ++i) {
    const double deg_i = ep01_degree(n, kappa, i);
    const double p = (i == ell) ? 0.0 : 1.0 / deg_i;

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;

    std::vector<Vertex> centers;
    std::vector<Vertex> sampled_centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      const Vertex rc = current[c].center;
      centers.push_back(rc);
      is_center_now[static_cast<std::size_t>(rc)] = true;
      cluster_of[static_cast<std::size_t>(rc)] = static_cast<std::int32_t>(c);
      sampled[static_cast<std::size_t>(rc)] = rng.chance(p);
      if (sampled[static_cast<std::size_t>(rc)]) sampled_centers.push_back(rc);
    }
    std::sort(centers.begin(), centers.end());
    stats.popular = static_cast<std::int64_t>(sampled_centers.size());

    // Distance from every vertex to the nearest sampled center.
    MultiSourceBfsResult to_sampled;
    if (!sampled_centers.empty()) {
      to_sampled = multi_source_bfs(g, sampled_centers, kInfDist);
    }

    std::vector<Cluster> next;
    std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
    for (const Vertex s : sampled_centers) {
      super_of[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(next.size());
      Cluster super;
      super.center = s;
      super.members = current[static_cast<std::size_t>(
                                  cluster_of[static_cast<std::size_t>(s)])]
                          .members;
      next.push_back(std::move(super));
    }

    for (const Vertex c : centers) {
      if (sampled[static_cast<std::size_t>(c)]) continue;
      const Dist ds = sampled_centers.empty()
                          ? kInfDist
                          : to_sampled.dist[static_cast<std::size_t>(c)];
      // Connect to every unsampled center strictly closer than the nearest
      // sampled center.
      const Dist explore = (ds == kInfDist) ? kInfDist : ds - 1;
      bounded_bfs(g, c, explore, dist, touched);
      for (const Vertex v : touched) {
        if (v != c && is_center_now[static_cast<std::size_t>(v)] &&
            !sampled[static_cast<std::size_t>(v)]) {
          result.h.add_edge(c, v, dist[static_cast<std::size_t>(v)]);
          ++stats.interconnect_edges;
        }
      }
      for (const Vertex v : touched) dist[static_cast<std::size_t>(v)] = kInfDist;
      touched.clear();

      const Cluster& own = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(c)])];
      if (ds != kInfDist) {
        // Join the nearest sampled cluster.
        const Vertex s = to_sampled.source[static_cast<std::size_t>(c)];
        result.h.add_edge(c, s, ds);
        ++stats.supercluster_edges;
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(s)])];
        super.members.insert(super.members.end(), own.members.begin(),
                             own.members.end());
      }
      // Unsampled clusters are settled after this phase either way.
      ++stats.unclustered;
      for (const Vertex m : own.members) {
        result.u_level[static_cast<std::size_t>(m)] = i;
        result.u_center[static_cast<std::size_t>(m)] = c;
      }
    }

    for (const Vertex c : centers) {
      is_center_now[static_cast<std::size_t>(c)] = false;
      cluster_of[static_cast<std::size_t>(c)] = -1;
      sampled[static_cast<std::size_t>(c)] = false;
    }
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
  }
  return result;
}

}  // namespace usne
