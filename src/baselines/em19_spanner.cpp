#include "baselines/em19_spanner.hpp"

namespace usne {

BuildResult build_spanner_em19_default(const Graph& g, Vertex n, int kappa,
                                       double rho, double eps) {
  const DistributedParams params = DistributedParams::compute(n, kappa, rho, eps);
  SpannerOptions options;
  options.keep_audit_data = false;
  return build_spanner_em19(g, params, options);
}

}  // namespace usne
