#include "baselines/ep01_emulator.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "path/bfs.hpp"

namespace usne {

BuildResult build_emulator_ep01(const Graph& g, const CentralizedParams& params) {
  const Vertex n = g.num_vertices();
  const PhaseSchedule& sched = params.schedule;
  const int ell = sched.ell();

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  std::vector<Vertex> touched;
  std::vector<bool> in_s(static_cast<std::size_t>(n), false);
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);

  for (int i = 0; i <= ell; ++i) {
    const double deg_i = sched.deg[static_cast<std::size_t>(i)];
    const Dist delta_i = sched.delta[static_cast<std::size_t>(i)];

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      const Vertex rc = current[c].center;
      centers.push_back(rc);
      in_s[static_cast<std::size_t>(rc)] = true;
      cluster_of[static_cast<std::size_t>(rc)] = static_cast<std::int32_t>(c);
    }
    std::sort(centers.begin(), centers.end());

    std::vector<Cluster> next;
    for (const Vertex rc : centers) {
      if (!in_s[static_cast<std::size_t>(rc)]) continue;
      in_s[static_cast<std::size_t>(rc)] = false;
      bounded_bfs(g, rc, delta_i, dist, touched);
      std::vector<Vertex> gamma;
      for (const Vertex v : touched) {
        if (v != rc && in_s[static_cast<std::size_t>(v)] &&
            dist[static_cast<std::size_t>(v)] <= delta_i) {
          gamma.push_back(v);
        }
      }
      std::sort(gamma.begin(), gamma.end());
      const bool popular = static_cast<double>(gamma.size()) + 1e-9 >= deg_i;

      const Cluster& own = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(rc)])];
      if (!popular) {
        for (const Vertex v : gamma) {
          result.h.add_edge(rc, v, dist[static_cast<std::size_t>(v)]);
          ++stats.interconnect_edges;
        }
        ++stats.unclustered;
        for (const Vertex m : own.members) {
          result.u_level[static_cast<std::size_t>(m)] = i;
          result.u_center[static_cast<std::size_t>(m)] = rc;
        }
      } else {
        ++stats.popular;
        Cluster super;
        super.center = rc;
        super.members = own.members;
        for (const Vertex v : gamma) {
          result.h.add_edge(rc, v, dist[static_cast<std::size_t>(v)]);
          ++stats.supercluster_edges;
          const Cluster& joined = current[static_cast<std::size_t>(
              cluster_of[static_cast<std::size_t>(v)])];
          super.members.insert(super.members.end(), joined.members.begin(),
                               joined.members.end());
          in_s[static_cast<std::size_t>(v)] = false;
        }
        next.push_back(std::move(super));
      }
      for (const Vertex v : touched) dist[static_cast<std::size_t>(v)] = kInfDist;
      touched.clear();
    }

    for (const Vertex rc : centers) cluster_of[static_cast<std::size_t>(rc)] = -1;
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
  }

  // Residual clusters of P_{ell+1} (if any): mark members as settled so the
  // result is well-formed even when the last phase still superclustered.
  for (const Cluster& c : current) {
    for (const Vertex m : c.members) {
      result.u_level[static_cast<std::size_t>(m)] = ell;
      result.u_center[static_cast<std::size_t>(m)] = c.center;
    }
  }

  // The ground partition: a spanning forest of G, up to n - 1 extra edges.
  // This is the structural cost the buffer-set mechanism of Algorithm 1
  // eliminates.
  PhaseStats ground;
  ground.phase = ell + 1;
  for (const Edge& e : spanning_forest(g)) {
    result.h.add_edge(e.u, e.v, 1);
    ++ground.supercluster_edges;
  }
  result.phases.push_back(ground);
  return result;
}

}  // namespace usne
