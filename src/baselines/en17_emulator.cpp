#include "baselines/en17_emulator.hpp"

#include <algorithm>
#include <cmath>

#include "path/bfs.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

/// [EN17a]-style degree sequence: deg_i = n^((2^i - 1)/(gamma*kappa) + 1/kappa).
double en17_degree(Vertex n, int kappa, int gamma, int phase) {
  const double exponent =
      (std::pow(2.0, phase) - 1.0) / (static_cast<double>(gamma) * kappa) +
      1.0 / kappa;
  return std::pow(static_cast<double>(std::max<Vertex>(n, 1)), exponent);
}

}  // namespace

BuildResult build_emulator_en17(const Graph& g, Vertex n, int kappa, double eps,
                                std::uint64_t seed) {
  Rng rng(seed);
  const int gamma =
      std::max(2, kappa >= 4
                      ? static_cast<int>(std::ceil(
                            std::log2(std::log2(static_cast<double>(kappa)))))
                      : 2);
  // Enough levels for the sequence to reach n (gamma*kappa needs ~log2 of
  // extra halvings); one final level with sampling probability 0.
  int ell = 0;
  while (en17_degree(n, kappa, gamma, ell) < static_cast<double>(n) &&
         ell < 8 * (32 - __builtin_clz(static_cast<unsigned>(std::max(kappa, 2))))) {
    ++ell;
  }
  ++ell;

  // Distance thresholds: same L_i + 2R_i recurrence as the centralized
  // schedule (the EN17a thresholds have the same structure).
  std::vector<Dist> delta(static_cast<std::size_t>(ell) + 1);
  Dist radius = 0;
  for (int i = 0; i <= ell; ++i) {
    const Dist seg =
        std::max<Dist>(1, static_cast<Dist>(std::ceil(std::pow(1.0 / eps, i) - 1e-9)));
    delta[static_cast<std::size_t>(i)] = seg + 2 * radius;
    radius += 2 * delta[static_cast<std::size_t>(i)];
  }

  BuildResult result;
  result.h = WeightedGraph(n);
  result.u_level.assign(static_cast<std::size_t>(n), -1);
  result.u_center.assign(static_cast<std::size_t>(n), -1);

  std::vector<Cluster> current = singleton_partition(n);
  std::vector<Dist> dist(static_cast<std::size_t>(n), kInfDist);
  std::vector<Vertex> touched;
  std::vector<bool> is_center_now(static_cast<std::size_t>(n), false);
  std::vector<std::int32_t> cluster_of(static_cast<std::size_t>(n), -1);

  for (int i = 0; i <= ell && !current.empty(); ++i) {
    const double deg_i = en17_degree(n, kappa, gamma, i);
    const double p = (i == ell) ? 0.0 : 1.0 / deg_i;
    const Dist delta_i = delta[static_cast<std::size_t>(i)];

    PhaseStats stats;
    stats.phase = i;
    stats.clusters_in = static_cast<std::int64_t>(current.size());
    stats.deg_threshold = deg_i;
    stats.delta = delta_i;

    std::vector<Vertex> centers;
    std::vector<Vertex> sampled_centers;
    for (std::size_t c = 0; c < current.size(); ++c) {
      const Vertex rc = current[c].center;
      centers.push_back(rc);
      is_center_now[static_cast<std::size_t>(rc)] = true;
      cluster_of[static_cast<std::size_t>(rc)] = static_cast<std::int32_t>(c);
      if (rng.chance(p)) sampled_centers.push_back(rc);
    }
    std::sort(centers.begin(), centers.end());
    std::sort(sampled_centers.begin(), sampled_centers.end());
    stats.popular = static_cast<std::int64_t>(sampled_centers.size());

    // Every center within delta_i of a sampled center joins the nearest one.
    MultiSourceBfsResult to_sampled;
    if (!sampled_centers.empty()) {
      to_sampled = multi_source_bfs(g, sampled_centers, delta_i);
    }

    std::vector<Cluster> next;
    std::vector<std::int32_t> super_of(static_cast<std::size_t>(n), -1);
    for (const Vertex s : sampled_centers) {
      super_of[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(next.size());
      Cluster super;
      super.center = s;
      next.push_back(std::move(super));
    }

    for (const Vertex c : centers) {
      const Cluster& own = current[static_cast<std::size_t>(
          cluster_of[static_cast<std::size_t>(c)])];
      const bool is_sampled =
          !sampled_centers.empty() &&
          std::binary_search(sampled_centers.begin(), sampled_centers.end(), c);
      const Dist ds = sampled_centers.empty()
                          ? kInfDist
                          : to_sampled.dist[static_cast<std::size_t>(c)];
      if (is_sampled || ds <= delta_i) {
        const Vertex s =
            is_sampled ? c : to_sampled.source[static_cast<std::size_t>(c)];
        Cluster& super =
            next[static_cast<std::size_t>(super_of[static_cast<std::size_t>(s)])];
        super.members.insert(super.members.end(), own.members.begin(),
                             own.members.end());
        if (!is_sampled) {
          result.h.add_edge(c, s, ds);
          ++stats.supercluster_edges;
        }
        continue;
      }
      // Unclustered: interconnect with all centers within delta_i.
      bounded_bfs(g, c, delta_i, dist, touched);
      for (const Vertex v : touched) {
        if (v != c && is_center_now[static_cast<std::size_t>(v)]) {
          result.h.add_edge(c, v, dist[static_cast<std::size_t>(v)]);
          ++stats.interconnect_edges;
        }
      }
      for (const Vertex v : touched) dist[static_cast<std::size_t>(v)] = kInfDist;
      touched.clear();
      ++stats.unclustered;
      for (const Vertex m : own.members) {
        result.u_level[static_cast<std::size_t>(m)] = i;
        result.u_center[static_cast<std::size_t>(m)] = c;
      }
    }

    for (const Vertex c : centers) {
      is_center_now[static_cast<std::size_t>(c)] = false;
      cluster_of[static_cast<std::size_t>(c)] = -1;
    }
    stats.clusters_out = static_cast<std::int64_t>(next.size());
    result.phases.push_back(stats);
    current = std::move(next);
  }
  return result;
}

}  // namespace usne
