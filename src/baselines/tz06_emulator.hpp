#pragma once

// [TZ06] Thorup–Zwick baseline (SODA'06), the scale-free randomized variant
// of SAI as characterized in the paper's §1.2:
//
//   clusters of P_i are sampled independently with probability 1/deg_i;
//   each unsampled cluster joins the closest sampled cluster (an emulator
//   edge to it), and additionally connects to every other unsampled cluster
//   that is closer than the closest sampled cluster. Sampled clusters (with
//   everything that joined them) form P_{i+1}.
//
// Randomized, size O(n^(1+1/kappa)) in expectation with a leading constant
// > 1 — bench E1 contrasts it with the deterministic exactly-n^(1+1/kappa)
// of Algorithm 1.

#include <cstdint>

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Runs the TZ06-style randomized construction with the Ep01 degree
/// sequence (deg_i = n^(2^i/kappa)) and ell = ceil(log2((kappa+1)/2)) + 1
/// levels.
BuildResult build_emulator_tz06(const Graph& g, Vertex n, int kappa,
                                std::uint64_t seed);

}  // namespace usne
