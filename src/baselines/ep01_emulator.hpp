#pragma once

// [EP01] Elkin–Peleg baseline (STOC'01), as characterized in the paper's
// §1.2/§2: the same superclustering-and-interconnection scheme and degree
// sequence, but
//   * popular clusters absorb only delta_i-close clusters (no buffer set
//     N_i), and
//   * connectivity between superclusters and nearby unclustered clusters is
//     provided by a separate *ground partition*, whose spanning forest
//     contributes up to n - 1 additional emulator edges.
//
// This is the construction whose per-phase accounting is "doomed to result
// in an emulator of size at least n^(1+1/kappa) + n - O(1) >= 2n - O(1)"
// (paper §2) — the foil for the main result. Bench E1/E7 compare its edge
// count against Algorithm 1 on identical inputs.

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace usne {

/// Runs the [EP01]-style construction (deterministic).
BuildResult build_emulator_ep01(const Graph& g, const CentralizedParams& params);

}  // namespace usne
