// Property-based parameterized sweeps for Algorithm 1: across graph
// families, sizes, kappa and eps, verify
//   (P1) |H| <= n^(1+1/kappa)                      [Lemma 2.4]
//   (P2) d_G <= d_H <= alpha*d_G + beta            [Lemma 2.10]
//   (P3) edge weights are exact graph distances
//   (P4) the partition / laminarity / radius / charging audits
//   (P5) bit-for-bit determinism.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/audit.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

struct SweepCase {
  std::string family;
  Vertex n;
  int kappa;
  double eps;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string eps = std::to_string(static_cast<int>(c.eps * 100));
  return c.family + "_n" + std::to_string(c.n) + "_k" + std::to_string(c.kappa) +
         "_e" + eps + "_s" + std::to_string(c.seed);
}

class EmulatorSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const SweepCase& c = GetParam();
    graph_ = gen_family(c.family, c.n, c.seed);
    params_ = CentralizedParams::compute(graph_.num_vertices(), c.kappa, c.eps);
    result_ = build_emulator_centralized(graph_, params_);
  }

  Graph graph_;
  CentralizedParams params_;
  BuildResult result_;
};

TEST_P(EmulatorSweep, SizeBound) {
  EXPECT_LE(result_.h.num_edges(),
            size_bound_edges(graph_.num_vertices(), GetParam().kappa));
}

TEST_P(EmulatorSweep, StretchBound) {
  const auto report = evaluate_stretch_exact(
      graph_, result_.h, params_.schedule.alpha_bound(),
      params_.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "alpha=" << params_.schedule.alpha_bound()
      << " beta=" << params_.schedule.beta_bound()
      << " max_add=" << report.max_additive << " max_mult=" << report.max_mult;
  EXPECT_EQ(report.underruns, 0);
}

TEST_P(EmulatorSweep, Audits) {
  const auto report = audit_all(result_, graph_, params_.schedule,
                                GetParam().kappa, /*exact_weights=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(EmulatorSweep, Deterministic) {
  const auto again = build_emulator_centralized(graph_, params_);
  EXPECT_EQ(result_.h.edges(), again.h.edges());
}

INSTANTIATE_TEST_SUITE_P(
    Families, EmulatorSweep,
    ::testing::Values(
        SweepCase{"er", 200, 2, 0.25, 1}, SweepCase{"er", 200, 4, 0.25, 2},
        SweepCase{"er", 300, 8, 0.5, 3}, SweepCase{"er", 150, 3, 0.1, 4},
        SweepCase{"ba", 200, 2, 0.25, 5}, SweepCase{"ba", 250, 4, 0.5, 6},
        SweepCase{"torus", 196, 2, 0.25, 7}, SweepCase{"torus", 256, 4, 0.3, 8},
        SweepCase{"star", 120, 4, 0.25, 9}, SweepCase{"star", 200, 2, 0.5, 10},
        SweepCase{"tree", 255, 4, 0.25, 11}, SweepCase{"tree", 127, 2, 0.3, 12},
        SweepCase{"caveman", 160, 2, 0.4, 13},
        SweepCase{"caveman", 240, 4, 0.25, 14},
        SweepCase{"ws", 200, 4, 0.25, 15}, SweepCase{"ws", 256, 8, 0.5, 16},
        SweepCase{"cycle", 200, 4, 0.25, 17}, SweepCase{"path", 200, 2, 0.25, 18},
        SweepCase{"dumbbell", 150, 2, 0.4, 19},
        SweepCase{"hypercube", 256, 4, 0.25, 20},
        SweepCase{"grid", 225, 3, 0.25, 21},
        SweepCase{"regular", 200, 4, 0.25, 22},
        SweepCase{"er", 500, 16, 0.25, 23}, SweepCase{"ba", 400, 16, 0.5, 24}),
    case_name);

// Sparser secondary sweep over eps values on a fixed graph: beta/alpha
// budgets must hold for every eps.
class EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsSweep, StretchHoldsAcrossEps) {
  const double eps = GetParam();
  const Graph g = gen_connected_gnm(220, 660, 42);
  const auto params = CentralizedParams::compute(220, 4, eps);
  const auto r = build_emulator_centralized(g, params);
  const auto report = evaluate_stretch_exact(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0) << "eps=" << eps;
  EXPECT_LE(r.h.num_edges(), size_bound_edges(220, 4));
}

INSTANTIATE_TEST_SUITE_P(Eps, EpsSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7,
                                           0.9));

}  // namespace
}  // namespace usne
