// Tests for the fast centralized construction (§3.3): the same guarantees
// as Algorithm 1 under the distributed parameter schedule, at
// O~(|E| n^rho) cost.

#include <gtest/gtest.h>

#include <string>

#include "core/audit.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

struct FastCase {
  std::string family;
  Vertex n;
  int kappa;
  double rho;
  double eps;
  std::uint64_t seed;
};

class FastSweep : public ::testing::TestWithParam<FastCase> {
 protected:
  void SetUp() override {
    const FastCase& c = GetParam();
    graph_ = gen_family(c.family, c.n, c.seed);
    params_ = DistributedParams::compute(graph_.num_vertices(), c.kappa, c.rho,
                                         c.eps);
    result_ = build_emulator_fast(graph_, params_);
  }

  Graph graph_;
  DistributedParams params_;
  BuildResult result_;
};

TEST_P(FastSweep, SizeBound) {
  EXPECT_LE(result_.h.num_edges(),
            size_bound_edges(graph_.num_vertices(), GetParam().kappa));
}

TEST_P(FastSweep, StretchBound) {
  const auto report = evaluate_stretch_exact(
      graph_, result_.h, params_.schedule.alpha_bound(),
      params_.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "alpha=" << params_.schedule.alpha_bound()
      << " beta=" << params_.schedule.beta_bound()
      << " max_add=" << report.max_additive;
  EXPECT_EQ(report.underruns, 0);
}

TEST_P(FastSweep, Audits) {
  // Superclustering edges connect ruling roots at exact BFS-forest
  // distances, so weights are exact here too.
  const auto report = audit_all(result_, graph_, params_.schedule,
                                GetParam().kappa, /*exact_weights=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(FastSweep, Deterministic) {
  const auto again = build_emulator_fast(graph_, params_);
  EXPECT_EQ(result_.h.edges(), again.h.edges());
}

INSTANTIATE_TEST_SUITE_P(
    Families, FastSweep,
    ::testing::Values(
        FastCase{"er", 256, 8, 0.4, 0.25, 1},
        FastCase{"er", 400, 4, 0.45, 0.25, 2},
        FastCase{"ba", 300, 8, 0.4, 0.5, 3},
        FastCase{"torus", 256, 8, 0.35, 0.25, 4},
        FastCase{"star", 200, 8, 0.4, 0.25, 5},
        FastCase{"caveman", 320, 4, 0.45, 0.4, 6},
        FastCase{"tree", 255, 8, 0.4, 0.25, 7},
        FastCase{"ws", 256, 16, 0.3, 0.25, 8},
        FastCase{"er", 512, 16, 0.3, 0.25, 9},
        FastCase{"cycle", 300, 8, 0.4, 0.25, 10}),
    [](const ::testing::TestParamInfo<FastCase>& info) {
      return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.kappa) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(EmulatorFast, UltraSparseRegime) {
  // kappa = omega(log n) gives n + o(n) edges (Cor. 3.12 via §3.3).
  const Vertex n = 2048;
  const Graph g = gen_connected_gnm(n, 4 * n, 77);
  const int kappa = 44;  // = 4 * log2(n): comfortably omega(log n) scale
  const auto params = DistributedParams::compute(n, kappa, 0.3, 0.25);
  const auto r = build_emulator_fast(g, params);
  // n^(1+1/44) = n * n^(0.0227) ~ 1.19n: strictly below 1.2 n here.
  EXPECT_LE(r.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_LT(static_cast<double>(r.h.num_edges()),
            1.2 * static_cast<double>(n));
}

TEST(EmulatorFast, LastPhaseHasNoPopularClusters) {
  // eq. (17): |P_ell| <= n^rho = deg_ell, so phase ell sees no popular
  // clusters and the superclustering step is safely skipped.
  const Graph g = gen_connected_gnm(500, 2000, 5);
  const auto params = DistributedParams::compute(500, 8, 0.4, 0.25);
  const auto r = build_emulator_fast(g, params);
  ASSERT_FALSE(r.phases.empty());
  EXPECT_EQ(r.phases.back().popular, 0);
  EXPECT_EQ(r.phases.back().clusters_out, 0);
}

TEST(EmulatorFast, PhaseSizesDecayGeometrically) {
  // eq. (15): |P_{i+1}| <= |P_i| / deg_i.
  const Graph g = gen_caveman(64, 8);  // 512 vertices with dense pockets
  const auto params = DistributedParams::compute(512, 4, 0.45, 0.25);
  const auto r = build_emulator_fast(g, params);
  for (const auto& p : r.phases) {
    if (p.clusters_out == 0) continue;
    EXPECT_LE(static_cast<double>(p.clusters_out) * (p.deg_threshold + 1.0),
              static_cast<double>(p.clusters_in) + 1e-6)
        << "phase " << p.phase;
  }
}

TEST(EmulatorFast, MismatchedParamsRejected) {
  const Graph g = gen_path(10);
  const auto params = DistributedParams::compute(99, 8, 0.4, 0.25);
  EXPECT_THROW(build_emulator_fast(g, params), std::invalid_argument);
}

}  // namespace
}  // namespace usne
