// Tests for the query-serving subsystem (src/serve/): workload generation,
// the sharded LRU SSSP cache, batch serving determinism, and the stretch
// guarantee of served answers.
//
// Built with -DUSNE_TSAN=ON this binary is part of the ThreadSanitizer gate
// (ctest label "tsan"): the hammer tests drive the cache from many threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "path/dijkstra.hpp"
#include "serve/query_engine.hpp"
#include "serve/stats.hpp"
#include "serve/workload.hpp"

namespace usne {
namespace {

using serve::BatchResult;
using serve::Query;
using serve::QueryEngine;
using serve::ServeOptions;
using serve::WorkloadKind;
using serve::WorkloadSpec;

BuildOutput build_emulator(const Graph& g, int kappa = 6) {
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params = {0, kappa, 0.25, 0.3, false};
  spec.exec.keep_audit_data = false;
  return build(g, spec);
}

// --- workload generator -----------------------------------------------------

TEST(Workload, DeterministicForFixedSeed) {
  WorkloadSpec spec;
  spec.num_queries = 500;
  spec.seed = 9;
  for (const WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kZipf, WorkloadKind::kGrouped,
        WorkloadKind::kPointVsAll}) {
    spec.kind = kind;
    const auto a = serve::generate_workload(300, spec);
    const auto b = serve::generate_workload(300, spec);
    EXPECT_EQ(a, b) << serve::workload_kind_name(kind);
    EXPECT_EQ(a.size(), 500u);
    for (const Query& q : a) {
      EXPECT_GE(q.u, 0);
      EXPECT_LT(q.u, 300);
      EXPECT_GE(q.v, 0);
      EXPECT_LT(q.v, 300);
    }
    spec.seed = 10;
    const auto c = serve::generate_workload(300, spec);
    EXPECT_NE(a, c) << "seed must matter for "
                    << serve::workload_kind_name(kind);
    spec.seed = 9;
  }
}

TEST(Workload, ZipfConcentratesSources) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kZipf;
  spec.num_queries = 4000;
  spec.seed = 3;
  spec.zipf_s = 1.2;
  const auto queries = serve::generate_workload(1000, spec);
  std::unordered_map<Vertex, int> frequency;
  for (const Query& q : queries) ++frequency[q.u];
  int hottest = 0;
  for (const auto& [source, count] : frequency) {
    hottest = std::max(hottest, count);
  }
  // Uniform sources would put ~4 queries on each of 1000 sources; a zipf
  // head must be far above that.
  EXPECT_GT(hottest, 100);
}

TEST(Workload, GroupedEmitsRunsOfOneSource) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kGrouped;
  spec.num_queries = 256;
  spec.group_size = 32;
  spec.seed = 5;
  const auto queries = serve::generate_workload(500, spec);
  ASSERT_EQ(queries.size(), 256u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].u, queries[i - i % 32].u) << "index " << i;
  }
}

TEST(Workload, PointVsAllMixesInFullSsspQueries) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kPointVsAll;
  spec.num_queries = 2000;
  spec.all_fraction = 0.1;
  spec.seed = 7;
  const auto queries = serve::generate_workload(400, spec);
  const auto all_count = std::count_if(queries.begin(), queries.end(),
                                       [](const Query& q) { return q.all; });
  EXPECT_GT(all_count, 100);
  EXPECT_LT(all_count, 400);
}

TEST(Workload, ParseAndNameRoundTrip) {
  for (const char* name : {"uniform", "zipf", "grouped", "point_vs_all"}) {
    EXPECT_STREQ(serve::workload_kind_name(serve::parse_workload_kind(name)),
                 name);
  }
  EXPECT_THROW(serve::parse_workload_kind("bogus"), std::invalid_argument);
}

TEST(Workload, RejectsMalformedSpecs) {
  WorkloadSpec spec;
  EXPECT_THROW(serve::generate_workload(0, spec), std::invalid_argument);
  spec.num_queries = -1;
  EXPECT_THROW(serve::generate_workload(10, spec), std::invalid_argument);
  spec.num_queries = 10;
  spec.kind = WorkloadKind::kZipf;
  spec.zipf_s = 0;
  EXPECT_THROW(serve::generate_workload(10, spec), std::invalid_argument);
  spec.kind = WorkloadKind::kGrouped;
  spec.group_size = 0;
  EXPECT_THROW(serve::generate_workload(10, spec), std::invalid_argument);
  spec.kind = WorkloadKind::kPointVsAll;
  spec.all_fraction = 1.5;
  EXPECT_THROW(serve::generate_workload(10, spec), std::invalid_argument);
}

// --- query engine: answers --------------------------------------------------

TEST(QueryEngine, AnswersMatchDirectSssp) {
  const Graph g = gen_connected_gnm(300, 1200, 17);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  for (const Vertex s : {0, 5, 123, 299}) {
    const auto direct = dial_sssp(built.h(), s);
    const auto cached = engine.query_all(s);
    EXPECT_EQ(*cached, direct);
    for (Vertex v = 0; v < 300; v += 37) {
      EXPECT_EQ(engine.query(s, v), direct[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(QueryEngine, CachedAndUncachedAnswersIdentical) {
  const Graph g = gen_connected_gnm(400, 1600, 23);
  const BuildOutput built = build_emulator(g);
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kZipf;
  spec.num_queries = 3000;
  spec.seed = 4;
  const auto queries = serve::generate_workload(400, spec);

  ServeOptions cached_options;
  ServeOptions uncached_options;
  uncached_options.cache_mb = 0;
  const QueryEngine cached(built, cached_options);
  const QueryEngine uncached(built, uncached_options);
  const BatchResult a = cached.serve(queries, 2);
  const BatchResult b = uncached.serve(queries, 2);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.checksum, b.checksum);
  // The uncached engine recomputes every query; the cached one pays one
  // SSSP per distinct source.
  EXPECT_GT(b.cache.sssp_runs, a.cache.sssp_runs);
  EXPECT_EQ(a.cache.hits + a.cache.misses,
            static_cast<std::int64_t>(queries.size()));
}

TEST(QueryEngine, SymmetricPeekServesFromEitherEndpoint) {
  const Graph g = gen_family("torus", 144, 3);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  const Dist direct = engine.query(5, 60);   // SSSP from 5
  const auto before = engine.cache_stats();
  const Dist via_cache = engine.query(60, 5);  // must reuse 5's vector
  const auto after = engine.cache_stats();
  EXPECT_EQ(direct, via_cache);
  EXPECT_EQ(after.sssp_runs, before.sssp_runs);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(QueryEngine, AllQueriesFoldChecksumIntoAnswerSlot) {
  const Graph g = gen_connected_gnm(200, 800, 31);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  const std::vector<Query> queries = {{7, 0, true}, {7, 11, false}};
  const BatchResult batch = engine.serve(queries, 1);
  EXPECT_EQ(batch.all_queries, 1);
  EXPECT_EQ(batch.point_queries, 1);
  EXPECT_EQ(batch.answers[0], serve::checksum_fold(*engine.query_all(7)));
  EXPECT_EQ(batch.answers[1], engine.query(7, 11));
}

// --- query engine: LRU cache ------------------------------------------------

TEST(QueryEngine, LruEvictsColdestSource) {
  const Graph g = gen_connected_gnm(200, 800, 11);
  const BuildOutput built = build_emulator(g);
  ServeOptions options;
  options.cache_shards = 1;  // one shard so capacity is exact
  options.cache_entries_per_shard = 2;
  const QueryEngine engine(built, options);

  const auto a0 = *engine.query_all(0);  // cache: {0}
  (void)engine.query_all(1);             // cache: {1, 0}
  (void)engine.query_all(0);             // touch 0 -> {0, 1}
  (void)engine.query_all(2);             // evicts 1 -> {2, 0}
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.sssp_runs, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);

  // 0 survived (it was touched), 1 was evicted and recomputes.
  (void)engine.query_all(0);
  EXPECT_EQ(engine.cache_stats().sssp_runs, 3);
  (void)engine.query_all(1);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.sssp_runs, 4);
  EXPECT_EQ(stats.evictions, 2);

  // Evicted-and-recomputed answers are identical to the first computation.
  EXPECT_EQ(*engine.query_all(0), a0);
}

TEST(QueryEngine, DisabledCacheRecomputesEveryQuery) {
  const Graph g = gen_connected_gnm(150, 600, 13);
  const BuildOutput built = build_emulator(g);
  ServeOptions options;
  options.cache_mb = 0;
  const QueryEngine engine(built, options);
  (void)engine.query_all(3);
  (void)engine.query_all(3);
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.sssp_runs, 2);
  EXPECT_EQ(stats.hits, 0);
}

TEST(QueryEngine, EvictedVectorsStayValidForHolders) {
  const Graph g = gen_connected_gnm(150, 600, 19);
  const BuildOutput built = build_emulator(g);
  ServeOptions options;
  options.cache_shards = 1;
  options.cache_entries_per_shard = 1;
  const QueryEngine engine(built, options);
  const serve::SsspResult held = engine.query_all(4);
  const std::vector<Dist> copy = *held;
  (void)engine.query_all(5);  // evicts source 4
  EXPECT_GE(engine.cache_stats().evictions, 1);
  EXPECT_EQ(*held, copy);  // shared ownership keeps the vector alive
}

// --- query engine: determinism & concurrency --------------------------------

TEST(QueryEngine, BatchDeterministicAcrossThreadCounts) {
  const Graph g = gen_connected_gnm(500, 2000, 29);
  const BuildOutput built = build_emulator(g);
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kPointVsAll;
  spec.num_queries = 4000;
  spec.seed = 12;
  const auto queries = serve::generate_workload(500, spec);

  BatchResult reference;
  for (const int threads : {1, 2, 8}) {
    const QueryEngine engine(built);  // fresh engine per thread count
    const BatchResult batch = engine.serve(queries, threads);
    if (threads == 1) {
      reference = batch;
      continue;
    }
    EXPECT_EQ(batch.answers, reference.answers) << "threads=" << threads;
    EXPECT_EQ(batch.checksum, reference.checksum) << "threads=" << threads;
    // (sssp_runs is deliberately not compared here: the symmetric peek
    // makes the set of computed sources order-dependent for point queries —
    // the answers are what the determinism contract covers.)
  }
}

TEST(QueryEngine, SingleSourceSsspCountInvariantAcrossThreads) {
  // All-queries go straight through query_all, so with an ample cache the
  // engine pays exactly one SSSP per distinct source at ANY thread count —
  // concurrent cold requests coalesce instead of duplicating work.
  const Graph g = gen_connected_gnm(400, 1600, 53);
  const BuildOutput built = build_emulator(g);
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kPointVsAll;
  spec.all_fraction = 1.0;  // every query is single-source
  spec.num_queries = 2000;
  spec.seed = 6;
  const auto queries = serve::generate_workload(400, spec);
  std::set<Vertex> distinct;
  for (const Query& q : queries) distinct.insert(q.u);

  for (const int threads : {1, 2, 8}) {
    const QueryEngine engine(built);
    const BatchResult batch = engine.serve(queries, threads);
    EXPECT_EQ(batch.cache.sssp_runs,
              static_cast<std::int64_t>(distinct.size()))
        << "threads=" << threads;
  }
}

TEST(QueryEngine, ConcurrentSameSourceQueriesCoalesce) {
  const Graph g = gen_connected_gnm(400, 1600, 37);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<std::vector<Dist>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = *engine.query_all(42);
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
  }
  EXPECT_EQ(engine.cache_stats().sssp_runs, 1);
}

TEST(QueryEngine, HammerMixedQueriesFromManyThreads) {
  const Graph g = gen_connected_gnm(300, 1200, 41);
  const BuildOutput built = build_emulator(g);
  ServeOptions options;
  options.cache_shards = 2;
  options.cache_entries_per_shard = 4;  // tiny: force eviction under load
  const QueryEngine engine(built, options);
  ServeOptions uncached_options;
  uncached_options.cache_mb = 0;
  const QueryEngine reference(built, uncached_options);

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        const Vertex u = static_cast<Vertex>((t * 131 + i * 7) % 300);
        const Vertex v = static_cast<Vertex>((t * 17 + i * 113) % 300);
        if (engine.query(u, v) != reference.query(u, v)) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

// --- stretch of served answers ----------------------------------------------

TEST(ServeStats, GeneratedWorkloadsRespectStretchBounds) {
  const Graph g = gen_connected_gnm(350, 1400, 43);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  ASSERT_TRUE(built.has_guarantee);
  for (const WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kZipf, WorkloadKind::kGrouped}) {
    WorkloadSpec spec;
    spec.kind = kind;
    spec.num_queries = 600;
    spec.seed = 21;
    const auto queries = serve::generate_workload(350, spec);
    const serve::StretchSample sample =
        serve::sample_query_stretch(g, engine, queries, 150);
    EXPECT_GT(sample.pairs, 0) << serve::workload_kind_name(kind);
    EXPECT_EQ(sample.violations, 0) << serve::workload_kind_name(kind);
    EXPECT_EQ(sample.underruns, 0) << serve::workload_kind_name(kind);
    EXPECT_TRUE(sample.ok());
  }
}

TEST(ServeStats, DisconnectedPairsStayInfinite) {
  GraphBuilder b(20);
  for (Vertex v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 10; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  const BuildOutput built = build_emulator(g, 4);
  const QueryEngine engine(built);
  EXPECT_EQ(engine.query(0, 19), kInfDist);
  EXPECT_LT(engine.query(0, 9), kInfDist);
  const std::vector<Query> queries = {{0, 19, false}, {0, 9, false}};
  const serve::StretchSample sample =
      serve::sample_query_stretch(g, engine, queries, 10);
  EXPECT_EQ(sample.pairs, 2);
  EXPECT_TRUE(sample.ok());
}

// --- batch report -----------------------------------------------------------

TEST(BatchResult, StatsJsonCarriesChecksumAndCounters) {
  const Graph g = gen_connected_gnm(120, 480, 47);
  const BuildOutput built = build_emulator(g);
  const QueryEngine engine(built);
  WorkloadSpec spec;
  spec.num_queries = 200;
  spec.seed = 2;
  const auto queries = serve::generate_workload(120, spec);
  const BatchResult batch = engine.serve(queries, 2);
  const std::string json = batch.stats_json();
  EXPECT_NE(json.find("\"checksum\": " + std::to_string(batch.checksum)),
            std::string::npos);
  EXPECT_NE(json.find("\"queries\": 200"), std::string::npos);
  EXPECT_NE(json.find("\"sssp_runs\": "), std::string::npos);
}

// --- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  serve::LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(serve::LatencyHistogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(serve::LatencyHistogram::bucket_upper_bound(
                  serve::LatencyHistogram::bucket_index(v)),
              v);
  }
  h.record(7);
  EXPECT_EQ(h.percentile(0.5), 7u);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 7u);
  EXPECT_EQ(h.max_value(), 7u);
}

TEST(LatencyHistogram, BucketMappingIsMonotoneAndSelfConsistent) {
  int prev = -1;
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{15},
        std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{100},
        std::uint64_t{1000}, std::uint64_t{12345}, std::uint64_t{1} << 31,
        std::uint64_t{1} << 62}) {
    const int b = serve::LatencyHistogram::bucket_index(v);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, serve::LatencyHistogram::kBucketCount);
    // The bucket's upper bound is >= v and within 12.5% of it.
    const std::uint64_t ub = serve::LatencyHistogram::bucket_upper_bound(b);
    EXPECT_GE(ub, v);
    EXPECT_LE(ub - v, v / 8 + 1);
    prev = b;
  }
}

TEST(LatencyHistogram, PercentilesBoundedByResolution) {
  serve::LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000);
  // p50 of 1..1000 is 500; log-bucket resolution is 12.5%.
  EXPECT_GE(h.percentile(0.5), 500u);
  EXPECT_LE(h.percentile(0.5), 563u);
  EXPECT_GE(h.percentile(0.99), 990u);
  EXPECT_LE(h.percentile(0.99), 1000u);  // clamped to max_value
  EXPECT_EQ(h.percentile(1.0), 1000u);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LatencyHistogram, MergeAddsCountsAndKeepsMax) {
  serve::LatencyHistogram a;
  serve::LatencyHistogram b;
  a.record(10);
  a.record(100);
  b.record(5000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.max_value(), 5000u);
  EXPECT_EQ(a.sum(), 5110u);
  const std::string json = a.stats_json();
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"p999_us\": "), std::string::npos);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  serve::LatencyHistogram h;
  const int threads = 8;
  const int per_thread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&h] {
      for (int i = 0; i < per_thread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(threads) * per_thread);
  EXPECT_EQ(h.max_value(), static_cast<std::uint64_t>(per_thread - 1));
}

// --- per-interval cache stats (cache_stats_delta) ---------------------------

TEST(QueryEngine, CacheStatsDeltaPartitionsTheCounters) {
  const Graph g = gen_connected_gnm(200, 800, 11);
  const QueryEngine engine(build_emulator(g));
  WorkloadSpec spec;
  spec.num_queries = 400;
  spec.seed = 5;
  const auto queries = serve::generate_workload(200, spec);

  engine.serve(queries, 1);
  const serve::CacheStats d1 = engine.cache_stats_delta();
  engine.serve(queries, 1);
  const serve::CacheStats d2 = engine.cache_stats_delta();
  const serve::CacheStats total = engine.cache_stats();

  // Every increment lands in exactly one interval.
  EXPECT_EQ(d1.hits + d2.hits, total.hits);
  EXPECT_EQ(d1.misses + d2.misses, total.misses);
  EXPECT_EQ(d1.sssp_runs + d2.sssp_runs, total.sssp_runs);
  EXPECT_EQ(d1.evictions + d2.evictions, total.evictions);
  // entries stays absolute, not an interval delta.
  EXPECT_EQ(d2.entries, total.entries);
  // The second pass is all-hot: no new SSSP work in its interval.
  EXPECT_EQ(d2.sssp_runs, 0);
  EXPECT_GT(d1.sssp_runs, 0);
  // A quiet interval reads all-zero (except the absolute entries gauge).
  const serve::CacheStats d3 = engine.cache_stats_delta();
  EXPECT_EQ(d3.hits, 0);
  EXPECT_EQ(d3.misses, 0);
  EXPECT_EQ(d3.entries, total.entries);
}

TEST(QueryEngine, CacheStatsDeltaConcurrentWithQueries) {
  // TSan coverage: interval snapshots taken while queries are in flight
  // must stay non-negative and sum (with the final flush) to the
  // cumulative counters.
  const Graph g = gen_connected_gnm(300, 1200, 13);
  const QueryEngine engine(build_emulator(g));
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kZipf;
  spec.num_queries = 2000;
  spec.seed = 8;
  const auto queries = serve::generate_workload(300, spec);

  std::atomic<bool> done{false};
  serve::CacheStats accumulated;
  std::thread sampler([&] {
    while (!done.load()) {
      const serve::CacheStats d = engine.cache_stats_delta();
      EXPECT_GE(d.hits, 0);
      EXPECT_GE(d.misses, 0);
      EXPECT_GE(d.sssp_runs, 0);
      accumulated.hits += d.hits;
      accumulated.misses += d.misses;
      accumulated.sssp_runs += d.sssp_runs;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::vector<std::thread> lanes;
  for (int t = 0; t < 4; ++t) {
    lanes.emplace_back([&] { engine.serve(queries, 1); });
  }
  for (auto& t : lanes) t.join();
  done.store(true);
  sampler.join();

  const serve::CacheStats tail = engine.cache_stats_delta();
  accumulated.hits += tail.hits;
  accumulated.misses += tail.misses;
  accumulated.sssp_runs += tail.sssp_runs;
  const serve::CacheStats total = engine.cache_stats();
  EXPECT_EQ(accumulated.hits, total.hits);
  EXPECT_EQ(accumulated.misses, total.misses);
  EXPECT_EQ(accumulated.sssp_runs, total.sssp_runs);
}

// --- per-query latency recording (ServeOptions::record_latency) -------------

TEST(QueryEngine, ServeRecordsLatencyOnlyWhenRequested) {
  const Graph g = gen_connected_gnm(150, 600, 17);
  const BuildOutput built = build_emulator(g);
  WorkloadSpec spec;
  spec.num_queries = 300;
  spec.seed = 4;
  const auto queries = serve::generate_workload(150, spec);

  const QueryEngine plain(built);
  EXPECT_EQ(plain.serve(queries, 1).latency, nullptr);

  ServeOptions options;
  options.record_latency = true;
  const QueryEngine timed(built, options);
  const BatchResult batch = timed.serve(queries, 2);
  ASSERT_NE(batch.latency, nullptr);
  EXPECT_EQ(batch.latency->count(), 300);
  EXPECT_NE(batch.latency->stats_json().find("\"p50_us\": "),
            std::string::npos);
  // Timing must not change the answers.
  EXPECT_EQ(batch.checksum, plain.serve(queries, 1).checksum);
}

}  // namespace
}  // namespace usne
