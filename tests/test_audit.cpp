// Failure-injection tests for the audit module: every auditor must catch
// the violation class it exists for. A clean build passes; a corrupted one
// must fail with a descriptive message.

#include <gtest/gtest.h>

#include "core/audit.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

class AuditInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = gen_connected_gnm(150, 450, 7);
    params_ = CentralizedParams::compute(150, 4, 0.25);
    result_ = build_emulator_centralized(graph_, params_);
    ASSERT_TRUE(audit_all(result_, graph_, params_.schedule, 4, true).ok());
  }

  Graph graph_;
  CentralizedParams params_;
  BuildResult result_;
};

TEST_F(AuditInjection, CleanBuildPasses) {
  const auto report = audit_all(result_, graph_, params_.schedule, 4, true);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_string(), "audit: ok");
}

TEST_F(AuditInjection, CatchesTooShortEdgeWeight) {
  // An edge strictly shorter than the true distance makes H cheat.
  BuildResult bad = result_;
  // Find a pair at distance >= 2 and connect it with weight 1.
  bad.h.add_edge(0, 149, 1);
  const auto exact = audit_edge_weights(bad, graph_, /*exact=*/true);
  const auto lower = audit_edge_weights(bad, graph_, /*exact=*/false);
  if (!graph_.has_edge(0, 149)) {
    EXPECT_FALSE(exact.ok());
    EXPECT_FALSE(lower.ok());
  }
}

TEST_F(AuditInjection, CatchesInexactWeight) {
  // Weight above the distance is fine for validity but not in exact mode.
  // (Pick a pair not already in H: WeightedGraph keeps the minimum weight,
  // so overwriting an existing edge with a larger weight is a no-op.)
  BuildResult bad = result_;
  bool injected = false;
  for (Vertex v = 1; v < graph_.num_vertices() && !injected; ++v) {
    if (bad.h.edge_weight(0, v) == kInfDist) {
      bad.h.add_edge(0, v, 100000);
      injected = true;
    }
  }
  ASSERT_TRUE(injected);
  EXPECT_TRUE(audit_edge_weights(bad, graph_, /*exact=*/false).ok());
  EXPECT_FALSE(audit_edge_weights(bad, graph_, /*exact=*/true).ok());
}

TEST_F(AuditInjection, CatchesSizeBoundOverflow) {
  BuildResult bad = result_;
  // Flood the emulator with junk edges (weights valid: use real distances
  // not needed — charging audit checks count, not weights).
  for (Vertex u = 0; u < 150; ++u) {
    for (Vertex v = u + 1; v < 150; ++v) bad.h.add_edge(u, v, 1000);
  }
  const auto report = audit_charging(bad, 150, 4);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.to_string().find("n^(1+1/kappa)"), std::string::npos);
}

TEST_F(AuditInjection, CatchesInterconnectOvercount) {
  BuildResult bad = result_;
  ASSERT_FALSE(bad.phases.empty());
  bad.phases[0].interconnect_edges += 1000000;
  EXPECT_FALSE(audit_charging(bad, 150, 4).ok());
}

TEST_F(AuditInjection, CatchesSuperclusterOvercount) {
  BuildResult bad = result_;
  ASSERT_FALSE(bad.phases.empty());
  bad.phases[0].supercluster_edges += 1000000;
  EXPECT_FALSE(audit_charging(bad, 150, 4).ok());
}

TEST_F(AuditInjection, CatchesBrokenPartition) {
  BuildResult bad = result_;
  ASSERT_GE(bad.partitions.size(), 1u);
  ASSERT_GE(bad.partitions[0].size(), 2u);
  // Duplicate a vertex across two clusters of P_0.
  bad.partitions[0][0].members.push_back(bad.partitions[0][1].members[0]);
  EXPECT_FALSE(audit_partitions(bad, 150).ok());
}

TEST_F(AuditInjection, CatchesMissingULevel) {
  BuildResult bad = result_;
  bad.u_level[42] = -1;
  EXPECT_FALSE(audit_partitions(bad, 150).ok());
}

TEST(AuditLaminarity, HandBuiltCases) {
  // Laminar hierarchy: P_1 clusters are unions of P_0 clusters.
  BuildResult good;
  good.partitions.resize(2);
  good.partitions[0] = {{0, {0, 1}}, {2, {2, 3}}};
  good.partitions[1] = {{0, {0, 1, 2, 3}}};
  EXPECT_TRUE(audit_laminarity(good).ok());

  // Violation: P_1 splits the P_0 cluster {2,3} across two clusters.
  BuildResult bad;
  bad.partitions.resize(2);
  bad.partitions[0] = {{0, {0, 1}}, {2, {2, 3}}};
  bad.partitions[1] = {{0, {0, 1, 2}}, {3, {3}}};
  EXPECT_FALSE(audit_laminarity(bad).ok());

  // Violation: P_1 contains a vertex P_0 never had.
  BuildResult ghost;
  ghost.partitions.resize(2);
  ghost.partitions[0] = {{0, {0, 1}}};
  ghost.partitions[1] = {{0, {0, 1, 7}}};
  EXPECT_FALSE(audit_laminarity(ghost).ok());
}

TEST_F(AuditInjection, CatchesRadiusViolation) {
  BuildResult bad = result_;
  // Shrink the radius bounds to zero: any non-singleton cluster violates.
  auto schedule = params_.schedule;
  for (auto& r : schedule.radius) r = 0;
  bool has_multi = false;
  for (const auto& p : bad.partitions) {
    for (const auto& c : p) has_multi |= c.members.size() > 1;
  }
  if (has_multi) {
    EXPECT_FALSE(audit_radii(bad, schedule).ok());
  }
}

TEST_F(AuditInjection, ReportsAreDescriptive) {
  BuildResult bad = result_;
  bad.phases[0].interconnect_edges += 1000000;
  const auto report = audit_charging(bad, 150, 4);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("phase 0"), std::string::npos);
  EXPECT_NE(report.to_string().find("failure"), std::string::npos);
}

TEST(AuditStandalone, MissingAuditDataReported) {
  const Graph g = gen_path(50);
  const auto params = CentralizedParams::compute(50, 4, 0.25);
  CentralizedOptions options;
  options.keep_audit_data = false;
  const auto r = build_emulator_centralized(g, params, options);
  const auto report = audit_partitions(r, 50);
  EXPECT_FALSE(report.ok());  // snapshots absent -> explicit failure
}

}  // namespace
}  // namespace usne
