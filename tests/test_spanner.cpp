// Tests for the §4 near-additive spanner: subgraph property, size
// O(n^(1+1/kappa)), stretch, and the size separation against the [EM19]
// baseline (the paper's Corollary 4.4 improvement).

#include <gtest/gtest.h>

#include <string>

#include "core/params.hpp"
#include "core/spanner.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

struct SpannerCase {
  std::string family;
  Vertex n;
  int kappa;
  double rho;
  double eps;
  std::uint64_t seed;
};

class SpannerSweep : public ::testing::TestWithParam<SpannerCase> {
 protected:
  void SetUp() override {
    const SpannerCase& c = GetParam();
    graph_ = gen_family(c.family, c.n, c.seed);
    params_ = SpannerParams::compute(graph_.num_vertices(), c.kappa, c.rho, c.eps);
    result_ = build_spanner(graph_, params_);
  }

  Graph graph_;
  SpannerParams params_;
  BuildResult result_;
};

TEST_P(SpannerSweep, IsSubgraph) {
  EXPECT_TRUE(is_subgraph(result_.h, graph_));
}

TEST_P(SpannerSweep, SizeWithinConstantFactorOfBound) {
  // Corollary 4.4 guarantees O(n^(1+1/kappa)); assert a modest constant.
  const std::int64_t bound =
      size_bound_edges(graph_.num_vertices(), GetParam().kappa);
  EXPECT_LE(result_.h.num_edges(), 4 * bound)
      << "n=" << graph_.num_vertices() << " |H|=" << result_.h.num_edges();
  // A spanner can never exceed G itself.
  EXPECT_LE(result_.h.num_edges(), graph_.num_edges());
}

TEST_P(SpannerSweep, StretchBound) {
  const auto report = evaluate_stretch_exact(
      graph_, result_.h, params_.schedule.alpha_bound(),
      params_.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "alpha=" << params_.schedule.alpha_bound()
      << " beta=" << params_.schedule.beta_bound()
      << " max_add=" << report.max_additive;
  EXPECT_EQ(report.underruns, 0);  // subgraph: d_H >= d_G automatically
}

TEST_P(SpannerSweep, Deterministic) {
  const auto again = build_spanner(graph_, params_);
  EXPECT_EQ(result_.h.edges(), again.h.edges());
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpannerSweep,
    ::testing::Values(
        SpannerCase{"er", 256, 8, 0.4, 0.25, 1},
        SpannerCase{"er", 400, 4, 0.45, 0.25, 2},
        SpannerCase{"ba", 300, 8, 0.4, 0.4, 3},
        SpannerCase{"torus", 256, 8, 0.35, 0.25, 4},
        SpannerCase{"caveman", 320, 4, 0.45, 0.4, 5},
        SpannerCase{"ws", 256, 8, 0.4, 0.25, 6},
        SpannerCase{"star", 200, 8, 0.4, 0.25, 7},
        SpannerCase{"tree", 255, 8, 0.4, 0.25, 8}),
    [](const ::testing::TestParamInfo<SpannerCase>& info) {
      return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.kappa) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Spanner, PathsConnectRealVertices) {
  // Every logged spanner edge is a unit edge of G (the add_path contract).
  const Graph g = gen_connected_gnm(200, 600, 11);
  const auto params = SpannerParams::compute(200, 8, 0.4, 0.25);
  const auto r = build_spanner(g, params);
  for (const ChargedEdge& e : r.edge_log) {
    EXPECT_EQ(e.w, 1);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(Spanner, Em19BaselineIsDenser) {
  // The point of §4: our degree sequence beats [EM19]'s at equal kappa.
  // EM19's interconnection paths at later phases cost a beta factor; the
  // separation is asymptotic, but already measurable at laptop scale on
  // random graphs. Assert ours <= EM19 everywhere and strictly better on
  // at least one workload.
  bool strictly_better_somewhere = false;
  for (const Vertex n : {512, 768, 1024}) {
    const Graph g = gen_connected_gnm(n, 4 * static_cast<std::int64_t>(n), 5);
    const auto ours_p = SpannerParams::compute(n, 8, 0.4, 0.25);
    const auto em19_p = DistributedParams::compute(n, 8, 0.4, 0.25);
    SpannerOptions options;
    options.keep_audit_data = false;
    const auto ours = build_spanner(g, ours_p, options);
    const auto em19 = build_spanner_em19(g, em19_p, options);
    EXPECT_LE(ours.h.num_edges(), em19.h.num_edges()) << "n=" << n;
    if (ours.h.num_edges() < em19.h.num_edges()) strictly_better_somewhere = true;
  }
  EXPECT_TRUE(strictly_better_somewhere);
}

TEST(Spanner, Em19AlsoValid) {
  // The baseline must still be a correct spanner (it is the prior SOTA,
  // not a strawman).
  const Graph g = gen_connected_gnm(250, 750, 21);
  const auto params = DistributedParams::compute(250, 8, 0.4, 0.25);
  const auto r = build_spanner_em19(g, params);
  EXPECT_TRUE(is_subgraph(r.h, g));
  const auto report = evaluate_stretch_exact(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0);
}

TEST(Spanner, MismatchedParamsRejected) {
  const Graph g = gen_path(10);
  const auto params = SpannerParams::compute(99, 8, 0.4, 0.25);
  EXPECT_THROW(build_spanner(g, params), std::invalid_argument);
}

}  // namespace
}  // namespace usne
