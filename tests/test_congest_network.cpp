// Unit tests for the CONGEST network simulator: delivery semantics, round
// accounting, and — failure injection — enforcement of the model's caps.

#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace usne::congest {
namespace {

TEST(Network, DeliversNextRound) {
  const Graph g = gen_path(3);
  Network net(g);
  net.send(0, 1, Message::of(42));
  EXPECT_TRUE(net.inbox(1).empty());  // not delivered yet
  net.advance_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0);
  EXPECT_EQ(net.inbox(1)[0].msg.words[0], 42);
  net.advance_round();
  EXPECT_TRUE(net.inbox(1).empty());  // cleared after one round
}

TEST(Network, InboxSortedBySender) {
  const Graph g = gen_star(5);  // center 0
  Network net(g);
  net.send(4, 0, Message::of(4));
  net.send(2, 0, Message::of(2));
  net.send(1, 0, Message::of(1));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0)[0].from, 1);
  EXPECT_EQ(net.inbox(0)[1].from, 2);
  EXPECT_EQ(net.inbox(0)[2].from, 4);
}

TEST(Network, DeliveredToListsReceivers) {
  const Graph g = gen_path(4);
  Network net(g);
  net.send(1, 0, Message::of(7));
  net.send(1, 2, Message::of(7));
  net.advance_round();
  const auto& delivered = net.delivered_to();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 0);
  EXPECT_EQ(delivered[1], 2);
}

TEST(Network, StatsAccumulate) {
  const Graph g = gen_cycle(4);
  Network net(g);
  net.broadcast(0, Message::of(1, 2));
  net.advance_round();
  net.advance_rounds(3);
  EXPECT_EQ(net.stats().rounds, 4);
  EXPECT_EQ(net.stats().messages, 2);  // two neighbours
  EXPECT_EQ(net.stats().words, 4);
}

// --- failure injection: the model is enforced, not assumed ---

TEST(NetworkViolation, SecondMessageSameEdgeSameRound) {
  const Graph g = gen_path(3);
  Network net(g);
  net.send(0, 1, Message::of(1));
  EXPECT_THROW(net.send(0, 1, Message::of(2)), CongestViolation);
  // Opposite direction is a different directed edge: allowed.
  EXPECT_NO_THROW(net.send(1, 0, Message::of(3)));
  // Next round the edge is free again.
  net.advance_round();
  EXPECT_NO_THROW(net.send(0, 1, Message::of(4)));
}

TEST(NetworkViolation, NonEdgeSend) {
  const Graph g = gen_path(4);  // no edge (0, 2)
  Network net(g);
  EXPECT_THROW(net.send(0, 2, Message::of(1)), CongestViolation);
  EXPECT_THROW(net.send(0, 0, Message::of(1)), CongestViolation);
}

TEST(NetworkViolation, OversizedMessage) {
  const Graph g = gen_path(2);
  Network net(g);
  Message m;
  m.size = kMaxWords + 1;
  EXPECT_THROW(net.send(0, 1, m), CongestViolation);
  Message empty;
  empty.size = 0;
  EXPECT_THROW(net.send(0, 1, empty), CongestViolation);
}

TEST(Network, EmptyRoundsAreCheap) {
  const Graph g = gen_gnm(100, 200, 1);
  Network net(g);
  net.advance_rounds(100000);
  EXPECT_EQ(net.stats().rounds, 100000);
  EXPECT_EQ(net.stats().messages, 0);
}

TEST(Network, MaxWordsMessageAllowed) {
  const Graph g = gen_path(2);
  Network net(g);
  EXPECT_NO_THROW(net.send(0, 1, Message::of(1, 2, 3, 4)));
  net.advance_round();
  EXPECT_EQ(net.inbox(1)[0].msg.size, 4);
}

}  // namespace
}  // namespace usne::congest
