// Serial-vs-parallel determinism suite for the parallel round scheduler.
//
// The engine's contract: for ANY execution-thread count, round/message/word
// counts, delivery behaviour, and every algorithm output are bit-for-bit
// identical to the serial engine. This suite drives each CONGEST primitive
// and both full constructions (emulator E4 workloads, spanner) at 1/2/8
// lanes and compares everything. It also exercises sends issued from inside
// the parallel on_round fan-out (staged thread-locally, replayed in shard
// order), which the repository's own programs never do.
//
// Built with -DUSNE_TSAN=ON this binary doubles as the ThreadSanitizer
// gate for the parallel engine (ctest label "tsan").

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/engine.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "congest/ruling_set.hpp"
#include "core/emulator_distributed.hpp"
#include "core/params.hpp"
#include "core/spanner_distributed.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

using congest::Message;
using congest::Network;
using congest::NetworkStats;
using congest::NodeProgram;
using congest::Outbox;
using congest::Received;
using congest::ScheduleReport;
using congest::Scheduler;
using congest::Word;

constexpr int kThreadCounts[] = {1, 2, 8};

void expect_same_stats(const NetworkStats& expected, const NetworkStats& got,
                       int threads) {
  EXPECT_EQ(expected.rounds, got.rounds) << "threads=" << threads;
  EXPECT_EQ(expected.messages, got.messages) << "threads=" << threads;
  EXPECT_EQ(expected.words, got.words) << "threads=" << threads;
}

// --- primitives -------------------------------------------------------------

TEST(ParallelDeterminism, FloodPresence) {
  const Graph g = gen_gnm(400, 1600, 5);
  std::vector<Dist> expected_dist;
  NetworkStats expected_stats;
  for (const int threads : kThreadCounts) {
    Network net(g);
    net.set_execution_threads(threads);
    const congest::FloodResult r = congest::flood_presence(net, {0, 7, 123}, 6);
    if (threads == 1) {
      expected_dist = r.dist;
      expected_stats = net.stats();
      continue;
    }
    EXPECT_EQ(expected_dist, r.dist) << "threads=" << threads;
    expect_same_stats(expected_stats, net.stats(), threads);
  }
}

TEST(ParallelDeterminism, BfsForest) {
  const Graph g = gen_gnm(400, 1200, 9);
  congest::BfsForest expected;
  NetworkStats expected_stats;
  for (const int threads : kThreadCounts) {
    Network net(g);
    net.set_execution_threads(threads);
    const congest::BfsForest f =
        congest::build_bfs_forest(net, {0, 50, 333}, 5);
    if (threads == 1) {
      expected = f;
      expected_stats = net.stats();
      continue;
    }
    EXPECT_EQ(expected.root, f.root) << "threads=" << threads;
    EXPECT_EQ(expected.depth, f.depth) << "threads=" << threads;
    EXPECT_EQ(expected.parent, f.parent) << "threads=" << threads;
    expect_same_stats(expected_stats, net.stats(), threads);
  }
}

TEST(ParallelDeterminism, Detect) {
  const Graph g = gen_gnm(300, 1200, 3);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 300; v += 7) sources.push_back(v);
  std::vector<std::vector<SourceHit>> expected_hits;
  std::int64_t expected_rounds = 0;
  NetworkStats expected_stats;
  for (const int threads : kThreadCounts) {
    Network net(g);
    net.set_execution_threads(threads);
    const congest::DetectResult r = congest::detect_congest(net, sources, 4, 6);
    if (threads == 1) {
      expected_hits = r.hits;
      expected_rounds = r.rounds_used;
      expected_stats = net.stats();
      continue;
    }
    EXPECT_EQ(expected_rounds, r.rounds_used) << "threads=" << threads;
    ASSERT_EQ(expected_hits.size(), r.hits.size());
    for (std::size_t v = 0; v < expected_hits.size(); ++v) {
      ASSERT_EQ(expected_hits[v].size(), r.hits[v].size())
          << "threads=" << threads << " v=" << v;
      for (std::size_t i = 0; i < expected_hits[v].size(); ++i) {
        EXPECT_EQ(expected_hits[v][i].source, r.hits[v][i].source);
        EXPECT_EQ(expected_hits[v][i].dist, r.hits[v][i].dist);
        EXPECT_EQ(expected_hits[v][i].pred, r.hits[v][i].pred);
      }
    }
    expect_same_stats(expected_stats, net.stats(), threads);
  }
}

TEST(ParallelDeterminism, RulingSet) {
  const Graph g = gen_gnm(400, 1600, 11);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < 400; v += 3) w.push_back(v);
  congest::RulingSet expected;
  NetworkStats expected_stats;
  for (const int threads : kThreadCounts) {
    Network net(g);
    net.set_execution_threads(threads);
    const congest::RulingSet r = congest::compute_ruling_set(net, w, 2, 4);
    if (threads == 1) {
      expected = r;
      expected_stats = net.stats();
      continue;
    }
    EXPECT_EQ(expected.members, r.members) << "threads=" << threads;
    EXPECT_EQ(expected.rounds_used, r.rounds_used) << "threads=" << threads;
    expect_same_stats(expected_stats, net.stats(), threads);
  }
}

// Skewed inbox sizes: a star center (and BA hubs) receives orders of
// magnitude more messages than leaf vertices, so the message-weighted
// work-stealing chunks of the fan-out are maximally uneven here. The
// contract is unchanged — identical counts and outputs at any thread
// count — this workload just makes an unbalanced split loudest.
TEST(ParallelDeterminism, SkewedInboxesStarAndHubs) {
  for (const Graph& g :
       {gen_star(1500), gen_barabasi_albert(800, 6, 13)}) {
    std::vector<Dist> expected_dist;
    NetworkStats expected_stats;
    for (const int threads : kThreadCounts) {
      Network net(g);
      net.set_execution_threads(threads);
      std::vector<Vertex> sources;
      for (Vertex v = 1; v < g.num_vertices(); v += 97) sources.push_back(v);
      const congest::FloodResult r = congest::flood_presence(net, sources, 4);
      if (threads == 1) {
        expected_dist = r.dist;
        expected_stats = net.stats();
        continue;
      }
      EXPECT_EQ(expected_dist, r.dist) << "threads=" << threads;
      expect_same_stats(expected_stats, net.stats(), threads);
    }
  }
}

// --- full constructions (E4 bench workloads) --------------------------------

TEST(ParallelDeterminism, EmulatorE4Workloads) {
  struct Workload {
    const char* family;
    Vertex n;
  };
  for (const Workload w : {Workload{"er", 128}, Workload{"er", 256},
                           Workload{"torus", 256}, Workload{"ba", 256},
                           Workload{"caveman", 256}}) {
    const Graph g = gen_family(w.family, w.n, 2024);
    const auto params =
        DistributedParams::compute(g.num_vertices(), 4, 0.49, 0.4);
    DistributedBuildResult expected;
    for (const int threads : kThreadCounts) {
      DistributedOptions options;
      options.keep_audit_data = false;
      options.num_threads = threads;
      DistributedBuildResult r = build_emulator_distributed(g, params, options);
      EXPECT_TRUE(r.endpoints_consistent())
          << w.family << " n=" << w.n << " threads=" << threads;
      if (threads == 1) {
        expected = std::move(r);
        continue;
      }
      // Bit-for-bit: same edges in the same insertion order, same traffic,
      // same per-node knowledge.
      EXPECT_EQ(expected.base.h.edges(), r.base.h.edges())
          << w.family << " n=" << w.n << " threads=" << threads;
      EXPECT_EQ(expected.base.u_level, r.base.u_level);
      EXPECT_EQ(expected.base.u_center, r.base.u_center);
      EXPECT_EQ(expected.base.total_rounds, r.base.total_rounds);
      EXPECT_EQ(expected.local, r.local);
      expect_same_stats(expected.net, r.net, threads);
    }
  }
}

TEST(ParallelDeterminism, SpannerConstruction) {
  const Graph g = gen_family("er", 256, 2024);
  const auto params = SpannerParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  DistributedSpannerResult expected;
  for (const int threads : kThreadCounts) {
    DistributedSpannerResult r =
        build_spanner_congest(g, params, /*keep_audit_data=*/false, threads);
    if (threads == 1) {
      expected = std::move(r);
      continue;
    }
    EXPECT_EQ(expected.base.h.edges(), r.base.h.edges())
        << "threads=" << threads;
    EXPECT_EQ(expected.base.u_level, r.base.u_level);
    EXPECT_EQ(expected.base.u_center, r.base.u_center);
    expect_same_stats(expected.net, r.net, threads);
  }
}

// --- sends from inside the parallel fan-out ---------------------------------

/// Ping-pong program that sends from on_round (none of the repository's
/// programs do): init broadcasts ids; for the next `rounds` rounds every
/// vertex replies to each sender with a running checksum. Exercises the
/// thread-local staging outboxes and their shard-order replay.
class EchoProgram final : public NodeProgram {
 public:
  EchoProgram(Vertex n, std::int64_t rounds) : rounds_(rounds) {
    acc_.assign(static_cast<std::size_t>(n), 0);
  }

  void init(Outbox& out) override {
    for (Vertex v = 0; v < static_cast<Vertex>(acc_.size()); ++v) {
      out.broadcast(v, Message::of(v + 1));
    }
  }

  void on_round(std::int64_t round, Vertex v, std::span<const Received> inbox,
                Outbox& out) override {
    for (const Received& r : inbox) {
      acc_[static_cast<std::size_t>(v)] += r.msg.words[0] * (round + 1);
      if (round + 1 < rounds_) {
        out.send(v, r.from, Message::of(acc_[static_cast<std::size_t>(v)]));
      }
    }
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

  const std::vector<Word>& acc() const noexcept { return acc_; }

 private:
  std::int64_t rounds_;
  std::vector<Word> acc_;
};

TEST(ParallelDeterminism, SendsStagedInOnRoundReplayIdentically) {
  const Graph g = gen_gnm(300, 1500, 17);
  std::vector<Word> expected_acc;
  ScheduleReport expected_report;
  for (const int threads : kThreadCounts) {
    Network net(g);
    net.set_execution_threads(threads);
    EchoProgram program(g.num_vertices(), 5);
    const ScheduleReport report = Scheduler(net).run(program);
    if (threads == 1) {
      expected_acc = program.acc();
      expected_report = report;
      continue;
    }
    EXPECT_EQ(expected_acc, program.acc()) << "threads=" << threads;
    EXPECT_EQ(expected_report.rounds, report.rounds);
    EXPECT_EQ(expected_report.idle_rounds, report.idle_rounds);
    expect_same_stats(expected_report.traffic, report.traffic, threads);
  }
}

TEST(ParallelDeterminism, CapViolationStillThrowsUnderParallelReplay) {
  // Two vertices both message a common neighbour twice via staged sends:
  // the replay must run the same per-edge cap checks the serial engine
  // would. (A violation from *distinct* senders is legal; same sender
  // twice is not.)
  class DoubleEcho final : public NodeProgram {
   public:
    void init(Outbox& out) override {
      for (Vertex v = 0; v < 200; ++v) out.broadcast(v, Message::of(1));
    }
    void on_round(std::int64_t round, Vertex v, std::span<const Received> inbox,
                  Outbox& out) override {
      if (round > 0 || inbox.empty()) return;
      out.send(v, inbox[0].from, Message::of(2));
      out.send(v, inbox[0].from, Message::of(3));  // second message, same edge
    }
    bool done(std::int64_t next_round) const override {
      return next_round >= 2;
    }
  };

  const Graph g = gen_gnm(200, 800, 23);
  Network net(g);
  net.set_execution_threads(4);
  DoubleEcho program;
  Scheduler scheduler(net);
  EXPECT_THROW(scheduler.run(program), congest::CongestViolation);
}

// --- execution policy plumbing ----------------------------------------------

TEST(ParallelDeterminism, ZeroResolvesToHardwareConcurrency) {
  const Graph g = gen_cycle(8);
  Network net(g);
  net.set_execution_threads(0);
  EXPECT_GE(net.execution_threads(), 1);
}

}  // namespace
}  // namespace usne
