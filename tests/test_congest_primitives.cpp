// Tests for the CONGEST collective primitives: BFS forests, presence
// floods, and Algorithm 2 (popular-cluster detection), each validated
// against centralized ground truth.

#include <gtest/gtest.h>

#include <algorithm>

#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "path/bfs.hpp"
#include "path/source_detection.hpp"

namespace usne::congest {
namespace {

TEST(BfsForestCongest, DistancesMatchCentralized) {
  const Graph g = gen_connected_gnm(200, 600, 21);
  Network net(g);
  const std::vector<Vertex> roots = {5, 60, 140};
  const BfsForest f = build_bfs_forest(net, roots, 8);
  const auto ref = multi_source_bfs(g, roots, 8);
  for (Vertex v = 0; v < 200; ++v) {
    if (ref.dist[static_cast<std::size_t>(v)] == kInfDist) {
      EXPECT_FALSE(f.spanned(v));
    } else {
      ASSERT_TRUE(f.spanned(v));
      EXPECT_EQ(f.depth[static_cast<std::size_t>(v)],
                ref.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(BfsForestCongest, ParentsConsistent) {
  const Graph g = gen_torus(10, 10);
  Network net(g);
  const std::vector<Vertex> roots = {0, 55};
  const BfsForest f = build_bfs_forest(net, roots, 20);
  for (Vertex v = 0; v < 100; ++v) {
    if (!f.spanned(v)) continue;
    const Vertex p = f.parent[static_cast<std::size_t>(v)];
    if (f.depth[static_cast<std::size_t>(v)] == 0) {
      EXPECT_EQ(p, -1);
      EXPECT_EQ(f.root[static_cast<std::size_t>(v)], v);
    } else {
      ASSERT_NE(p, -1);
      EXPECT_TRUE(g.has_edge(v, p));
      EXPECT_EQ(f.depth[static_cast<std::size_t>(v)],
                f.depth[static_cast<std::size_t>(p)] + 1);
      EXPECT_EQ(f.root[static_cast<std::size_t>(v)],
                f.root[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(BfsForestCongest, ChildrenInverseOfParents) {
  const Graph g = gen_tree(31, 2);
  Network net(g);
  const BfsForest f = build_bfs_forest(net, {0}, 10);
  const auto children = f.children();
  for (Vertex v = 0; v < 31; ++v) {
    for (const Vertex c : children[static_cast<std::size_t>(v)]) {
      EXPECT_EQ(f.parent[static_cast<std::size_t>(c)], v);
    }
  }
  // Every non-root appears in exactly one children list.
  std::size_t total = 0;
  for (const auto& list : children) total += list.size();
  EXPECT_EQ(total, 30u);
}

TEST(BfsForestCongest, RoundCostIsDepthPlusOne) {
  const Graph g = gen_cycle(30);
  Network net(g);
  build_bfs_forest(net, {0}, 7);
  EXPECT_EQ(net.stats().rounds, 8);  // depth + 1 join round
}

TEST(FloodCongest, DistanceToNearestSource) {
  const Graph g = gen_grid(8, 8);
  Network net(g);
  const std::vector<Vertex> sources = {0, 63};
  const FloodResult flood = flood_presence(net, sources, 6);
  const auto ref = multi_source_bfs(g, sources, 6);
  EXPECT_EQ(flood.dist, ref.dist);
  EXPECT_EQ(net.stats().rounds, 6);
}

TEST(FloodCongest, NoSources) {
  const Graph g = gen_path(5);
  Network net(g);
  const FloodResult flood = flood_presence(net, {}, 3);
  for (const Dist d : flood.dist) EXPECT_EQ(d, kInfDist);
  EXPECT_EQ(net.stats().rounds, 3);  // fixed schedule burns rounds anyway
}

// --- Algorithm 2 ---

TEST(DetectCongest, MatchesCentralizedWhenUncapped) {
  // With a cap larger than the source count, Algorithm 2 must produce the
  // exact same knowledge as the centralized k-nearest detection.
  const Graph g = gen_connected_gnm(150, 450, 33);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 150; v += 10) sources.push_back(v);
  const Dist delta = 5;
  const std::int64_t cap = 64;  // > |sources|

  Network net(g);
  const DetectResult dist_result = detect_congest(net, sources, delta, cap);
  const SourceDetection ref =
      detect_sources(g, sources, delta, static_cast<std::size_t>(cap));

  for (Vertex v = 0; v < 150; ++v) {
    const auto got = dist_result.hits[static_cast<std::size_t>(v)];
    const auto expected = ref.at(v);
    ASSERT_EQ(got.size(), expected.size()) << "vertex " << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].source, expected[i].source);
      EXPECT_EQ(got[i].dist, expected[i].dist);
    }
  }
}

TEST(DetectCongest, RoundCostIsDeltaTimesCap) {
  const Graph g = gen_cycle(20);
  Network net(g);
  detect_congest(net, {0, 10}, 4, 3);
  EXPECT_EQ(net.stats().rounds, 12);
}

TEST(DetectCongest, PopularityClassificationExact) {
  // Theorem 3.1 (1): a center is popular iff it has >= deg other centers
  // within delta — regardless of forwarding caps.
  const Graph g = gen_connected_gnm(120, 360, 8);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 120; v += 3) sources.push_back(v);
  const Dist delta = 3;
  const double deg = 4.0;
  const std::int64_t cap = 5;  // deg + 1

  Network net(g);
  const DetectResult det = detect_congest(net, sources, delta, cap);

  for (const Vertex c : sources) {
    // Ground truth: number of other sources within delta.
    const auto dist = bfs_distances(g, c);
    std::int64_t truly_near = 0;
    for (const Vertex s : sources) {
      if (s != c && dist[static_cast<std::size_t>(s)] <= delta) ++truly_near;
    }
    const bool truly_popular = static_cast<double>(truly_near) >= deg;
    const bool detected_popular =
        static_cast<double>(det.heard_others(c)) >= deg;
    EXPECT_EQ(detected_popular, truly_popular) << "center " << c;
  }
}

TEST(DetectCongest, UnpopularCentersKnowExactDistances) {
  // Theorem 3.1 (2): centers that hear fewer than cap sources know all
  // centers within delta with exact distances.
  const Graph g = gen_torus(12, 12);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 144; v += 12) sources.push_back(v);  // one per row
  const Dist delta = 4;
  const std::int64_t cap = 4;

  Network net(g);
  const DetectResult det = detect_congest(net, sources, delta, cap);
  for (const Vertex c : sources) {
    if (static_cast<std::int64_t>(det.hits[static_cast<std::size_t>(c)].size()) >=
        cap) {
      continue;  // capped; no exactness promised
    }
    const auto dist = bfs_distances(g, c);
    for (const Vertex s : sources) {
      if (s == c || dist[static_cast<std::size_t>(s)] > delta) continue;
      EXPECT_EQ(det.distance_to(c, s), dist[static_cast<std::size_t>(s)])
          << c << " -> " << s;
    }
  }
}

TEST(DetectCongest, PathTracing) {
  const Graph g = gen_grid(6, 6);
  Network net(g);
  const std::vector<Vertex> sources = {0, 35};
  const DetectResult det = detect_congest(net, sources, 12, 8);
  const auto path = det.path_to(35, 0);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 35);
  EXPECT_EQ(path.back(), 0);
  EXPECT_EQ(static_cast<Dist>(path.size()) - 1, det.distance_to(35, 0));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

}  // namespace
}  // namespace usne::congest
