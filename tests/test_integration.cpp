// Cross-module integration tests: full pipelines combining generators,
// builders, serialization, and query answering — the workflows a
// downstream user of the library would actually run.

#include <gtest/gtest.h>

#include <sstream>

#include "core/emulator_centralized.hpp"
#include "core/emulator_distributed.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

TEST(Integration, AllThreeBuildersSatisfySameContract) {
  // One input graph, three constructions (Algorithm 1, §3.3 fast, §3.1
  // CONGEST): all must satisfy the size bound and their respective stretch
  // budgets.
  const Vertex n = 144;
  const Graph g = gen_torus(12, 12);
  const int kappa = 4;

  const auto cp = CentralizedParams::compute(n, kappa, 0.3);
  const auto c = build_emulator_centralized(g, cp);
  EXPECT_LE(c.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_EQ(evaluate_stretch_exact(g, c.h, cp.schedule.alpha_bound(),
                                   cp.schedule.beta_bound())
                .violations,
            0);

  const auto dp = DistributedParams::compute(n, kappa, 0.45, 0.4);
  const auto f = build_emulator_fast(g, dp);
  EXPECT_LE(f.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_EQ(evaluate_stretch_exact(g, f.h, dp.schedule.alpha_bound(),
                                   dp.schedule.beta_bound())
                .violations,
            0);

  const auto d = build_emulator_distributed(g, dp);
  EXPECT_LE(d.base.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_EQ(evaluate_stretch_exact(g, d.base.h, dp.schedule.alpha_bound(),
                                   dp.schedule.beta_bound())
                .violations,
            0);
  EXPECT_TRUE(d.endpoints_consistent());
}

TEST(Integration, EmulatorSurvivesSerialization) {
  const Graph g = gen_connected_gnm(200, 600, 4);
  const auto params = CentralizedParams::compute(200, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);

  std::stringstream ss;
  write_weighted_graph(ss, r.h);
  const auto back = read_weighted_graph(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_edges(), r.h.num_edges());
  // Same distances from a few sources.
  for (Vertex s = 0; s < 200; s += 37) {
    EXPECT_EQ(dijkstra(r.h, s), dijkstra(*back, s));
  }
}

TEST(Integration, OracleAnswersWithinBudget) {
  // The approximate-shortest-path application from the paper's intro:
  // answer point-to-point queries on H instead of G.
  const Vertex n = 300;
  const Graph g = gen_connected_gnm(n, 4 * n, 10);
  const auto params = CentralizedParams::compute(n, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);
  const double alpha = params.schedule.alpha_bound();
  const Dist beta = params.schedule.beta_bound();

  for (Vertex s = 0; s < n; s += 29) {
    const auto dg = bfs_distances(g, s);
    const auto dh = dijkstra(r.h, s);
    for (Vertex v = 0; v < n; v += 7) {
      if (dg[static_cast<std::size_t>(v)] == kInfDist) continue;
      EXPECT_GE(dh[static_cast<std::size_t>(v)], dg[static_cast<std::size_t>(v)]);
      EXPECT_LE(static_cast<double>(dh[static_cast<std::size_t>(v)]),
                alpha * static_cast<double>(dg[static_cast<std::size_t>(v)]) +
                    static_cast<double>(beta));
    }
  }
}

TEST(Integration, EmulatorPlusGraphUnionNeverWorseThanEither) {
  const Graph g = gen_grid(15, 15);
  const auto params = CentralizedParams::compute(225, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);
  const auto dg = bfs_distances(g, 0);
  const auto dh = dijkstra(r.h, 0);
  const auto du = dijkstra_union(r.h, g, 0);
  for (Vertex v = 0; v < 225; ++v) {
    EXPECT_LE(du[static_cast<std::size_t>(v)], dg[static_cast<std::size_t>(v)]);
    EXPECT_LE(du[static_cast<std::size_t>(v)], dh[static_cast<std::size_t>(v)]);
    EXPECT_GE(du[static_cast<std::size_t>(v)], dg[static_cast<std::size_t>(v)] == kInfDist
                                                   ? 0
                                                   : dg[static_cast<std::size_t>(v)] /
                                                         2);  // sanity
  }
}

TEST(Integration, SpannerIsUsableAsGraph) {
  // A spanner, being a subgraph, can itself be fed back as an input graph.
  const Graph g = gen_connected_gnm(150, 600, 6);
  const auto sp = SpannerParams::compute(150, 8, 0.4, 0.25);
  const auto r = build_spanner(g, sp);

  GraphBuilder b(150);
  for (const WeightedEdge& e : r.h.edges()) b.add_edge(e.u, e.v);
  const Graph h_as_graph = b.build();
  EXPECT_EQ(h_as_graph.num_edges(), r.h.num_edges());

  // Building an emulator of the spanner composes the stretches.
  const auto cp = CentralizedParams::compute(150, 4, 0.25);
  const auto r2 = build_emulator_centralized(h_as_graph, cp);
  EXPECT_LE(r2.h.num_edges(), size_bound_edges(150, 4));
}

TEST(Integration, UltraSparseHeadline) {
  // Corollary 2.15 in miniature: kappa = ceil(log n * f) with f ~ log log n
  // gives n + o(n) edges. For n = 1024, kappa = 40: bound = n^(1.025) =
  // 1.19n.
  const Vertex n = 1024;
  const Graph g = gen_connected_gnm(n, 8 * n, 42);
  const int kappa = 40;
  const auto params = CentralizedParams::compute(n, kappa, 0.4);
  const auto r = build_emulator_centralized(g, params);
  EXPECT_LE(r.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_LT(r.h.num_edges(), static_cast<std::int64_t>(1.2 * n));
  // Still a valid emulator.
  const auto report = evaluate_stretch_sampled(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound(), 20, 3);
  EXPECT_EQ(report.violations, 0);
  EXPECT_EQ(report.underruns, 0);
}

}  // namespace
}  // namespace usne
