// Tests for the approximate distance oracle (src/oracle/).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "oracle/distance_oracle.hpp"
#include "path/bfs.hpp"

namespace usne {
namespace {

TEST(Oracle, AnswersWithinBudget) {
  const Vertex n = 400;
  const Graph g = gen_connected_gnm(n, 1600, 17);
  const ApproxDistanceOracle oracle(g);
  for (Vertex s = 0; s < n; s += 57) {
    const auto exact = bfs_distances(g, s);
    for (Vertex v = 0; v < n; v += 11) {
      const Dist d = oracle.query(s, v);
      EXPECT_GE(d, exact[static_cast<std::size_t>(v)]);
      EXPECT_LE(static_cast<double>(d),
                oracle.alpha() * static_cast<double>(exact[static_cast<std::size_t>(v)]) +
                    static_cast<double>(oracle.beta()));
    }
  }
}

TEST(Oracle, UltraSparseByDefault) {
  const Vertex n = 2048;
  const Graph g = gen_connected_gnm(n, 8 * static_cast<std::int64_t>(n), 5);
  const ApproxDistanceOracle oracle(g);
  // Default kappa ~ 2 log n: |H| = n + o(n), far below |E|.
  EXPECT_LT(oracle.emulator_edges(), static_cast<std::int64_t>(1.25 * n));
  EXPECT_LT(oracle.emulator_edges(), g.num_edges() / 4);
  EXPECT_GE(oracle.kappa(), 20);
}

TEST(Oracle, QueryAllMatchesQuery) {
  const Graph g = gen_family("torus", 144, 3);
  const ApproxDistanceOracle oracle(g);
  const auto& all = oracle.query_all(7);
  for (Vertex v = 0; v < g.num_vertices(); v += 13) {
    EXPECT_EQ(oracle.query(7, v), all[static_cast<std::size_t>(v)]);
  }
}

TEST(Oracle, CacheReusedForSymmetricQueries) {
  const Graph g = gen_family("er", 200, 8);
  const ApproxDistanceOracle oracle(g);
  // Prime cache from source 5, then ask (u, 5): must use the cached run and
  // agree with the direct answer.
  const Dist direct = oracle.query(5, 60);
  const Dist via_cache = oracle.query(60, 5);
  EXPECT_EQ(direct, via_cache);
}

TEST(Oracle, SelfDistanceZero) {
  const Graph g = gen_path(20);
  const ApproxDistanceOracle oracle(g);
  EXPECT_EQ(oracle.query(4, 4), 0);
}

TEST(Oracle, DisconnectedPairsAreInfinite) {
  GraphBuilder b(10);
  for (Vertex v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  const ApproxDistanceOracle oracle(b.build());
  EXPECT_EQ(oracle.query(0, 9), kInfDist);
  EXPECT_LT(oracle.query(0, 4), kInfDist);
}

TEST(Oracle, CustomKappaHonoured) {
  const Graph g = gen_family("er", 300, 4);
  OracleOptions options;
  options.kappa = 4;
  options.rho = 0.45;
  const ApproxDistanceOracle oracle(g, options);
  EXPECT_EQ(oracle.kappa(), 4);
}

}  // namespace
}  // namespace usne
