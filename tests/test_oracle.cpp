// Tests for the approximate distance oracle (src/oracle/), now a thin
// wrapper over serve::QueryEngine.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "oracle/distance_oracle.hpp"
#include "path/bfs.hpp"

namespace usne {
namespace {

TEST(Oracle, AnswersWithinBudget) {
  const Vertex n = 400;
  const Graph g = gen_connected_gnm(n, 1600, 17);
  const ApproxDistanceOracle oracle(g);
  for (Vertex s = 0; s < n; s += 57) {
    const auto exact = bfs_distances(g, s);
    for (Vertex v = 0; v < n; v += 11) {
      const Dist d = oracle.query(s, v);
      EXPECT_GE(d, exact[static_cast<std::size_t>(v)]);
      EXPECT_LE(static_cast<double>(d),
                oracle.alpha() * static_cast<double>(exact[static_cast<std::size_t>(v)]) +
                    static_cast<double>(oracle.beta()));
    }
  }
}

TEST(Oracle, UltraSparseByDefault) {
  const Vertex n = 2048;
  const Graph g = gen_connected_gnm(n, 8 * static_cast<std::int64_t>(n), 5);
  const ApproxDistanceOracle oracle(g);
  // Default kappa ~ 2 log n: |H| = n + o(n), far below |E|.
  EXPECT_LT(oracle.emulator_edges(), static_cast<std::int64_t>(1.25 * n));
  EXPECT_LT(oracle.emulator_edges(), g.num_edges() / 4);
  EXPECT_GE(oracle.kappa(), 20);
}

TEST(Oracle, QueryAllMatchesQuery) {
  const Graph g = gen_family("torus", 144, 3);
  const ApproxDistanceOracle oracle(g);
  const auto& all = oracle.query_all(7);
  for (Vertex v = 0; v < g.num_vertices(); v += 13) {
    EXPECT_EQ(oracle.query(7, v), all[static_cast<std::size_t>(v)]);
  }
}

TEST(Oracle, CacheReusedForSymmetricQueries) {
  const Graph g = gen_family("er", 200, 8);
  const ApproxDistanceOracle oracle(g);
  // Prime cache from source 5, then ask (u, 5): must use the cached run and
  // agree with the direct answer.
  const Dist direct = oracle.query(5, 60);
  const Dist via_cache = oracle.query(60, 5);
  EXPECT_EQ(direct, via_cache);
}

TEST(Oracle, SelfDistanceZero) {
  const Graph g = gen_path(20);
  const ApproxDistanceOracle oracle(g);
  EXPECT_EQ(oracle.query(4, 4), 0);
}

TEST(Oracle, DisconnectedPairsAreInfinite) {
  GraphBuilder b(10);
  for (Vertex v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  const ApproxDistanceOracle oracle(b.build());
  EXPECT_EQ(oracle.query(0, 9), kInfDist);
  EXPECT_LT(oracle.query(0, 4), kInfDist);
}

// Regression for the pre-serve thread-safety bug: query_all mutated a
// `mutable` single-entry cache without synchronization, so two threads
// querying different sources raced (and could read a half-written vector).
// The oracle now delegates to the engine's sharded cache; hammer it.
TEST(Oracle, ConcurrentMixedQueriesFromEightThreads) {
  const Graph g = gen_connected_gnm(300, 1200, 9);
  const ApproxDistanceOracle oracle(g);

  // Serial reference answers, computed before any concurrency.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 300;
  std::vector<std::vector<Dist>> expected(kThreads);
  const auto pair_for = [](int t, int i) {
    const Vertex u = static_cast<Vertex>((t * 37 + i * 11) % 300);
    const Vertex v = static_cast<Vertex>((t * 101 + i * 13) % 300);
    return std::pair<Vertex, Vertex>{u, v};
  };
  {
    const ApproxDistanceOracle serial(g);
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto [u, v] = pair_for(t, i);
        expected[static_cast<std::size_t>(t)].push_back(serial.query(u, v));
      }
    }
  }

  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto [u, v] = pair_for(t, i);
        // Mix the two entry points: point queries and full vectors.
        const Dist got = i % 3 == 0
                             ? oracle.query_all(u)[static_cast<std::size_t>(v)]
                             : oracle.query(u, v);
        if (got != expected[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(i)]) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

// query_all now returns a shared-ownership view: it must outlive cache
// eviction (the old reference-returning API would have dangled here).
TEST(Oracle, QueryAllViewSurvivesEviction) {
  const Graph g = gen_family("er", 200, 8);
  OracleOptions options;
  options.cache_mb = 0.002;  // ~1 entry: every new source evicts
  options.cache_shards = 1;
  const ApproxDistanceOracle oracle(g, options);
  const auto all = oracle.query_all(5);
  for (Vertex s = 6; s < 30; ++s) (void)oracle.query_all(s);
  EXPECT_GE(oracle.engine().cache_stats().evictions, 1);
  EXPECT_EQ(all[60], oracle.query(5, 60));
}

TEST(Oracle, CustomKappaHonoured) {
  const Graph g = gen_family("er", 300, 4);
  OracleOptions options;
  options.kappa = 4;
  options.rho = 0.45;
  const ApproxDistanceOracle oracle(g, options);
  EXPECT_EQ(oracle.kappa(), 4);
}

}  // namespace
}  // namespace usne
