// Tests for the observability layer (src/obs/): metrics registry —
// concurrent counter/gauge/histogram recording, name validation, type
// collisions, collector lifecycle, Prometheus round-trip reconciliation,
// JSON export — and span tracing — ring wraparound, nested-span balance,
// mid-span disable, Chrome trace-event dump shape.
//
// Built with -DUSNE_SAN=thread this binary is part of the TSan gate (ctest
// label "tsan"): the concurrent-record tests hammer one Counter and one
// LatencyHistogram from many threads while a scraper thread reads the
// Prometheus page.
//
// Trace dump/reset are quiescent operations (trace.hpp contract), so every
// tracing test joins its worker threads before dumping, and resets the
// global ring state on entry.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/latency_histogram.hpp"

namespace usne {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Registry;
using obs::Sample;
using obs::TraceSpan;
using serve::LatencyHistogram;

// --- metrics: handles -------------------------------------------------------

TEST(ObsMetrics, CounterConcurrentAddSumsExactly) {
  Registry reg;
  Counter& c = reg.counter("usne_test_adds_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("usne_test_depth");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-10);
  EXPECT_EQ(g.value(), 32);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsMetrics, HandlesAreStableAcrossLookups) {
  Registry reg;
  Counter& a = reg.counter("usne_test_stable_total");
  // Force map growth with many other series, then re-resolve.
  for (int i = 0; i < 100; ++i) {
    reg.counter("usne_test_filler_" + std::to_string(i) + "_total");
  }
  Counter& b = reg.counter("usne_test_stable_total");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5);
}

TEST(ObsMetrics, HistogramConcurrentRecordAndMerge) {
  Registry reg;
  LatencyHistogram& h = reg.histogram("usne_test_latency_us");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i) % 5000 + 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);

  // merge_from doubles every bucket.
  LatencyHistogram other;
  other.merge_from(h);
  other.merge_from(h);
  EXPECT_EQ(other.count(), 2 * h.count());
  EXPECT_EQ(other.sum(), 2 * h.sum());
  EXPECT_EQ(other.max_value(), h.max_value());
}

// --- metrics: registry semantics ---------------------------------------------

TEST(ObsMetrics, RejectsMalformedNames) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("usne-test-total"), std::invalid_argument);
  EXPECT_THROW(reg.counter("usne_test{label}"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("9starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("has space"), std::invalid_argument);
  // Leading underscore and mixed case are legal Prometheus names.
  EXPECT_NO_THROW(reg.counter("_usne_Test_total"));
}

TEST(ObsMetrics, RejectsCrossTypeCollision) {
  Registry reg;
  reg.counter("usne_test_series_total");
  EXPECT_THROW(reg.gauge("usne_test_series_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("usne_test_series_total"),
               std::invalid_argument);
  // Same type re-resolves fine.
  EXPECT_NO_THROW(reg.counter("usne_test_series_total"));
}

TEST(ObsMetrics, CollectorAddRemove) {
  Registry reg;
  const std::size_t id = reg.add_collector([] {
    std::vector<Sample> out;
    out.push_back({"usne_test_collected_total", 7, true});
    out.push_back({"usne_test_collected_depth", 3, false});
    return out;
  });
  std::string page = reg.prometheus_text();
  EXPECT_NE(page.find("usne_test_collected_total 7"), std::string::npos);
  EXPECT_NE(page.find("usne_test_collected_depth 3"), std::string::npos);
  reg.remove_collector(id);
  page = reg.prometheus_text();
  EXPECT_EQ(page.find("usne_test_collected_total"), std::string::npos);
  // Removing a stale id is a no-op, not a crash.
  reg.remove_collector(id);
}

TEST(ObsMetrics, ResetValuesZeroesSeriesButKeepsCollectors) {
  Registry reg;
  reg.counter("usne_test_r_total").add(9);
  reg.gauge("usne_test_r_depth").set(4);
  reg.histogram("usne_test_r_us").record(100);
  const std::size_t id = reg.add_collector([] {
    return std::vector<Sample>{{"usne_test_r_external_total", 1, true}};
  });
  reg.reset_values();
  EXPECT_EQ(reg.counter("usne_test_r_total").value(), 0);
  EXPECT_EQ(reg.gauge("usne_test_r_depth").value(), 0);
  EXPECT_EQ(reg.histogram("usne_test_r_us").count(), 0);
  EXPECT_NE(reg.prometheus_text().find("usne_test_r_external_total 1"),
            std::string::npos);
  reg.remove_collector(id);
}

// --- metrics: exposition ------------------------------------------------------

TEST(ObsMetrics, PrometheusRoundTripReconciles) {
  Registry reg;
  reg.counter("usne_test_hits_total").add(123);
  reg.gauge("usne_test_queue_depth").set(-5);
  LatencyHistogram& h = reg.histogram("usne_test_svc_us");
  const std::vector<std::uint64_t> values = {1, 1, 7, 100, 100, 100, 90000};
  std::uint64_t expect_sum = 0;
  for (const std::uint64_t v : values) {
    h.record(v);
    expect_sum += v;
  }

  const std::string page = reg.prometheus_text();
  // TYPE lines present and correctly typed.
  EXPECT_NE(page.find("# TYPE usne_test_hits_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE usne_test_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE usne_test_svc_us histogram"),
            std::string::npos);

  double count = -1;
  double sum = -1;
  double inf_bucket = -1;
  double prev_bucket = 0;
  bool scalar_hits = false;
  bool scalar_depth = false;
  std::istringstream in(page);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    const double value = std::stod(line.substr(sp + 1));
    if (name == "usne_test_hits_total") {
      EXPECT_EQ(value, 123);
      scalar_hits = true;
    } else if (name == "usne_test_queue_depth") {
      EXPECT_EQ(value, -5);
      scalar_depth = true;
    } else if (name == "usne_test_svc_us_count") {
      count = value;
    } else if (name == "usne_test_svc_us_sum") {
      sum = value;
    } else if (name.rfind("usne_test_svc_us_bucket", 0) == 0) {
      // Cumulative: each bucket must be >= the previous one.
      EXPECT_GE(value, prev_bucket) << line;
      prev_bucket = value;
      if (name.find("le=\"+Inf\"") != std::string::npos) inf_bucket = value;
    }
  }
  EXPECT_TRUE(scalar_hits);
  EXPECT_TRUE(scalar_depth);
  EXPECT_EQ(count, static_cast<double>(values.size()));
  EXPECT_EQ(sum, static_cast<double>(expect_sum));
  // The +Inf bucket is the total count — the histogram reconciles.
  EXPECT_EQ(inf_bucket, count);
}

TEST(ObsMetrics, PrometheusOutputIsSortedAndDeterministic) {
  Registry reg;
  reg.counter("usne_test_z_total").add(1);
  reg.counter("usne_test_a_total").add(2);
  reg.gauge("usne_test_m_depth").set(3);
  const std::string page = reg.prometheus_text();
  EXPECT_LT(page.find("usne_test_a_total"), page.find("usne_test_m_depth"));
  EXPECT_LT(page.find("usne_test_m_depth"), page.find("usne_test_z_total"));
  // Two scrapes of the same state are byte-identical.
  EXPECT_EQ(page, reg.prometheus_text());
}

TEST(ObsMetrics, JsonExportShape) {
  Registry reg;
  reg.counter("usne_test_j_total").add(11);
  reg.gauge("usne_test_j_depth").set(2);
  reg.histogram("usne_test_j_us").record(50);
  const std::string j = reg.json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"usne_test_j_total\": 11"), std::string::npos);
  EXPECT_NE(j.find("\"usne_test_j_depth\": 2"), std::string::npos);
  EXPECT_NE(j.find("\"usne_test_j_us\""), std::string::npos);
  EXPECT_EQ(j, reg.json());
}

TEST(ObsMetrics, ConcurrentRecordWhileScraping) {
  Registry reg;
  Counter& c = reg.counter("usne_test_scrape_total");
  LatencyHistogram& h = reg.histogram("usne_test_scrape_us");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(i % 1000) + 1);
      }
    });
  }
  // Scrape while writers run: must be safe (racy-but-consistent snapshot).
  for (int s = 0; s < 20; ++s) {
    const std::string page = reg.prometheus_text();
    EXPECT_NE(page.find("usne_test_scrape_total"), std::string::npos);
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), 4 * 5000);
  EXPECT_EQ(h.count(), 4 * 5000);
}

TEST(ObsMetrics, GlobalRegistryFreeFunctions) {
  // The free functions resolve into the process-global registry; handles
  // are stable so the series survives for the life of the test binary.
  Counter& c = obs::counter("usne_test_global_total");
  const std::int64_t before = c.value();
  c.add(3);
  EXPECT_EQ(obs::counter("usne_test_global_total").value(), before + 3);
  EXPECT_NE(
      Registry::global().prometheus_text().find("usne_test_global_total"),
      std::string::npos);
}

// --- tracing -----------------------------------------------------------------

/// Counts occurrences of `needle` in `hay`.
std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace_set_enabled(false);
    obs::trace_reset();
  }
  void TearDown() override {
    obs::trace_set_enabled(false);
    obs::trace_reset();
    obs::trace_set_ring_capacity(16384);
  }
};

TEST_F(ObsTrace, DisabledRecordsNothing) {
  const std::size_t before = obs::trace_retained_events();
  obs::trace_begin("test.off");
  obs::trace_end("test.off");
  obs::trace_instant("test.off");
  { USNE_TRACE_SPAN("test.off_span"); }
  USNE_TRACE_INSTANT("test.off_instant");
  EXPECT_EQ(obs::trace_retained_events(), before);
}

TEST_F(ObsTrace, NestedSpansDumpBalanced) {
  obs::trace_set_enabled(true);
  {
    USNE_TRACE_SPAN("test.outer");
    {
      USNE_TRACE_SPAN("test.inner");
      USNE_TRACE_INSTANT("test.tick");
    }
  }
  obs::trace_set_enabled(false);
  const std::string json = obs::trace_dump_chrome_json();
  EXPECT_EQ(count_of(json, "\"test.outer\""), 2u);  // B + E
  EXPECT_EQ(count_of(json, "\"test.inner\""), 2u);
  EXPECT_EQ(count_of(json, "\"test.tick\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"E\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"i\""), 1u);
  // Chrome trace-event document shape.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTrace, MidSpanDisableStillCloses) {
  obs::trace_set_enabled(true);
  {
    USNE_TRACE_SPAN("test.straddle");
    // Disable while the span is open: the destructor must still record 'E'
    // (trace_end_always) so the dump stays balanced.
    obs::trace_set_enabled(false);
  }
  const std::string json = obs::trace_dump_chrome_json();
  EXPECT_EQ(count_of(json, "\"test.straddle\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\": \"E\""), 1u);
}

TEST_F(ObsTrace, RingWrapsNewestBiased) {
  // Small capacity applies to rings created after the call: record from a
  // fresh thread so its ring is born small.
  constexpr std::size_t kCap = 64;
  constexpr int kEvents = 200;
  obs::trace_set_ring_capacity(kCap);
  obs::trace_set_enabled(true);
  const std::int64_t dropped_before = obs::trace_dropped_events();
  std::thread writer([] {
    for (int i = 0; i < kEvents; ++i) obs::trace_instant("test.wrap");
  });
  writer.join();
  obs::trace_set_enabled(false);
  EXPECT_LE(obs::trace_retained_events(), kCap);
  EXPECT_GE(obs::trace_dropped_events() - dropped_before,
            static_cast<std::int64_t>(kEvents - kCap));
  const std::string json = obs::trace_dump_chrome_json();
  EXPECT_EQ(count_of(json, "\"test.wrap\""), kCap);
}

TEST_F(ObsTrace, ConcurrentThreadsGetDistinctTids) {
  obs::trace_set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        USNE_TRACE_SPAN("test.mt");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  obs::trace_set_enabled(false);
  EXPECT_EQ(obs::trace_retained_events(),
            static_cast<std::size_t>(kThreads) * 200);
  const std::string json = obs::trace_dump_chrome_json();
  EXPECT_EQ(count_of(json, "\"test.mt\""),
            static_cast<std::size_t>(kThreads) * 200);
  // At least kThreads distinct small tids appear (worker rings are
  // per-thread; tid values are assigned sequentially at ring creation).
  std::size_t distinct = 0;
  for (std::uint32_t tid = 0; tid < 64; ++tid) {
    if (json.find("\"tid\": " + std::to_string(tid)) != std::string::npos) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTrace, ResetClearsRetained) {
  obs::trace_set_enabled(true);
  obs::trace_instant("test.cleared");
  obs::trace_set_enabled(false);
  EXPECT_GE(obs::trace_retained_events(), 1u);
  obs::trace_reset();
  EXPECT_EQ(obs::trace_retained_events(), 0u);
  EXPECT_EQ(obs::trace_dump_chrome_json().find("test.cleared"),
            std::string::npos);
}

}  // namespace
}  // namespace usne
