// Smoke test: the umbrella header compiles standalone and the advertised
// entry points are reachable through it.

#include "usne.hpp"

#include <gtest/gtest.h>

namespace usne {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  const Graph g = gen_connected_gnm(120, 360, 1);
  const auto params = CentralizedParams::compute(120, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);
  EXPECT_LE(r.h.num_edges(), emulator_size_bound(120, 4));
  const ApproxDistanceOracle oracle(g);
  EXPECT_GE(oracle.query(0, 1), 1);
}

}  // namespace
}  // namespace usne
