// Tests for the CONGEST engine v2: flat-arena delivery equivalence against
// a naive per-vertex-queue reference model, allocation-free round
// advancement after warm-up, cap enforcement through the Scheduler, and
// engine-level idle-round accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <set>
#include <vector>

#include "congest/engine.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

// --- global allocation counter (this test binary only) ---------------------
// Used by the zero-allocation steady-state test; counting is cheap enough to
// leave on for the whole binary.

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace usne::congest {
namespace {

// --- arena delivery vs. naive reference model ------------------------------

TEST(NetworkArena, EquivalentToNaiveQueueModel) {
  const Graph g = gen_gnm(60, 180, 7);
  Network net(g);
  std::mt19937 rng(42);

  NetworkStats expected;
  for (int round = 0; round < 60; ++round) {
    // Random traffic: a subset of directed edges, one message each.
    std::map<Vertex, std::vector<Received>> reference;
    std::set<std::pair<Vertex, Vertex>> sent;
    for (int k = 0; k < 40; ++k) {
      const Vertex u = static_cast<Vertex>(rng() % 60);
      const auto nbrs = g.neighbors(u);
      if (nbrs.empty()) continue;
      const Vertex v = nbrs[rng() % nbrs.size()];
      if (!sent.insert({u, v}).second) continue;  // respect the edge cap
      const Message m = Message::of(static_cast<Word>(rng() % 1000), u);
      net.send(u, v, m);
      reference[v].push_back({u, m});
      ++expected.messages;
      expected.words += 2;
    }
    net.advance_round();
    ++expected.rounds;

    // delivered_to: exactly the receivers, ascending.
    std::vector<Vertex> receivers;
    for (const auto& [v, msgs] : reference) receivers.push_back(v);
    ASSERT_EQ(net.delivered_to(), receivers);

    // Per-vertex inboxes: same multiset, sorted by sender.
    for (Vertex v = 0; v < 60; ++v) {
      auto it = reference.find(v);
      if (it == reference.end()) {
        EXPECT_TRUE(net.inbox(v).empty());
        continue;
      }
      auto& expected_box = it->second;
      std::sort(expected_box.begin(), expected_box.end(),
                [](const Received& a, const Received& b) {
                  return a.from < b.from;
                });
      const auto box = net.inbox(v);
      ASSERT_EQ(box.size(), expected_box.size());
      for (std::size_t i = 0; i < box.size(); ++i) {
        EXPECT_EQ(box[i].from, expected_box[i].from);
        EXPECT_EQ(box[i].msg.size, expected_box[i].msg.size);
        for (int w = 0; w < box[i].msg.size; ++w) {
          EXPECT_EQ(box[i].msg.words[w], expected_box[i].msg.words[w]);
        }
      }
    }

    EXPECT_EQ(net.stats().rounds, expected.rounds);
    EXPECT_EQ(net.stats().messages, expected.messages);
    EXPECT_EQ(net.stats().words, expected.words);
  }
}

TEST(NetworkArena, ViolationsStillEnforced) {
  const Graph g = gen_path(3);
  Network net(g);
  net.send(0, 1, Message::of(1));
  EXPECT_THROW(net.send(0, 1, Message::of(2)), CongestViolation);
  Message oversized;
  oversized.size = kMaxWords + 1;
  EXPECT_THROW(net.send(1, 2, oversized), CongestViolation);
  EXPECT_THROW(net.send(0, 2, Message::of(1)), CongestViolation);
  net.advance_round();
  EXPECT_NO_THROW(net.send(0, 1, Message::of(3)));
}

TEST(NetworkArena, ZeroAllocationSteadyState) {
  const Graph g = gen_gnm(100, 300, 11);
  Network net(g);

  // Warm-up: drive the maximum traffic shape once so every internal buffer
  // reaches its high-water mark.
  auto drive = [&] {
    for (int round = 0; round < 10; ++round) {
      for (Vertex v = 0; v < 100; ++v) {
        net.broadcast(v, Message::of(round, v));
      }
      net.advance_round();
    }
    net.advance_rounds(5);  // idle rounds too
  };
  drive();

  // Steady state: the identical traffic shape must perform zero heap
  // allocations inside send/broadcast/advance_round.
  const std::int64_t before = g_allocations.load();
  drive();
  const std::int64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0);
}

// --- Scheduler / NodeProgram -----------------------------------------------

/// Never sends; runs a fixed number of rounds.
class SilentProgram final : public NodeProgram {
 public:
  explicit SilentProgram(std::int64_t rounds) : rounds_(rounds) {}
  void init(Outbox&) override {}
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

 private:
  std::int64_t rounds_;
};

/// Broadcasts once from a vertex in init, then stays silent.
class OneShotProgram final : public NodeProgram {
 public:
  OneShotProgram(Vertex from, std::int64_t rounds)
      : from_(from), rounds_(rounds) {}
  void init(Outbox& out) override { out.broadcast(from_, Message::of(99)); }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

 private:
  Vertex from_;
  std::int64_t rounds_;
};

/// Violates the per-edge cap from inside the engine.
class DoubleSendProgram final : public NodeProgram {
 public:
  void init(Outbox& out) override {
    out.send(0, 1, Message::of(1));
    out.send(0, 1, Message::of(2));
  }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override { return next_round >= 1; }
};

TEST(Scheduler, IdleRoundAccounting) {
  const Graph g = gen_cycle(8);
  Network net(g);
  SilentProgram program(5);
  const ScheduleReport report = Scheduler(net).run(program);
  EXPECT_EQ(report.rounds, 5);
  EXPECT_EQ(report.idle_rounds, 5);
  EXPECT_EQ(report.traffic.messages, 0);
  EXPECT_EQ(net.stats().rounds, 5);  // idle rounds still count
}

TEST(Scheduler, MixedIdleAccounting) {
  const Graph g = gen_path(4);
  Network net(g);
  OneShotProgram program(0, 6);
  const ScheduleReport report = Scheduler(net).run(program);
  // Round 0 delivers the broadcast; the remaining 5 rounds are idle.
  EXPECT_EQ(report.rounds, 6);
  EXPECT_EQ(report.idle_rounds, 5);
  EXPECT_EQ(report.traffic.messages, 1);
  EXPECT_EQ(report.traffic.words, 1);
}

TEST(Scheduler, PerProgramTrafficDeltas) {
  const Graph g = gen_path(4);
  Network net(g);
  Scheduler scheduler(net);
  OneShotProgram first(0, 2);
  OneShotProgram second(1, 3);
  const ScheduleReport r1 = scheduler.run(first);
  const ScheduleReport r2 = scheduler.run(second);
  EXPECT_EQ(r1.rounds, 2);
  EXPECT_EQ(r1.traffic.messages, 1);
  EXPECT_EQ(r2.rounds, 3);
  EXPECT_EQ(r2.traffic.messages, 2);  // vertex 1 has two neighbours
  EXPECT_EQ(net.stats().rounds, 5);   // cumulative across programs
  EXPECT_EQ(net.stats().messages, 3);
}

TEST(Scheduler, CongestViolationPropagates) {
  const Graph g = gen_path(3);
  Network net(g);
  DoubleSendProgram program;
  Scheduler scheduler(net);
  EXPECT_THROW(scheduler.run(program), CongestViolation);
}

TEST(Scheduler, FloodThroughEngineMatchesSchedule) {
  // flood_presence runs on the engine; its fixed schedule burns rounds even
  // after the wave dies out, and the result is unchanged.
  const Graph g = gen_path(3);
  Network net(g);
  const FloodResult flood = flood_presence(net, {0}, 10);
  EXPECT_EQ(net.stats().rounds, 10);
  EXPECT_EQ(flood.dist[0], 0);
  EXPECT_EQ(flood.dist[1], 1);
  EXPECT_EQ(flood.dist[2], 2);
}

}  // namespace
}  // namespace usne::congest
