// Tests for the CONGEST engine v2: flat-arena delivery equivalence against
// a naive per-vertex-queue reference model, allocation-free round
// advancement after warm-up, cap enforcement through the Scheduler, and
// engine-level idle-round accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "congest/engine.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

// --- global allocation counter (this test binary only) ---------------------
// Used by the zero-allocation steady-state test; counting is cheap enough to
// leave on for the whole binary.

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

// In sanitizer builds GCC attributes allocations to the sanitizer's
// interposed allocator and flags these free() calls as mismatched; the
// pairing is malloc/free by construction (and the sanitizers intercept
// both), so the diagnostic is noise here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace usne::congest {
namespace {

// --- arena delivery vs. naive reference model ------------------------------

TEST(NetworkArena, EquivalentToNaiveQueueModel) {
  const Graph g = gen_gnm(60, 180, 7);
  Network net(g);
  std::mt19937 rng(42);

  NetworkStats expected;
  for (int round = 0; round < 60; ++round) {
    // Random traffic: a subset of directed edges, one message each.
    std::map<Vertex, std::vector<Received>> reference;
    std::set<std::pair<Vertex, Vertex>> sent;
    for (int k = 0; k < 40; ++k) {
      const Vertex u = static_cast<Vertex>(rng() % 60);
      const auto nbrs = g.neighbors(u);
      if (nbrs.empty()) continue;
      const Vertex v = nbrs[rng() % nbrs.size()];
      if (!sent.insert({u, v}).second) continue;  // respect the edge cap
      const Message m = Message::of(static_cast<Word>(rng() % 1000), u);
      net.send(u, v, m);
      reference[v].push_back({u, m});
      ++expected.messages;
      expected.words += 2;
    }
    net.advance_round();
    ++expected.rounds;

    // delivered_to: exactly the receivers, ascending.
    std::vector<Vertex> receivers;
    for (const auto& [v, msgs] : reference) receivers.push_back(v);
    ASSERT_EQ(net.delivered_to(), receivers);

    // Per-vertex inboxes: same multiset, sorted by sender.
    for (Vertex v = 0; v < 60; ++v) {
      auto it = reference.find(v);
      if (it == reference.end()) {
        EXPECT_TRUE(net.inbox(v).empty());
        continue;
      }
      auto& expected_box = it->second;
      std::sort(expected_box.begin(), expected_box.end(),
                [](const Received& a, const Received& b) {
                  return a.from < b.from;
                });
      const auto box = net.inbox(v);
      ASSERT_EQ(box.size(), expected_box.size());
      for (std::size_t i = 0; i < box.size(); ++i) {
        EXPECT_EQ(box[i].from, expected_box[i].from);
        EXPECT_EQ(box[i].msg.size, expected_box[i].msg.size);
        for (int w = 0; w < box[i].msg.size; ++w) {
          EXPECT_EQ(box[i].msg.words[w], expected_box[i].msg.words[w]);
        }
      }
    }

    EXPECT_EQ(net.stats().rounds, expected.rounds);
    EXPECT_EQ(net.stats().messages, expected.messages);
    EXPECT_EQ(net.stats().words, expected.words);
  }
}

TEST(NetworkArena, ViolationsStillEnforced) {
  const Graph g = gen_path(3);
  Network net(g);
  net.send(0, 1, Message::of(1));
  EXPECT_THROW(net.send(0, 1, Message::of(2)), CongestViolation);
  Message oversized;
  oversized.size = kMaxWords + 1;
  EXPECT_THROW(net.send(1, 2, oversized), CongestViolation);
  EXPECT_THROW(net.send(0, 2, Message::of(1)), CongestViolation);
  net.advance_round();
  EXPECT_NO_THROW(net.send(0, 1, Message::of(3)));
}

TEST(NetworkArena, ZeroAllocationSteadyState) {
  const Graph g = gen_gnm(100, 300, 11);
  Network net(g);

  // Warm-up: drive the maximum traffic shape once so every internal buffer
  // reaches its high-water mark.
  auto drive = [&] {
    for (int round = 0; round < 10; ++round) {
      for (Vertex v = 0; v < 100; ++v) {
        net.broadcast(v, Message::of(round, v));
      }
      net.advance_round();
    }
    net.advance_rounds(5);  // idle rounds too
  };
  drive();

  // Steady state: the identical traffic shape must perform zero heap
  // allocations inside send/broadcast/advance_round.
  const std::int64_t before = g_allocations.load();
  drive();
  const std::int64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0);
}

// --- Scheduler / NodeProgram -----------------------------------------------

/// Never sends; runs a fixed number of rounds.
class SilentProgram final : public NodeProgram {
 public:
  explicit SilentProgram(std::int64_t rounds) : rounds_(rounds) {}
  void init(Outbox&) override {}
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

 private:
  std::int64_t rounds_;
};

/// Broadcasts once from a vertex in init, then stays silent.
class OneShotProgram final : public NodeProgram {
 public:
  OneShotProgram(Vertex from, std::int64_t rounds)
      : from_(from), rounds_(rounds) {}
  void init(Outbox& out) override { out.broadcast(from_, Message::of(99)); }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

 private:
  Vertex from_;
  std::int64_t rounds_;
};

/// Violates the per-edge cap from inside the engine.
class DoubleSendProgram final : public NodeProgram {
 public:
  void init(Outbox& out) override {
    out.send(0, 1, Message::of(1));
    out.send(0, 1, Message::of(2));
  }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t next_round) const override { return next_round >= 1; }
};

TEST(Scheduler, IdleRoundAccounting) {
  const Graph g = gen_cycle(8);
  Network net(g);
  SilentProgram program(5);
  const ScheduleReport report = Scheduler(net).run(program);
  EXPECT_EQ(report.rounds, 5);
  EXPECT_EQ(report.idle_rounds, 5);
  EXPECT_EQ(report.traffic.messages, 0);
  EXPECT_EQ(net.stats().rounds, 5);  // idle rounds still count
}

TEST(Scheduler, MixedIdleAccounting) {
  const Graph g = gen_path(4);
  Network net(g);
  OneShotProgram program(0, 6);
  const ScheduleReport report = Scheduler(net).run(program);
  // Round 0 delivers the broadcast; the remaining 5 rounds are idle.
  EXPECT_EQ(report.rounds, 6);
  EXPECT_EQ(report.idle_rounds, 5);
  EXPECT_EQ(report.traffic.messages, 1);
  EXPECT_EQ(report.traffic.words, 1);
}

TEST(Scheduler, PerProgramTrafficDeltas) {
  const Graph g = gen_path(4);
  Network net(g);
  Scheduler scheduler(net);
  OneShotProgram first(0, 2);
  OneShotProgram second(1, 3);
  const ScheduleReport r1 = scheduler.run(first);
  const ScheduleReport r2 = scheduler.run(second);
  EXPECT_EQ(r1.rounds, 2);
  EXPECT_EQ(r1.traffic.messages, 1);
  EXPECT_EQ(r2.rounds, 3);
  EXPECT_EQ(r2.traffic.messages, 2);  // vertex 1 has two neighbours
  EXPECT_EQ(net.stats().rounds, 5);   // cumulative across programs
  EXPECT_EQ(net.stats().messages, 3);
}

TEST(Scheduler, CongestViolationPropagates) {
  const Graph g = gen_path(3);
  Network net(g);
  DoubleSendProgram program;
  Scheduler scheduler(net);
  EXPECT_THROW(scheduler.run(program), CongestViolation);
}

TEST(Scheduler, FloodThroughEngineMatchesSchedule) {
  // flood_presence runs on the engine; its fixed schedule burns rounds even
  // after the wave dies out, and the result is unchanged.
  const Graph g = gen_path(3);
  Network net(g);
  const FloodResult flood = flood_presence(net, {0}, 10);
  EXPECT_EQ(net.stats().rounds, 10);
  EXPECT_EQ(flood.dist[0], 0);
  EXPECT_EQ(flood.dist[1], 1);
  EXPECT_EQ(flood.dist[2], 2);
}

// --- flush-or-throw at program end ------------------------------------------

/// Buggy by design: issues sends and then immediately reports done, leaving
/// the messages staged. Before the flush-or-throw guard these silently
/// leaked into the next program run on the same network.
class LeakyProgram final : public NodeProgram {
 public:
  explicit LeakyProgram(Vertex from) : from_(from) {}
  void init(Outbox& out) override { out.broadcast(from_, Message::of(7)); }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t) const override { return true; }  // trips after sends

 private:
  Vertex from_;
};

/// Counts the messages it receives; used to prove no cross-program leak.
class CountingProgram final : public NodeProgram {
 public:
  explicit CountingProgram(std::int64_t rounds) : rounds_(rounds) {}
  void init(Outbox&) override {}
  void on_round(std::int64_t, Vertex, std::span<const Received> inbox,
                Outbox&) override {
    received_ += static_cast<std::int64_t>(inbox.size());
  }
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }
  std::int64_t received() const noexcept { return received_; }

 private:
  std::int64_t rounds_;
  std::int64_t received_ = 0;
};

TEST(Scheduler, ThrowsWhenProgramEndsWithStagedMessages) {
  const Graph g = gen_path(4);
  Network net(g);
  LeakyProgram leaky(1);
  Scheduler scheduler(net);
  EXPECT_THROW(scheduler.run(leaky), CongestViolation);
}

TEST(Scheduler, BackToBackProgramsDoNotLeak) {
  // Regression for the staged-message leak: a leaky first program must not
  // hand its messages to the second program on the same network. The guard
  // throws at the first program's end; the second program then observes a
  // clean network.
  const Graph g = gen_path(4);
  Network net(g);
  Scheduler scheduler(net);

  LeakyProgram leaky(1);
  EXPECT_THROW(scheduler.run(leaky), CongestViolation);

  // Well-behaved back-to-back pair: the second sees only its own traffic.
  net.advance_round();  // clear the leaked staging (delivers + discards)
  CountingProgram first(2);
  CountingProgram second(2);
  scheduler.run(first);
  const std::int64_t before = net.stats().messages;
  scheduler.run(second);
  EXPECT_EQ(first.received(), 0);
  EXPECT_EQ(second.received(), 0);
  EXPECT_EQ(net.stats().messages, before);
}

// --- PipelinedQueues ---------------------------------------------------------

TEST(PipelinedQueues, DefersSecondItemPerDestinationWithinARound) {
  PipelinedQueues<int> q(4);
  q.push(0, 1, 10);
  q.push(0, 1, 11);  // same destination: must wait a round
  q.push(0, 2, 12);
  q.push(3, 1, 13);  // different source, same destination: fine same round
  EXPECT_EQ(q.queued(), 4);

  std::vector<std::tuple<Vertex, Vertex, int>> sent;
  q.drain_round([&](Vertex f, Vertex t, int p) { sent.push_back({f, t, p}); });
  EXPECT_EQ(sent, (std::vector<std::tuple<Vertex, Vertex, int>>{
                      {0, 1, 10}, {0, 2, 12}, {3, 1, 13}}));
  EXPECT_EQ(q.queued(), 1);

  sent.clear();
  q.drain_round([&](Vertex f, Vertex t, int p) { sent.push_back({f, t, p}); });
  EXPECT_EQ(sent, (std::vector<std::tuple<Vertex, Vertex, int>>{{0, 1, 11}}));
  EXPECT_EQ(q.queued(), 0);
}

TEST(PipelinedQueues, StarGraphHubDrainStress) {
  // A hub with `leaves` queued items per distinct leaf, `repeat` deep. The
  // old drain_round did a linear membership scan over the destinations
  // already served (O(deg^2) per round on a hub); the stamp-based drain is
  // O(items). At this size the quadratic version burns hundreds of
  // millions of comparisons — the stress would have caught it.
  constexpr Vertex kLeaves = 20000;
  constexpr int kRepeat = 3;
  PipelinedQueues<int> q(kLeaves + 1);
  const Vertex hub = 0;
  for (int r = 0; r < kRepeat; ++r) {
    for (Vertex leaf = 1; leaf <= kLeaves; ++leaf) {
      q.push(hub, leaf, r);
    }
  }
  EXPECT_EQ(q.queued(), static_cast<std::int64_t>(kLeaves) * kRepeat);

  // Drains in exactly kRepeat rounds: every leaf is served once per round.
  for (int round = 0; round < kRepeat; ++round) {
    std::vector<std::int64_t> hits(static_cast<std::size_t>(kLeaves) + 1, 0);
    std::int64_t sent = 0;
    const bool any = q.drain_round([&](Vertex f, Vertex t, int p) {
      EXPECT_EQ(f, hub);
      EXPECT_EQ(p, round);  // FIFO per destination
      ++hits[static_cast<std::size_t>(t)];
      ++sent;
    });
    EXPECT_TRUE(any);
    EXPECT_EQ(sent, static_cast<std::int64_t>(kLeaves));
    for (Vertex leaf = 1; leaf <= kLeaves; ++leaf) {
      EXPECT_EQ(hits[static_cast<std::size_t>(leaf)], 1);  // per-edge cap
    }
  }
  EXPECT_EQ(q.queued(), 0);
}

// --- construction guards -----------------------------------------------------

TEST(Network, RejectsEmptyGraph) {
  const Graph empty(0, {});
  EXPECT_THROW(Network net(empty), std::invalid_argument);
}

}  // namespace
}  // namespace usne::congest
