// Unit tests for src/path: BFS variants, Dijkstra, APSP, and the
// (S, d, k)-source detection against brute force.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "path/apsp.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "path/source_detection.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

TEST(Bfs, PathDistances) {
  const Graph g = gen_path(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, Unreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kInfDist);
  EXPECT_EQ(dist[3], kInfDist);
}

TEST(Bfs, BoundedMatchesFullWithinDepth) {
  const Graph g = gen_connected_gnm(300, 900, 4);
  const auto full = bfs_distances(g, 17);
  std::vector<Dist> dist(300, kInfDist);
  std::vector<Vertex> touched;
  bounded_bfs(g, 17, 3, dist, touched);
  for (Vertex v = 0; v < 300; ++v) {
    if (full[static_cast<std::size_t>(v)] <= 3) {
      EXPECT_EQ(dist[static_cast<std::size_t>(v)], full[static_cast<std::size_t>(v)]);
    } else {
      EXPECT_EQ(dist[static_cast<std::size_t>(v)], kInfDist);
    }
  }
  // Touched is exactly the ball.
  std::int64_t ball = 0;
  for (const Dist d : full) ball += (d <= 3);
  EXPECT_EQ(static_cast<std::int64_t>(touched.size()), ball);
}

TEST(Bfs, BoundedDepthZero) {
  const Graph g = gen_cycle(8);
  std::vector<Dist> dist(8, kInfDist);
  std::vector<Vertex> touched;
  bounded_bfs(g, 3, 0, dist, touched);
  EXPECT_EQ(touched.size(), 1u);
  EXPECT_EQ(dist[3], 0);
}

TEST(Bfs, MultiSourceNearest) {
  const Graph g = gen_path(10);  // 0-1-...-9
  const std::vector<Vertex> sources = {0, 9};
  const auto r = multi_source_bfs(g, sources, kInfDist);
  EXPECT_EQ(r.dist[2], 2);
  EXPECT_EQ(r.source[2], 0);
  EXPECT_EQ(r.dist[7], 2);
  EXPECT_EQ(r.source[7], 9);
  // Midpoint ties: distance is the min either way.
  EXPECT_EQ(r.dist[4], 4);
  EXPECT_EQ(r.dist[5], 4);
}

TEST(Bfs, MultiSourceParentsFormTree) {
  const Graph g = gen_connected_gnm(200, 500, 2);
  const std::vector<Vertex> sources = {3, 77, 150};
  const auto r = multi_source_bfs(g, sources, kInfDist);
  for (Vertex v = 0; v < 200; ++v) {
    if (r.parent[static_cast<std::size_t>(v)] == -1) continue;
    // Parent is one hop closer and has the same winning source.
    EXPECT_EQ(r.dist[static_cast<std::size_t>(v)],
              r.dist[static_cast<std::size_t>(r.parent[static_cast<std::size_t>(v)])] + 1);
    EXPECT_EQ(r.source[static_cast<std::size_t>(v)],
              r.source[static_cast<std::size_t>(r.parent[static_cast<std::size_t>(v)])]);
  }
}

TEST(Bfs, MultiSourceRespectsDepth) {
  const Graph g = gen_path(10);
  const auto r = multi_source_bfs(g, std::vector<Vertex>{0}, 4);
  EXPECT_EQ(r.dist[4], 4);
  EXPECT_EQ(r.dist[5], kInfDist);
}

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  const Graph g = gen_connected_gnm(150, 400, 6);
  WeightedGraph h(150);
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, 1);
  const auto bfs = bfs_distances(g, 42);
  const auto dij = dijkstra(h, 42);
  EXPECT_EQ(bfs, dij);
}

TEST(Dijkstra, WeightedShortcuts) {
  // Path 0-1-2-3 plus a weighted shortcut 0-3 of weight 2.
  WeightedGraph h(4);
  h.add_edge(0, 1, 1);
  h.add_edge(1, 2, 1);
  h.add_edge(2, 3, 1);
  h.add_edge(0, 3, 2);
  const auto dist = dijkstra(h, 0);
  EXPECT_EQ(dist[3], 2);
  EXPECT_EQ(dist[2], 2);  // could go 0-1-2 or 0-3-2? 0-3 is 2, 3-2 is 1 => 3. min is 2.
}

TEST(Dijkstra, PointToPointEarlyExit) {
  WeightedGraph h(5);
  h.add_edge(0, 1, 4);
  h.add_edge(1, 2, 4);
  h.add_edge(0, 2, 10);
  EXPECT_EQ(dijkstra_distance(h, 0, 2), 8);
  EXPECT_EQ(dijkstra_distance(h, 0, 4), kInfDist);
}

TEST(Dijkstra, UnionOfEmulatorAndGraph) {
  const Graph g = gen_path(6);
  WeightedGraph h(6);
  h.add_edge(0, 5, 2);  // shortcut
  const auto dist = dijkstra_union(h, g, 0);
  EXPECT_EQ(dist[5], 2);
  EXPECT_EQ(dist[4], 3);  // 0->5 (2) + 5->4 (1)
}

TEST(Apsp, UnweightedMatchesPerSourceBfs) {
  const Graph g = gen_connected_gnm(80, 200, 9);
  const DistanceMatrix m = apsp_unweighted(g);
  for (Vertex s = 0; s < 80; s += 13) {
    const auto dist = bfs_distances(g, s);
    for (Vertex v = 0; v < 80; ++v) {
      EXPECT_EQ(m.at(s, v), dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Apsp, WeightedSymmetric) {
  WeightedGraph h(5);
  h.add_edge(0, 1, 3);
  h.add_edge(1, 2, 4);
  h.add_edge(0, 3, 10);
  const DistanceMatrix m = apsp_weighted(h);
  for (Vertex u = 0; u < 5; ++u) {
    for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(m.at(u, v), m.at(v, u));
  }
  EXPECT_EQ(m.at(0, 2), 7);
}

// --- Source detection ---

/// Brute-force reference: the k nearest sources of v within depth, ordered
/// by (dist, id).
std::vector<SourceHit> brute_k_nearest(const Graph& g,
                                       const std::vector<Vertex>& sources,
                                       Vertex v, Dist depth, std::size_t k) {
  std::vector<SourceHit> all;
  for (const Vertex s : sources) {
    const Dist d = bfs_distances(g, s)[static_cast<std::size_t>(v)];
    if (d <= depth) all.push_back({s, d, -1});
  }
  std::sort(all.begin(), all.end(), [](const SourceHit& a, const SourceHit& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.source < b.source;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(SourceDetection, MatchesBruteForce) {
  Rng rng(31);
  const Graph g = gen_connected_gnm(120, 360, 31);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 120; v += 7) sources.push_back(v);
  const Dist depth = 4;
  const std::size_t k = 3;
  const SourceDetection det = detect_sources(g, sources, depth, k);
  for (Vertex v = 0; v < 120; v += 11) {
    const auto expected = brute_k_nearest(g, sources, v, depth, k);
    const auto got = det.at(v);
    ASSERT_EQ(got.size(), expected.size()) << "vertex " << v;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].source, expected[i].source) << "vertex " << v;
      EXPECT_EQ(got[i].dist, expected[i].dist) << "vertex " << v;
    }
  }
}

TEST(SourceDetection, PathReconstruction) {
  const Graph g = gen_connected_gnm(100, 300, 13);
  std::vector<Vertex> sources = {5, 50, 95};
  const SourceDetection det = detect_sources(g, sources, 10, 3);
  for (Vertex v = 0; v < 100; v += 9) {
    for (const SourceHit& h : det.at(v)) {
      const auto path = det.path_to(v, h.source);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), v);
      EXPECT_EQ(path.back(), h.source);
      EXPECT_EQ(static_cast<Dist>(path.size()) - 1, h.dist);
      // Consecutive vertices are graph edges.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
      }
    }
  }
}

TEST(SourceDetection, SelfIsFirstHit) {
  const Graph g = gen_cycle(12);
  std::vector<Vertex> sources = {0, 6};
  const SourceDetection det = detect_sources(g, sources, 12, 2);
  ASSERT_FALSE(det.at(0).empty());
  EXPECT_EQ(det.at(0)[0].source, 0);
  EXPECT_EQ(det.at(0)[0].dist, 0);
}

TEST(SourceDetection, DistanceToHelper) {
  const Graph g = gen_path(8);
  const SourceDetection det = detect_sources(g, std::vector<Vertex>{0}, 10, 2);
  EXPECT_EQ(det.distance_to(5, 0), 5);
  EXPECT_EQ(det.distance_to(5, 3), kInfDist);  // 3 is not a source
}

TEST(SourceDetection, CapRespected) {
  const Graph g = gen_star(20);
  std::vector<Vertex> sources;
  for (Vertex v = 1; v < 20; ++v) sources.push_back(v);
  const SourceDetection det = detect_sources(g, sources, 4, 5);
  // The center is within distance 1 of 19 sources; list is capped at 5.
  EXPECT_EQ(det.at(0).size(), 5u);
  // The 5 kept are the (dist, id)-smallest: sources 1..5 at distance 1.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(det.at(0)[i].dist, 1);
    EXPECT_EQ(det.at(0)[i].source, static_cast<Vertex>(i + 1));
  }
}

}  // namespace
}  // namespace usne
