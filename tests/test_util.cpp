// Unit tests for src/util: RNG determinism and distribution sanity, integer
// math helpers, table rendering, CLI flag parsing.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace usne {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Math, IpowSat) {
  EXPECT_EQ(ipow_sat(2, 0), 1);
  EXPECT_EQ(ipow_sat(2, 10), 1024);
  EXPECT_EQ(ipow_sat(3, 4), 81);
  EXPECT_EQ(ipow_sat(10, 19), INT64_MAX);  // overflow saturates
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Math, SizeBoundEdges) {
  // n^(1+1/kappa) for n=1024, kappa=2 is 1024^1.5 = 32768.
  EXPECT_EQ(size_bound_edges(1024, 2), 32768);
  // kappa=10: 1024^1.1 = 2048.0 exactly (2^11).
  EXPECT_EQ(size_bound_edges(1024, 10), 2048);
  // Large kappa approaches n.
  EXPECT_GE(size_bound_edges(1000, 1000), 1000);
}

TEST(Math, DigitsInBase) {
  EXPECT_EQ(digits_in_base(10, 10), 1);
  EXPECT_EQ(digits_in_base(11, 10), 2);
  EXPECT_EQ(digits_in_base(100, 10), 2);
  EXPECT_EQ(digits_in_base(101, 10), 3);
  EXPECT_EQ(digits_in_base(1024, 2), 10);
}

TEST(Math, DigitAt) {
  EXPECT_EQ(digit_at(1234, 10, 0), 4);
  EXPECT_EQ(digit_at(1234, 10, 1), 3);
  EXPECT_EQ(digit_at(1234, 10, 3), 1);
  EXPECT_EQ(digit_at(5, 2, 0), 1);
  EXPECT_EQ(digit_at(5, 2, 1), 0);
  EXPECT_EQ(digit_at(5, 2, 2), 1);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(Table, MarkdownRendering) {
  Table t({"a", "bb"});
  t.row().add("x").add(std::int64_t{42});
  t.row().add("longer").add(3.14159, 2);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a      | bb   |"), std::string::npos);
  EXPECT_NE(md.find("| x      | 42   |"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.row().add("1").add("with,comma");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("a,b"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, PrintWithTitle) {
  Table t({"col"});
  t.row().add("v");
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_NE(os.str().find("### My Title"), std::string::npos);
}

TEST(Table, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

Cli make_cli(std::vector<std::string> args,
             std::map<std::string, std::string> spec,
             bool allow_positional = false,
             std::set<std::string> switches = {}) {
  // Cli copies everything it keeps, so locals are fine here.
  std::vector<std::string> storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(spec),
             allow_positional, std::move(switches));
}

TEST(Cli, TypedAccessors) {
  const Cli cli = make_cli({"--n=42", "--eps", "0.5", "--name", "er"},
                           {{"n", ""}, {"eps", ""}, {"name", ""}});
  EXPECT_TRUE(cli.errors().empty());
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.5);
  EXPECT_EQ(cli.get("name", ""), "er");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, GetBool) {
  const Cli cli = make_cli(
      {"--flag", "--yes=true", "--no=false", "--off", "0", "--junk=maybe"},
      {{"flag", ""}, {"yes", ""}, {"no", ""}, {"off", ""}, {"junk", ""}},
      /*allow_positional=*/false, /*switches=*/{"flag"});
  EXPECT_TRUE(cli.get_bool("flag", false));  // bare switch
  EXPECT_TRUE(cli.get_bool("yes", false));
  EXPECT_FALSE(cli.get_bool("no", true));
  EXPECT_FALSE(cli.get_bool("off", true));    // "--off 0" two-token form
  EXPECT_TRUE(cli.get_bool("junk", true));    // unparsable -> fallback
  EXPECT_FALSE(cli.get_bool("junk", false));
  EXPECT_TRUE(cli.get_bool("absent", true));  // missing -> fallback
}

TEST(Cli, SwitchNeverConsumesNextToken) {
  // "--audit foo": audit is a declared switch, so foo stays positional
  // instead of being swallowed as audit's value (which would silently
  // disable the flag via get_bool's fallback).
  const Cli cli = make_cli({"--audit", "spanner"}, {{"audit", ""}},
                           /*allow_positional=*/true, /*switches=*/{"audit"});
  EXPECT_TRUE(cli.errors().empty());
  EXPECT_TRUE(cli.get_bool("audit", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "spanner");
  // Explicit =value still works for switches.
  const Cli off = make_cli({"--audit=false"}, {{"audit", ""}},
                           /*allow_positional=*/true, /*switches=*/{"audit"});
  EXPECT_FALSE(off.get_bool("audit", true));
}

TEST(Cli, ValueFlagWithoutValueIsAnError) {
  // A bare "--json" must not silently become the value "1" (and then a
  // stray file named "1").
  const Cli cli = make_cli({"--json"}, {{"json", ""}});
  ASSERT_EQ(cli.errors().size(), 1u);
  EXPECT_NE(cli.errors()[0].find("requires a value"), std::string::npos);
  EXPECT_FALSE(cli.has("json"));
}

TEST(Cli, PositionalArgumentsWhenAllowed) {
  const Cli cli = make_cli({"spanner", "--n=8", "second"}, {{"n", ""}},
                           /*allow_positional=*/true);
  EXPECT_TRUE(cli.errors().empty());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "spanner");
  EXPECT_EQ(cli.positional()[1], "second");
  EXPECT_EQ(cli.get_int("n", 0), 8);
}

TEST(Cli, PositionalArgumentsRejectedByDefault) {
  // A single-dash typo like `-n 8` must not silently fall back to flag
  // defaults in the binaries that take no positionals.
  const Cli cli = make_cli({"-n", "8"}, {{"n", ""}});
  ASSERT_EQ(cli.errors().size(), 2u);
  EXPECT_NE(cli.errors()[0].find("positional"), std::string::npos);
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, UnknownFlagStillReported) {
  const Cli cli = make_cli({"--bogus=1"}, {{"n", ""}});
  ASSERT_EQ(cli.errors().size(), 1u);
  EXPECT_NE(cli.errors()[0].find("bogus"), std::string::npos);
}

TEST(Mem, RssHelpersReportPlausibleValues) {
  // A live Linux process has a positive resident set, and the high-water
  // mark can never undercut the current value. (On platforms without
  // /proc the helpers return -1; the E10 accounting treats that as
  // "unknown", so this test only asserts when the probe works.)
  const std::int64_t current = util::current_rss_bytes();
  const std::int64_t peak = util::peak_rss_bytes();
  if (current >= 0) {
    EXPECT_GT(current, 0);
  }
  ASSERT_GT(peak, 0);  // getrusage fallback exists everywhere we build
  if (current >= 0) {
    EXPECT_GE(peak, current);
  }
  EXPECT_GT(util::peak_rss_mb(), 0.0);
}

TEST(Mem, PeakRssIsMonotoneAndTracksAllocation) {
  const std::int64_t before = util::peak_rss_bytes();
  // Touch 32 MiB so the high-water mark must move if it was near current.
  std::vector<char> ballast(32u << 20, 1);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 2;
  const std::int64_t after = util::peak_rss_bytes();
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace usne
