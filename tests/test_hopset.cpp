// Tests for the hopset module: hop-limited Bellman–Ford correctness and
// the emulator-as-hopset behaviour the paper's §1.1 alludes to.

#include <gtest/gtest.h>

#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "path/bfs.hpp"

namespace usne {
namespace {

TEST(Hopset, LimitedHopsOnPlainGraph) {
  // Without H, d^(h)(u,v) is finite iff d_G(u,v) <= h, and equals d_G then.
  const Graph g = gen_path(10);
  const WeightedGraph empty(10);
  const auto d3 = limited_hop_distances(g, empty, 0, 3);
  for (Vertex v = 0; v < 10; ++v) {
    if (v <= 3) {
      EXPECT_EQ(d3[static_cast<std::size_t>(v)], v);
    } else {
      EXPECT_EQ(d3[static_cast<std::size_t>(v)], kInfDist);
    }
  }
}

TEST(Hopset, MonotoneInHops) {
  const Graph g = gen_connected_gnm(100, 300, 3);
  const WeightedGraph empty(100);
  auto prev = limited_hop_distances(g, empty, 0, 1);
  for (int h = 2; h <= 6; ++h) {
    const auto cur = limited_hop_distances(g, empty, 0, h);
    for (Vertex v = 0; v < 100; ++v) {
      EXPECT_LE(cur[static_cast<std::size_t>(v)], prev[static_cast<std::size_t>(v)]);
    }
    prev = cur;
  }
}

TEST(Hopset, ConvergesToBfsWithoutH) {
  const Graph g = gen_connected_gnm(80, 240, 5);
  const WeightedGraph empty(80);
  const auto full = limited_hop_distances(g, empty, 7, 80);
  EXPECT_EQ(full, bfs_distances(g, 7));
}

TEST(Hopset, EmulatorEdgesCutHops) {
  // A single emulator edge (0, n-1, n-1) makes the far end reachable in
  // one hop.
  const Vertex n = 50;
  const Graph g = gen_path(n);
  WeightedGraph h(n);
  h.add_edge(0, n - 1, n - 1);
  const auto d1 = limited_hop_distances(g, h, 0, 1);
  EXPECT_EQ(d1[static_cast<std::size_t>(n - 1)], n - 1);
  // And never shorter than the true distance.
  const auto exact = bfs_distances(g, 0);
  const auto d5 = limited_hop_distances(g, h, 0, 5);
  for (Vertex v = 0; v < n; ++v) {
    if (d5[static_cast<std::size_t>(v)] != kInfDist) {
      EXPECT_GE(d5[static_cast<std::size_t>(v)], exact[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Hopset, EmulatorReducesMeasuredHopbound) {
  // The headline behaviour: with the emulator as a hopset, far fewer
  // Bellman-Ford rounds reach near-exact distances.
  const Vertex side = 18;
  const Graph g = gen_torus(side, side);  // diameter = side (= 18)
  const auto params = CentralizedParams::compute(g.num_vertices(), 4, 0.25);
  const auto r = build_emulator_centralized(g, params);

  const std::vector<Vertex> sources = {0, 100, 250};
  const double eps = params.schedule.alpha_bound() - 1.0;
  const Dist beta = params.schedule.beta_bound();

  const WeightedGraph empty(g.num_vertices());
  const auto without = measure_hopbound(g, empty, sources, eps, beta, 64);
  const auto with = measure_hopbound(g, r.h, sources, eps, beta, 64);

  ASSERT_GT(with.hopbound, 0);
  ASSERT_GT(without.hopbound, 0);
  EXPECT_LE(with.hopbound, without.hopbound);
  EXPECT_GT(with.pairs, 0);
}

TEST(Hopset, UnreachableWithinBudgetReportsMinusOne) {
  const Graph g = gen_path(30);
  const WeightedGraph empty(30);
  // eps=0, beta=0: needs h = 29 for the far pair; max_hops=5 cannot do it.
  const auto report = measure_hopbound(g, empty, {0}, 0.0, 0, 5);
  EXPECT_EQ(report.hopbound, -1);
}

TEST(Hopset, ExactBudgetEqualsEccentricityHops) {
  const Graph g = gen_path(30);
  const WeightedGraph empty(30);
  const auto report = measure_hopbound(g, empty, {0}, 0.0, 0, 64);
  EXPECT_EQ(report.hopbound, 29);  // the full path length
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.0);
}

}  // namespace
}  // namespace usne
