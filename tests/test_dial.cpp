// Property tests for Dial's bucket-queue SSSP: exact agreement with
// Dijkstra on random weighted graphs and on real emulators.

#include <gtest/gtest.h>

#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "path/dijkstra.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

WeightedGraph random_weighted(Vertex n, std::int64_t m, Dist max_w,
                              std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph h(n);
  while (h.num_edges() < m) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    h.add_edge(u, v, rng.between(1, max_w));
  }
  return h;
}

class DialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DialSweep, MatchesDijkstraOnRandomWeighted) {
  const std::uint64_t seed = GetParam();
  const WeightedGraph h = random_weighted(200, 600, 12, seed);
  for (Vertex s = 0; s < 200; s += 41) {
    EXPECT_EQ(dial_sssp(h, s), dijkstra(h, s)) << "seed " << seed << " s " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DialSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Dial, MatchesDijkstraOnEmulator) {
  const Graph g = gen_connected_gnm(300, 900, 3);
  const auto params = CentralizedParams::compute(300, 4, 0.25);
  CentralizedOptions options;
  options.keep_audit_data = false;
  const auto r = build_emulator_centralized(g, params, options);
  for (Vertex s = 0; s < 300; s += 59) {
    EXPECT_EQ(dial_sssp(r.h, s), dijkstra(r.h, s));
  }
}

TEST(Dial, HandlesDisconnected) {
  WeightedGraph h(6);
  h.add_edge(0, 1, 3);
  h.add_edge(4, 5, 2);
  const auto dist = dial_sssp(h, 0);
  EXPECT_EQ(dist[1], 3);
  EXPECT_EQ(dist[4], kInfDist);
  EXPECT_EQ(dist[5], kInfDist);
}

TEST(Dial, SingleVertex) {
  WeightedGraph h(1);
  const auto dist = dial_sssp(h, 0);
  EXPECT_EQ(dist[0], 0);
}

TEST(Dial, LargeWeightsStillCorrect) {
  WeightedGraph h(4);
  h.add_edge(0, 1, 1000);
  h.add_edge(1, 2, 2000);
  h.add_edge(0, 2, 2500);
  const auto dist = dial_sssp(h, 0);
  EXPECT_EQ(dist[2], 2500);
  EXPECT_EQ(dist[1], 1000);
}

}  // namespace
}  // namespace usne
