// Tests for the distributed CONGEST construction (§3.1): all emulator
// guarantees PLUS the distributed-specific obligations — zero cap
// violations (enforced by the simulator), the both-endpoints-know property,
// and round counts within the theoretical schedule.

#include <gtest/gtest.h>

#include <string>

#include "core/audit.hpp"
#include "core/emulator_distributed.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

struct DistCase {
  std::string family;
  Vertex n;
  int kappa;
  double rho;
  double eps;
  std::uint64_t seed;
};

class DistributedSweep : public ::testing::TestWithParam<DistCase> {
 protected:
  void SetUp() override {
    const DistCase& c = GetParam();
    graph_ = gen_family(c.family, c.n, c.seed);
    params_ = DistributedParams::compute(graph_.num_vertices(), c.kappa, c.rho,
                                         c.eps);
    // Building at all proves cap compliance: the Network throws
    // CongestViolation on any breach.
    result_ = build_emulator_distributed(graph_, params_);
  }

  Graph graph_;
  DistributedParams params_;
  DistributedBuildResult result_;
};

TEST_P(DistributedSweep, SizeBound) {
  EXPECT_LE(result_.base.h.num_edges(),
            size_bound_edges(graph_.num_vertices(), GetParam().kappa));
}

TEST_P(DistributedSweep, StretchBound) {
  const auto report = evaluate_stretch_exact(
      graph_, result_.base.h, params_.schedule.alpha_bound(),
      params_.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "alpha=" << params_.schedule.alpha_bound()
      << " beta=" << params_.schedule.beta_bound()
      << " max_add=" << report.max_additive;
  EXPECT_EQ(report.underruns, 0);
}

TEST_P(DistributedSweep, BothEndpointsKnowEveryEdge) {
  // The paper's central distributed obligation (§1.2.1): for every emulator
  // edge, both endpoints are aware of it and its weight.
  EXPECT_TRUE(result_.endpoints_consistent());
}

TEST_P(DistributedSweep, WeightsNeverBelowTrueDistance) {
  const auto report =
      audit_edge_weights(result_.base, graph_, /*exact=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(DistributedSweep, PartitionAndRadiusAudits) {
  const auto partitions =
      audit_partitions(result_.base, graph_.num_vertices());
  EXPECT_TRUE(partitions.ok()) << partitions.to_string();
  const auto laminar = audit_laminarity(result_.base);
  EXPECT_TRUE(laminar.ok()) << laminar.to_string();
  const auto radii = audit_radii(result_.base, params_.schedule);
  EXPECT_TRUE(radii.ok()) << radii.to_string();
}

TEST_P(DistributedSweep, RoundsWithinSchedule) {
  // Per-phase upper bound from the construction:
  //   detect: 2 * delta_i * (deg_i + 1)   (two Algorithm 2 runs)
  //   ruling: base * levels * (2 delta_i + 2)
  //   forest: rul_i + delta_i + 1
  //   backtrack: (rul_i + delta_i) * (2 deg_i + 2) + epoch
  std::int64_t budget = 0;
  for (int i = 0; i <= params_.schedule.ell(); ++i) {
    const double deg = params_.schedule.deg[static_cast<std::size_t>(i)];
    const Dist delta = params_.schedule.delta[static_cast<std::size_t>(i)];
    const Dist rul = params_.rul[static_cast<std::size_t>(i)];
    const std::int64_t cap = static_cast<std::int64_t>(std::ceil(deg)) + 1;
    budget += 2 * delta * cap;                                    // detections
    budget += params_.ruling_base * params_.ruling_levels * (2 * delta + 2);
    budget += rul + delta + 1;                                    // forest
    budget += (rul + delta) * (2 * cap + 2) + (rul + delta) + 8 * cap + 16;
  }
  EXPECT_LE(result_.net.rounds, budget);
  EXPECT_GT(result_.net.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributedSweep,
    ::testing::Values(
        DistCase{"er", 128, 4, 0.49, 0.4, 1},
        DistCase{"er", 192, 8, 0.4, 0.4, 2},
        DistCase{"ba", 128, 4, 0.49, 0.4, 3},
        DistCase{"torus", 144, 4, 0.45, 0.4, 4},
        DistCase{"star", 128, 4, 0.45, 0.4, 5},
        DistCase{"caveman", 128, 4, 0.49, 0.4, 6},
        DistCase{"tree", 127, 4, 0.45, 0.4, 7},
        DistCase{"cycle", 128, 4, 0.45, 0.4, 8}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.kappa) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(EmulatorDistributed, AgreesWithFastOnInvariants) {
  // The distributed and fast-centralized builds need not produce identical
  // emulators (hub splitting differs), but both satisfy identical bounds.
  const Graph g = gen_connected_gnm(160, 480, 9);
  const auto params = DistributedParams::compute(160, 4, 0.49, 0.4);
  const auto dist = build_emulator_distributed(g, params);
  const std::int64_t bound = size_bound_edges(160, 4);
  EXPECT_LE(dist.base.h.num_edges(), bound);
}

TEST(EmulatorDistributed, HubSplittingTriggersAndStaysCorrect) {
  // Paper Figure 7: when more than 2*deg_i + 2 convergecast messages meet
  // at one vertex, it must split from its tree and form superclusters
  // locally. Force this with hub_threshold_factor = 1 (threshold deg+2) on
  // a graph with many popular pockets, verify the hub path actually ran
  // (hub_events > 0) and that every guarantee still holds.
  const Graph g = gen_caveman(24, 8);  // 192 vertices
  const auto params = DistributedParams::compute(192, 4, 0.49, 0.4);
  DistributedOptions options;
  options.hub_threshold_factor = 1;
  const auto r = build_emulator_distributed(g, params, options);
  std::int64_t hubs = 0;
  for (const auto& p : r.base.phases) hubs += p.hub_events;
  EXPECT_GT(hubs, 0) << "workload failed to exercise the hub path";
  EXPECT_TRUE(r.endpoints_consistent());
  EXPECT_LE(r.base.h.num_edges(), size_bound_edges(192, 4));
  const auto report = evaluate_stretch_exact(
      g, r.base.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0);

  // The paper's default factor 2 on the same input: also fully valid.
  const auto r2 = build_emulator_distributed(g, params);
  EXPECT_TRUE(r2.endpoints_consistent());
  EXPECT_LE(r2.base.h.num_edges(), size_bound_edges(192, 4));
}

TEST(EmulatorDistributed, MessageTrafficIsMetered) {
  const Graph g = gen_connected_gnm(96, 288, 14);
  const auto params = DistributedParams::compute(96, 4, 0.49, 0.4);
  const auto r = build_emulator_distributed(g, params);
  EXPECT_GT(r.net.messages, 0);
  EXPECT_GE(r.net.words, r.net.messages);  // every message >= 1 word
  // Words per message within the O(1) cap.
  EXPECT_LE(r.net.words, r.net.messages * congest::kMaxWords);
}

TEST(EmulatorDistributed, DeterministicIncludingRounds) {
  const Graph g = gen_connected_gnm(96, 288, 15);
  const auto params = DistributedParams::compute(96, 4, 0.49, 0.4);
  const auto a = build_emulator_distributed(g, params);
  const auto b = build_emulator_distributed(g, params);
  EXPECT_EQ(a.base.h.edges(), b.base.h.edges());
  EXPECT_EQ(a.net.rounds, b.net.rounds);
  EXPECT_EQ(a.net.messages, b.net.messages);
}

}  // namespace
}  // namespace usne
