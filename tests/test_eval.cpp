// Self-tests for the evaluation library: the stretch checker against
// hand-computable cases, and the size metrics.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

TEST(StretchEval, IdentityEmulatorHasZeroSurplus) {
  const Graph g = gen_connected_gnm(100, 300, 1);
  WeightedGraph h(100);
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, 1);
  const auto report = evaluate_stretch_exact(g, h, 1.0, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.max_additive, 0);
  EXPECT_DOUBLE_EQ(report.max_mult, 1.0);
  EXPECT_EQ(report.pairs, 100 * 99);
}

TEST(StretchEval, DetectsAdditiveSurplus) {
  // Path 0-1-2; emulator: (0,1,1), (1,2,1), but (0,2) via weight-3 edge
  // only... build H missing nothing but with a detour: H = {(0,1,1),(1,2,2)}.
  const Graph g = gen_path(3);
  WeightedGraph h(3);
  h.add_edge(0, 1, 1);
  h.add_edge(1, 2, 2);  // surplus 1 on pair (1,2) and (0,2)
  const auto report = evaluate_stretch_exact(g, h, 1.0, 0);
  EXPECT_EQ(report.violations, 4);  // (1,2),(2,1),(0,2),(2,0)
  EXPECT_EQ(report.max_additive, 1);
  const auto lenient = evaluate_stretch_exact(g, h, 1.0, 1);
  EXPECT_EQ(lenient.violations, 0);
}

TEST(StretchEval, DetectsUnderruns) {
  // An emulator that cheats (shorter than G) must be flagged.
  const Graph g = gen_path(4);
  WeightedGraph h(4);
  h.add_edge(0, 3, 1);  // true distance is 3
  const auto report = evaluate_stretch_exact(g, h, 1e18, kInfDist / 2);
  EXPECT_GT(report.underruns, 0);
  EXPECT_FALSE(report.ok());
}

TEST(StretchEval, SkipsDisconnectedPairs) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  WeightedGraph h(4);
  h.add_edge(0, 1, 1);
  h.add_edge(2, 3, 1);
  const auto report = evaluate_stretch_exact(g, h, 1.0, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs, 4);  // only within-component ordered pairs
}

TEST(StretchEval, SampledSubsetOfExact) {
  const Graph g = gen_connected_gnm(200, 600, 2);
  WeightedGraph h(200);
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, 1);
  const auto sampled = evaluate_stretch_sampled(g, h, 1.0, 0, 10, 7);
  EXPECT_TRUE(sampled.ok());
  EXPECT_EQ(sampled.pairs, 10 * 199);
}

TEST(StretchEval, SampledDeterministic) {
  const Graph g = gen_connected_gnm(150, 450, 3);
  WeightedGraph h(150);
  for (const Edge& e : g.edges()) h.add_edge(e.u, e.v, 1);
  const auto a = evaluate_stretch_sampled(g, h, 1.0, 0, 8, 11);
  const auto b = evaluate_stretch_sampled(g, h, 1.0, 0, 8, 11);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.max_additive, b.max_additive);
}

TEST(Metrics, SizeBoundRatio) {
  WeightedGraph h(100);
  for (Vertex v = 0; v + 1 < 100; ++v) h.add_edge(v, v + 1, 1);
  // 99 edges vs 100^1.5 = 1000: ratio ~ 0.099.
  EXPECT_NEAR(size_bound_ratio(h, 100, 2), 0.099, 1e-3);
}

TEST(Metrics, UltraSparseExcess) {
  WeightedGraph h(100);
  for (Vertex v = 0; v + 1 < 100; ++v) h.add_edge(v, v + 1, 1);
  h.add_edge(0, 99, 5);
  // 100 edges on 100 vertices: excess 0.
  EXPECT_DOUBLE_EQ(ultra_sparse_excess(h, 100), 0.0);
}

TEST(Metrics, UltraSparseKappa) {
  EXPECT_EQ(ultra_sparse_kappa(1024, 1.0), 10);
  EXPECT_EQ(ultra_sparse_kappa(1024, 2.0), 20);
  EXPECT_GE(ultra_sparse_kappa(2, 1.0), 2);
}

}  // namespace
}  // namespace usne
