// Tests for the parameter engine: recurrence values, monotonicity, the
// paper's closed-form bounds, degree-sequence telescoping, input
// validation.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/params.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

TEST(CentralizedParams, EllMatchesPaperFormula) {
  // ell = ceil(log2((kappa+1)/2)).
  EXPECT_EQ(CentralizedParams::compute(100, 1, 0.25).schedule.ell(), 0);
  EXPECT_EQ(CentralizedParams::compute(100, 2, 0.25).schedule.ell(), 1);
  EXPECT_EQ(CentralizedParams::compute(100, 3, 0.25).schedule.ell(), 1);
  EXPECT_EQ(CentralizedParams::compute(100, 4, 0.25).schedule.ell(), 2);
  EXPECT_EQ(CentralizedParams::compute(100, 7, 0.25).schedule.ell(), 2);
  EXPECT_EQ(CentralizedParams::compute(100, 8, 0.25).schedule.ell(), 3);
  EXPECT_EQ(CentralizedParams::compute(100, 15, 0.25).schedule.ell(), 3);
  EXPECT_EQ(CentralizedParams::compute(100, 16, 0.25).schedule.ell(), 4);
}

TEST(CentralizedParams, DegreeTelescoping) {
  // deg_i = deg_{i-1}^2 in the Ep01 sequence: the telescoping identity that
  // drives Lemma 2.4.
  const auto p = CentralizedParams::compute(10000, 16, 0.25);
  for (int i = 1; i <= p.schedule.ell(); ++i) {
    const double prev = p.schedule.deg[static_cast<std::size_t>(i) - 1];
    EXPECT_NEAR(p.schedule.deg[static_cast<std::size_t>(i)], prev * prev,
                prev * prev * 1e-9);
  }
  EXPECT_NEAR(p.schedule.deg[0], std::pow(10000.0, 1.0 / 16), 1e-9);
}

TEST(CentralizedParams, LastPhaseHasNoPopularClusters) {
  // |P_ell| <= n^(1 - (2^ell - 1)/kappa) <= deg_ell (paper eq. 1), i.e.
  // kappa <= 2^(ell+1) - 1.
  for (int kappa = 1; kappa <= 40; ++kappa) {
    const auto p = CentralizedParams::compute(1000, kappa, 0.25);
    EXPECT_LE(kappa, ipow_sat(2, p.schedule.ell() + 1) - 1) << kappa;
  }
}

TEST(CentralizedParams, RadiusRecurrence) {
  const auto p = CentralizedParams::compute(100, 8, 0.5);
  const auto& s = p.schedule;
  EXPECT_EQ(s.radius[0], 0);
  for (int i = 0; i <= s.ell(); ++i) {
    // delta_i = L_i + 2 R_i ; R_{i+1} = 2 delta_i + R_i.
    EXPECT_EQ(s.delta[static_cast<std::size_t>(i)],
              s.seg[static_cast<std::size_t>(i)] +
                  2 * s.radius[static_cast<std::size_t>(i)]);
    EXPECT_EQ(s.radius[static_cast<std::size_t>(i) + 1],
              2 * s.delta[static_cast<std::size_t>(i)] +
                  s.radius[static_cast<std::size_t>(i)]);
  }
}

TEST(CentralizedParams, SegmentLengths) {
  const auto p = CentralizedParams::compute(100, 8, 0.25);
  EXPECT_EQ(p.schedule.seg[0], 1);   // (1/eps)^0
  EXPECT_EQ(p.schedule.seg[1], 4);   // 1/0.25
  EXPECT_EQ(p.schedule.seg[2], 16);
}

TEST(CentralizedParams, BetaRecurrence) {
  const auto p = CentralizedParams::compute(100, 8, 0.25);
  const auto& s = p.schedule;
  EXPECT_EQ(s.beta[0], 0);
  for (int i = 1; i <= s.ell(); ++i) {
    EXPECT_EQ(s.beta[static_cast<std::size_t>(i)],
              2 * s.beta[static_cast<std::size_t>(i) - 1] +
                  6 * s.radius[static_cast<std::size_t>(i)]);
  }
  // Alpha grows from 1.
  EXPECT_DOUBLE_EQ(s.alpha[0], 1.0);
  for (int i = 1; i <= s.ell(); ++i) {
    EXPECT_GT(s.alpha[static_cast<std::size_t>(i)],
              s.alpha[static_cast<std::size_t>(i) - 1]);
  }
}

TEST(CentralizedParams, ClosedFormRadiusBoundForSmallEps) {
  // Paper eq. (5): for eps <= 1/10, R_i <= 4 (1/eps)^(i-1).
  const auto p = CentralizedParams::compute(1000, 16, 0.1);
  for (int i = 1; i <= p.schedule.ell(); ++i) {
    const double bound = 4.0 * std::pow(10.0, i - 1);
    // Our integer-rounded recurrence tracks the paper's within rounding.
    EXPECT_LE(static_cast<double>(p.schedule.radius[static_cast<std::size_t>(i)]),
              bound * 1.5)
        << i;
  }
}

TEST(CentralizedParams, InputValidation) {
  EXPECT_THROW(CentralizedParams::compute(-1, 2, 0.25), std::invalid_argument);
  EXPECT_THROW(CentralizedParams::compute(10, 0, 0.25), std::invalid_argument);
  EXPECT_THROW(CentralizedParams::compute(10, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(CentralizedParams::compute(10, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(CentralizedParams::compute(10, 2, -0.5), std::invalid_argument);
  EXPECT_NO_THROW(CentralizedParams::compute(0, 2, 0.5));
}

TEST(CentralizedParams, DescribeMentionsKeyValues) {
  const auto p = CentralizedParams::compute(100, 4, 0.25);
  const std::string d = p.describe();
  EXPECT_NE(d.find("kappa=4"), std::string::npos);
  EXPECT_NE(d.find("ell=2"), std::string::npos);
}

TEST(DistributedParams, StageStructure) {
  const auto p = DistributedParams::compute(1024, 8, 0.4, 0.25);
  // i0 = floor(log2(8*0.4)) = floor(log2 3.2) = 1.
  EXPECT_EQ(p.i0, 1);
  // ell = i0 + ceil(9/3.2) - 1 = 1 + 3 - 1 = 3.
  EXPECT_EQ(p.schedule.ell(), 3);
  // Exponential stage: deg_0 = n^(1/8), deg_1 = n^(2/8).
  EXPECT_NEAR(p.schedule.deg[0], std::pow(1024.0, 0.125), 1e-9);
  EXPECT_NEAR(p.schedule.deg[1], std::pow(1024.0, 0.25), 1e-9);
  // Fixed stage: n^rho.
  EXPECT_NEAR(p.schedule.deg[2], std::pow(1024.0, 0.4), 1e-9);
  EXPECT_NEAR(p.schedule.deg[3], std::pow(1024.0, 0.4), 1e-9);
}

TEST(DistributedParams, DegSquaredDominates) {
  // deg_{i+1} <= deg_i^2 for all i — the telescoping inequality of eq. 18.
  for (const auto& [kappa, rho] : std::vector<std::pair<int, double>>{
           {4, 0.3}, {8, 0.4}, {16, 0.3}, {32, 0.2}, {64, 0.45}}) {
    const auto p = DistributedParams::compute(4096, kappa, rho, 0.25);
    for (int i = 0; i + 1 <= p.schedule.ell(); ++i) {
      const double d = p.schedule.deg[static_cast<std::size_t>(i)];
      EXPECT_LE(p.schedule.deg[static_cast<std::size_t>(i) + 1], d * d * (1 + 1e-9))
          << "kappa=" << kappa << " rho=" << rho << " i=" << i;
    }
  }
}

TEST(DistributedParams, RulingGeometry) {
  const auto p = DistributedParams::compute(1024, 8, 0.4, 0.25);
  // b = ceil(1024^0.4) = ceil(16.0) = 16; c = ceil(log_16 1024) = 3.
  EXPECT_EQ(p.ruling_base, 16);
  EXPECT_EQ(p.ruling_levels, 3);
  for (int i = 0; i <= p.schedule.ell(); ++i) {
    EXPECT_EQ(p.rul[static_cast<std::size_t>(i)],
              static_cast<Dist>(p.ruling_levels) *
                  (2 * p.schedule.delta[static_cast<std::size_t>(i)] + 1));
    // R_{i+1} = 2 (rul_i + delta_i) + R_i.
    EXPECT_EQ(p.schedule.radius[static_cast<std::size_t>(i) + 1],
              2 * (p.rul[static_cast<std::size_t>(i)] +
                   p.schedule.delta[static_cast<std::size_t>(i)]) +
                  p.schedule.radius[static_cast<std::size_t>(i)]);
  }
}

TEST(DistributedParams, InputValidation) {
  EXPECT_THROW(DistributedParams::compute(100, 1, 0.4, 0.25), std::invalid_argument);
  EXPECT_THROW(DistributedParams::compute(100, 8, 0.5, 0.25), std::invalid_argument);
  EXPECT_THROW(DistributedParams::compute(100, 8, 0.125, 0.25),
               std::invalid_argument);  // rho == 1/kappa not allowed
  EXPECT_THROW(DistributedParams::compute(100, 8, 0.4, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(DistributedParams::compute(100, 8, 0.4, 0.25));
}

TEST(SpannerParams, GammaAndStages) {
  const auto p = SpannerParams::compute(4096, 16, 0.4, 0.25);
  // gamma = max{2, ceil(log2 log2 16)} = max{2, 2} = 2.
  EXPECT_EQ(p.gamma, 2);
  // i0 = min{floor(log_2(6.4)), floor(6.4)} = min{2, 6} = 2.
  EXPECT_EQ(p.i0, 2);
  // ell' = i0 + ceil(1/rho - 0.5) = 2 + 2 = 4.
  EXPECT_EQ(p.schedule.ell(), 4);
  // Transition phase: deg_{i0+1} = n^(rho/2).
  EXPECT_NEAR(p.schedule.deg[3], std::pow(4096.0, 0.2), 1e-9);
  // Fixed: n^rho.
  EXPECT_NEAR(p.schedule.deg[4], std::pow(4096.0, 0.4), 1e-9);
}

TEST(SpannerParams, En17DegreeFormula) {
  const auto p = SpannerParams::compute(4096, 16, 0.4, 0.25);
  // deg_i = n^((2^i-1)/(gamma*kappa) + 1/kappa) for i <= i0.
  for (int i = 0; i <= p.i0; ++i) {
    const double exponent =
        (std::pow(2.0, i) - 1.0) / (static_cast<double>(p.gamma) * 16) + 1.0 / 16;
    EXPECT_NEAR(p.schedule.deg[static_cast<std::size_t>(i)],
                std::pow(4096.0, exponent), 1e-6)
        << i;
  }
}

TEST(ParamsHelpers, SizeBoundAndDegree) {
  EXPECT_EQ(emulator_size_bound(1024, 2), 32768);
  EXPECT_NEAR(ep01_degree(256, 8, 0), std::pow(256.0, 0.125), 1e-12);
  EXPECT_NEAR(ep01_degree(256, 8, 3), 256.0, 1e-9);
}

TEST(ParamsMonotonicity, DeltasAndRadiiGrow) {
  for (double eps : {0.1, 0.25, 0.5}) {
    const auto p = CentralizedParams::compute(10000, 32, eps);
    for (int i = 1; i <= p.schedule.ell(); ++i) {
      EXPECT_GT(p.schedule.delta[static_cast<std::size_t>(i)],
                p.schedule.delta[static_cast<std::size_t>(i) - 1]);
      EXPECT_GT(p.schedule.radius[static_cast<std::size_t>(i)],
                p.schedule.radius[static_cast<std::size_t>(i) - 1]);
      EXPECT_GT(p.schedule.beta[static_cast<std::size_t>(i)],
                p.schedule.beta[static_cast<std::size_t>(i) - 1]);
    }
  }
}

}  // namespace
}  // namespace usne
