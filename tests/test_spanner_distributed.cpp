// Tests for the distributed CONGEST spanner (§4 on the simulator):
// subgraph property, stretch, agreement in spirit with the centralized
// simulation, round metering, determinism. Cap compliance is implicit:
// any violation throws and fails the test.

#include <gtest/gtest.h>

#include <string>

#include "core/params.hpp"
#include "core/spanner.hpp"
#include "core/spanner_distributed.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

struct CongestSpannerCase {
  std::string family;
  Vertex n;
  int kappa;
  double rho;
  std::uint64_t seed;
};

class CongestSpannerSweep
    : public ::testing::TestWithParam<CongestSpannerCase> {
 protected:
  void SetUp() override {
    const CongestSpannerCase& c = GetParam();
    graph_ = gen_family(c.family, c.n, c.seed);
    params_ = SpannerParams::compute(graph_.num_vertices(), c.kappa, c.rho, 0.4);
    result_ = build_spanner_congest(graph_, params_);
  }

  Graph graph_;
  SpannerParams params_;
  DistributedSpannerResult result_;
};

TEST_P(CongestSpannerSweep, IsSubgraph) {
  EXPECT_TRUE(is_subgraph(result_.base.h, graph_));
}

TEST_P(CongestSpannerSweep, StretchBound) {
  const auto report = evaluate_stretch_exact(
      graph_, result_.base.h, params_.schedule.alpha_bound(),
      params_.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "beta=" << params_.schedule.beta_bound()
      << " max_add=" << report.max_additive;
  EXPECT_EQ(report.underruns, 0);
}

TEST_P(CongestSpannerSweep, SizeReasonable) {
  // O(n^(1+1/kappa)); assert a modest constant, and never more than G.
  EXPECT_LE(result_.base.h.num_edges(),
            4 * size_bound_edges(graph_.num_vertices(), GetParam().kappa));
  EXPECT_LE(result_.base.h.num_edges(), graph_.num_edges());
}

TEST_P(CongestSpannerSweep, RoundsMeteredAndDeterministic) {
  EXPECT_GT(result_.net.rounds, 0);
  const auto again = build_spanner_congest(graph_, params_);
  EXPECT_EQ(result_.base.h.edges(), again.base.h.edges());
  EXPECT_EQ(result_.net.rounds, again.net.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Families, CongestSpannerSweep,
    ::testing::Values(
        CongestSpannerCase{"er", 128, 4, 0.45, 1},
        CongestSpannerCase{"er", 192, 8, 0.4, 2},
        CongestSpannerCase{"ba", 128, 4, 0.45, 3},
        CongestSpannerCase{"torus", 144, 4, 0.45, 4},
        CongestSpannerCase{"caveman", 128, 4, 0.45, 5},
        CongestSpannerCase{"tree", 127, 4, 0.45, 6}),
    [](const ::testing::TestParamInfo<CongestSpannerCase>& info) {
      return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.kappa) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(CongestSpanner, MatchesCentralizedSimulationSize) {
  // The CONGEST run and the §3.3-style centralized simulation follow the
  // same phase logic; sizes agree up to the different notification
  // mechanics (dedup makes both subgraphs of the same path union).
  const Graph g = gen_connected_gnm(160, 480, 9);
  const auto params = SpannerParams::compute(160, 4, 0.45, 0.4);
  const auto congest = build_spanner_congest(g, params);
  SpannerOptions options;
  const auto central = build_spanner(g, params, options);
  // Same invariants; sizes within a small factor of each other.
  EXPECT_LE(congest.base.h.num_edges(), 2 * central.h.num_edges() + 16);
  EXPECT_LE(central.h.num_edges(), 2 * congest.base.h.num_edges() + 16);
}

TEST(CongestSpanner, Em19VariantRuns) {
  const Graph g = gen_connected_gnm(128, 384, 11);
  const auto params = DistributedParams::compute(128, 4, 0.45, 0.4);
  const auto r = build_spanner_congest_em19(g, params);
  EXPECT_TRUE(is_subgraph(r.base.h, g));
  const auto report = evaluate_stretch_exact(
      g, r.base.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0);
}

TEST(CongestSpanner, UPartitionComplete) {
  const Graph g = gen_family("ws", 128, 13);
  const auto params = SpannerParams::compute(g.num_vertices(), 4, 0.45, 0.4);
  const auto r = build_spanner_congest(g, params);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(r.base.u_level[static_cast<std::size_t>(v)], 0) << v;
  }
}

}  // namespace
}  // namespace usne
