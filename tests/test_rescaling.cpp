// Tests for the §2.2.4 / §3.2.4 rescaling API: compute_rescaled must
// deliver a true (1 + eps_target, beta)-emulator.

#include <gtest/gtest.h>

#include "core/emulator_centralized.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

TEST(Rescaling, CentralizedAlphaMeetsTarget) {
  for (const double target : {0.1, 0.25, 0.5, 0.9}) {
    for (const int kappa : {2, 4, 8, 16}) {
      const auto p = CentralizedParams::compute_rescaled(10000, kappa, target);
      EXPECT_LE(p.schedule.alpha_bound(), 1.0 + target + 1e-9)
          << "target=" << target << " kappa=" << kappa;
      EXPECT_GT(p.eps, 0.0);
      EXPECT_LE(p.eps, target);
    }
  }
}

TEST(Rescaling, DistributedAlphaMeetsTarget) {
  for (const double target : {0.25, 0.5}) {
    const auto p = DistributedParams::compute_rescaled(4096, 8, 0.4, target);
    EXPECT_LE(p.schedule.alpha_bound(), 1.0 + target + 1e-9);
  }
}

TEST(Rescaling, UsesFullEpsWhenBudgetAllows) {
  // kappa = 1 => ell = 0 => alpha = 1 always: the search must keep the full
  // eps_target rather than shrinking it pointlessly.
  const auto p = CentralizedParams::compute_rescaled(1000, 1, 0.5);
  EXPECT_DOUBLE_EQ(p.eps, 0.5);
}

TEST(Rescaling, SmallerTargetGivesLargerBeta) {
  // Tightening the multiplicative budget costs additive error: beta grows
  // as eps_target shrinks (the paper's trade-off).
  const auto tight = CentralizedParams::compute_rescaled(10000, 8, 0.1);
  const auto loose = CentralizedParams::compute_rescaled(10000, 8, 0.9);
  EXPECT_GE(tight.schedule.beta_bound(), loose.schedule.beta_bound());
}

TEST(Rescaling, RejectsBadTargets) {
  EXPECT_THROW(CentralizedParams::compute_rescaled(100, 4, 0.0),
               std::invalid_argument);
  EXPECT_THROW(CentralizedParams::compute_rescaled(100, 4, 1.0),
               std::invalid_argument);
  EXPECT_THROW(DistributedParams::compute_rescaled(100, 4, 0.4, -0.1),
               std::invalid_argument);
}

TEST(Rescaling, EndToEndStretchWithinTarget) {
  // The real contract: build with rescaled params, verify the emulator is a
  // true (1 + eps_target, beta)-emulator via exact APSP.
  const double target = 0.5;
  const Graph g = gen_connected_gnm(250, 750, 3);
  const auto params = CentralizedParams::compute_rescaled(250, 4, target);
  const auto r = build_emulator_centralized(g, params);
  const auto report = evaluate_stretch_exact(
      g, r.h, 1.0 + target, params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0)
      << "alpha=" << params.schedule.alpha_bound()
      << " beta=" << params.schedule.beta_bound();
}

TEST(Rescaling, EndToEndFastBuilder) {
  const double target = 0.5;
  const Graph g = gen_family("torus", 256, 9);
  const auto params =
      DistributedParams::compute_rescaled(g.num_vertices(), 8, 0.4, target);
  const auto r = build_emulator_fast(g, params);
  const auto report = evaluate_stretch_exact(
      g, r.h, 1.0 + target, params.schedule.beta_bound());
  EXPECT_EQ(report.violations, 0);
}

}  // namespace
}  // namespace usne
