// Property tests for the deterministic digit-sweep ruling sets: separation
// and covering guarantees on varied graphs (both the CONGEST and the
// centralized implementations), plus exact agreement between the two.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "congest/network.hpp"
#include "congest/ruling_set.hpp"
#include "core/ruling_central.hpp"
#include "graph/generators.hpp"
#include "path/bfs.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

struct RulingCase {
  std::string family;
  Vertex n;
  Dist q;
  std::int64_t base;
  std::uint64_t seed;
};

class RulingSetProperty : public ::testing::TestWithParam<RulingCase> {};

/// Checks separation > q+1 and covering <= levels*(q+1) against BFS truth.
void check_properties(const Graph& g, const std::vector<Vertex>& w,
                      const std::vector<Vertex>& members, Dist q,
                      Dist covering) {
  // Every member is in W.
  for (const Vertex m : members) {
    EXPECT_TRUE(std::binary_search(w.begin(), w.end(), m));
  }
  // Separation: pairwise distance > q + 1.
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto dist = bfs_distances(g, members[i]);
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_GT(dist[static_cast<std::size_t>(members[j])], q + 1)
          << members[i] << " vs " << members[j];
    }
  }
  // Covering: every W vertex within `covering` of some member.
  if (!members.empty()) {
    const auto r = multi_source_bfs(g, members, covering);
    for (const Vertex v : w) {
      EXPECT_LE(r.dist[static_cast<std::size_t>(v)], covering) << "vertex " << v;
    }
  } else {
    EXPECT_TRUE(w.empty());
  }
}

TEST_P(RulingSetProperty, CentralizedSatisfiesGuarantees) {
  const RulingCase& c = GetParam();
  const Graph g = gen_family(c.family, c.n, c.seed);
  Rng rng(c.seed ^ 0x1234);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (rng.chance(0.3)) w.push_back(v);
  }
  const CentralRulingSet rs = ruling_set_central(g, w, c.q, c.base);
  check_properties(g, w, rs.members, c.q, rs.covering);
}

TEST_P(RulingSetProperty, CongestMatchesCentralized) {
  const RulingCase& c = GetParam();
  const Graph g = gen_family(c.family, c.n, c.seed);
  Rng rng(c.seed ^ 0x1234);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (rng.chance(0.3)) w.push_back(v);
  }
  const CentralRulingSet central = ruling_set_central(g, w, c.q, c.base);
  congest::Network net(g);
  const congest::RulingSet distributed =
      congest::compute_ruling_set(net, w, c.q, c.base);
  EXPECT_EQ(distributed.members, central.members);
  EXPECT_EQ(distributed.covering, central.covering);
  EXPECT_GT(distributed.rounds_used, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RulingSetProperty,
    ::testing::Values(
        RulingCase{"er", 100, 2, 4, 1}, RulingCase{"er", 150, 4, 8, 2},
        RulingCase{"torus", 100, 3, 4, 3}, RulingCase{"torus", 144, 6, 16, 4},
        RulingCase{"ba", 120, 2, 8, 5}, RulingCase{"star", 60, 2, 4, 6},
        RulingCase{"tree", 127, 5, 4, 7}, RulingCase{"caveman", 96, 3, 8, 8},
        RulingCase{"path", 80, 4, 4, 9}, RulingCase{"ws", 128, 3, 16, 10}),
    [](const ::testing::TestParamInfo<RulingCase>& info) {
      return info.param.family + "_n" + std::to_string(info.param.n) + "_q" +
             std::to_string(info.param.q) + "_b" +
             std::to_string(info.param.base);
    });

TEST(RulingSet, EmptyAndSingleton) {
  const Graph g = gen_cycle(10);
  EXPECT_TRUE(ruling_set_central(g, {}, 3, 4).members.empty());
  const auto single = ruling_set_central(g, {7}, 3, 4);
  ASSERT_EQ(single.members.size(), 1u);
  EXPECT_EQ(single.members[0], 7);
}

TEST(RulingSet, AllVerticesOfClique) {
  // In a clique everything is within distance 1; exactly one survivor.
  const Graph g = gen_complete(16);
  std::vector<Vertex> w;
  for (Vertex v = 0; v < 16; ++v) w.push_back(v);
  const auto rs = ruling_set_central(g, w, 1, 4);
  EXPECT_EQ(rs.members.size(), 1u);
}

TEST(RulingSet, WellSeparatedSetSurvivesEntirely) {
  // On a long path, picking every (q+2)-th vertex leaves all candidates
  // mutually further than q+1 apart; nobody should be eliminated.
  const Graph g = gen_path(100);
  const Dist q = 3;
  std::vector<Vertex> w;
  for (Vertex v = 0; v < 100; v += static_cast<Vertex>(q + 2)) w.push_back(v);
  const auto rs = ruling_set_central(g, w, q, 4);
  EXPECT_EQ(rs.members, w);
}

TEST(RulingSet, DuplicatesIgnored) {
  const Graph g = gen_cycle(20);
  const auto a = ruling_set_central(g, {3, 3, 9, 9, 9}, 2, 4);
  const auto b = ruling_set_central(g, {3, 9}, 2, 4);
  EXPECT_EQ(a.members, b.members);
}

}  // namespace
}  // namespace usne
