// Tests for Algorithm 1 (centralized ultra-sparse emulator): behavioural
// tests matching the paper's worked examples, plus size/stretch/audit
// verification on fixed graphs. The broad property sweeps live in
// test_emulator_property.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/audit.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "path/apsp.hpp"
#include "path/dijkstra.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

BuildResult build(const Graph& g, int kappa, double eps,
                  CentralizedOptions options = {}) {
  const auto params = CentralizedParams::compute(g.num_vertices(), kappa, eps);
  return build_emulator_centralized(g, params, options);
}

TEST(EmulatorCentralized, TinyGraphs) {
  // n = 0, 1, 2: trivial but must not crash and must satisfy the size
  // bound.
  EXPECT_EQ(build(GraphBuilder(0).build(), 4, 0.25).h.num_edges(), 0);
  EXPECT_EQ(build(GraphBuilder(1).build(), 4, 0.25).h.num_edges(), 0);
  GraphBuilder b2(2);
  b2.add_edge(0, 1);
  const auto r2 = build(b2.build(), 4, 0.25);
  EXPECT_EQ(r2.h.num_edges(), 1);
  EXPECT_EQ(r2.h.edge_weight(0, 1), 1);
}

TEST(EmulatorCentralized, KappaOneIsGraphItself) {
  // kappa = 1: ell = 0, deg_0 = n, nothing is ever popular, delta_0 = 1:
  // the emulator is exactly G.
  const Graph g = gen_connected_gnm(60, 150, 3);
  const auto r = build(g, 1, 0.25);
  EXPECT_EQ(r.h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_EQ(r.h.edge_weight(e.u, e.v), 1);
}

TEST(EmulatorCentralized, StarOrderDependence) {
  // The paper's §2.1.1 example: on a star, if the center u0 is considered
  // first it is popular (n-1 >= deg_0 neighbours); if considered last, the
  // sets S_0, N_0 have been emptied by then and it is unpopular.
  const Vertex n = 64;
  const Graph star = gen_star(n);
  const auto params = CentralizedParams::compute(n, 4, 0.25);

  CentralizedOptions first;
  first.processing_order = {0};
  const auto r_first = build_emulator_centralized(star, params, first);
  // Center considered first: phase 0 forms one supercluster holding all.
  EXPECT_EQ(r_first.phases[0].popular, 1);
  EXPECT_EQ(r_first.phases[0].clusters_out, 1);

  CentralizedOptions last;
  last.processing_order.resize(static_cast<std::size_t>(n));
  std::iota(last.processing_order.begin(), last.processing_order.end(), 0);
  std::rotate(last.processing_order.begin(), last.processing_order.begin() + 1,
              last.processing_order.end());  // 1, 2, ..., n-1, 0
  const auto r_last = build_emulator_centralized(star, params, last);
  // All leaves are unpopular (their only neighbour is the center, 1 <
  // deg_0); by the time 0 is considered, every leaf is in U_0 — but the
  // leaves remain in S_0 u N_0 only until popped, so 0 sees none left...
  // Actually leaves pop first and each connects to {0} (still in S_0).
  // When 0 finally pops, S_0 and N_0 are empty, so Gamma(0) is empty and 0
  // is unpopular: no superclusters at all.
  EXPECT_EQ(r_last.phases[0].popular, 0);
  EXPECT_EQ(r_last.phases[0].clusters_out, 0);

  // Both orders still produce valid emulators within the size bound.
  for (const auto* r : {&r_first, &r_last}) {
    EXPECT_LE(r->h.num_edges(), size_bound_edges(n, 4));
    const auto report = audit_all(*r, star, params.schedule, 4, true);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(EmulatorCentralized, SizeBoundLeadingConstantOne) {
  // The headline: |H| <= n^(1+1/kappa), not c * n^(1+1/kappa).
  for (const int kappa : {2, 3, 4, 8}) {
    const Graph g = gen_connected_gnm(400, 1600, 7);
    const auto r = build(g, kappa, 0.25);
    EXPECT_LE(r.h.num_edges(), size_bound_edges(400, kappa)) << "kappa " << kappa;
  }
}

TEST(EmulatorCentralized, WeightsAreExactDistances) {
  const Graph g = gen_connected_gnm(200, 500, 11);
  const auto r = build(g, 4, 0.25);
  const auto report = audit_edge_weights(r, g, /*exact=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(EmulatorCentralized, StretchWithinComputedBudget) {
  const Graph g = gen_connected_gnm(250, 600, 5);
  const auto params = CentralizedParams::compute(250, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);
  const auto report = evaluate_stretch_exact(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_TRUE(report.ok()) << "violations=" << report.violations
                           << " underruns=" << report.underruns;
  EXPECT_GT(report.pairs, 0);
}

TEST(EmulatorCentralized, NeverShortensDistances) {
  const Graph g = gen_torus(14, 14);
  const auto r = build(g, 3, 0.3);
  // d_H >= d_G for all pairs (alpha = inf budget: only check underruns).
  const auto report = evaluate_stretch_exact(g, r.h, 1e18, kInfDist / 2);
  EXPECT_EQ(report.underruns, 0);
}

TEST(EmulatorCentralized, AuditsPassOnFixedGraphs) {
  for (const char* family : {"er", "torus", "caveman", "ba", "tree"}) {
    const Graph g = gen_family(family, 220, 13);
    const auto params = CentralizedParams::compute(g.num_vertices(), 4, 0.25);
    const auto r = build_emulator_centralized(g, params);
    const auto report =
        audit_all(r, g, params.schedule, 4, /*exact_weights=*/true);
    EXPECT_TRUE(report.ok()) << family << ": " << report.to_string();
  }
}

TEST(EmulatorCentralized, Deterministic) {
  const Graph g = gen_connected_gnm(300, 900, 17);
  const auto a = build(g, 4, 0.25);
  const auto b = build(g, 4, 0.25);
  ASSERT_EQ(a.h.num_edges(), b.h.num_edges());
  EXPECT_EQ(a.h.edges(), b.h.edges());
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].clusters_out, b.phases[i].clusters_out);
    EXPECT_EQ(a.phases[i].interconnect_edges, b.phases[i].interconnect_edges);
  }
}

TEST(EmulatorCentralized, DisconnectedGraph) {
  // Two components; all invariants hold per component, and no emulator edge
  // crosses components.
  GraphBuilder b(40);
  for (Vertex v = 0; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 20; v + 1 < 40; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  const auto r = build(g, 3, 0.25);
  for (const WeightedEdge& e : r.h.edges()) {
    EXPECT_EQ(e.u < 20, e.v < 20) << "edge crosses components";
  }
  const auto report = audit_edge_weights(r, g, true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(EmulatorCentralized, BufferJoinHappens) {
  // Paper Figure 4: clusters parked in N_i that no later supercluster
  // absorbs join their fallback supercluster at end of phase. A dumbbell
  // forces this: the clique is popular and buffers the first bridge vertex
  // (distance 2 = 2*delta_0), and nothing else ever absorbs it.
  const Graph g = gen_dumbbell(16, 6);
  const auto params = CentralizedParams::compute(g.num_vertices(), 2, 0.4);
  const auto r = build_emulator_centralized(g, params);
  std::int64_t buffer_joins = 0;
  for (const auto& p : r.phases) buffer_joins += p.buffer_join_edges;
  EXPECT_GE(buffer_joins, 1);
  // Buffer-join weights are in (delta_i, 2*delta_i] by construction.
  for (const ChargedEdge& e : r.edge_log) {
    if (e.kind == EdgeKind::kBufferJoin) {
      const Dist delta = params.schedule.delta[static_cast<std::size_t>(e.phase)];
      EXPECT_GT(e.w, delta);
      EXPECT_LE(e.w, 2 * delta);
    }
  }
  // And the emulator is still exactly within the bound.
  EXPECT_LE(r.h.num_edges(), size_bound_edges(g.num_vertices(), 2));
  const auto report = audit_all(r, g, params.schedule, 2, true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(EmulatorCentralized, ChargingPerVertexBudget) {
  // No unpopular center is charged deg_i or more interconnection edges; no
  // center is charged more than one superclustering/buffer-join edge per
  // phase.
  const Graph g = gen_connected_gnm(300, 1200, 23);
  const auto params = CentralizedParams::compute(300, 4, 0.25);
  const auto r = build_emulator_centralized(g, params);
  for (int phase = 0; phase <= params.schedule.ell(); ++phase) {
    std::vector<std::int64_t> ic_charge(300, 0);
    std::vector<std::int64_t> sc_charge(300, 0);
    for (const ChargedEdge& e : r.edge_log) {
      if (e.phase != phase) continue;
      if (e.kind == EdgeKind::kInterconnect) {
        ++ic_charge[static_cast<std::size_t>(e.charged_to)];
      } else {
        ++sc_charge[static_cast<std::size_t>(e.charged_to)];
      }
    }
    const double deg = params.schedule.deg[static_cast<std::size_t>(phase)];
    for (Vertex v = 0; v < 300; ++v) {
      EXPECT_LT(static_cast<double>(ic_charge[static_cast<std::size_t>(v)]), deg)
          << "phase " << phase << " vertex " << v;
      EXPECT_LE(sc_charge[static_cast<std::size_t>(v)], 1)
          << "phase " << phase << " vertex " << v;
    }
  }
}

TEST(EmulatorCentralized, SuperclustersHaveEnoughClusters) {
  // Lemma 2.1: every supercluster of P_{i+1} consists of >= deg_i + 1
  // clusters of P_i — verified via the phase stats identity
  // |P_{i+1}| * (deg_i + 1) <= |P_i| - |U_i|.
  const Graph g = gen_caveman(20, 10);
  const auto params = CentralizedParams::compute(g.num_vertices(), 2, 0.4);
  const auto r = build_emulator_centralized(g, params);
  for (const auto& p : r.phases) {
    EXPECT_LE(static_cast<double>(p.clusters_out) * (p.deg_threshold + 1),
              static_cast<double>(p.clusters_in - p.unclustered) + 1e-6)
        << "phase " << p.phase;
  }
}

TEST(EmulatorCentralized, RejectsMismatchedParams) {
  const Graph g = gen_path(10);
  const auto params = CentralizedParams::compute(99, 4, 0.25);
  EXPECT_THROW(build_emulator_centralized(g, params), std::invalid_argument);
}

TEST(EmulatorCentralized, PathGraphIsCheap) {
  // A path has max degree 2: for deg_0 = n^(1/4) > 2 nobody is ever
  // popular at phase 0... unless n^(1/kappa) <= 2. With kappa=4, n=256:
  // deg_0 = 4 > 2 so phase 0 has no superclusters; every vertex
  // interconnects with <= 2 neighbours. |H| = |E| = n-1.
  const Graph g = gen_path(256);
  const auto r = build(g, 4, 0.25);
  EXPECT_EQ(r.phases[0].popular, 0);
  EXPECT_EQ(r.h.num_edges(), 255);
}

}  // namespace
}  // namespace usne
