// Unified construction API (api/build.hpp): registry enumeration and
// adapter equivalence. Every registered algorithm must produce a
// BuildOutput whose edges and stats are bit-for-bit identical to calling
// the corresponding legacy free function directly — the registry is a
// dispatch layer, never a semantic one.

#include "api/build.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "baselines/en17_emulator.hpp"
#include "baselines/ep01_emulator.hpp"
#include "baselines/tz06_emulator.hpp"
#include "core/emulator_centralized.hpp"
#include "core/emulator_distributed.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "core/spanner_distributed.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

constexpr Vertex kN = 128;
constexpr int kKappa = 4;
constexpr double kEps = 0.4;
constexpr double kRho = 0.49;
constexpr std::uint64_t kSeed = 2024;

Graph test_graph() { return gen_family("er", kN, kSeed); }

BuildSpec spec_for(const std::string& algo) {
  BuildSpec spec;
  spec.algorithm = algo;
  spec.params.kappa = kKappa;
  spec.params.eps = kEps;
  spec.params.rho = kRho;
  spec.exec.seed = kSeed;
  return spec;
}

void expect_same_graph(const WeightedGraph& got, const WeightedGraph& want) {
  ASSERT_EQ(got.num_edges(), want.num_edges());
  EXPECT_EQ(got.num_vertices(), want.num_vertices());
  // edges() is in insertion order of first occurrence, so bit-for-bit
  // adapters must match element-wise, not just as sets.
  EXPECT_EQ(got.edges(), want.edges());
}

void expect_matches_legacy(const BuildOutput& out, const BuildResult& legacy) {
  expect_same_graph(out.h(), legacy.h);
  ASSERT_EQ(out.result.phases.size(), legacy.phases.size());
  for (std::size_t i = 0; i < legacy.phases.size(); ++i) {
    EXPECT_EQ(out.result.phases[i].clusters_in, legacy.phases[i].clusters_in);
    EXPECT_EQ(out.result.phases[i].popular, legacy.phases[i].popular);
    EXPECT_EQ(out.result.phases[i].rounds, legacy.phases[i].rounds);
  }
  EXPECT_EQ(out.result.total_rounds, legacy.total_rounds);
  EXPECT_EQ(out.stats.at("edges"), legacy.h.num_edges());
  EXPECT_EQ(out.stats.at("phases"),
            static_cast<std::int64_t>(legacy.phases.size()));
  EXPECT_EQ(out.stats.at("interconnect_edges"), legacy.interconnect_edges());
  EXPECT_EQ(out.stats.at("supercluster_edges"), legacy.supercluster_edges());
}

TEST(Registry, EnumeratesAllNineConstructions) {
  const auto names = algorithms();
  for (const char* required :
       {"emulator_centralized", "emulator_fast", "emulator_congest", "spanner",
        "spanner_congest", "spanner_em19", "spanner_congest_em19",
        "emulator_ep01", "emulator_tz06", "emulator_en17"}) {
    EXPECT_TRUE(is_registered(required)) << required;
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, DescribeIsConsistent) {
  for (const std::string& name : algorithms()) {
    const AlgorithmInfo& info = describe(name);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.summary.empty());
    EXPECT_TRUE(info.kind == "emulator" || info.kind == "spanner") << name;
    EXPECT_TRUE(info.model == "centralized" || info.model == "congest")
        << name;
  }
  EXPECT_EQ(describe("emulator_congest").model, "congest");
  EXPECT_EQ(describe("spanner").kind, "spanner");
  EXPECT_FALSE(describe("emulator_tz06").deterministic);
  EXPECT_TRUE(describe("emulator_tz06").baseline);
  EXPECT_FALSE(describe("emulator_centralized").baseline);
}

TEST(Registry, UnknownNameThrowsWithCatalog) {
  EXPECT_FALSE(is_registered("no_such_algorithm"));
  try {
    build(test_graph(), spec_for("no_such_algorithm"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error message doubles as documentation: it lists every name.
    EXPECT_NE(std::string(e.what()).find("emulator_centralized"),
              std::string::npos);
  }
  EXPECT_THROW(describe("no_such_algorithm"), std::invalid_argument);
}

TEST(Registry, RescaleRejectedWhereUnsupported) {
  auto spec = spec_for("spanner");
  spec.params.rescale = true;
  EXPECT_THROW(build(test_graph(), spec), std::invalid_argument);
  EXPECT_FALSE(describe("spanner").supports_rescale);
  EXPECT_TRUE(describe("emulator_centralized").supports_rescale);
}

TEST(Registry, EveryAlgorithmBuildsWithGuaranteeMetadata) {
  const Graph g = test_graph();
  for (const std::string& name : algorithms()) {
    SCOPED_TRACE(name);
    const BuildOutput out = build(g, spec_for(name));
    EXPECT_EQ(out.algorithm, name);
    EXPECT_GT(out.h().num_edges(), 0);
    EXPECT_GT(out.stats.at("edges"), 0);
    EXPECT_EQ(out.stats.count("rounds"),
              describe(name).model == "congest" ? 1u : 0u);
    EXPECT_EQ(out.distributed, describe(name).model == "congest");
    if (describe(name).deterministic) {
      EXPECT_TRUE(out.has_guarantee);
      EXPECT_GE(out.alpha, 1.0);
      EXPECT_GT(out.beta, 0);
    } else {
      EXPECT_FALSE(out.has_guarantee);
    }
    EXPECT_TRUE(out.endpoints_consistent());
    // The uniform JSON record is well-formed enough for CI consumption.
    const std::string json = out.stats_json();
    EXPECT_NE(json.find("\"algo\": \"" + name + "\""), std::string::npos);
    EXPECT_NE(json.find("\"edges\": "), std::string::npos);
  }
}

// --- adapter equivalence, one test per legacy entry point ---------------

TEST(AdapterEquivalence, EmulatorCentralized) {
  const Graph g = test_graph();
  const auto params = CentralizedParams::compute(kN, kKappa, kEps);
  const auto legacy = build_emulator_centralized(g, params);
  const auto out = build(g, spec_for("emulator_centralized"));
  expect_matches_legacy(out, legacy);
  EXPECT_DOUBLE_EQ(out.alpha, params.schedule.alpha_bound());
  EXPECT_EQ(out.beta, params.schedule.beta_bound());
  EXPECT_EQ(out.params_description, params.describe());
}

TEST(AdapterEquivalence, EmulatorCentralizedRescaled) {
  const Graph g = test_graph();
  const auto params = CentralizedParams::compute_rescaled(kN, kKappa, kEps);
  const auto legacy = build_emulator_centralized(g, params);
  auto spec = spec_for("emulator_centralized");
  spec.params.rescale = true;
  const auto out = build(g, spec);
  expect_matches_legacy(out, legacy);
  EXPECT_LE(out.alpha, 1.0 + kEps);
}

TEST(AdapterEquivalence, EmulatorFast) {
  const Graph g = test_graph();
  const auto params = DistributedParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_emulator_fast(g, params);
  const auto out = build(g, spec_for("emulator_fast"));
  expect_matches_legacy(out, legacy);
}

TEST(AdapterEquivalence, EmulatorCongestIncludingNetCounts) {
  const Graph g = test_graph();
  const auto params = DistributedParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_emulator_distributed(g, params);
  const auto out = build(g, spec_for("emulator_congest"));
  expect_matches_legacy(out, legacy.base);
  // The DistributedBuildResult round/message/word counts, bit-for-bit.
  EXPECT_EQ(out.net.rounds, legacy.net.rounds);
  EXPECT_EQ(out.net.messages, legacy.net.messages);
  EXPECT_EQ(out.net.words, legacy.net.words);
  EXPECT_EQ(out.stats.at("rounds"), legacy.net.rounds);
  EXPECT_EQ(out.stats.at("messages"), legacy.net.messages);
  EXPECT_EQ(out.stats.at("words"), legacy.net.words);
  // Per-node local knowledge rides along unchanged.
  EXPECT_EQ(out.local, legacy.local);
  EXPECT_EQ(out.endpoints_consistent(), legacy.endpoints_consistent());
}

TEST(AdapterEquivalence, EmulatorCongestParallelEnginesAgree) {
  const Graph g = test_graph();
  const auto serial = build(g, spec_for("emulator_congest"));
  auto spec = spec_for("emulator_congest");
  spec.exec.num_threads = 2;
  const auto parallel = build(g, spec);
  EXPECT_EQ(parallel.net.rounds, serial.net.rounds);
  EXPECT_EQ(parallel.net.messages, serial.net.messages);
  EXPECT_EQ(parallel.net.words, serial.net.words);
  expect_same_graph(parallel.h(), serial.h());
}

TEST(AdapterEquivalence, EmulatorCongestHubThresholdForwarded) {
  const Graph g = test_graph();
  const auto params = DistributedParams::compute(kN, kKappa, kRho, kEps);
  DistributedOptions o;
  o.hub_threshold_factor = 3;
  const auto legacy = build_emulator_distributed(g, params, o);
  auto spec = spec_for("emulator_congest");
  spec.exec.hub_threshold_factor = 3;
  const auto out = build(g, spec);
  EXPECT_EQ(out.net.rounds, legacy.net.rounds);
  EXPECT_EQ(out.net.messages, legacy.net.messages);
  expect_same_graph(out.h(), legacy.base.h);
}

TEST(AdapterEquivalence, Spanner) {
  const Graph g = test_graph();
  const auto params = SpannerParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_spanner(g, params);
  const auto out = build(g, spec_for("spanner"));
  expect_matches_legacy(out, legacy);
  EXPECT_TRUE(is_subgraph(out.h(), g));
}

TEST(AdapterEquivalence, SpannerCongest) {
  const Graph g = test_graph();
  const auto params = SpannerParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_spanner_congest(g, params);
  const auto out = build(g, spec_for("spanner_congest"));
  expect_matches_legacy(out, legacy.base);
  EXPECT_EQ(out.net.rounds, legacy.net.rounds);
  EXPECT_EQ(out.net.messages, legacy.net.messages);
  EXPECT_EQ(out.net.words, legacy.net.words);
}

TEST(AdapterEquivalence, SpannerEm19) {
  const Graph g = test_graph();
  const auto params = DistributedParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_spanner_em19(g, params);
  const auto out = build(g, spec_for("spanner_em19"));
  expect_matches_legacy(out, legacy);
}

TEST(AdapterEquivalence, SpannerCongestEm19) {
  const Graph g = test_graph();
  const auto params = DistributedParams::compute(kN, kKappa, kRho, kEps);
  const auto legacy = build_spanner_congest_em19(g, params);
  const auto out = build(g, spec_for("spanner_congest_em19"));
  expect_matches_legacy(out, legacy.base);
  EXPECT_EQ(out.net.rounds, legacy.net.rounds);
  EXPECT_EQ(out.net.messages, legacy.net.messages);
  EXPECT_EQ(out.net.words, legacy.net.words);
}

TEST(AdapterEquivalence, EmulatorEp01) {
  const Graph g = test_graph();
  const auto params = CentralizedParams::compute(kN, kKappa, kEps);
  const auto legacy = build_emulator_ep01(g, params);
  const auto out = build(g, spec_for("emulator_ep01"));
  expect_matches_legacy(out, legacy);
}

TEST(AdapterEquivalence, EmulatorTz06SameSeedSameOutput) {
  const Graph g = test_graph();
  const auto legacy = build_emulator_tz06(g, kN, kKappa, kSeed);
  const auto out = build(g, spec_for("emulator_tz06"));
  expect_matches_legacy(out, legacy);
}

TEST(AdapterEquivalence, EmulatorEn17SameSeedSameOutput) {
  const Graph g = test_graph();
  const auto legacy = build_emulator_en17(g, kN, kKappa, kEps, kSeed);
  const auto out = build(g, spec_for("emulator_en17"));
  expect_matches_legacy(out, legacy);
}

TEST(AdapterEquivalence, AuditDataGatedByExecOptions) {
  const Graph g = test_graph();
  auto spec = spec_for("emulator_centralized");
  spec.exec.keep_audit_data = true;
  const auto with = build(g, spec);
  spec.exec.keep_audit_data = false;
  const auto without = build(g, spec);
  EXPECT_FALSE(with.result.partitions.empty());
  EXPECT_FALSE(with.result.edge_log.empty());
  EXPECT_TRUE(without.result.partitions.empty());
  EXPECT_TRUE(without.result.edge_log.empty());
  expect_same_graph(without.h(), with.h());
}

TEST(AdapterEquivalence, ExplicitNOverridesGraphSize) {
  const Graph g = test_graph();
  auto spec = spec_for("emulator_centralized");
  spec.params.n = g.num_vertices();  // explicit == inferred
  const auto explicit_n = build(g, spec);
  spec.params.n = 0;
  const auto inferred = build(g, spec);
  expect_same_graph(explicit_n.h(), inferred.h());
}

}  // namespace
}  // namespace usne
