// Compile-out probe for -DUSNE_NO_TRACE (deliberately NOT named test_*.cpp
// — it is not a GoogleTest binary and must stay out of the ctest glob).
//
// check.sh compiles this TU standalone with -DUSNE_NO_TRACE and asserts via
// nm that the object references no obs symbol at all: the USNE_TRACE_*
// macros must expand to nothing, not to inert calls. A hot loop
// instrumented with these macros therefore costs literally zero in a
// no-trace build — the guarantee trace.hpp's header comment makes and this
// probe enforces.
//
// The TU uses ONLY the macro layer (the one interface hot paths are
// allowed to use directly), inside loops the optimizer cannot discard, so
// any macro that still expanded to a function call would surface as an
// undefined `usne::obs::*` reference in the object file.

#include "obs/trace.hpp"

namespace usne {

int probe_hot_loop(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    USNE_TRACE_SPAN("probe.iteration");
    USNE_TRACE_INSTANT("probe.tick");
    acc += i;
  }
  return acc;
}

}  // namespace usne

int main(int argc, char**) { return usne::probe_hot_loop(argc) > 0 ? 0 : 0; }
