// Unit tests for the graph generators: sizes, degree structure,
// connectivity where promised, determinism.

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/stream_gen.hpp"
#include "path/bfs.hpp"

namespace usne {
namespace {

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = gen_gnm(100, 250, 1);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 250);
}

TEST(Generators, GnmCapsAtCompleteGraph) {
  const Graph g = gen_gnm(5, 1000, 1);
  EXPECT_EQ(g.num_edges(), 10);
}

TEST(Generators, GnmDeterministic) {
  const Graph a = gen_gnm(64, 128, 7);
  const Graph b = gen_gnm(64, 128, 7);
  EXPECT_EQ(a.edges(), b.edges());
  const Graph c = gen_gnm(64, 128, 8);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, ConnectedGnmIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen_connected_gnm(200, 300, seed);
    EXPECT_EQ(num_components(g), 1) << "seed " << seed;
    EXPECT_EQ(g.num_edges(), 300);
  }
}

TEST(Generators, Grid) {
  const Graph g = gen_grid(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  // 4*4 horizontal + 3*5 vertical = 16+15 = 31.
  EXPECT_EQ(g.num_edges(), 31);
  EXPECT_EQ(num_components(g), 1);
}

TEST(Generators, TorusIsRegular) {
  const Graph g = gen_torus(5, 6);
  EXPECT_EQ(g.num_vertices(), 30);
  EXPECT_EQ(g.num_edges(), 60);  // 2 per vertex
  for (Vertex v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, Hypercube) {
  const Graph g = gen_hypercube(5);
  EXPECT_EQ(g.num_vertices(), 32);
  EXPECT_EQ(g.num_edges(), 32 * 5 / 2);
  for (Vertex v = 0; v < 32; ++v) EXPECT_EQ(g.degree(v), 5);
  // Diameter of Q5 is 5.
  EXPECT_EQ(eccentricity(g, 0), 5);
}

TEST(Generators, PathCycleStar) {
  EXPECT_EQ(gen_path(10).num_edges(), 9);
  EXPECT_EQ(gen_cycle(10).num_edges(), 10);
  const Graph star = gen_star(10);
  EXPECT_EQ(star.num_edges(), 9);
  EXPECT_EQ(star.degree(0), 9);
  for (Vertex v = 1; v < 10; ++v) EXPECT_EQ(star.degree(v), 1);
}

TEST(Generators, Complete) {
  const Graph g = gen_complete(7);
  EXPECT_EQ(g.num_edges(), 21);
}

TEST(Generators, BalancedTree) {
  const Graph g = gen_tree(15, 2);
  EXPECT_EQ(g.num_edges(), 14);
  EXPECT_EQ(num_components(g), 1);
  EXPECT_EQ(g.degree(0), 2);  // root of a full binary tree
}

TEST(Generators, BarabasiAlbertShape) {
  const Graph g = gen_barabasi_albert(500, 3, 11);
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_EQ(num_components(g), 1);
  // Heavy tail: some vertex far above the mean degree.
  EXPECT_GT(g.max_degree(), 3 * (2 * g.num_edges() / 500));
}

TEST(Generators, WattsStrogatz) {
  const Graph g = gen_watts_strogatz(300, 6, 0.1, 3);
  EXPECT_EQ(g.num_vertices(), 300);
  // ~nk/2 edges, some lost to rewire collisions.
  EXPECT_GT(g.num_edges(), 800);
  EXPECT_LE(g.num_edges(), 900);
}

TEST(Generators, Caveman) {
  const Graph g = gen_caveman(5, 6);
  EXPECT_EQ(g.num_vertices(), 30);
  // 5 cliques of C(6,2)=15 + 5 ring links.
  EXPECT_EQ(g.num_edges(), 80);
  EXPECT_EQ(num_components(g), 1);
}

TEST(Generators, Dumbbell) {
  const Graph g = gen_dumbbell(5, 4);
  EXPECT_EQ(g.num_vertices(), 14);
  EXPECT_EQ(num_components(g), 1);
  // Distance across the bridge: from one clique end to the other.
  const auto dist = bfs_distances(g, 0);
  EXPECT_GE(dist[13], 5);
}

TEST(Generators, RandomRegularDegreesBounded) {
  const Graph g = gen_random_regular(200, 4, 17);
  for (Vertex v = 0; v < 200; ++v) EXPECT_LE(g.degree(v), 4);
  // Most degrees should be exactly 4.
  int exact = 0;
  for (Vertex v = 0; v < 200; ++v) exact += (g.degree(v) == 4);
  EXPECT_GT(exact, 150);
}

TEST(Generators, FamilyDispatcherCoversAll) {
  for (const std::string& family : all_families()) {
    const Graph g = gen_family(family, 64, 5);
    EXPECT_GT(g.num_vertices(), 0) << family;
    EXPECT_GT(g.num_edges(), 0) << family;
  }
}

TEST(Generators, FamilyDeterministic) {
  for (const std::string& family : all_families()) {
    const Graph a = gen_family(family, 128, 9);
    const Graph b = gen_family(family, 128, 9);
    EXPECT_EQ(a.edges(), b.edges()) << family;
  }
}

// --- streamed generators (graph/stream_gen.hpp) -----------------------------

TEST(StreamGen, GnmExactEdgeCountAndNoDuplicates) {
  StreamGenReport report;
  const Graph g = stream_gnm(300, 900, 3, &report);
  EXPECT_EQ(g.num_vertices(), 300);
  EXPECT_EQ(g.num_edges(), 900);  // exact, never truncated
  for (std::size_t i = 1; i < g.edges().size(); ++i) {
    EXPECT_LT(g.edges()[i - 1], g.edges()[i]);  // sorted strict => unique
  }
  EXPECT_EQ(report.edges, 900);
  EXPECT_GE(report.candidates, 900);
  EXPECT_GE(report.rounds, 1);
  EXPECT_GT(report.peak_bytes, 0);
  EXPECT_GT(report.bytes_per_edge, 0);
  // The whole point: peak stays within a small multiple of sizeof(Edge).
  EXPECT_LT(report.bytes_per_edge, 4.0 * sizeof(Edge));
}

TEST(StreamGen, GnmCapsAtCompleteGraphAndIsDeterministic) {
  EXPECT_EQ(stream_gnm(6, 1000, 1).num_edges(), 15);
  const Graph a = stream_gnm(128, 512, 11);
  const Graph b = stream_gnm(128, 512, 11);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), stream_gnm(128, 512, 12).edges());
}

TEST(StreamGen, ConnectedGnmIsConnectedWithExactEdges) {
  StreamGenReport report;
  const Graph g = stream_connected_gnm(400, 1200, 5, &report);
  EXPECT_EQ(g.num_edges(), 1200);
  EXPECT_EQ(num_components(g), 1);
  EXPECT_EQ(report.edges, 1200);
  // Sparse ask below n-1 clamps up to a spanning path, still connected.
  const Graph tree_ish = stream_connected_gnm(50, 10, 5);
  EXPECT_EQ(tree_ish.num_edges(), 49);
  EXPECT_EQ(num_components(tree_ish), 1);
}

TEST(StreamGen, RmatExactEdgesSkewedDegrees) {
  StreamGenReport report;
  const Graph g = stream_rmat(10, 8 * 1024, 7, &report);  // n = 1024
  EXPECT_EQ(g.num_vertices(), 1024);
  EXPECT_EQ(g.num_edges(), 8 * 1024);
  EXPECT_EQ(report.edges, 8 * 1024);
  // Heavy tail: the hottest vertex sees far more than the mean degree 16.
  EXPECT_GT(g.max_degree(), 64);
  // Determinism.
  EXPECT_EQ(g.edges(), stream_rmat(10, 8 * 1024, 7).edges());
}

}  // namespace
}  // namespace usne
