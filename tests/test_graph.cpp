// Unit tests for src/graph: CSR graph, builder normalization, weighted
// graph dedup semantics, I/O round trips, connectivity.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weighted_graph.hpp"
#include "test_helpers.hpp"

namespace usne {
namespace {

TEST(GraphBuilder, DedupAndSelfLoops) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_TRUE(b.add_edge(1, 0));   // duplicate, reversed
  EXPECT_TRUE(b.add_edge(0, 1));   // duplicate
  EXPECT_FALSE(b.add_edge(2, 2));  // self loop rejected
  EXPECT_FALSE(b.add_edge(0, 9));  // out of range
  EXPECT_FALSE(b.add_edge(-1, 0));
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) EXPECT_LT(nbrs[i], nbrs[i + 1]);
  EXPECT_EQ(g.degree(2), 4);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Graph, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, CsrOffsetsMatchDegrees) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  const Graph g = b.build();
  EXPECT_EQ(g.csr_offset(0), 0);
  std::int64_t running = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.csr_offset(v), running);
    running += g.degree(v);
  }
  // csr_offset is valid at n and equals the total adjacency length 2|E|.
  EXPECT_EQ(g.csr_offset(g.num_vertices()), 2 * g.num_edges());
}

TEST(Graph, SingleVertex) {
  const Graph g = GraphBuilder(1).build();
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(WeightedGraph, MinWeightDedup) {
  WeightedGraph h(4);
  EXPECT_TRUE(h.add_edge(0, 1, 5));
  EXPECT_TRUE(h.add_edge(1, 0, 3));  // lower weight wins
  EXPECT_TRUE(h.add_edge(0, 1, 9));  // higher weight ignored
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.edge_weight(0, 1), 3);
  EXPECT_EQ(h.edge_weight(1, 0), 3);
  EXPECT_EQ(h.edge_weight(0, 2), kInfDist);
}

TEST(WeightedGraph, RejectsInvalid) {
  WeightedGraph h(3);
  EXPECT_FALSE(h.add_edge(0, 0, 1));   // self loop
  EXPECT_FALSE(h.add_edge(0, 1, 0));   // non-positive weight
  EXPECT_FALSE(h.add_edge(0, 1, -2));
  EXPECT_FALSE(h.add_edge(0, 5, 1));   // out of range
  EXPECT_EQ(h.num_edges(), 0);
}

TEST(WeightedGraph, AdjacencyReflectsUpdates) {
  WeightedGraph h(3);
  h.add_edge(0, 1, 7);
  EXPECT_EQ(h.adjacency(0).size(), 1u);
  EXPECT_EQ(h.adjacency(0)[0].to, 1);
  EXPECT_EQ(h.adjacency(0)[0].w, 7);
  h.add_edge(0, 2, 2);
  EXPECT_EQ(h.adjacency(0).size(), 2u);  // cache invalidated and rebuilt
  h.add_edge(1, 0, 4);                   // weight update
  bool found = false;
  for (const auto& arc : h.adjacency(1)) {
    if (arc.to == 0) {
      EXPECT_EQ(arc.w, 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WeightedGraph, Merge) {
  WeightedGraph a(4);
  a.add_edge(0, 1, 5);
  WeightedGraph b(4);
  b.add_edge(0, 1, 2);
  b.add_edge(2, 3, 7);
  a.merge(b);
  EXPECT_EQ(a.num_edges(), 2);
  EXPECT_EQ(a.edge_weight(0, 1), 2);
  EXPECT_EQ(a.edge_weight(2, 3), 7);
}

TEST(GraphIo, RoundTripUnweighted) {
  const Graph g = test::two_triangles_bridge();
  std::stringstream ss;
  write_graph(ss, g);
  const auto back = read_graph(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_vertices(), g.num_vertices());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  EXPECT_EQ(back->edges(), g.edges());
}

TEST(GraphIo, RoundTripWeighted) {
  WeightedGraph h(5);
  h.add_edge(0, 4, 3);
  h.add_edge(1, 2, 8);
  std::stringstream ss;
  write_weighted_graph(ss, h);
  const auto back = read_weighted_graph(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_edges(), 2);
  EXPECT_EQ(back->edge_weight(0, 4), 3);
  EXPECT_EQ(back->edge_weight(1, 2), 8);
}

TEST(GraphIo, RejectsMalformed) {
  {
    std::stringstream ss("not a header\n");
    EXPECT_FALSE(read_graph(ss).has_value());
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // promised 2 edges, delivered 1
    EXPECT_FALSE(read_graph(ss).has_value());
  }
  {
    std::stringstream ss("3 1\n0 7\n");  // out of range endpoint
    EXPECT_FALSE(read_graph(ss).has_value());
  }
  {
    std::stringstream ss("3 1 weighted\n0 1 -5\n");  // bad weight
    EXPECT_FALSE(read_weighted_graph(ss).has_value());
  }
  {
    std::stringstream ss("3 1\n0 1\n");  // unweighted into weighted reader
    EXPECT_FALSE(read_weighted_graph(ss).has_value());
  }
}

TEST(GraphIo, CommentsSkipped) {
  std::stringstream ss("# comment\n3 1\n# another\n0 1\n");
  const auto g = read_graph(ss);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 1);
}

TEST(Connectivity, Components) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();  // components {0,1}, {2,3,4}, {5}
  EXPECT_EQ(num_components(g), 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[5]);
}

TEST(Connectivity, SpanningForestSize) {
  const Graph g = test::two_triangles_bridge();
  EXPECT_EQ(spanning_forest(g).size(), 5u);  // n-1 for connected
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(spanning_forest(b.build()).size(), 2u);  // n - #components
}

}  // namespace
}  // namespace usne
