// Tests for the network serving subsystem (src/net/): wire-protocol framing
// (pure byte-buffer tests — no socket, no engine), and loopback integration
// against a real net::Server — round-trips, malformed-frame rejection,
// admission control (BUSY), graceful live reload, concurrent clients, idle
// harvesting, and the kDaemon request-conservation ledger.
//
// Built with -DUSNE_SAN=thread this binary is part of the TSan gate (ctest
// label "tsan"): the concurrent-clients and reload-mid-stream tests drive
// the I/O thread, workers and reloader simultaneously.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/invariant.hpp"

namespace usne {
namespace {

using net::Client;
using net::DecodeStatus;
using net::ErrorCode;
using net::Frame;
using net::MsgType;
using net::RpcError;
using net::Server;
using net::ServerOptions;
using net::ServerStats;
using serve::Query;
using serve::QueryEngine;
using serve::ServeOptions;

// --- protocol: pure byte-buffer tests ---------------------------------------

TEST(Protocol, FrameRoundTrip) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload = net::encode_pair_request(3, 200);
  net::append_frame(wire, MsgType::kPair, 42, payload, 7);

  std::size_t off = 0;
  Frame f;
  ASSERT_EQ(net::decode_frame(wire, off, f), DecodeStatus::kFrame);
  EXPECT_EQ(off, wire.size());
  EXPECT_EQ(f.type, MsgType::kPair);
  EXPECT_EQ(f.flags, 7);
  EXPECT_EQ(f.request_id, 42u);
  Vertex u = 0;
  Vertex v = 0;
  ASSERT_TRUE(net::parse_pair_request(f.payload, u, v));
  EXPECT_EQ(u, 3);
  EXPECT_EQ(v, 200);
}

TEST(Protocol, EveryTruncationPrefixNeedsMore) {
  std::vector<std::uint8_t> wire;
  net::append_frame(wire, MsgType::kPair, 9, net::encode_pair_request(1, 2));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::size_t off = 0;
    Frame f;
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() +
                                               static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(net::decode_frame(prefix, off, f), DecodeStatus::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(off, 0u);
  }
}

TEST(Protocol, TwoFramesDecodeBackToBack) {
  std::vector<std::uint8_t> wire;
  net::append_frame(wire, MsgType::kPing, 1, {});
  net::append_frame(wire, MsgType::kStats, 2, {});
  std::size_t off = 0;
  Frame f;
  ASSERT_EQ(net::decode_frame(wire, off, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.type, MsgType::kPing);
  ASSERT_EQ(net::decode_frame(wire, off, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.type, MsgType::kStats);
  EXPECT_EQ(off, wire.size());
  EXPECT_EQ(net::decode_frame(wire, off, f), DecodeStatus::kNeedMore);
}

TEST(Protocol, RejectsBadMagicVersionTypeChecksumOversized) {
  std::vector<std::uint8_t> wire;
  net::append_frame(wire, MsgType::kPing, 1, net::encode_pair_request(1, 2));
  std::size_t off = 0;
  Frame f;

  auto corrupted = [&wire](std::size_t index, std::uint8_t value) {
    std::vector<std::uint8_t> bad = wire;
    bad[index] = value;
    return bad;
  };

  off = 0;
  EXPECT_EQ(net::decode_frame(corrupted(0, 0x00), off, f),
            DecodeStatus::kBadMagic);
  off = 0;
  EXPECT_EQ(net::decode_frame(corrupted(4, 99), off, f),
            DecodeStatus::kBadVersion);
  off = 0;
  EXPECT_EQ(net::decode_frame(corrupted(5, 0x7F), off, f),
            DecodeStatus::kBadType);
  // Flip one payload byte: header checksum no longer matches.
  off = 0;
  EXPECT_EQ(net::decode_frame(corrupted(net::kHeaderBytes, 0xFF), off, f),
            DecodeStatus::kBadChecksum);
  // Declare a payload over the 1 MiB cap (offset 8..11 = payload_len LE).
  std::vector<std::uint8_t> oversized = wire;
  oversized[8] = 0x01;
  oversized[9] = 0x00;
  oversized[10] = 0x10;  // 0x100001 = 1 MiB + 1
  oversized[11] = 0x00;
  off = 0;
  EXPECT_EQ(net::decode_frame(oversized, off, f), DecodeStatus::kOversized);
}

TEST(Protocol, TypedPayloadRoundTripsAndRejectsMalformed) {
  Vertex s = -1;
  ASSERT_TRUE(net::parse_single_source_request(
      net::encode_single_source_request(77), s));
  EXPECT_EQ(s, 77);
  EXPECT_FALSE(net::parse_single_source_request(
      std::vector<std::uint8_t>(3, 0), s));

  const std::vector<Query> queries = {
      {5, 9, false}, {0, 0, true}, {123, 4, false}};
  std::vector<Query> parsed;
  ASSERT_TRUE(net::parse_batch_request(net::encode_batch_request(queries),
                                       parsed));
  EXPECT_EQ(parsed, queries);

  // Truncated batch, count lying about the item count, bad `all` byte.
  std::vector<std::uint8_t> enc = net::encode_batch_request(queries);
  enc.pop_back();
  EXPECT_FALSE(net::parse_batch_request(enc, parsed));
  enc = net::encode_batch_request(queries);
  enc[0] = 200;  // count says 200, bytes hold 3
  EXPECT_FALSE(net::parse_batch_request(enc, parsed));
  enc = net::encode_batch_request(queries);
  enc[4] = 2;  // `all` must be 0 or 1
  EXPECT_FALSE(net::parse_batch_request(enc, parsed));

  const std::vector<Dist> dist = {0, 7, kInfDist, 123456789012345LL};
  std::vector<Dist> dist_parsed;
  ASSERT_TRUE(net::parse_dist_vector_reply(
      net::encode_dist_vector_reply(dist), dist_parsed));
  EXPECT_EQ(dist_parsed, dist);

  ErrorCode code = ErrorCode::kNone;
  std::string message;
  ASSERT_TRUE(net::parse_error(
      net::encode_error(ErrorCode::kBusy, "queue full"), code, message));
  EXPECT_EQ(code, ErrorCode::kBusy);
  EXPECT_EQ(message, "queue full");
  EXPECT_FALSE(net::parse_error(std::vector<std::uint8_t>(1, 0), code,
                                message));
}

// --- loopback integration ----------------------------------------------------

BuildOutput build_emulator(const Graph& g, int kappa = 6) {
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params = {0, kappa, 0.25, 0.3, false};
  return build(g, spec);
}

std::shared_ptr<QueryEngine> make_engine(Vertex n = 256,
                                         ServeOptions options = {}) {
  const Graph g = gen_family("er", n, 7);
  return std::make_shared<QueryEngine>(build_emulator(g), options);
}

std::vector<Query> make_workload(Vertex n, std::int64_t count,
                                 std::uint64_t seed = 42) {
  serve::WorkloadSpec spec;
  spec.kind = serve::WorkloadKind::kZipf;
  spec.num_queries = count;
  spec.seed = seed;
  return serve::generate_workload(n, spec);
}

TEST(NetServer, PingPairSingleSourceBatchMatchEngine) {
  auto engine = make_engine(256);
  ServerOptions options;
  options.workers = 2;
  Server server(engine, options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());

  const std::vector<std::uint8_t> token = {1, 2, 3, 4};
  EXPECT_EQ(client.ping(token), token);

  EXPECT_EQ(client.query_pair(3, 200), engine->query(3, 200));
  EXPECT_EQ(client.query_pair(0, 0), 0);

  const serve::SsspResult direct = engine->query_all(5);
  EXPECT_EQ(client.query_all_folded(5), serve::checksum_fold(*direct));
  EXPECT_EQ(client.query_all(5), *direct);

  const std::vector<Query> queries = make_workload(256, 300);
  const std::vector<Dist> wire = client.query_batch(queries);
  const serve::BatchResult reference = engine->serve(queries, 1);
  EXPECT_EQ(wire, reference.answers);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted_requests, s.answered_requests);
  EXPECT_EQ(s.protocol_errors, 0);
}

TEST(NetServer, MalformedFramesNeverReachTheEngine) {
  auto engine = make_engine(64);
  Server server(engine, ServerOptions{});
  server.start();

  // Garbage bytes: the daemon must close the stream and count a protocol
  // error without any request entering the ledger (or the engine).
  Client client;
  client.connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> garbage(64, 0xAB);
  client.send_raw(garbage);
  Frame f;
  EXPECT_FALSE(client.recv_frame(f));  // EOF: server closed on us

  // A corrupted-checksum frame gets the same treatment.
  Client client2;
  client2.connect("127.0.0.1", server.port());
  std::vector<std::uint8_t> wire;
  net::append_frame(wire, MsgType::kPair, 1, net::encode_pair_request(1, 2));
  wire[net::kHeaderBytes] ^= 0xFF;
  client2.send_raw(wire);
  EXPECT_FALSE(client2.recv_frame(f));

  // A well-framed *reply* type is not a request: answered with kError,
  // connection stays open.
  Client client3;
  client3.connect("127.0.0.1", server.port());
  client3.send_frame(MsgType::kPong, 5, {});
  ASSERT_TRUE(client3.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(f.request_id, 5u);

  // A well-framed pair request with an out-of-range vertex is rejected by
  // the worker before the engine sees it.
  EXPECT_THROW(client3.query_pair(0, 64), RpcError);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.protocol_errors, 2);
  EXPECT_EQ(s.rejected_error, 2);
  EXPECT_EQ(s.answered_requests, 0);
  EXPECT_EQ(engine->cache_stats().sssp_runs, 0);
}

TEST(NetServer, BusyUnderTinyAdmissionQueue) {
  auto engine = make_engine(128);
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.batch_max = 64;       // worker only flushes on the deadline...
  options.flush_us = 300000;    // ...300 ms away: the queue stays occupied
  Server server(engine, options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> payload = net::encode_pair_request(1, 2);
  for (std::uint64_t id = 1; id <= 8; ++id) {
    client.send_frame(MsgType::kPair, id, payload);
  }
  int answered = 0;
  int busy = 0;
  for (int i = 0; i < 8; ++i) {
    Frame f;
    ASSERT_TRUE(client.recv_frame(f));
    if (f.type == MsgType::kPairReply) {
      ++answered;
    } else {
      ASSERT_EQ(f.type, MsgType::kBusy);
      ++busy;
    }
  }
  EXPECT_EQ(answered, 1);
  EXPECT_EQ(busy, 7);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted_requests, 8);
  EXPECT_EQ(s.answered_requests, 1);
  EXPECT_EQ(s.rejected_busy, 7);
}

TEST(NetServer, PerConnectionInFlightCap) {
  auto engine = make_engine(128);
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1024;  // global bound out of the way
  options.max_inflight_per_conn = 2;
  options.batch_max = 64;
  options.flush_us = 300000;
  Server server(engine, options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> payload = net::encode_pair_request(1, 2);
  for (std::uint64_t id = 1; id <= 8; ++id) {
    client.send_frame(MsgType::kPair, id, payload);
  }
  int answered = 0;
  int busy = 0;
  for (int i = 0; i < 8; ++i) {
    Frame f;
    ASSERT_TRUE(client.recv_frame(f));
    if (f.type == MsgType::kPairReply) ++answered;
    if (f.type == MsgType::kBusy) ++busy;
  }
  EXPECT_EQ(answered, 2);
  EXPECT_EQ(busy, 6);
  server.stop();
}

TEST(NetServer, GracefulReloadMidStreamKeepsAnswersIdentical) {
  const Graph g = gen_family("er", 256, 7);
  auto make = [&g] {
    return std::make_shared<QueryEngine>(build_emulator(g), ServeOptions{});
  };
  auto engine = make();
  ServerOptions options;
  options.workers = 2;
  Server server(engine, options);
  server.start();

  const std::vector<Query> queries = make_workload(256, 2000);
  const serve::BatchResult reference = engine->serve(queries, 1);

  // Stream the workload in small batches while the main thread reloads a
  // freshly built (identical) engine mid-stream. Every batch, whichever
  // engine served it, must answer bit-identically.
  std::atomic<bool> failed{false};
  std::thread streamer([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    const std::size_t step = 50;
    for (std::size_t i = 0; i < queries.size(); i += step) {
      const std::size_t m = std::min(step, queries.size() - i);
      const std::vector<Dist> got = client.query_batch(
          std::span<const Query>(queries.data() + i, m));
      for (std::size_t k = 0; k < m; ++k) {
        if (got[k] != reference.answers[i + k]) {
          failed.store(true);
          return;
        }
      }
    }
  });
  for (int r = 0; r < 3; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.reload(make());
  }
  streamer.join();
  EXPECT_FALSE(failed.load());

  // Reload to a different vertex count must be refused: queued queries
  // were validated against the old range.
  const Graph small = gen_family("er", 64, 7);
  EXPECT_THROW(server.reload(std::make_shared<QueryEngine>(
                   build_emulator(small), ServeOptions{})),
               std::invalid_argument);
  EXPECT_THROW(server.reload(nullptr), std::invalid_argument);

  server.stop();
  EXPECT_EQ(server.stats().reloads, 3);
}

TEST(NetServer, ConcurrentClientsChecksumEqualAcrossWorkerCounts) {
  const Vertex n = 256;
  auto engine = make_engine(n);
  const std::vector<Query> queries = make_workload(n, 1200);
  const serve::BatchResult reference = engine->serve(queries, 1);

  for (const int workers : {1, 2, 8}) {
    ServerOptions options;
    options.workers = workers;
    Server server(engine, options);
    server.start();

    const int clients = 4;
    const std::size_t per_client = (queries.size() + clients - 1) / clients;
    std::vector<Dist> answers(queries.size(), -1);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const std::size_t lo =
            std::min(queries.size(), static_cast<std::size_t>(c) * per_client);
        const std::size_t hi = std::min(queries.size(), lo + per_client);
        if (lo >= hi) return;
        Client client;
        client.connect("127.0.0.1", server.port());
        const std::size_t step = 64;
        for (std::size_t i = lo; i < hi; i += step) {
          const std::size_t m = std::min(step, hi - i);
          const std::vector<Dist> got = client.query_batch(
              std::span<const Query>(queries.data() + i, m));
          for (std::size_t k = 0; k < m; ++k) answers[i + k] = got[k];
        }
      });
    }
    for (std::thread& t : threads) t.join();
    server.stop();

    std::uint64_t checksum = serve::kChecksumSeed;
    for (const Dist d : answers) {
      checksum = serve::checksum_accumulate(checksum, d);
    }
    EXPECT_EQ(checksum, reference.checksum) << "workers = " << workers;
  }
}

TEST(NetServer, IdleConnectionsAreHarvested) {
  auto engine = make_engine(64);
  ServerOptions options;
  options.idle_timeout_ms = 50;
  Server server(engine, options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  client.ping();
  Frame f;
  EXPECT_FALSE(client.recv_frame(f));  // harvested: orderly EOF

  server.stop();
  EXPECT_GE(server.stats().idle_closed, 1);
}

TEST(NetServer, StatsRequestReportsCountersAndLatency) {
  auto engine = make_engine(128);
  Server server(engine, ServerOptions{});
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::vector<Query> queries = make_workload(128, 200);
  client.query_batch(queries);
  const std::string json = client.stats_json();

  // The STATS request counts itself (accepted and answered *before* the
  // snapshot, so every report satisfies the conservation law): 1 batch + 1
  // stats = 2/2.
  for (const char* field :
       {"\"accepted_requests\": 2", "\"answered_requests\": 2",
        "\"cache\": {", "\"cache_interval\": {", "\"latency\": {",
        "\"p99_us\":", "\"queue_depth\": 0", "\"rejected_busy\": 0",
        "\"workers\":"}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in " << json;
  }
  // The interval view resets: a second STATS sees an empty interval.
  const std::string second = client.stats_json();
  EXPECT_NE(second.find("\"cache_interval\": {\"coalesced\": 0, \"entries\": "),
            std::string::npos);
  server.stop();
}

TEST(NetServer, ShutdownLedgerConservesRequests) {
  inv::ScopedAuditsEnabled audits(true);
  inv::reset_counters();

  auto engine = make_engine(128);
  ServerOptions options;
  options.workers = 2;
  options.max_queue = 4;  // force some BUSY traffic into the ledger
  options.batch_max = 2;
  Server server(engine, options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> payload = net::encode_pair_request(1, 2);
  for (std::uint64_t id = 1; id <= 64; ++id) {
    client.send_frame(MsgType::kPair, id, payload);
  }
  for (int i = 0; i < 64; ++i) {
    Frame f;
    ASSERT_TRUE(client.recv_frame(f));
  }
  server.stop();  // runs the kDaemon conservation checks

  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted_requests,
            s.answered_requests + s.rejected_busy + s.rejected_error);
  EXPECT_EQ(s.in_flight, 0);
  EXPECT_EQ(s.queue_depth, 0);

  bool found = false;
  for (const inv::CategoryCounters& c : inv::counters()) {
    if (std::string(c.name) == "daemon") {
      found = true;
      EXPECT_GT(c.checked, 0);
      EXPECT_EQ(c.fired, 0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace usne
