// Runtime invariant layer (util/invariant.hpp): macro semantics with audits
// on/off, fail-handler capture and restore, per-category counter
// accounting, the CSR structural validator rejecting corrupted views, the
// transport-conservation audit firing under a rigged DeliveryModel, and an
// end-to-end pass proving every audit category is exercised (counters > 0)
// with zero firings on healthy subsystems.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/build.hpp"
#include "congest/engine.hpp"
#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/invariant.hpp"

namespace usne {
namespace {

using congest::DeliveryModel;
using congest::Message;
using congest::Network;
using congest::NodeProgram;
using congest::Outbox;
using congest::Received;
using congest::Scheduler;
using congest::Staged;
using congest::TransportModel;
using inv::Category;

std::int64_t checked_of(Category c) {
  return inv::counters()[static_cast<std::size_t>(c)].checked;
}

std::int64_t fired_of(Category c) {
  return inv::counters()[static_cast<std::size_t>(c)].fired;
}

/// Fail-handler that records every violation instead of throwing, so a
/// test can observe an audit firing mid-subsystem and still unwind
/// normally.
struct Capture {
  struct Hit {
    Category category;
    std::string expr;
    std::string msg;
  };
  std::vector<Hit> hits;

  inv::FailHandler handler() {
    return [this](Category c, const char* expr, const std::string& msg) {
      hits.push_back({c, expr, msg});
    };
  }
};

// --- macro semantics --------------------------------------------------------

TEST(InvariantMacros, CheckEvaluatesEvenWithAuditsDisabled) {
  inv::ScopedAuditsEnabled off(false);
  const std::int64_t before = checked_of(Category::kSssp);
  int evaluations = 0;
  USNE_CHECK(Category::kSssp, (++evaluations, true), "never fails");
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(checked_of(Category::kSssp), before + 1);
}

TEST(InvariantMacros, AuditSkipsConditionWhileDisabled) {
  inv::ScopedAuditsEnabled off(false);
  const std::int64_t before = checked_of(Category::kSssp);
  int evaluations = 0;
  USNE_AUDIT(Category::kSssp, (++evaluations, false), "would fire if run");
#ifdef USNE_NO_AUDITS
  (void)evaluations;
#else
  EXPECT_EQ(evaluations, 0);
#endif
  EXPECT_EQ(checked_of(Category::kSssp), before);
}

TEST(InvariantMacros, AuditEvaluatesWhileEnabled) {
#ifndef USNE_NO_AUDITS
  inv::ScopedAuditsEnabled on(true);
  const std::int64_t before = checked_of(Category::kSssp);
  int evaluations = 0;
  USNE_AUDIT(Category::kSssp, (++evaluations, true), "passes");
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(checked_of(Category::kSssp), before + 1);
#endif
}

TEST(InvariantMacros, DefaultHandlerThrowsWithContext) {
  try {
    USNE_CHECK(Category::kCsr, 1 == 2, "forced failure for the test");
    FAIL() << "USNE_CHECK did not throw";
  } catch (const inv::InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("csr"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("forced failure for the test"), std::string::npos);
  }
}

TEST(InvariantMacros, MessageOnlyBuiltOnFailure) {
  int message_builds = 0;
  const auto expensive_msg = [&message_builds] {
    ++message_builds;
    return std::string("expensive");
  };
  USNE_CHECK(Category::kSssp, true, expensive_msg());
  EXPECT_EQ(message_builds, 0);
}

// --- fail handler ------------------------------------------------------------

TEST(InvariantHandler, ScopedCaptureInterceptsAndRestores) {
  Capture capture;
  {
    inv::ScopedFailHandler scoped(capture.handler());
    USNE_CHECK(Category::kScheduler, false, "captured, not thrown");
    USNE_CHECK(Category::kTransport, false, "second capture");
  }
  ASSERT_EQ(capture.hits.size(), 2u);
  EXPECT_EQ(capture.hits[0].category, Category::kScheduler);
  EXPECT_EQ(capture.hits[0].expr, "false");
  EXPECT_EQ(capture.hits[0].msg, "captured, not thrown");
  EXPECT_EQ(capture.hits[1].category, Category::kTransport);
  // Out of scope: the default throwing handler is back.
  EXPECT_THROW(USNE_CHECK(Category::kScheduler, false, "thrown again"),
               inv::InvariantViolation);
}

// --- counters ----------------------------------------------------------------

TEST(InvariantCounters, CheckedAndFiredAccounting) {
  inv::reset_counters();
  Capture capture;
  inv::ScopedFailHandler scoped(capture.handler());
  USNE_CHECK(Category::kServeCache, true, "");
  USNE_CHECK(Category::kServeCache, true, "");
  USNE_CHECK(Category::kServeCache, false, "one firing");
  EXPECT_EQ(checked_of(Category::kServeCache), 3);
  EXPECT_EQ(fired_of(Category::kServeCache), 1);
  EXPECT_EQ(checked_of(Category::kCsr), 0);

  const std::string json = inv::counters_json();
  EXPECT_NE(json.find("\"serve_cache\": {\"checked\": 3, \"fired\": 1}"),
            std::string::npos)
      << json;
  // Sorted by category name: "csr" precedes "transport".
  EXPECT_LT(json.find("\"csr\""), json.find("\"transport\""));

  inv::reset_counters();
  EXPECT_EQ(checked_of(Category::kServeCache), 0);
  EXPECT_EQ(fired_of(Category::kServeCache), 0);
}

TEST(InvariantCounters, EveryCategoryHasAStableName) {
  const auto counters = inv::counters();
  ASSERT_EQ(counters.size(), static_cast<std::size_t>(inv::kNumCategories));
  const std::vector<std::string> expected = {
      "transport", "scheduler", "serve_cache", "sssp", "csr", "daemon"};
  for (std::size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(counters[i].name, expected[i]);
  }
}

// --- CSR validator -----------------------------------------------------------

TEST(CsrValidator, AcceptsWellFormedGraph) {
  WeightedGraph h(5);
  h.add_edge(0, 1, 2);
  h.add_edge(1, 2, 3);
  h.add_edge(2, 3, 1);
  h.add_edge(0, 4, 7);
  std::string error;
  EXPECT_TRUE(validate_csr(h.csr(), &error)) << error;
  EXPECT_NO_THROW(h.validate());
  // Empty views are trivially valid.
  EXPECT_TRUE(validate_csr(WeightedGraph::Csr{}, &error));
}

TEST(CsrValidator, RejectsCorruptedStructures) {
  using Arc = WeightedGraph::Arc;
  std::string error;

  const auto expect_reject = [&error](const WeightedGraph::Csr& bad,
                                      const std::string& needle) {
    error.clear();
    EXPECT_FALSE(validate_csr(bad, &error));
    EXPECT_NE(error.find(needle), std::string::npos) << error;
  };

  {  // offsets must start at 0
    const std::int64_t offsets[] = {1, 2};
    const Arc arcs[] = {{0, 1}, {0, 1}};
    expect_reject({1, offsets, arcs}, "offsets[0]");
  }
  {  // offsets must be non-decreasing
    const std::int64_t offsets[] = {0, 2, 1};
    const Arc arcs[] = {{1, 1}, {1, 1}};
    expect_reject({2, offsets, arcs}, "offsets decrease");
  }
  {  // arc target out of range
    const std::int64_t offsets[] = {0, 1, 2};
    const Arc arcs[] = {{5, 1}, {0, 1}};
    expect_reject({2, offsets, arcs}, "out of range");
  }
  {  // self loop
    const std::int64_t offsets[] = {0, 1, 2};
    const Arc arcs[] = {{0, 1}, {0, 1}};
    expect_reject({2, offsets, arcs}, "self loop");
  }
  {  // non-positive weight
    const std::int64_t offsets[] = {0, 1, 2};
    const Arc arcs[] = {{1, 0}, {0, 0}};
    expect_reject({2, offsets, arcs}, "non-positive weight");
  }
  {  // asymmetric: 0 -> 1 present, 1 -> 0 missing
    const std::int64_t offsets[] = {0, 1, 1};
    const Arc arcs[] = {{1, 1}};
    expect_reject({2, offsets, arcs}, "asymmetric");
  }
  {  // symmetric but weights disagree across directions
    const std::int64_t offsets[] = {0, 1, 2};
    const Arc arcs[] = {{1, 3}, {0, 4}};
    expect_reject({2, offsets, arcs}, "asymmetric");
  }
  {  // duplicate parallel arc
    const std::int64_t offsets[] = {0, 2, 4};
    const Arc arcs[] = {{1, 1}, {1, 1}, {0, 1}, {0, 1}};
    expect_reject({2, offsets, arcs}, "duplicate arc");
  }
  {  // null storage with claimed arcs
    const std::int64_t offsets[] = {0, 1};
    expect_reject({1, offsets, nullptr}, "null CSR storage");
  }
}

TEST(CsrValidator, CorruptedCsrFiresTheInvariant) {
  const std::int64_t offsets[] = {0, 1, 1};
  const WeightedGraph::Arc arcs[] = {{1, 1}};
  const WeightedGraph::Csr bad{2, offsets, arcs};
  std::string error;
  Capture capture;
  inv::ScopedFailHandler scoped(capture.handler());
  const std::int64_t fired_before = fired_of(Category::kCsr);
  USNE_CHECK(Category::kCsr, validate_csr(bad, &error), error);
  ASSERT_EQ(capture.hits.size(), 1u);
  EXPECT_EQ(capture.hits[0].category, Category::kCsr);
  EXPECT_NE(capture.hits[0].msg.find("asymmetric"), std::string::npos);
  EXPECT_EQ(fired_of(Category::kCsr), fired_before + 1);
}

// --- transport conservation under a rigged DeliveryModel --------------------

/// A transport that eats every staged message WITHOUT counting it as
/// dropped — deliberately breaking the conservation ledger
/// sent + duplicated == delivered + dropped + in_flight.
class SwallowingModel final : public DeliveryModel {
 public:
  TransportModel kind() const noexcept override {
    return TransportModel::kFaulty;
  }
  void collect(std::int64_t, std::vector<Staged>& staged,
               std::vector<Staged>&) override {
    staged.clear();  // vanish silently: no delivery, no dropped++
  }
};

TEST(TransportAudit, RiggedModelFiresConservation) {
#ifndef USNE_NO_AUDITS
  inv::ScopedAuditsEnabled on(true);
  Capture capture;
  inv::ScopedFailHandler scoped(capture.handler());

  const Graph g = gen_path(3);
  Network net(g);
  net.configure_transport(std::make_unique<SwallowingModel>());
  net.send(0, 1, Message::of(42));
  net.advance_round();

  ASSERT_FALSE(capture.hits.empty());
  EXPECT_EQ(capture.hits[0].category, Category::kTransport);
  EXPECT_NE(capture.hits[0].msg.find("in_flight"), std::string::npos);
  EXPECT_GE(fired_of(Category::kTransport), 1);
#endif
}

TEST(TransportAudit, HealthyModelsConserve) {
#ifndef USNE_NO_AUDITS
  inv::ScopedAuditsEnabled on(true);
  const std::int64_t fired_before = fired_of(Category::kTransport);

  for (const TransportModel model :
       {TransportModel::kIdeal, TransportModel::kFaulty,
        TransportModel::kAsync}) {
    const Graph g = gen_gnm(40, 120, 5);
    Network net(g);
    congest::TransportSpec spec;
    spec.model = model;
    spec.seed = 11;
    spec.drop_p = model == TransportModel::kFaulty ? 0.3 : 0.0;
    spec.dup_p = model == TransportModel::kFaulty ? 0.3 : 0.0;
    spec.latency_max = model == TransportModel::kAsync ? 4 : 1;
    net.configure_transport(spec);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      net.broadcast(v, Message::of(v));
    }
    // Drain the async wheel too: conservation must hold every round.
    while (net.pending_messages() + net.in_flight() > 0) net.advance_round();
    net.advance_round();  // one idle round for good measure
  }

  EXPECT_EQ(fired_of(Category::kTransport), fired_before);
  EXPECT_GT(checked_of(Category::kTransport), 0);
#endif
}

// --- end-to-end: every category exercised, zero firings ----------------------

/// Every vertex rebroadcasts each round — enough fan-out and messages to
/// cross the Scheduler's parallel cutoff so the staged-replay audit runs.
class EchoProgram final : public NodeProgram {
 public:
  explicit EchoProgram(std::int64_t rounds) : rounds_(rounds) {}
  void init(Outbox& out) override {
    for (Vertex v = 0; v < n_; ++v) out.broadcast(v, Message::of(v));
  }
  void set_n(Vertex n) { n_ = n; }
  void on_round(std::int64_t round, Vertex v, std::span<const Received>,
                Outbox& out) override {
    if (round + 1 < rounds_) out.broadcast(v, Message::of(v));
  }
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

 private:
  Vertex n_ = 0;
  std::int64_t rounds_;
};

TEST(InvariantCoverage, AllCategoriesExercisedWithZeroFirings) {
#ifndef USNE_NO_AUDITS
  inv::ScopedAuditsEnabled on(true);
  inv::reset_counters();

  // kScheduler + kTransport: a parallel CONGEST run past the fan-out cutoff.
  {
    const Graph g = gen_gnm(64, 512, 3);
    Network net(g);
    net.set_execution_threads(4);
    EchoProgram program(3);
    program.set_n(g.num_vertices());
    Scheduler(net).run(program);
  }

  // kCsr + kSssp + kServeCache: build an emulator, serve a batch through
  // the cached engine (the engine validates its CSR at construction; every
  // SSSP run checks its postconditions; the batch checks the cache ledger).
  {
    const Graph g = gen_gnm(120, 480, 9);
    BuildSpec spec;
    spec.algorithm = "emulator_fast";
    spec.params.rho = 0.4;
    spec.params.eps = 0.5;
    const BuildOutput built = build(g, spec);

    serve::ServeOptions options;
    options.cache_shards = 2;
    serve::QueryEngine engine(built, options);
    serve::WorkloadSpec workload;
    workload.num_queries = 64;
    const auto queries = serve::generate_workload(g.num_vertices(), workload);
    engine.serve(queries, 2);
  }

  // kDaemon: serve one request over loopback and shut down — stop() checks
  // the request-conservation ledger and the zero-drain postcondition.
  {
    const Graph g = gen_gnm(64, 256, 11);
    BuildSpec spec;
    spec.algorithm = "emulator_fast";
    spec.params.rho = 0.4;
    spec.params.eps = 0.5;
    auto engine = std::make_shared<serve::QueryEngine>(build(g, spec),
                                                       serve::ServeOptions{});
    net::ServerOptions options;
    options.workers = 1;
    net::Server server(engine, options);
    server.start();
    net::Client client;
    client.connect("127.0.0.1", server.port());
    client.query_pair(0, 1);
    client.close();
    server.stop();
  }

  for (int c = 0; c < inv::kNumCategories; ++c) {
    const Category category = static_cast<Category>(c);
    EXPECT_GT(checked_of(category), 0)
        << "category never exercised: " << inv::category_name(category);
    EXPECT_EQ(fired_of(category), 0)
        << "healthy subsystem fired: " << inv::category_name(category);
  }
#endif
}

}  // namespace
}  // namespace usne
