// Transport-layer (DeliveryModel) suite: the Ideal model is byte-identical
// to the classic synchronous engine across every NodeProgram family; the
// degenerate Faulty (drop_p = dup_p = 0) and Async (latency_max = 1)
// configurations collapse to Ideal exactly; Faulty/Async are deterministic
// for a fixed seed at 1/2/8 execution threads; injected events are counted;
// the Scheduler drains in-flight traffic at program end; and the build API
// rejects non-ideal transports on algorithms that do not run on the
// simulator.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "api/build.hpp"
#include "congest/bfs_forest.hpp"
#include "congest/detect.hpp"
#include "congest/engine.hpp"
#include "congest/flood.hpp"
#include "congest/network.hpp"
#include "congest/ruling_set.hpp"
#include "congest/transport.hpp"
#include "core/emulator_distributed.hpp"
#include "core/params.hpp"
#include "core/spanner_distributed.hpp"
#include "graph/generators.hpp"

namespace usne {
namespace {

using congest::Message;
using congest::Network;
using congest::NetworkStats;
using congest::NodeProgram;
using congest::Outbox;
using congest::Received;
using congest::Scheduler;
using congest::TransportCounters;
using congest::TransportModel;
using congest::TransportSpec;

constexpr int kThreadCounts[] = {1, 2, 8};

TransportSpec faulty_spec(double drop_p, double dup_p,
                          std::uint64_t seed = 7) {
  TransportSpec spec;
  spec.model = TransportModel::kFaulty;
  spec.seed = seed;
  spec.drop_p = drop_p;
  spec.dup_p = dup_p;
  return spec;
}

TransportSpec async_spec(std::int64_t latency_max, std::uint64_t seed = 7) {
  TransportSpec spec;
  spec.model = TransportModel::kAsync;
  spec.seed = seed;
  spec.latency_max = latency_max;
  return spec;
}

void expect_same_stats(const NetworkStats& expected, const NetworkStats& got) {
  EXPECT_EQ(expected.rounds, got.rounds);
  EXPECT_EQ(expected.messages, got.messages);
  EXPECT_EQ(expected.words, got.words);
}

// --- spec validation / model metadata ---------------------------------------

TEST(TransportSpecValidation, RejectsOutOfRangeKnobs) {
  EXPECT_THROW(faulty_spec(-0.1, 0).validate(), std::invalid_argument);
  EXPECT_THROW(faulty_spec(1.1, 0).validate(), std::invalid_argument);
  EXPECT_THROW(faulty_spec(0, -0.1).validate(), std::invalid_argument);
  EXPECT_THROW(faulty_spec(0, 1.1).validate(), std::invalid_argument);
  EXPECT_THROW(async_spec(0).validate(), std::invalid_argument);
  EXPECT_THROW(async_spec(-3).validate(), std::invalid_argument);
  EXPECT_NO_THROW(faulty_spec(1.0, 1.0).validate());
  EXPECT_NO_THROW(async_spec(1).validate());
}

TEST(TransportSpecValidation, ModelNamesRoundTrip) {
  for (const TransportModel m : {TransportModel::kIdeal,
                                 TransportModel::kFaulty,
                                 TransportModel::kAsync}) {
    EXPECT_EQ(congest::parse_transport_model(congest::transport_model_name(m)),
              m);
  }
  EXPECT_THROW(congest::parse_transport_model("lossy"), std::invalid_argument);
}

TEST(TransportConfig, RejectsSwapWhileTrafficPending) {
  const Graph g = gen_path(3);
  Network net(g);
  net.send(0, 1, Message::of(1));
  EXPECT_THROW(net.configure_transport(faulty_spec(0.5, 0)), std::logic_error);
  net.advance_round();
  EXPECT_NO_THROW(net.configure_transport(faulty_spec(0.5, 0)));
}

// --- network-level injected events ------------------------------------------

TEST(FaultyTransport, DropAllDeliversNothingButMetersSends) {
  const Graph g = gen_gnm(50, 200, 3);
  Network net(g);
  net.configure_transport(faulty_spec(1.0, 0));
  std::int64_t sent = 0;
  for (Vertex v = 0; v < 50; ++v) {
    net.broadcast(v, Message::of(v));
    sent += static_cast<std::int64_t>(g.neighbors(v).size());
  }
  net.advance_round();
  EXPECT_TRUE(net.delivered_to().empty());
  // Sends are still the algorithm's traffic: the meter counts them even
  // though the transport ate every one.
  EXPECT_EQ(net.stats().messages, sent);
  EXPECT_EQ(net.transport().counters().dropped, sent);
  EXPECT_EQ(net.transport().counters().duplicated, 0);
}

TEST(FaultyTransport, DuplicateAllDoublesEveryInbox) {
  const Graph g = gen_gnm(50, 200, 3);
  Network net(g);
  net.configure_transport(faulty_spec(0.0, 1.0));
  std::int64_t sent = 0;
  for (Vertex v = 0; v < 50; ++v) {
    net.broadcast(v, Message::of(v));
    sent += static_cast<std::int64_t>(g.neighbors(v).size());
  }
  net.advance_round();
  std::int64_t received = 0;
  for (const Vertex v : net.delivered_to()) {
    const auto box = net.inbox(v);
    received += static_cast<std::int64_t>(box.size());
    // Stable per-run order: each sender appears exactly twice, adjacently.
    for (std::size_t i = 1; i < box.size(); i += 2) {
      EXPECT_EQ(box[i].from, box[i - 1].from);
    }
  }
  EXPECT_EQ(received, 2 * sent);
  EXPECT_EQ(net.transport().counters().duplicated, sent);
}

TEST(AsyncTransport, MessagesArriveWithinLatencyBound) {
  const Graph g = gen_path(2);
  const std::int64_t latency_max = 5;
  // Try several seeds so at least one draws latency > 1 — and every
  // message must land within [1, latency_max] rounds of staging.
  bool saw_delay = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Network net(g);
    net.configure_transport(async_spec(latency_max, seed));
    net.send(0, 1, Message::of(42));
    std::int64_t arrival = -1;
    for (std::int64_t r = 1; r <= latency_max; ++r) {
      net.advance_round();
      if (!net.delivered_to().empty()) {
        arrival = r;
        break;
      }
      EXPECT_EQ(net.in_flight(), 1);
    }
    ASSERT_GE(arrival, 1) << "seed=" << seed;
    ASSERT_LE(arrival, latency_max) << "seed=" << seed;
    EXPECT_EQ(net.in_flight(), 0);
    if (arrival > 1) {
      saw_delay = true;
      EXPECT_EQ(net.transport().counters().delayed, 1);
      EXPECT_EQ(net.transport().counters().delay_rounds, arrival - 1);
    }
  }
  EXPECT_TRUE(saw_delay);
}

// --- scheduler quiescence under non-ideal transports ------------------------

/// Broadcasts once in init and immediately reports done: under Ideal this
/// is the flush-or-throw violation; under Async the Scheduler must drain
/// the in-flight messages instead, leaving the network clean.
class FireAndForgetProgram final : public NodeProgram {
 public:
  void init(Outbox& out) override { out.broadcast(0, Message::of(1)); }
  void on_round(std::int64_t, Vertex, std::span<const Received>,
                Outbox&) override {}
  bool done(std::int64_t) const override { return true; }
};

/// Counts deliveries; proves no cross-program leak.
class CountingProgram final : public NodeProgram {
 public:
  explicit CountingProgram(std::int64_t rounds) : rounds_(rounds) {}
  void init(Outbox&) override {}
  void on_round(std::int64_t, Vertex, std::span<const Received> inbox,
                Outbox&) override {
    received_ += static_cast<std::int64_t>(inbox.size());
  }
  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }
  std::int64_t received() const noexcept { return received_; }

 private:
  std::int64_t rounds_;
  std::int64_t received_ = 0;
};

TEST(SchedulerQuiescence, DrainsInFlightTrafficUnderAsync) {
  const Graph g = gen_path(4);
  Network net(g);
  net.configure_transport(async_spec(6));
  Scheduler scheduler(net);

  FireAndForgetProgram fire;
  EXPECT_NO_THROW(scheduler.run(fire));  // would throw under Ideal
  EXPECT_EQ(net.pending_messages() + net.in_flight(), 0);

  CountingProgram after(8);
  scheduler.run(after);
  EXPECT_EQ(after.received(), 0);  // nothing leaked across programs
}

TEST(SchedulerQuiescence, IdealStillThrowsOnLeakyPrograms) {
  const Graph g = gen_path(4);
  Network net(g);
  net.configure_transport(TransportSpec{});  // explicit ideal
  FireAndForgetProgram fire;
  Scheduler scheduler(net);
  EXPECT_THROW(scheduler.run(fire), congest::CongestViolation);
}

// --- ideal parity: every NodeProgram family, explicit vs default ------------

TEST(IdealParity, PrimitivesMatchLegacyPathExactly) {
  const Graph g = gen_gnm(300, 1200, 9);
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 300; v += 7) sources.push_back(v);

  // Legacy path: a Network with its default (ideal) model, never
  // reconfigured. Explicit path: configure_transport(ideal spec).
  Network legacy(g);
  Network explicit_ideal(g);
  explicit_ideal.configure_transport(TransportSpec{});

  const auto f1 = congest::flood_presence(legacy, {0, 7, 123}, 6);
  const auto f2 = congest::flood_presence(explicit_ideal, {0, 7, 123}, 6);
  EXPECT_EQ(f1.dist, f2.dist);

  const auto b1 = congest::build_bfs_forest(legacy, {0, 50, 133}, 5);
  const auto b2 = congest::build_bfs_forest(explicit_ideal, {0, 50, 133}, 5);
  EXPECT_EQ(b1.root, b2.root);
  EXPECT_EQ(b1.depth, b2.depth);
  EXPECT_EQ(b1.parent, b2.parent);

  const auto d1 = congest::detect_congest(legacy, sources, 4, 6);
  const auto d2 = congest::detect_congest(explicit_ideal, sources, 4, 6);
  EXPECT_EQ(d1.rounds_used, d2.rounds_used);
  ASSERT_EQ(d1.hits.size(), d2.hits.size());
  for (std::size_t v = 0; v < d1.hits.size(); ++v) {
    ASSERT_EQ(d1.hits[v].size(), d2.hits[v].size());
    for (std::size_t i = 0; i < d1.hits[v].size(); ++i) {
      EXPECT_EQ(d1.hits[v][i].source, d2.hits[v][i].source);
      EXPECT_EQ(d1.hits[v][i].dist, d2.hits[v][i].dist);
      EXPECT_EQ(d1.hits[v][i].pred, d2.hits[v][i].pred);
    }
  }

  const auto r1 = congest::compute_ruling_set(legacy, sources, 2, 4);
  const auto r2 = congest::compute_ruling_set(explicit_ideal, sources, 2, 4);
  EXPECT_EQ(r1.members, r2.members);
  EXPECT_EQ(r1.rounds_used, r2.rounds_used);

  expect_same_stats(legacy.stats(), explicit_ideal.stats());
}

TEST(IdealParity, ConstructionsMatchLegacyPathExactly) {
  const Graph g = gen_family("er", 128, 2024);

  const auto eparams = DistributedParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  DistributedOptions legacy_opts;
  legacy_opts.keep_audit_data = false;
  const auto e1 = build_emulator_distributed(g, eparams, legacy_opts);
  DistributedOptions ideal_opts = legacy_opts;
  ideal_opts.transport = TransportSpec{};
  const auto e2 = build_emulator_distributed(g, eparams, ideal_opts);
  EXPECT_EQ(e1.base.h.edges(), e2.base.h.edges());
  EXPECT_EQ(e1.local, e2.local);
  expect_same_stats(e1.net, e2.net);
  EXPECT_EQ(e2.transport.dropped, 0);
  EXPECT_EQ(e2.transport.duplicated, 0);
  EXPECT_EQ(e2.transport.delayed, 0);

  const auto sparams = SpannerParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  const auto s1 = build_spanner_congest(g, sparams, false, 1);
  const auto s2 = build_spanner_congest(g, sparams, false, 1, TransportSpec{});
  EXPECT_EQ(s1.base.h.edges(), s2.base.h.edges());
  expect_same_stats(s1.net, s2.net);
}

// --- degenerate configurations collapse to ideal ----------------------------

TEST(DegenerateTransports, ZeroRateFaultyAndUnitLatencyAsyncEqualIdeal) {
  const Graph g = gen_family("er", 128, 2024);
  const auto params = DistributedParams::compute(g.num_vertices(), 4, 0.49, 0.4);

  DistributedOptions opts;
  opts.keep_audit_data = false;
  const auto ideal = build_emulator_distributed(g, params, opts);

  opts.transport = faulty_spec(0.0, 0.0);
  const auto faulty0 = build_emulator_distributed(g, params, opts);
  EXPECT_EQ(ideal.base.h.edges(), faulty0.base.h.edges());
  EXPECT_EQ(ideal.local, faulty0.local);
  expect_same_stats(ideal.net, faulty0.net);
  EXPECT_EQ(faulty0.transport.dropped, 0);
  EXPECT_EQ(faulty0.transport.duplicated, 0);

  opts.transport = async_spec(1);
  const auto async1 = build_emulator_distributed(g, params, opts);
  EXPECT_EQ(ideal.base.h.edges(), async1.base.h.edges());
  EXPECT_EQ(ideal.local, async1.local);
  expect_same_stats(ideal.net, async1.net);
  EXPECT_EQ(async1.transport.delayed, 0);

  const auto sparams = SpannerParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  const auto sideal = build_spanner_congest(g, sparams, false, 1);
  const auto sfaulty0 =
      build_spanner_congest(g, sparams, false, 1, faulty_spec(0.0, 0.0));
  const auto sasync1 =
      build_spanner_congest(g, sparams, false, 1, async_spec(1));
  EXPECT_EQ(sideal.base.h.edges(), sfaulty0.base.h.edges());
  EXPECT_EQ(sideal.base.h.edges(), sasync1.base.h.edges());
  expect_same_stats(sideal.net, sfaulty0.net);
  expect_same_stats(sideal.net, sasync1.net);
}

// --- determinism at 1/2/8 threads under non-ideal transports ----------------

TEST(TransportDeterminism, EmulatorUnderFaultyAndAsyncAcrossThreads) {
  const Graph g = gen_family("er", 128, 2024);
  const auto params = DistributedParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  for (const TransportSpec& transport :
       {faulty_spec(0.05, 0.02), async_spec(4)}) {
    DistributedBuildResult expected;
    for (const int threads : kThreadCounts) {
      DistributedOptions options;
      options.keep_audit_data = false;
      options.num_threads = threads;
      options.transport = transport;
      DistributedBuildResult r = build_emulator_distributed(g, params, options);
      if (threads == 1) {
        expected = std::move(r);
        continue;
      }
      EXPECT_EQ(expected.base.h.edges(), r.base.h.edges())
          << "threads=" << threads;
      EXPECT_EQ(expected.local, r.local) << "threads=" << threads;
      expect_same_stats(expected.net, r.net);
      EXPECT_EQ(expected.transport.dropped, r.transport.dropped);
      EXPECT_EQ(expected.transport.duplicated, r.transport.duplicated);
      EXPECT_EQ(expected.transport.delayed, r.transport.delayed);
      EXPECT_EQ(expected.transport.delay_rounds, r.transport.delay_rounds);
    }
  }
}

TEST(TransportDeterminism, SpannerUnderFaultyAndAsyncAcrossThreads) {
  const Graph g = gen_family("er", 128, 2024);
  const auto params = SpannerParams::compute(g.num_vertices(), 4, 0.49, 0.4);
  for (const TransportSpec& transport :
       {faulty_spec(0.05, 0.02), async_spec(4)}) {
    DistributedSpannerResult expected;
    for (const int threads : kThreadCounts) {
      DistributedSpannerResult r =
          build_spanner_congest(g, params, false, threads, transport);
      if (threads == 1) {
        expected = std::move(r);
        continue;
      }
      EXPECT_EQ(expected.base.h.edges(), r.base.h.edges())
          << "threads=" << threads;
      expect_same_stats(expected.net, r.net);
      EXPECT_EQ(expected.transport.dropped, r.transport.dropped);
      EXPECT_EQ(expected.transport.duplicated, r.transport.duplicated);
      EXPECT_EQ(expected.transport.delayed, r.transport.delayed);
      EXPECT_EQ(expected.transport.delay_rounds, r.transport.delay_rounds);
    }
  }
}

TEST(TransportDeterminism, SameSeedSameRunTwice) {
  const Graph g = gen_family("er", 128, 2024);
  BuildSpec spec;
  spec.algorithm = "emulator_congest";
  spec.params.kappa = 4;
  spec.params.eps = 0.4;
  spec.params.rho = 0.49;
  spec.exec.keep_audit_data = false;
  spec.exec.transport = faulty_spec(0.1, 0.05, 99);
  const auto a = build(g, spec);
  const auto b = build(g, spec);
  EXPECT_EQ(a.h().edges(), b.h().edges());
  EXPECT_EQ(a.stats, b.stats);

  // A different seed produces a different degraded execution (the injected
  // faults actually depend on the seed).
  spec.exec.transport.seed = 100;
  const auto c = build(g, spec);
  EXPECT_NE(a.stats.at("transport_dropped"), 0);
  EXPECT_NE(a.stats.at("transport_dropped"), c.stats.at("transport_dropped"));
}

// --- parallel counting sort (large-batch scatter) ---------------------------

/// Broadcasts from every vertex each round and folds the inbox into an
/// order-sensitive checksum, so any deviation in delivery order or content
/// between the serial and sharded counting sort shows up immediately. The
/// graph is sized so each round's batch (2m messages) exceeds the parallel
/// scatter threshold, and several rounds run back to back — a regression
/// for the cursor-reset bug the sharded pass once had on its second round.
class ChecksumProgram final : public NodeProgram {
 public:
  ChecksumProgram(Vertex n, std::int64_t rounds) : rounds_(rounds) {
    acc_.assign(static_cast<std::size_t>(n), 1);
  }

  void init(Outbox& out) override {
    for (Vertex v = 0; v < static_cast<Vertex>(acc_.size()); ++v) {
      out.broadcast(v, Message::of(v + 1));
    }
  }

  void on_round(std::int64_t round, Vertex v, std::span<const Received> inbox,
                Outbox& out) override {
    auto& acc = acc_[static_cast<std::size_t>(v)];
    for (const Received& r : inbox) {
      // Mix in unsigned space: the rolling hash overflows by design, and
      // signed overflow is UB (UBSan flags it) while unsigned wraps.
      acc = static_cast<congest::Word>(
          static_cast<std::uint64_t>(acc) * 31 +
          static_cast<std::uint64_t>(r.from) * 7 +
          static_cast<std::uint64_t>(r.msg.words[0]));
    }
    if (round + 1 < rounds_) out.broadcast(v, Message::of(acc));
  }

  bool done(std::int64_t next_round) const override {
    return next_round >= rounds_;
  }

  const std::vector<congest::Word>& acc() const noexcept { return acc_; }

 private:
  std::int64_t rounds_;
  std::vector<congest::Word> acc_;
};

TEST(ParallelScatter, LargeBatchCountingSortMatchesSerial) {
  const Graph g = gen_gnm(800, 6400, 13);  // ~12800 messages per full round
  for (const TransportSpec& transport :
       {TransportSpec{}, faulty_spec(0.05, 0.02), async_spec(3)}) {
    std::vector<congest::Word> expected_acc;
    NetworkStats expected_stats;
    TransportCounters expected_injected;
    for (const int threads : kThreadCounts) {
      Network net(g);
      net.set_execution_threads(threads);
      net.configure_transport(transport);
      ChecksumProgram program(g.num_vertices(), 6);
      Scheduler(net).run(program);
      if (threads == 1) {
        expected_acc = program.acc();
        expected_stats = net.stats();
        expected_injected = net.transport().counters();
        continue;
      }
      EXPECT_EQ(expected_acc, program.acc())
          << congest::transport_model_name(transport.model)
          << " threads=" << threads;
      expect_same_stats(expected_stats, net.stats());
      EXPECT_EQ(expected_injected.dropped,
                net.transport().counters().dropped);
      EXPECT_EQ(expected_injected.duplicated,
                net.transport().counters().duplicated);
      EXPECT_EQ(expected_injected.delayed, net.transport().counters().delayed);
    }
  }
}

// --- build API surface -------------------------------------------------------

TEST(BuildApiTransport, CongestAlgorithmsAdvertiseSupport) {
  for (const std::string& name : algorithms()) {
    EXPECT_EQ(describe(name).supports_transport,
              describe(name).model == "congest")
        << name;
  }
}

TEST(BuildApiTransport, RejectsNonIdealTransportOnCentralizedAlgorithms) {
  const Graph g = gen_family("er", 64, 2024);
  BuildSpec spec;
  spec.algorithm = "emulator_centralized";
  spec.exec.transport = faulty_spec(0.1, 0);
  EXPECT_THROW(build(g, spec), std::invalid_argument);
  spec.exec.transport = TransportSpec{};  // ideal is fine everywhere
  EXPECT_NO_THROW(build(g, spec));
}

TEST(BuildApiTransport, RejectsInvalidSpecBeforeRunning) {
  const Graph g = gen_family("er", 64, 2024);
  BuildSpec spec;
  spec.algorithm = "emulator_congest";
  spec.exec.transport = faulty_spec(2.0, 0);
  EXPECT_THROW(build(g, spec), std::invalid_argument);
}

TEST(BuildApiTransport, StatsExposeInjectedCountersOnlyWhenNonIdeal) {
  const Graph g = gen_family("er", 128, 2024);
  BuildSpec spec;
  spec.algorithm = "spanner_congest";
  spec.params.eps = 0.4;
  spec.params.rho = 0.49;
  spec.exec.keep_audit_data = false;
  const auto ideal = build(g, spec);
  EXPECT_EQ(ideal.stats.count("transport_dropped"), 0u);

  spec.exec.transport = faulty_spec(0.05, 0.02);
  const auto faulty = build(g, spec);
  EXPECT_EQ(faulty.stats.count("transport_dropped"), 1u);
  EXPECT_EQ(faulty.stats.count("transport_duplicated"), 1u);
  EXPECT_EQ(faulty.stats.count("transport_delayed"), 1u);
  EXPECT_GT(faulty.stats.at("transport_dropped"), 0);
}

}  // namespace
}  // namespace usne
