// The scale-tier kernel stack (path/sssp_kernel.hpp) and its serve-layer
// integration: flat-frontier Dial and delta-stepping must be bit-identical
// to Dijkstra on every input; degree-sorted renumbering must be invisible
// in every answer; the per-thread source memo must change costs, never
// results or the uncached-engine contract.

#include <gtest/gtest.h>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "path/dijkstra.hpp"
#include "path/sssp_kernel.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

WeightedGraph random_weighted(Vertex n, std::int64_t m, Dist max_w,
                              std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph h(n);
  while (h.num_edges() < m) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    h.add_edge(u, v, rng.between(1, max_w));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Kernel layer

class KernelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelSweep, CsrKernelsMatchDijkstra) {
  const std::uint64_t seed = GetParam();
  // Mixed weight scales: max_w 1 degenerates delta to Dial; 40 exercises
  // the heavy-edge phase for every delta below it.
  for (const Dist max_w : {Dist{1}, Dist{7}, Dist{40}}) {
    const WeightedGraph h = random_weighted(150, 450, max_w, seed);
    const auto csr = h.csr();
    const Dist w = max_edge_weight(csr);
    SsspScratch scratch;  // one scratch reused across every query below
    for (Vertex s = 0; s < 150; s += 37) {
      const std::vector<Dist> want = dijkstra(h, s);
      EXPECT_EQ(dial_sssp_csr(csr, s, w, scratch), want)
          << "dial seed " << seed << " max_w " << max_w << " s " << s;
      for (const Dist delta : {Dist{1}, Dist{4}, Dist{64}}) {
        EXPECT_EQ(delta_sssp_csr(csr, s, w, delta, scratch), want)
            << "delta=" << delta << " seed " << seed << " max_w " << max_w
            << " s " << s;
      }
      EXPECT_EQ(delta_sssp_csr(csr, s, w, auto_delta(csr), scratch), want)
          << "auto delta, seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(SsspKernelTest, DisconnectedAndTrivialGraphs) {
  WeightedGraph h(5);
  h.add_edge(0, 1, 3);
  h.add_edge(1, 2, 2);  // 3 and 4 isolated
  const auto csr = h.csr();
  SsspScratch scratch;
  const Dist w = max_edge_weight(csr);
  for (const Vertex s : {Vertex{0}, Vertex{3}}) {
    const std::vector<Dist> want = dijkstra(h, s);
    EXPECT_EQ(dial_sssp_csr(csr, s, w, scratch), want);
    EXPECT_EQ(delta_sssp_csr(csr, s, w, 4, scratch), want);
  }

  const WeightedGraph single(1);
  const auto single_csr = single.csr();
  EXPECT_EQ(dial_sssp_csr(single_csr, 0, 0, scratch),
            std::vector<Dist>{0});
  EXPECT_EQ(delta_sssp_csr(single_csr, 0, 0, 1, scratch),
            std::vector<Dist>{0});
}

TEST(SsspKernelTest, ParseAndNames) {
  EXPECT_EQ(parse_sssp_kernel("dial"), SsspKernel::kDial);
  EXPECT_EQ(parse_sssp_kernel("delta"), SsspKernel::kDelta);
  EXPECT_THROW(parse_sssp_kernel("bogus"), std::invalid_argument);
  EXPECT_STREQ(sssp_kernel_name(SsspKernel::kDial), "dial");
  EXPECT_STREQ(sssp_kernel_name(SsspKernel::kDelta), "delta");
}

TEST(SsspKernelTest, ScratchReportsResidentBytes) {
  const WeightedGraph h = random_weighted(64, 200, 9, 3);
  SsspScratch scratch;
  EXPECT_EQ(scratch.resident_bytes(), 0);
  const auto csr = h.csr();
  dial_sssp_csr(csr, 0, max_edge_weight(csr), scratch);
  EXPECT_GT(scratch.resident_bytes(), 0);
}

TEST(RenumberTest, DegreeSortedOrderIsAPermutationSortedByDegree) {
  const WeightedGraph h = random_weighted(80, 300, 5, 7);
  const auto csr = h.csr();
  const std::vector<Vertex> new_of_old = degree_sorted_order(csr);
  std::vector<Vertex> old_of_new(new_of_old.size(), -1);
  for (Vertex old = 0; old < csr.n; ++old) {
    const Vertex pos = new_of_old[static_cast<std::size_t>(old)];
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, csr.n);
    ASSERT_EQ(old_of_new[static_cast<std::size_t>(pos)], -1) << "collision";
    old_of_new[static_cast<std::size_t>(pos)] = old;
  }
  for (Vertex pos = 0; pos + 1 < csr.n; ++pos) {
    EXPECT_GE(csr.degree(old_of_new[static_cast<std::size_t>(pos)]),
              csr.degree(old_of_new[static_cast<std::size_t>(pos) + 1]));
  }
}

TEST(RenumberTest, RenumberedCsrRoundTripsDistances) {
  const WeightedGraph h = random_weighted(120, 400, 11, 9);
  const auto csr = h.csr();
  const Dist w = max_edge_weight(csr);
  const std::vector<Vertex> new_of_old = degree_sorted_order(csr);
  std::vector<std::int64_t> offsets;
  std::vector<WeightedGraph::Arc> arcs;
  const auto permuted = renumber_csr(csr, new_of_old, offsets, arcs);
  ASSERT_EQ(permuted.num_arcs(), csr.num_arcs());
  SsspScratch scratch;
  for (Vertex s = 0; s < 120; s += 29) {
    const std::vector<Dist> want = dijkstra(h, s);
    const std::vector<Dist> perm = dial_sssp_csr(
        permuted, new_of_old[static_cast<std::size_t>(s)], w, scratch);
    for (Vertex v = 0; v < 120; ++v) {
      EXPECT_EQ(perm[static_cast<std::size_t>(
                    new_of_old[static_cast<std::size_t>(v)])],
                want[static_cast<std::size_t>(v)])
          << "s " << s << " v " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Graph layer: the packed CSR view and the bulk factory.

TEST(CsrViewTest, MatchesAdjacency) {
  const WeightedGraph h = random_weighted(60, 180, 6, 11);
  const auto csr = h.csr();
  ASSERT_EQ(csr.n, h.num_vertices());
  EXPECT_EQ(csr.num_arcs(), 2 * h.num_edges());
  for (Vertex v = 0; v < csr.n; ++v) {
    const auto row = csr.row(v);
    const auto adj = h.adjacency(v);
    ASSERT_EQ(row.size(), adj.size()) << "v " << v;
    EXPECT_EQ(csr.degree(v), static_cast<std::int64_t>(adj.size()));
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i].to, adj[i].to);
      EXPECT_EQ(row[i].w, adj[i].w);
    }
  }
}

TEST(FromEdgesTest, BulkFactoryMatchesIncrementalConstruction) {
  WeightedGraph incremental(6);
  incremental.add_edge(0, 1, 3);
  incremental.add_edge(1, 2, 1);
  incremental.add_edge(0, 5, 7);
  incremental.add_edge(2, 4, 2);
  const WeightedGraph bulk = WeightedGraph::from_edges(
      6, {{0, 1, 3}, {0, 5, 7}, {1, 2, 1}, {2, 4, 2}});
  EXPECT_EQ(bulk.num_edges(), incremental.num_edges());
  // The lazy per-edge index builds on first edge_weight call.
  EXPECT_EQ(bulk.edge_weight(1, 0), 3);
  EXPECT_EQ(bulk.edge_weight(5, 0), 7);
  EXPECT_EQ(bulk.edge_weight(0, 4), kInfDist);
  for (Vertex s = 0; s < 6; ++s) {
    EXPECT_EQ(dijkstra(bulk, s), dijkstra(incremental, s));
  }
}

TEST(FromEdgesTest, LazyIndexSupportsLaterMutation) {
  WeightedGraph h = WeightedGraph::from_edges(4, {{0, 1, 5}, {1, 2, 5}});
  EXPECT_TRUE(h.add_edge(0, 1, 2));  // min-weight dedup needs the index
  EXPECT_EQ(h.edge_weight(0, 1), 2);
  EXPECT_EQ(h.num_edges(), 2);
}

TEST(FromEdgesTest, RejectsMalformedLists) {
  EXPECT_THROW(WeightedGraph::from_edges(3, {{1, 0, 2}}),
               std::invalid_argument);  // u >= v
  EXPECT_THROW(WeightedGraph::from_edges(3, {{0, 3, 2}}),
               std::invalid_argument);  // out of range
  EXPECT_THROW(WeightedGraph::from_edges(3, {{0, 1, 0}}),
               std::invalid_argument);  // non-positive weight
  EXPECT_THROW(WeightedGraph::from_edges(3, {{0, 1, 2}, {0, 1, 3}}),
               std::invalid_argument);  // duplicate
}

TEST(FromEdgesTest, UnitWeightsServesG) {
  const Graph g = gen_family("er", 64, 5);
  const WeightedGraph h = WeightedGraph::unit_weights(g);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const WeightedEdge& e : h.edges()) EXPECT_EQ(e.w, 1);
}

// ---------------------------------------------------------------------------
// Serve layer: kernel selection, renumbering and the source memo must be
// invisible in every answer, at every thread count.

std::vector<serve::Query> workload_of(serve::WorkloadKind kind, Vertex n) {
  serve::WorkloadSpec spec;
  spec.kind = kind;
  spec.num_queries = 600;
  spec.seed = 42;
  return serve::generate_workload(n, spec);
}

TEST(ServeKernelTest, EngineAnswersIdenticalAcrossKernelsAndThreads) {
  const Vertex n = 256;
  const WeightedGraph h = random_weighted(n, 1024, 9, 13);

  for (const auto kind :
       {serve::WorkloadKind::kZipf, serve::WorkloadKind::kUniform,
        serve::WorkloadKind::kGrouped, serve::WorkloadKind::kPointVsAll}) {
    const std::vector<serve::Query> queries = workload_of(kind, n);
    std::vector<Dist> reference;
    for (const SsspKernel kernel : {SsspKernel::kDial, SsspKernel::kDelta}) {
      for (const auto renumber :
           {serve::Renumber::kNone, serve::Renumber::kDegreeSort}) {
        for (const int threads : {1, 2, 8}) {
          serve::ServeOptions options;
          options.cache_mb = 4;
          options.kernel = kernel;
          options.renumber = renumber;
          const serve::QueryEngine engine(h, 1.0, 0, options);
          const serve::BatchResult batch = engine.serve(queries, threads);
          if (reference.empty()) {
            reference = batch.answers;
          } else {
            EXPECT_EQ(batch.answers, reference)
                << sssp_kernel_name(kernel) << " renumber="
                << (renumber == serve::Renumber::kDegreeSort) << " threads="
                << threads;
          }
        }
      }
    }
  }
}

TEST(ServeKernelTest, DegreeSortFlagFlowsFromBuildSpecToEngine) {
  const Graph g = gen_family("er", 128, 2024);
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params.kappa = 4;
  spec.params.eps = 0.4;
  spec.params.rho = 0.49;
  spec.exec.keep_audit_data = false;

  const BuildOutput plain = build(g, spec);
  spec.exec.degree_sort = true;
  const BuildOutput sorted = build(g, spec);
  // The hint must never leak into the construction itself.
  EXPECT_EQ(plain.h().edges(), sorted.h().edges());
  EXPECT_FALSE(plain.degree_sort);
  EXPECT_TRUE(sorted.degree_sort);

  const serve::QueryEngine plain_engine(plain);    // Renumber::kInherit
  const serve::QueryEngine sorted_engine(sorted);  // picks up the flag
  EXPECT_FALSE(plain_engine.renumbered());
  EXPECT_TRUE(sorted_engine.renumbered());

  const std::vector<serve::Query> queries =
      workload_of(serve::WorkloadKind::kZipf, g.num_vertices());
  const serve::BatchResult a = plain_engine.serve(queries, 2);
  const serve::BatchResult b = sorted_engine.serve(queries, 2);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(ServeKernelTest, SourceMemoShortCircuitsRepeatedSources) {
  const Vertex n = 64;
  const WeightedGraph h = random_weighted(n, 256, 5, 17);
  serve::ServeOptions options;
  options.cache_entries_per_shard = 4;
  const serve::QueryEngine engine(h, 1.0, 0, options);

  // A grouped run: one SSSP for the first query, memo hits for the rest.
  for (Vertex v = 1; v < 20; ++v) engine.query(7, v);
  serve::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.sssp_runs, 1);
  EXPECT_EQ(stats.hits, 18);

  // Same source via query_all: still the one computation.
  const serve::SsspResult all = engine.query_all(7);
  EXPECT_EQ(engine.cache_stats().sssp_runs, 1);
  EXPECT_EQ((*all)[13], engine.query(7, 13));

  // Switching sources invalidates the memo but lands in the shared cache.
  engine.query(9, 3);
  engine.query(7, 3);
  EXPECT_EQ(engine.cache_stats().sssp_runs, 2);
}

TEST(ServeKernelTest, MemoNeverActivatesWithoutCache) {
  const WeightedGraph h = random_weighted(48, 160, 4, 19);
  serve::ServeOptions options;
  options.cache_mb = 0;  // uncached engines are strict recompute references
  const serve::QueryEngine engine(h, 1.0, 0, options);
  engine.query(3, 5);
  engine.query(3, 6);
  engine.query(3, 7);
  EXPECT_EQ(engine.cache_stats().sssp_runs, 3);
}

}  // namespace
}  // namespace usne
