// Tests for the baseline constructions ([EP01], [TZ06], [EN17a]): they must
// be *valid* emulators (weights >= distances, reasonable stretch behaviour)
// and exhibit the size characteristics the paper attributes to them —
// notably [EP01]'s ground-partition overhead, which Algorithm 1 removes.

#include <gtest/gtest.h>

#include "baselines/en17_emulator.hpp"
#include "baselines/ep01_emulator.hpp"
#include "baselines/tz06_emulator.hpp"
#include "core/audit.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "path/bfs.hpp"
#include "util/math.hpp"

namespace usne {
namespace {

TEST(Ep01Baseline, ValidEmulatorWeights) {
  const Graph g = gen_connected_gnm(200, 600, 3);
  const auto params = CentralizedParams::compute(200, 4, 0.25);
  const auto r = build_emulator_ep01(g, params);
  const auto report = audit_edge_weights(r, g, /*exact=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Ep01Baseline, PaysGroundPartitionOverhead) {
  // [EP01] always pays a spanning forest (n - #components edges) on top of
  // its SAI edges. Our Algorithm 1 on the same input never exceeds
  // n^(1+1/kappa), while EP01's total must exceed the forest size alone.
  const Graph g = gen_connected_gnm(400, 1200, 7);
  const auto params = CentralizedParams::compute(400, 8, 0.25);
  const auto ep01 = build_emulator_ep01(g, params);
  const auto ours = build_emulator_centralized(g, params);

  EXPECT_GE(ep01.phases.back().supercluster_edges, 399);  // the forest
  EXPECT_LE(ours.h.num_edges(), size_bound_edges(400, 8));
  EXPECT_GT(ep01.h.num_edges(), ours.h.num_edges());
}

TEST(Ep01Baseline, GroundForestMakesDistancesFinite) {
  // With the ground forest, the EP01 emulator connects everything the
  // graph connects.
  const Graph g = gen_connected_gnm(150, 450, 9);
  const auto params = CentralizedParams::compute(150, 4, 0.25);
  const auto r = build_emulator_ep01(g, params);
  const auto report = evaluate_stretch_exact(g, r.h, 1e18, kInfDist / 2);
  EXPECT_EQ(report.underruns, 0);
  // Every connected pair is connected in H (no infinite multiplicative
  // stretch recorded as the 1e18 sentinel).
  EXPECT_LT(report.max_mult, 1e17);
}

TEST(Tz06Baseline, ValidEmulatorWeights) {
  const Graph g = gen_connected_gnm(200, 600, 5);
  const auto r = build_emulator_tz06(g, 200, 4, 99);
  const auto report = audit_edge_weights(r, g, /*exact=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Tz06Baseline, SeedChangesOutput) {
  const Graph g = gen_connected_gnm(300, 900, 5);
  const auto a = build_emulator_tz06(g, 300, 4, 1);
  const auto b = build_emulator_tz06(g, 300, 4, 2);
  // Randomized construction: different seeds give different emulators
  // (same seed gives identical ones).
  const auto a2 = build_emulator_tz06(g, 300, 4, 1);
  EXPECT_EQ(a.h.edges(), a2.h.edges());
  EXPECT_NE(a.h.edges(), b.h.edges());
}

TEST(Tz06Baseline, ConnectsLikeTheGraph) {
  const Graph g = gen_connected_gnm(150, 450, 8);
  const auto r = build_emulator_tz06(g, 150, 4, 3);
  const auto report = evaluate_stretch_exact(g, r.h, 1e18, kInfDist / 2);
  EXPECT_EQ(report.underruns, 0);
  EXPECT_LT(report.max_mult, 1e17);  // every connected pair reachable in H
}

TEST(En17Baseline, ValidEmulatorWeights) {
  const Graph g = gen_connected_gnm(200, 600, 13);
  const auto r = build_emulator_en17(g, 200, 8, 0.25, 7);
  const auto report = audit_edge_weights(r, g, /*exact=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(En17Baseline, ReproducibleGivenSeed) {
  const Graph g = gen_connected_gnm(200, 600, 13);
  const auto a = build_emulator_en17(g, 200, 8, 0.25, 7);
  const auto b = build_emulator_en17(g, 200, 8, 0.25, 7);
  EXPECT_EQ(a.h.edges(), b.h.edges());
}

TEST(Baselines, OursIsSparsestAtLargeKappa) {
  // The headline comparison (bench E1 in miniature): at kappa ~ log n our
  // deterministic emulator stays under n^(1+1/kappa) ~ n + o(n), while
  // EP01 pays at least ~2n and TZ06's randomized accounting exceeds ours.
  const Vertex n = 512;
  const Graph g = gen_connected_gnm(n, 2048, 31);
  const int kappa = 9;  // = log2(512)
  const auto params = CentralizedParams::compute(n, kappa, 0.25);

  const auto ours = build_emulator_centralized(g, params);
  const auto ep01 = build_emulator_ep01(g, params);
  const auto tz06 = build_emulator_tz06(g, n, kappa, 5);

  EXPECT_LE(ours.h.num_edges(), size_bound_edges(n, kappa));
  EXPECT_LT(ours.h.num_edges(), ep01.h.num_edges());
  EXPECT_LT(ours.h.num_edges(), tz06.h.num_edges());
}

}  // namespace
}  // namespace usne
