// The paper (§2.1.1) observes that which clusters become popular depends on
// the order in which Algorithm 1 pops centers — but every guarantee must
// hold for EVERY order. This suite runs Algorithm 1 under randomized
// processing orders and checks the full contract each time.

#include <gtest/gtest.h>

#include <numeric>

#include "core/audit.hpp"
#include "core/emulator_centralized.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

std::vector<Vertex> shuffled_order(Vertex n, std::uint64_t seed) {
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  return order;
}

class OrderInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderInvariance, FullContractUnderRandomOrder) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen_family(seed % 2 == 0 ? "er" : "caveman", 200, 31);
  const int kappa = 3 + static_cast<int>(seed % 3);
  const auto params = CentralizedParams::compute(g.num_vertices(), kappa, 0.25);

  CentralizedOptions options;
  options.processing_order = shuffled_order(g.num_vertices(), seed * 7919);
  const auto r = build_emulator_centralized(g, params, options);

  // (1) Size bound, regardless of which clusters happened to be popular.
  EXPECT_LE(r.h.num_edges(), size_bound_edges(g.num_vertices(), kappa));
  // (2) Stretch bound.
  const auto stretch = evaluate_stretch_exact(
      g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound());
  EXPECT_EQ(stretch.violations, 0) << "seed " << seed;
  EXPECT_EQ(stretch.underruns, 0);
  // (3) Structural audits.
  const auto report = audit_all(r, g, params.schedule, kappa, true);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.to_string();
}

TEST_P(OrderInvariance, SameOrderSameEmulator) {
  const std::uint64_t seed = GetParam();
  const Graph g = gen_family("ba", 150, 5);
  const auto params = CentralizedParams::compute(g.num_vertices(), 4, 0.25);
  CentralizedOptions options;
  options.processing_order = shuffled_order(g.num_vertices(), seed);
  const auto a = build_emulator_centralized(g, params, options);
  const auto b = build_emulator_centralized(g, params, options);
  EXPECT_EQ(a.h.edges(), b.h.edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(OrderInvariance, DifferentOrdersMayDifferButBothValid) {
  // The star example writ large: orders can change |H| and the phase
  // structure, but never the guarantees. Document that sizes CAN differ.
  const Graph g = gen_star(100);
  const auto params = CentralizedParams::compute(100, 4, 0.25);

  CentralizedOptions center_first;
  center_first.processing_order = {0};
  CentralizedOptions center_last;
  center_last.processing_order = shuffled_order(100, 3);
  // Force 0 to the very back.
  auto& order = center_last.processing_order;
  order.erase(std::find(order.begin(), order.end(), 0));
  order.push_back(0);

  const auto a = build_emulator_centralized(g, params, center_first);
  const auto b = build_emulator_centralized(g, params, center_last);
  EXPECT_NE(a.phases[0].popular, b.phases[0].popular);
  for (const auto* r : {&a, &b}) {
    EXPECT_LE(r->h.num_edges(), size_bound_edges(100, 4));
    const auto report = audit_all(*r, g, params.schedule, 4, true);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

}  // namespace
}  // namespace usne
