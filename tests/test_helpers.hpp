#pragma once

// Shared helpers for the test suite.

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "path/bfs.hpp"

namespace usne::test {

/// Small standard graphs used across suites.
inline Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return b.build();
}

inline Graph two_triangles_bridge() {
  // 0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  b.add_edge(2, 3);
  return b.build();
}

/// Exact distance via BFS (reference).
inline Dist exact_dist(const Graph& g, Vertex u, Vertex v) {
  return bfs_distances(g, u)[static_cast<std::size_t>(v)];
}

/// The graph families used by the property sweeps (connected, varied).
inline const std::vector<std::string>& sweep_families() {
  static const std::vector<std::string> families = {
      "er", "ba", "torus", "star", "tree", "caveman", "ws"};
  return families;
}

}  // namespace usne::test
