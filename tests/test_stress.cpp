// Model-based stress tests: WeightedGraph against a std::map reference
// model under long random operation sequences, and a full-pipeline soak
// across every generator family.

#include <gtest/gtest.h>

#include <map>

#include "core/emulator_centralized.hpp"
#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "oracle/distance_oracle.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace usne {
namespace {

TEST(WeightedGraphStress, MatchesReferenceModel) {
  const Vertex n = 60;
  Rng rng(2024);
  WeightedGraph h(n);
  std::map<std::pair<Vertex, Vertex>, Dist> model;

  for (int op = 0; op < 20000; ++op) {
    Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n));
    const Dist w = rng.between(1, 50);
    const bool accepted = h.add_edge(u, v, w);
    if (u == v) {
      EXPECT_FALSE(accepted);
      continue;
    }
    ASSERT_TRUE(accepted);
    if (u > v) std::swap(u, v);
    const auto it = model.find({u, v});
    if (it == model.end()) {
      model[{u, v}] = w;
    } else {
      it->second = std::min(it->second, w);
    }
    // Periodic full consistency check.
    if (op % 4000 == 3999) {
      ASSERT_EQ(h.num_edges(), static_cast<std::int64_t>(model.size()));
      for (const auto& [key, weight] : model) {
        ASSERT_EQ(h.edge_weight(key.first, key.second), weight);
      }
      // Adjacency is symmetric and complete.
      std::int64_t arcs = 0;
      for (Vertex x = 0; x < n; ++x) arcs += static_cast<std::int64_t>(h.adjacency(x).size());
      ASSERT_EQ(arcs, 2 * h.num_edges());
    }
  }
}

TEST(PipelineSoak, EveryFamilyEndToEnd) {
  // Generator -> Algorithm 1 -> size/stretch -> oracle spot checks, for
  // every family the library ships. Catches family-specific structural
  // corner cases (isolated vertices, cliques, bridges...).
  for (const std::string& family : all_families()) {
    const Graph g = gen_family(family, 180, 99);
    const Vertex n = g.num_vertices();
    const auto params = CentralizedParams::compute(n, 4, 0.25);
    const auto r = build_emulator_centralized(g, params);
    EXPECT_LE(r.h.num_edges(), size_bound_edges(n, 4)) << family;
    const auto stretch = evaluate_stretch_sampled(
        g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound(),
        6, 5);
    EXPECT_TRUE(stretch.ok()) << family << " violations=" << stretch.violations;
  }
}

TEST(PipelineSoak, FastBuilderEveryFamily) {
  for (const std::string& family : all_families()) {
    const Graph g = gen_family(family, 180, 77);
    const Vertex n = g.num_vertices();
    const auto params = DistributedParams::compute(n, 8, 0.4, 0.3);
    const auto r = build_emulator_fast(g, params);
    EXPECT_LE(r.h.num_edges(), size_bound_edges(n, 8)) << family;
    const auto stretch = evaluate_stretch_sampled(
        g, r.h, params.schedule.alpha_bound(), params.schedule.beta_bound(),
        6, 3);
    EXPECT_TRUE(stretch.ok()) << family << " violations=" << stretch.violations;
  }
}

TEST(PipelineSoak, RepeatedBuildsShareNothing) {
  // Re-entrancy: building twice from the same graph object and
  // interleaving queries must not interfere.
  const Graph g = gen_connected_gnm(200, 600, 8);
  const auto params = CentralizedParams::compute(200, 4, 0.25);
  const auto a = build_emulator_centralized(g, params);
  const auto dist_a_before = dijkstra(a.h, 0);
  const auto b = build_emulator_centralized(g, params);
  const auto dist_a_after = dijkstra(a.h, 0);
  EXPECT_EQ(dist_a_before, dist_a_after);
  EXPECT_EQ(a.h.edges(), b.h.edges());
}

TEST(PipelineSoak, HopsetAndOracleComposition) {
  // Use the oracle's emulator as a hopset: the two applications compose.
  const Graph g = gen_torus(16, 16);
  OracleOptions options;
  options.kappa = 8;
  options.rho = 0.4;
  const ApproxDistanceOracle oracle(g, options);
  const auto report = measure_hopbound(g, oracle.emulator(), {0, 37},
                                       oracle.alpha() - 1.0, oracle.beta(), 64);
  ASSERT_GT(report.hopbound, 0);
  // The torus hop radius from these sources is 16; the emulator must not
  // make it worse.
  EXPECT_LE(report.hopbound, 16 + 1);
}

}  // namespace
}  // namespace usne
