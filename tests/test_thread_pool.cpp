// Tests for the persistent thread pool backing the parallel CONGEST
// scheduler: full index coverage, load-balancing across reuse, exception
// propagation, and degenerate widths.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace usne::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int kTasks = 2000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(batch + 1, [&](int i) { sum += i + 1; });
  }
  // sum over batches of 1 + 2 + ... + (batch+1).
  std::int64_t expected = 0;
  for (int batch = 0; batch < 50; ++batch) {
    expected += static_cast<std::int64_t>(batch + 1) * (batch + 2) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, BatchesSmallerThanWidth) {
  ThreadPool pool(8);
  std::atomic<int> hits{0};
  pool.parallel_for(2, [&](int) { ++hits; });
  EXPECT_EQ(hits.load(), 2);
  pool.parallel_for(0, [&](int) { ++hits; });  // no-op
  EXPECT_EQ(hits.load(), 2);
}

TEST(ThreadPool, WidthOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](int i) { order.push_back(i); });  // single lane
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ClampsNonPositiveWidth) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.parallelism(), 1);
  std::atomic<int> hits{0};
  pool.parallel_for(3, [&](int) { ++hits; });
  EXPECT_EQ(hits.load(), 3);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int i) {
                          if (i == 37) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // Remaining indices still ran to completion.
  EXPECT_EQ(completed.load(), 99);
  // The pool stays usable afterwards.
  std::atomic<int> hits{0};
  pool.parallel_for(10, [&](int) { ++hits; });
  EXPECT_EQ(hits.load(), 10);
}

}  // namespace
}  // namespace usne::util
