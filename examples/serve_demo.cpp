// Serving scenario demo: preprocess a network once, then answer a skewed
// stream of distance queries from many threads through serve::QueryEngine.
//
// The pipeline the serve subsystem packages:
//
//   usne::build()  ->  QueryEngine(BuildOutput)  ->  generate_workload()
//                  ->  engine.serve(queries, threads)  ->  BatchResult
//
// plus a stretch sample proving every served answer obeys the paper's
// d_G <= d <= alpha * d_G + beta guarantee.
//
//   ./serve_demo [--n 4096] [--queries 50000] [--threads 0] [--cache-mb 32]

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "serve/query_engine.hpp"
#include "serve/stats.hpp"
#include "serve/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 4096)"},
           {"queries", "workload size (default 50000)"},
           {"threads", "serving lanes, 0 = hardware (default 0)"},
           {"cache-mb", "SSSP cache budget in MiB (default 32)"},
           {"seed", "graph + workload seed (default 11)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("serve_demo");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 4096));
  const std::int64_t num_queries = cli.get_int("queries", 50000);
  const int threads_flag = static_cast<int>(cli.get_int("threads", 0));
  // Resolve 0 = hardware up front so the table labels real lane counts
  // (at least 2, so the multi-threaded row exists even on one core).
  const int threads =
      threads_flag == 0
          ? static_cast<int>(std::max(2u, std::thread::hardware_concurrency()))
          : threads_flag;
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  // Preprocess: one ultra-sparse emulator through the unified API.
  const Graph g = gen_connected_gnm(n, 8 * static_cast<std::int64_t>(n), seed);
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params = {0, 22, 0.25, 0.3, false};
  spec.exec.keep_audit_data = false;
  Timer build_timer;
  const BuildOutput built = build(g, spec);
  std::cout << "network: n = " << n << ", m = " << g.num_edges()
            << "  ->  |H| = " << built.h().num_edges() << " in "
            << format_double(build_timer.seconds(), 2) << "s\n";

  serve::ServeOptions options;
  options.cache_mb = cli.get_double("cache-mb", 32.0);
  const serve::QueryEngine engine(built, options);

  // A zipf-source stream: most traffic asks about a hot head of sources,
  // the shape the sharded cache is built for.
  serve::WorkloadSpec workload;
  workload.kind = serve::WorkloadKind::kZipf;
  workload.num_queries = num_queries;
  workload.seed = seed;
  const std::vector<serve::Query> queries = serve::generate_workload(n, workload);

  Table table({"threads", "qps", "wall_ms", "sssp", "hits", "hit_rate"});
  std::vector<int> lane_rows = {1};
  if (threads > 1) lane_rows.push_back(threads);
  for (const int lanes : lane_rows) {
    // Fresh engine per row so each row pays its own cold-cache cost.
    const serve::QueryEngine row_engine(built, options);
    const serve::BatchResult batch = row_engine.serve(queries, lanes);
    const std::int64_t answered = batch.point_queries + batch.all_queries;
    table.row()
        .add(lanes)
        .add(batch.qps, 0)
        .add(batch.wall_s * 1e3, 1)
        .add(batch.cache.sssp_runs)
        .add(batch.cache.hits)
        .add(answered > 0 ? static_cast<double>(batch.cache.hits) /
                                static_cast<double>(answered)
                          : 0,
             3);
  }
  table.print(std::cout, "zipf workload, " + std::to_string(queries.size()) +
                             " queries (seed " + std::to_string(seed) + ")");

  const serve::StretchSample stretch =
      serve::sample_query_stretch(g, engine, queries, 200);
  std::cout << "stretch sample: " << stretch.pairs << " pairs vs exact BFS, "
            << stretch.violations << " violations, " << stretch.underruns
            << " underruns, max additive surplus " << stretch.max_additive
            << "  (guarantee: d <= " << format_double(engine.alpha(), 3)
            << " * d_G + " << engine.beta() << ")\n";
  return stretch.ok() ? 0 : 1;
}
