// Quickstart: build a near-additive emulator in ~20 lines through the
// unified construction API (api/build.hpp).
//
//   ./quickstart [--n 4096] [--kappa 8] [--eps 0.25] [--seed 1]
//
// Generates a random graph, runs the paper's Algorithm 1
// ("emulator_centralized" in the registry), and prints the size and stretch
// guarantees next to measured values.

#include <iostream>

#include "api/build.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 4096)"},
           {"kappa", "sparsity parameter kappa >= 1 (default 8)"},
           {"eps", "multiplicative slack in (0,1) (default 0.25)"},
           {"seed", "generator seed (default 1)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("quickstart");
    return cli.help_requested() ? 0 : 1;
  }

  const Vertex n = static_cast<Vertex>(cli.get_int("n", 4096));
  const int kappa = static_cast<int>(cli.get_int("kappa", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. An input graph.
  const Graph g = gen_connected_gnm(n, 4L * n, seed);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges() << "\n";

  // 2. One BuildSpec: the algorithm name plus the unified parameters.
  BuildSpec spec;
  spec.algorithm = "emulator_centralized";
  spec.params.kappa = kappa;
  spec.params.eps = cli.get_double("eps", 0.25);

  // 3. Build (Algorithm 1 of the paper).
  const BuildOutput result = build(g, spec);
  std::cout << "params: " << result.params_description << "\n";
  std::cout << "emulator: " << result.result.summary() << "\n";
  std::cout << "size bound n^(1+1/kappa) = " << emulator_size_bound(n, kappa)
            << "  ->  |H| = " << result.h().num_edges() << "  (ratio "
            << static_cast<double>(result.h().num_edges()) /
                   static_cast<double>(emulator_size_bound(n, kappa))
            << ")\n";

  // 4. Check the computed (alpha, beta) guarantee on a sample of pairs.
  const auto stretch = evaluate_stretch_sampled(g, result.h(), result.alpha,
                                                result.beta, 16, seed);
  std::cout << "stretch over " << stretch.pairs
            << " pairs: max multiplicative " << stretch.max_mult
            << ", max additive " << stretch.max_additive << " (budget alpha="
            << result.alpha << ", beta=" << result.beta << ")\n"
            << "violations: " << stretch.violations
            << "  underruns: " << stretch.underruns << "\n";
  return stretch.ok() ? 0 : 1;
}
