// Application scenario (the paper's §1.1 motivation): answer many
// approximate distance queries on an ultra-sparse emulator instead of the
// original dense graph.
//
// A logistics-style scenario: a dense similarity/road network, a stream of
// point-to-point distance queries. Preprocess once into an emulator with
// ~n edges; per-query work then depends on n, not on |E|.
//
//   ./approx_shortest_paths [--n 16384] [--avg-deg 32] [--queries 25]

#include <cmath>
#include <iostream>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "path/bfs.hpp"
#include "path/dijkstra.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 16384)"},
           {"avg-deg", "average degree (default 32)"},
           {"queries", "number of sampled s-t queries (default 25)"},
           {"seed", "seed (default 11)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("approx_shortest_paths");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 16384));
  const int avg_deg = static_cast<int>(cli.get_int("avg-deg", 32));
  const int queries = static_cast<int>(cli.get_int("queries", 25));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  const Graph g =
      gen_connected_gnm(n, static_cast<std::int64_t>(n) * avg_deg / 2, seed);
  std::cout << "network: n = " << n << ", m = " << g.num_edges() << "\n";

  // Preprocess: one ultra-sparse emulator through the unified API.
  const double log_n = std::log2(static_cast<double>(n));
  const int kappa = static_cast<int>(std::ceil(2 * log_n));
  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params = {0, kappa, 0.25, 0.3, false};
  spec.exec.keep_audit_data = false;
  Timer build_timer;
  const BuildOutput emulator = build(g, spec);
  std::cout << "preprocess: |H| = " << emulator.h().num_edges() << " edges in "
            << format_double(build_timer.seconds(), 2) << "s  (kappa = "
            << kappa << ")\n\n";

  // Query stream: exact BFS on G vs Dial's algorithm on H.
  Rng rng(seed);
  Table table({"s", "t", "d_G", "d_H", "surplus", "G us", "H us"});
  double total_g_us = 0;
  double total_h_us = 0;
  Dist worst_surplus = 0;
  for (int q = 0; q < queries; ++q) {
    const Vertex s = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex t = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    Timer tg;
    const Dist dg = bfs_distances(g, s)[static_cast<std::size_t>(t)];
    const double g_us = tg.seconds() * 1e6;
    Timer th;
    const Dist dh = dial_sssp(emulator.h(), s)[static_cast<std::size_t>(t)];
    const double h_us = th.seconds() * 1e6;
    total_g_us += g_us;
    total_h_us += h_us;
    worst_surplus = std::max(worst_surplus, dh - dg);
    if (q < 10) {
      table.row()
          .add(static_cast<std::int64_t>(s))
          .add(static_cast<std::int64_t>(t))
          .add(dg)
          .add(dh)
          .add(dh - dg)
          .add(g_us, 0)
          .add(h_us, 0);
    }
  }
  table.print(std::cout, "first queries (of " + std::to_string(queries) + ")");
  std::cout << "mean per-query: BFS on G "
            << format_double(total_g_us / queries, 0) << "us,  Dial on H "
            << format_double(total_h_us / queries, 0) << "us  (speedup "
            << format_double(total_g_us / total_h_us, 1) << "x)\n"
            << "worst additive surplus observed: " << worst_surplus
            << "  (guaranteed <= " << emulator.beta
            << " plus (alpha-1)*d_G)\n";
  return 0;
}
