// usne_run — build any registered construction from CLI flags through the
// unified API (api/build.hpp) and emit the uniform stats JSON.
//
//   ./usne_run --list                     enumerate registered algorithms
//   ./usne_run --describe spanner         metadata for one algorithm
//   ./usne_run --algo emulator_congest --family er --n 128 --kappa 4
//              --rho 0.49 --eps 0.4 --seed 2024 --threads 1 --json out.json
//   ./usne_run --algo spanner_congest --transport faulty --drop-p 0.05
//              --dup-p 0.02 --transport-seed 7      (lossy links)
//   ./usne_run --algo emulator_congest --transport async --latency-max 4
//              --transport-seed 7                   (variable latency)
//
// The JSON record embeds BuildOutput::stats_json(), so the counters
// (edges/phases, and rounds/messages/words for CONGEST variants) are the
// same uniform StatsMap every other consumer of the API sees; the
// scripts/check.sh registry smoke pass diffs them against BENCH_congest.json.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // The registry reports unknown algorithms / unsupported parameter
  // combinations via std::invalid_argument whose message lists the
  // catalog; surface it as a CLI error, not a terminate().
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

namespace {

int run(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"algo", "algorithm to build (see --list)"},
           {"list", "list registered algorithms and exit"},
           {"describe", "print metadata for one algorithm and exit"},
           {"family", "graph family (default er; see generators.hpp)"},
           {"n", "number of vertices (default 256)"},
           {"kappa", "sparsity parameter (default 4)"},
           {"eps", "stretch slack in (0,1) (default 0.25)"},
           {"rho", "time exponent in (1/kappa, 1/2) (default 0.45)"},
           {"rescale", "treat eps as the final target stretch (default off)"},
           {"threads", "CONGEST scheduler lanes, 0 = hardware (default 1)"},
           {"seed", "generator + baseline seed (default 2024)"},
           {"audit", "retain audit data (default off)"},
           {"json", "write the uniform stats JSON to FILE ('-' = stdout)"},
           {"transport", "delivery model ideal|faulty|async (default ideal)"},
           {"drop-p", "faulty: per-message drop probability (default 0)"},
           {"dup-p", "faulty: per-message duplicate probability (default 0)"},
           {"latency-max", "async: latency uniform in [1, L] rounds (default 1)"},
           {"transport-seed", "seed of the transport hash (default 1)"}},
          /*allow_positional=*/true,
          /*switches=*/{"list", "rescale", "audit"});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("usne_run");
    return cli.help_requested() ? 0 : 1;
  }

  if (cli.get_bool("list", false)) {
    for (const std::string& name : algorithms()) std::cout << name << '\n';
    return 0;
  }
  if (cli.has("describe")) {
    const AlgorithmInfo& info = describe(cli.get("describe", ""));
    std::cout << info.name << ": " << info.summary << '\n'
              << "  kind=" << info.kind << " model=" << info.model
              << (info.deterministic ? " deterministic" : " randomized")
              << (info.baseline ? " baseline" : " paper-variant")
              << (info.uses_rho ? " uses-rho" : "")
              << (info.uses_seed ? " uses-seed" : "")
              << (info.supports_rescale ? " supports-rescale" : "")
              << (info.supports_transport ? " supports-transport" : "") << '\n';
    return 0;
  }

  BuildSpec spec;
  spec.algorithm = cli.get("algo", "");
  // A bare positional is accepted as the algorithm name: `usne_run spanner`.
  if (spec.algorithm.empty() && !cli.positional().empty()) {
    spec.algorithm = cli.positional().front();
  }
  if (spec.algorithm.empty()) {
    std::cerr << "error: --algo is required (try --list)\n";
    return 1;
  }
  const std::string family = cli.get("family", "er");
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 256));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2024));
  spec.params.kappa = static_cast<int>(cli.get_int("kappa", 4));
  spec.params.eps = cli.get_double("eps", 0.25);
  spec.params.rho = cli.get_double("rho", 0.45);
  spec.params.rescale = cli.get_bool("rescale", false);
  spec.exec.num_threads = static_cast<int>(cli.get_int("threads", 1));
  spec.exec.keep_audit_data = cli.get_bool("audit", false);
  spec.exec.seed = seed;
  spec.exec.transport.model =
      congest::parse_transport_model(cli.get("transport", "ideal"));
  spec.exec.transport.seed =
      static_cast<std::uint64_t>(cli.get_int("transport-seed", 1));
  spec.exec.transport.drop_p = cli.get_double("drop-p", 0.0);
  spec.exec.transport.dup_p = cli.get_double("dup-p", 0.0);
  spec.exec.transport.latency_max = cli.get_int("latency-max", 1);

  const Graph g = gen_family(family, n, seed);
  Timer timer;
  const BuildOutput out = build(g, spec);
  const double wall_s = timer.seconds();

  std::cout << describe(spec.algorithm).summary << '\n'
            << "graph:  " << family << ", n = " << g.num_vertices()
            << ", m = " << g.num_edges() << '\n';
  if (!out.params_description.empty()) {
    std::cout << "params: " << out.params_description << '\n';
  }
  std::cout << "|H| = " << out.h().num_edges();
  if (out.has_guarantee) {
    std::cout << "  guarantee: d_H <= " << out.alpha << " * d_G + " << out.beta;
  }
  std::cout << '\n';
  if (out.distributed) {
    std::cout << "congest: rounds = " << out.net.rounds
              << ", messages = " << out.net.messages
              << ", words = " << out.net.words;
    if (spec.exec.transport.model != congest::TransportModel::kIdeal) {
      std::cout << "\ntransport: "
                << congest::transport_model_name(spec.exec.transport.model)
                << " (seed " << spec.exec.transport.seed
                << "), injected: dropped = " << out.transport.dropped
                << ", duplicated = " << out.transport.duplicated
                << ", delayed = " << out.transport.delayed;
    }
    if (!out.local.empty()) {
      // Spanners carry no local-knowledge obligation (their edges are the
      // endpoints' own incident graph edges), so only report the check
      // where it verifies something.
      std::cout << ", endpoints_ok = "
                << (out.endpoints_consistent() ? "yes" : "NO");
    }
    std::cout << '\n';
  }
  std::cout << "built in " << wall_s << "s\n";

  if (cli.has("json")) {
    std::ostringstream record;
    record << "{\"driver\": \"usne_run\", \"family\": \"" << family
           << "\", \"n\": " << g.num_vertices()
           << ", \"kappa\": " << spec.params.kappa
           << ", \"eps\": " << spec.params.eps
           << ", \"rho\": " << spec.params.rho << ", \"seed\": " << seed
           << ", \"threads\": " << spec.exec.num_threads << ", \"transport\": \""
           << congest::transport_model_name(spec.exec.transport.model)
           << "\", \"transport_seed\": " << spec.exec.transport.seed
           << ", \"drop_p\": " << spec.exec.transport.drop_p
           << ", \"dup_p\": " << spec.exec.transport.dup_p
           << ", \"latency_max\": " << spec.exec.transport.latency_max
           << ", \"build\": " << out.stats_json() << "}\n";
    const std::string path = cli.get("json", "-");
    if (path == "-") {
      std::cout << record.str();
    } else {
      std::ofstream file(path);
      file << record.str();
      file.flush();
      if (!file) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
      std::cout << "[wrote " << path << "]\n";
    }
  }
  return 0;
}

}  // namespace
