// usne_run — build any registered construction from CLI flags through the
// unified API (api/build.hpp) and emit the uniform stats JSON; with the
// `query` subcommand, additionally serve a reproducible distance-query
// workload against the built H through serve::QueryEngine.
//
//   ./usne_run --list                     enumerate registered algorithms
//   ./usne_run --describe spanner         metadata for one algorithm
//   ./usne_run --algo emulator_congest --family er --n 128 --kappa 4
//              --rho 0.49 --eps 0.4 --seed 2024 --threads 1 --json out.json
//   ./usne_run --algo spanner_congest --transport faulty --drop-p 0.05
//              --dup-p 0.02 --transport-seed 7      (lossy links)
//   ./usne_run --algo emulator_congest --transport async --latency-max 4
//              --transport-seed 7                   (variable latency)
//   ./usne_run query --algo emulator_fast --family er --n 1024
//              --workload zipf --queries 10000 --qps-threads 4 --cache-mb 8
//              --workload-seed 42 --stretch-sample 200 --json -
//
// The build JSON record embeds BuildOutput::stats_json(), so the counters
// (edges/phases, and rounds/messages/words for CONGEST variants) are the
// same uniform StatsMap every other consumer of the API sees; the
// scripts/check.sh registry smoke pass diffs them against BENCH_congest.json.
// The query JSON record embeds BatchResult::stats_json() — its `checksum`
// over all answers is the seed-stability probe of the check.sh serve smoke.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "serve/query_engine.hpp"
#include "serve/stats.hpp"
#include "serve/workload.hpp"
#include "util/build_info.hpp"
#include "util/cli.hpp"
#include "util/invariant.hpp"
#include "util/mem.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // The registry reports unknown algorithms / unsupported parameter
  // combinations via std::invalid_argument whose message lists the
  // catalog; surface it as a CLI error, not a terminate().
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

namespace {

/// Extra JSON field carrying the invariant-audit counters — only when
/// audits are enabled (USNE_AUDIT=1 or a debug build), so default release
/// records stay byte-identical with the pre-invariant driver.
std::string invariants_field() {
  if (!usne::inv::audits_enabled()) return "";
  return ", \"invariants\": " + usne::inv::counters_json();
}

/// `--profile`: per-(phase, task) scheduler stage breakdown plus the
/// attribution-coverage line the acceptance gate reads (stage_sum must
/// reach >= 95% of the summed scheduler wall time — anything less means a
/// stage is escaping attribution).
void print_profile(const std::vector<usne::congest::PhaseProfileEntry>& prof) {
  using usne::format_double;
  if (prof.empty()) {
    std::cout << "profile: empty (only CONGEST algorithms are profiled)\n";
    return;
  }
  usne::Table table({"task", "rounds", "deliver_ms", "compute_ms",
                     "replay_ms", "end_round_ms", "other_ms", "wall_ms"});
  usne::congest::StageTimes total;
  for (const usne::congest::PhaseProfileEntry& e : prof) {
    const usne::congest::StageTimes& t = e.times;
    table.row()
        .add(e.label)
        .add(t.rounds)
        .add(t.deliver_s * 1e3, 3)
        .add(t.compute_s * 1e3, 3)
        .add(t.replay_s * 1e3, 3)
        .add(t.end_round_s * 1e3, 3)
        .add((t.init_s + t.drain_s) * 1e3, 3)
        .add(t.wall_s * 1e3, 3);
    total += t;
  }
  table.print(std::cout, "construction profile");
  const double coverage =
      total.wall_s > 0 ? total.stage_sum_s() / total.wall_s : 1.0;
  std::cout << "profile: " << prof.size() << " tasks, scheduler wall = "
            << format_double(total.wall_s * 1e3, 3) << " ms, stage coverage = "
            << format_double(coverage * 100.0, 1) << "%\n";
}

/// `--profile` JSON rider: labeled stage times, one object per task.
std::string profile_json(
    const std::vector<usne::congest::PhaseProfileEntry>& prof) {
  std::ostringstream out;
  out << ", \"profile\": [";
  for (std::size_t i = 0; i < prof.size(); ++i) {
    const usne::congest::StageTimes& t = prof[i].times;
    if (i > 0) out << ", ";
    out << "{\"compute_s\": " << t.compute_s
        << ", \"deliver_s\": " << t.deliver_s
        << ", \"drain_s\": " << t.drain_s
        << ", \"end_round_s\": " << t.end_round_s
        << ", \"init_s\": " << t.init_s << ", \"rounds\": " << t.rounds
        << ", \"task\": \"" << prof[i].label
        << "\", \"wall_s\": " << t.wall_s << "}";
  }
  out << "]";
  return out.str();
}

/// `--trace-out FILE`: dump the per-thread span rings as one Chrome
/// trace-event JSON file (chrome://tracing / Perfetto load it directly).
int dump_trace(const std::string& path) {
  usne::obs::trace_set_enabled(false);
  std::ofstream file(path);
  file << usne::obs::trace_dump_chrome_json();
  file.flush();
  if (!file) {
    std::cerr << "error: could not write " << path << '\n';
    return 1;
  }
  std::cout << "[wrote " << path << ": " << usne::obs::trace_retained_events()
            << " trace events, " << usne::obs::trace_dropped_events()
            << " dropped]\n";
  return 0;
}

/// `usne_run query`: wrap the built H in a QueryEngine, expand the
/// requested workload, serve it, and report throughput + answer quality.
int run_query(const usne::Cli& cli, const usne::Graph& g,
              const usne::BuildSpec& spec, const usne::BuildOutput& built,
              const std::string& family, std::uint64_t seed, double build_s) {
  using namespace usne;

  serve::WorkloadSpec workload;
  workload.kind = serve::parse_workload_kind(cli.get("workload", "zipf"));
  workload.num_queries = cli.get_int("queries", 10000);
  workload.seed = static_cast<std::uint64_t>(cli.get_int("workload-seed", 42));
  workload.zipf_s = cli.get_double("zipf-s", 1.1);
  workload.group_size = cli.get_int("group-size", 64);
  workload.all_fraction = cli.get_double("all-fraction", 0.05);

  serve::ServeOptions options;
  options.cache_mb = cli.get_double("cache-mb", 64.0);
  options.cache_shards = static_cast<int>(cli.get_int("cache-shards", 0));
  options.kernel = parse_sssp_kernel(cli.get("kernel", "dial"));
  options.delta = cli.get_int("delta", 0);
  options.slow_query_us = cli.get_int("slow-query-us", 0);
  // Per-query service-latency percentiles ride along in the query record
  // (the same serve::LatencyHistogram the daemon's STATS endpoint merges).
  options.record_latency = true;
  // --degree-sort reached the engine via ExecOptions -> BuildOutput (the
  // ServeOptions default, Renumber::kInherit, picks it up from `built`).
  const int qps_threads = static_cast<int>(cli.get_int("qps-threads", 1));
  // The stretch gate only applies where a stretch claim exists: randomized
  // baselines carry no per-instance guarantee (has_guarantee = false), and
  // builds under a non-ideal transport are robustness workloads whose
  // outputs deliberately void the (alpha, beta) claim (see README).
  const bool check_stretch =
      built.has_guarantee &&
      spec.exec.transport.model == congest::TransportModel::kIdeal;
  const std::int64_t stretch_pairs =
      check_stretch ? cli.get_int("stretch-sample", 100) : 0;

  const serve::QueryEngine engine(built, options);
  const std::vector<serve::Query> queries =
      serve::generate_workload(g.num_vertices(), workload);
  const serve::BatchResult batch = engine.serve(queries, qps_threads);
  const serve::StretchSample stretch =
      stretch_pairs > 0
          ? serve::sample_query_stretch(g, engine, queries, stretch_pairs)
          : serve::StretchSample{};

  std::cout << "serve: " << spec.algorithm << " on " << family
            << ", n = " << g.num_vertices() << ", |H| = "
            << built.h().num_edges() << "  (built in "
            << format_double(build_s, 2) << "s)\n"
            << "workload: " << serve::workload_kind_name(workload.kind)
            << ", " << queries.size() << " queries (seed " << workload.seed
            << "), threads = " << qps_threads << ", cache = ";
  if (options.cache_mb > 0) {
    std::cout << format_double(options.cache_mb, 1) << " MiB\n";
  } else {
    std::cout << "off\n";
  }
  std::cout << "throughput: " << format_double(batch.qps, 0) << " qps  ("
            << format_double(batch.wall_s * 1e3, 1) << " ms; "
            << batch.cache.sssp_runs << " SSSP runs, "
            << batch.cache.hits << " cache hits, " << batch.cache.evictions
            << " evictions)\n"
            << "kernel: " << engine.kernel_name()
            << (engine.renumbered() ? " (degree-sorted)" : "")
            << ", peak rss: " << format_double(util::peak_rss_mb(), 1)
            << " MiB\n";
  if (batch.latency) {
    std::cout << "latency: p50 = " << batch.latency->percentile(0.50)
              << "us, p99 = " << batch.latency->percentile(0.99)
              << "us, p999 = " << batch.latency->percentile(0.999)
              << "us per query\n";
  }
  std::cout << "checksum: " << batch.checksum << '\n';
  if (stretch_pairs > 0) {
    std::cout << "stretch sample: " << stretch.pairs << " pairs vs BFS on G, "
              << stretch.violations << " violations, " << stretch.underruns
              << " underruns (guarantee d <= "
              << format_double(engine.alpha(), 3) << " * d_G + "
              << engine.beta() << ")\n";
    if (!stretch.ok()) {
      std::cerr << "error: stretch guarantee violated\n";
      return 1;
    }
  } else if (!check_stretch) {
    std::cout << "stretch sample: skipped (this build carries no stretch "
                 "guarantee)\n";
  }

  if (cli.has("json")) {
    std::ostringstream record;
    record << "{\"driver\": \"usne_run\", \"mode\": \"query\", \"algo\": \""
           << spec.algorithm << "\", \"family\": \"" << family
           << "\", \"n\": " << g.num_vertices()
           << ", \"kappa\": " << spec.params.kappa << ", \"seed\": " << seed
           << ", \"workload\": \"" << serve::workload_kind_name(workload.kind)
           << "\", \"workload_seed\": " << workload.seed
           << ", \"qps_threads\": " << qps_threads
           << ", \"cache_mb\": " << format_double(options.cache_mb, 2)
           << ", \"kernel\": \"" << engine.kernel_name()
           << "\", \"degree_sort\": " << (engine.renumbered() ? 1 : 0)
           << ", \"peak_rss_mb\": " << format_double(util::peak_rss_mb(), 1)
           << ", \"edges\": " << built.h().num_edges()
           << ", \"serve\": " << batch.stats_json()
           << ", \"latency\": "
           << (batch.latency ? batch.latency->stats_json() : std::string("{}"))
           << ", \"stretch\": " << stretch.stats_json()
           << ", \"build_info\": " << util::build_info_json()
           << invariants_field() << "}\n";
    const std::string path = cli.get("json", "-");
    if (path == "-") {
      std::cout << record.str();
    } else {
      std::ofstream file(path);
      file << record.str();
      file.flush();
      if (!file) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
      std::cout << "[wrote " << path << "]\n";
    }
  }
  return 0;
}

int run(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"algo", "algorithm to build (see --list)"},
           {"list", "list registered algorithms and exit"},
           {"describe", "print metadata for one algorithm and exit"},
           {"family", "graph family (default er; see generators.hpp)"},
           {"n", "number of vertices (default 256)"},
           {"kappa", "sparsity parameter (default 4)"},
           {"eps", "stretch slack in (0,1) (default 0.25)"},
           {"rho", "time exponent in (1/kappa, 1/2) (default 0.45)"},
           {"rescale", "treat eps as the final target stretch (default off)"},
           {"threads", "CONGEST scheduler lanes, 0 = hardware (default 1)"},
           {"seed", "generator + baseline seed (default 2024)"},
           {"audit", "retain audit data (default off)"},
           {"json", "write the uniform stats JSON to FILE ('-' = stdout)"},
           {"transport", "delivery model ideal|faulty|async (default ideal)"},
           {"drop-p", "faulty: per-message drop probability (default 0)"},
           {"dup-p", "faulty: per-message duplicate probability (default 0)"},
           {"latency-max", "async: latency uniform in [1, L] rounds (default 1)"},
           {"transport-seed", "seed of the transport hash (default 1)"},
           {"workload", "query: uniform|zipf|grouped|point_vs_all (default zipf)"},
           {"queries", "query: workload size (default 10000)"},
           {"workload-seed", "query: workload generator seed (default 42)"},
           {"zipf-s", "query: zipf source exponent (default 1.1)"},
           {"group-size", "query: grouped run length (default 64)"},
           {"all-fraction", "query: point_vs_all SSSP fraction (default 0.05)"},
           {"qps-threads", "query: serving lanes, 0 = hardware (default 1)"},
           {"cache-mb", "query: SSSP cache budget in MiB, <=0 off (default 64)"},
           {"cache-shards", "query: cache lock shards (default 16)"},
           {"kernel", "query: SSSP kernel dial|delta (default dial)"},
           {"delta", "query: delta-stepping bucket width, 0 = auto (default 0)"},
           {"degree-sort", "serve H degree-renumbered internally (default off)"},
           {"stretch-sample", "query: pairs stretch-checked vs BFS on G (default 100)"},
           {"profile", "print the per-phase CONGEST construction profile"},
           {"trace-out", "write span traces to FILE (Chrome trace-event JSON)"},
           {"slow-query-us", "query: log queries at/over N us to stderr (default off)"}},
          /*allow_positional=*/true,
          /*switches=*/{"list", "rescale", "audit", "degree-sort", "profile"});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("usne_run");
    return cli.help_requested() ? 0 : 1;
  }

  if (cli.get_bool("list", false)) {
    for (const std::string& name : algorithms()) std::cout << name << '\n';
    return 0;
  }
  if (cli.has("describe")) {
    const AlgorithmInfo& info = describe(cli.get("describe", ""));
    std::cout << info.name << ": " << info.summary << '\n'
              << "  kind=" << info.kind << " model=" << info.model
              << (info.deterministic ? " deterministic" : " randomized")
              << (info.baseline ? " baseline" : " paper-variant")
              << (info.uses_rho ? " uses-rho" : "")
              << (info.uses_seed ? " uses-seed" : "")
              << (info.supports_rescale ? " supports-rescale" : "")
              << (info.supports_transport ? " supports-transport" : "") << '\n';
    return 0;
  }

  // `usne_run query ...` switches to serving mode after the build.
  const bool query_mode =
      !cli.positional().empty() && cli.positional().front() == "query";

  BuildSpec spec;
  spec.algorithm = cli.get("algo", "");
  // A bare positional is accepted as the algorithm name: `usne_run spanner`
  // (in query mode the algorithm may follow the subcommand).
  if (spec.algorithm.empty()) {
    const std::size_t positional_algo = query_mode ? 1 : 0;
    if (cli.positional().size() > positional_algo) {
      spec.algorithm = cli.positional()[positional_algo];
    }
  }
  if (spec.algorithm.empty() && query_mode) {
    spec.algorithm = "emulator_fast";  // the oracle's default builder
  }
  if (spec.algorithm.empty()) {
    std::cerr << "error: --algo is required (try --list)\n";
    return 1;
  }
  const std::string family = cli.get("family", "er");
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 256));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2024));
  spec.params.kappa = static_cast<int>(cli.get_int("kappa", 4));
  spec.params.eps = cli.get_double("eps", 0.25);
  spec.params.rho = cli.get_double("rho", 0.45);
  spec.params.rescale = cli.get_bool("rescale", false);
  spec.exec.num_threads = static_cast<int>(cli.get_int("threads", 1));
  spec.exec.keep_audit_data = cli.get_bool("audit", false);
  spec.exec.degree_sort = cli.get_bool("degree-sort", false);
  spec.exec.profile = cli.get_bool("profile", false);
  spec.exec.seed = seed;
  spec.exec.transport.model =
      congest::parse_transport_model(cli.get("transport", "ideal"));
  spec.exec.transport.seed =
      static_cast<std::uint64_t>(cli.get_int("transport-seed", 1));
  spec.exec.transport.drop_p = cli.get_double("drop-p", 0.0);
  spec.exec.transport.dup_p = cli.get_double("dup-p", 0.0);
  spec.exec.transport.latency_max = cli.get_int("latency-max", 1);

  const Graph g = gen_family(family, n, seed);
  const bool tracing = cli.has("trace-out");
  if (tracing) obs::trace_set_enabled(true);
  Timer timer;
  const BuildOutput out = build(g, spec);
  const double wall_s = timer.seconds();

  if (spec.exec.profile) print_profile(out.profile);

  if (query_mode) {
    const int rc = run_query(cli, g, spec, out, family, seed, wall_s);
    if (tracing) {
      const int trc = dump_trace(cli.get("trace-out", "trace.json"));
      if (rc == 0) return trc;
    }
    return rc;
  }

  std::cout << describe(spec.algorithm).summary << '\n'
            << "graph:  " << family << ", n = " << g.num_vertices()
            << ", m = " << g.num_edges() << '\n';
  if (!out.params_description.empty()) {
    std::cout << "params: " << out.params_description << '\n';
  }
  std::cout << "|H| = " << out.h().num_edges();
  if (out.has_guarantee) {
    std::cout << "  guarantee: d_H <= " << out.alpha << " * d_G + " << out.beta;
  }
  std::cout << '\n';
  if (out.distributed) {
    std::cout << "congest: rounds = " << out.net.rounds
              << ", messages = " << out.net.messages
              << ", words = " << out.net.words;
    if (spec.exec.transport.model != congest::TransportModel::kIdeal) {
      std::cout << "\ntransport: "
                << congest::transport_model_name(spec.exec.transport.model)
                << " (seed " << spec.exec.transport.seed
                << "), injected: dropped = " << out.transport.dropped
                << ", duplicated = " << out.transport.duplicated
                << ", delayed = " << out.transport.delayed;
    }
    if (!out.local.empty()) {
      // Spanners carry no local-knowledge obligation (their edges are the
      // endpoints' own incident graph edges), so only report the check
      // where it verifies something.
      std::cout << ", endpoints_ok = "
                << (out.endpoints_consistent() ? "yes" : "NO");
    }
    std::cout << '\n';
  }
  std::cout << "built in " << wall_s << "s\n";

  if (tracing) {
    const int trc = dump_trace(cli.get("trace-out", "trace.json"));
    if (trc != 0) return trc;
  }

  if (cli.has("json")) {
    std::ostringstream record;
    record << "{\"driver\": \"usne_run\", \"family\": \"" << family
           << "\", \"n\": " << g.num_vertices()
           << ", \"kappa\": " << spec.params.kappa
           << ", \"eps\": " << spec.params.eps
           << ", \"rho\": " << spec.params.rho << ", \"seed\": " << seed
           << ", \"threads\": " << spec.exec.num_threads << ", \"transport\": \""
           << congest::transport_model_name(spec.exec.transport.model)
           << "\", \"transport_seed\": " << spec.exec.transport.seed
           << ", \"drop_p\": " << spec.exec.transport.drop_p
           << ", \"dup_p\": " << spec.exec.transport.dup_p
           << ", \"latency_max\": " << spec.exec.transport.latency_max
           << ", \"build\": " << out.stats_json()
           << ", \"build_info\": " << util::build_info_json()
           << (spec.exec.profile ? profile_json(out.profile) : std::string())
           << invariants_field() << "}\n";
    const std::string path = cli.get("json", "-");
    if (path == "-") {
      std::cout << record.str();
    } else {
      std::ofstream file(path);
      file << record.str();
      file.flush();
      if (!file) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
      std::cout << "[wrote " << path << "]\n";
    }
  }
  return 0;
}

}  // namespace
