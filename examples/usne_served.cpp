// usne_served — the network serving daemon: build a construction from CLI
// flags (same build vocabulary as usne_run), wrap it in serve::QueryEngine,
// and serve distance queries over TCP via net::Server until a signal.
//
//   ./usne_served --algo emulator_fast --family er --n 1024 --kappa 8
//                 --rho 0.3 --seed 2024 --port 0 --workers 2
//                 --port-file /tmp/usne.port --json /tmp/usne.stats.json
//
// Lifecycle:
//   SIGINT / SIGTERM   graceful shutdown: drain in-flight requests, flush
//                      responses, write the --json stats record, exit 0.
//   SIGHUP             live reload: rebuild the same (graph, spec) from
//                      scratch and swap the fresh engine behind the live
//                      socket — zero dropped in-flight requests.
//   --reload-fifo P    same as SIGHUP, but triggered by writing a byte to
//                      the named FIFO at P (created if absent) — for
//                      environments where signalling is awkward (check.sh).
//   --duration S       exit (gracefully) after S seconds — a safety net for
//                      scripted runs; 0 means run until signalled.
//
// The --port-file flag writes the actual bound port (resolving --port 0)
// once listening — the rendezvous the smoke test and loadgen use. The
// --json record embeds net::Server::stats_json(): counters, p50/p99/p999
// service-latency percentiles, cumulative + per-interval cache stats,
// build_info + uptime_s, and (when audits are on) the invariant ledger
// including the kDaemon request conservation counters.
//
// Observability extras:
//   --metrics-file F       rewrite F (atomically: tmp + rename) with the
//                          Prometheus metrics page every --stats-interval-s
//                          seconds and once at shutdown — file-based
//                          scraping without a wire client.
//   --stats-interval-s S   also log the one-line STATS JSON to stdout every
//                          S seconds (default 5 when --metrics-file is set,
//                          otherwise off).
//   --trace-out F          enable span tracing and dump Chrome trace-event
//                          JSON to F at shutdown.
//   --slow-query-us N      stderr SLOW_QUERY lines for engine queries at or
//                          over N microseconds.

#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/query_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_reload = 0;

void on_signal(int sig) {
  if (sig == SIGHUP) {
    g_reload = 1;
  } else {
    g_shutdown = 1;
  }
}

int run(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"algo", "algorithm to build (default emulator_fast)"},
           {"family", "graph family (default er)"},
           {"n", "number of vertices (default 1024)"},
           {"kappa", "sparsity parameter (default 8)"},
           {"eps", "stretch slack in (0,1) (default 0.25)"},
           {"rho", "time exponent (default 0.3)"},
           {"rescale", "treat eps as the final target stretch (default off)"},
           {"threads", "build threads, 0 = hardware (default 1)"},
           {"seed", "generator + build seed (default 2024)"},
           {"degree-sort", "serve H degree-renumbered internally (default off)"},
           {"cache-mb", "SSSP cache budget in MiB, <=0 off (default 64)"},
           {"cache-shards", "cache lock shards (default 16)"},
           {"kernel", "SSSP kernel dial|delta (default dial)"},
           {"delta", "delta-stepping bucket width, 0 = auto (default 0)"},
           {"host", "listen address (default 127.0.0.1)"},
           {"port", "TCP port, 0 = ephemeral (default 0)"},
           {"workers", "worker threads (default 2)"},
           {"max-queue", "admission bound on queued requests (default 1024)"},
           {"max-inflight", "per-connection in-flight cap (default 256)"},
           {"batch-max", "batching queue flush size (default 32)"},
           {"flush-us", "batching queue flush deadline in us (default 500)"},
           {"idle-timeout-ms", "close idle connections after (default 30000)"},
           {"port-file", "write the bound port to FILE once listening"},
           {"reload-fifo", "FIFO path; any write triggers a live reload"},
           {"duration", "exit after S seconds, 0 = until signal (default 0)"},
           {"json", "write the shutdown stats record to FILE ('-' = stdout)"},
           {"metrics-file", "rewrite FILE with the Prometheus metrics page periodically"},
           {"stats-interval-s", "metrics/stats logging interval in seconds (default 5)"},
           {"trace-out", "write span traces to FILE at shutdown (Chrome JSON)"},
           {"slow-query-us", "log engine queries at/over N us to stderr (default off)"}},
          /*allow_positional=*/false,
          /*switches=*/{"rescale", "degree-sort"});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("usne_served");
    return cli.help_requested() ? 0 : 1;
  }

  BuildSpec spec;
  spec.algorithm = cli.get("algo", "emulator_fast");
  const std::string family = cli.get("family", "er");
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 1024));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 2024));
  spec.params.kappa = static_cast<int>(cli.get_int("kappa", 8));
  spec.params.eps = cli.get_double("eps", 0.25);
  spec.params.rho = cli.get_double("rho", 0.3);
  spec.params.rescale = cli.get_bool("rescale", false);
  spec.exec.num_threads = static_cast<int>(cli.get_int("threads", 1));
  spec.exec.degree_sort = cli.get_bool("degree-sort", false);
  spec.exec.seed = seed;

  serve::ServeOptions serve_options;
  serve_options.cache_mb = cli.get_double("cache-mb", 64.0);
  serve_options.cache_shards = static_cast<int>(cli.get_int("cache-shards", 0));
  serve_options.kernel = parse_sssp_kernel(cli.get("kernel", "dial"));
  serve_options.delta = cli.get_int("delta", 0);
  serve_options.slow_query_us = cli.get_int("slow-query-us", 0);

  net::ServerOptions server_options;
  server_options.host = cli.get("host", "127.0.0.1");
  server_options.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  server_options.workers = static_cast<int>(cli.get_int("workers", 2));
  server_options.max_queue = static_cast<int>(cli.get_int("max-queue", 1024));
  server_options.max_inflight_per_conn =
      static_cast<int>(cli.get_int("max-inflight", 256));
  server_options.batch_max = static_cast<int>(cli.get_int("batch-max", 32));
  server_options.flush_us = cli.get_int("flush-us", 500);
  server_options.idle_timeout_ms = cli.get_int("idle-timeout-ms", 30000);

  const double duration_s = cli.get_double("duration", 0.0);
  const std::string metrics_path = cli.get("metrics-file", "");
  const std::string trace_path = cli.get("trace-out", "");
  // Periodic stats logging is on whenever an interval or a metrics file is
  // requested; the interval defaults to 5 s.
  const double stats_interval_s =
      cli.has("stats-interval-s") ? cli.get_double("stats-interval-s", 5.0)
                                  : (metrics_path.empty() ? 0.0 : 5.0);
  const bool log_stats = cli.has("stats-interval-s");

  // Atomic rewrite (tmp + rename) so a concurrent reader of the metrics
  // file never sees a half-written page.
  auto write_metrics_file = [&]() -> bool {
    if (metrics_path.empty()) return true;
    const std::string tmp = metrics_path + ".tmp";
    {
      std::ofstream f(tmp);
      f << obs::Registry::global().prometheus_text();
      f.flush();
      if (!f) return false;
    }
    return std::rename(tmp.c_str(), metrics_path.c_str()) == 0;
  };

  if (!trace_path.empty()) obs::trace_set_enabled(true);

  // Build once up front; reloads repeat exactly this.
  const Graph g = gen_family(family, n, seed);
  auto build_engine = [&]() {
    const BuildOutput out = build(g, spec);
    return std::make_shared<serve::QueryEngine>(out, serve_options);
  };
  usne::Timer build_timer;
  std::shared_ptr<serve::QueryEngine> engine = build_engine();
  const double build_s = build_timer.seconds();

  net::Server server(engine, server_options);
  server.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGHUP, on_signal);

  std::cout << "usne_served: " << spec.algorithm << " on " << family
            << ", n = " << g.num_vertices() << ", |H| = "
            << engine->emulator().num_edges() << " (built in "
            << format_double(build_s, 2) << "s)\n"
            << "listening on " << server_options.host << ":" << server.port()
            << "  (workers = " << server_options.workers
            << ", max_queue = " << server_options.max_queue
            << ", batch = " << server_options.batch_max << "/"
            << server_options.flush_us << "us)\n"
            << std::flush;

  if (cli.has("port-file")) {
    const std::string path = cli.get("port-file", "");
    std::ofstream f(path);
    f << server.port() << "\n";
    f.flush();
    if (!f) {
      std::cerr << "error: could not write " << path << '\n';
      server.stop();
      return 1;
    }
  }

  // Optional FIFO reload trigger. O_RDWR keeps the read end open across
  // writers, so the fd stays valid after each writer closes.
  int fifo_fd = -1;
  const std::string fifo_path = cli.get("reload-fifo", "");
  if (!fifo_path.empty()) {
    ::mkfifo(fifo_path.c_str(), 0600);  // EEXIST is fine
    fifo_fd = ::open(fifo_path.c_str(), O_RDWR | O_NONBLOCK);
    if (fifo_fd < 0) {
      std::cerr << "error: could not open reload fifo " << fifo_path << '\n';
      server.stop();
      return 1;
    }
  }

  usne::Timer uptime;
  usne::Timer stats_timer;
  while (g_shutdown == 0) {
    if (duration_s > 0 && uptime.seconds() >= duration_s) break;
    if (fifo_fd >= 0) {
      char buf[256];
      if (::read(fifo_fd, buf, sizeof(buf)) > 0) g_reload = 1;
    }
    if (g_reload != 0) {
      g_reload = 0;
      usne::Timer reload_timer;
      server.reload(build_engine());
      std::cout << "usne_served: reloaded (rebuilt in "
                << format_double(reload_timer.seconds(), 2) << "s)\n"
                << std::flush;
    }
    if (stats_interval_s > 0 && stats_timer.seconds() >= stats_interval_s) {
      stats_timer.reset();
      if (!write_metrics_file()) {
        std::cerr << "error: could not write " << metrics_path << '\n';
      }
      if (log_stats) {
        std::cout << "STATS " << server.stats_json() << '\n' << std::flush;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Final metrics page before stop(): stop() deregisters the server's
  // collector, and the last page should still carry the usne_net_* series.
  if (!write_metrics_file()) {
    std::cerr << "error: could not write " << metrics_path << '\n';
    server.stop();
    return 1;
  }
  server.stop();
  if (fifo_fd >= 0) ::close(fifo_fd);
  if (!trace_path.empty()) {
    obs::trace_set_enabled(false);
    std::ofstream f(trace_path);
    f << obs::trace_dump_chrome_json();
    f.flush();
    if (!f) {
      std::cerr << "error: could not write " << trace_path << '\n';
      return 1;
    }
    std::cout << "usne_served: wrote " << trace_path << " ("
              << obs::trace_retained_events() << " trace events)\n";
  }

  const std::string record = "{\"driver\": \"usne_served\", \"algo\": \"" +
                             spec.algorithm + "\", \"family\": \"" + family +
                             "\", \"n\": " + std::to_string(g.num_vertices()) +
                             ", \"kappa\": " + std::to_string(spec.params.kappa) +
                             ", \"seed\": " + std::to_string(seed) +
                             ", \"port\": " + std::to_string(server.port()) +
                             ", \"server\": " + server.stats_json() + "}\n";
  std::cout << "usne_served: shut down cleanly\n" << record << std::flush;
  if (cli.has("json")) {
    const std::string path = cli.get("json", "-");
    if (path != "-") {
      std::ofstream f(path);
      f << record;
      f.flush();
      if (!f) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
