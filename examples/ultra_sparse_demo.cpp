// The headline result (paper Corollary 2.15): an emulator with n + o(n)
// edges. Sets kappa = omega(log n) and shows |H| hugging n from below while
// the input graph has many times more edges. Built through the unified API
// ("emulator_fast" — the §3.3 scalable builder).
//
//   ./ultra_sparse_demo [--n 32768] [--avg-deg 12] [--rho 0.3] [--seed 7]

#include <cmath>
#include <iostream>

#include "api/build.hpp"
#include "core/params.hpp"
#include "eval/metrics.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 32768)"},
           {"avg-deg", "average degree of the input graph (default 12)"},
           {"rho", "running-time exponent in (1/kappa, 1/2) (default 0.3)"},
           {"seed", "generator seed (default 7)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("ultra_sparse_demo");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 32768));
  const int avg_deg = static_cast<int>(cli.get_int("avg-deg", 12));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const Graph g =
      gen_connected_gnm(n, static_cast<std::int64_t>(n) * avg_deg / 2, seed);

  // kappa = log n * log log n — omega(log n), the ultra-sparse regime.
  const double log_n = std::log2(static_cast<double>(n));
  const int kappa = static_cast<int>(std::ceil(log_n * std::log2(log_n)));

  BuildSpec spec;
  spec.algorithm = "emulator_fast";
  spec.params.kappa = kappa;
  spec.params.rho = cli.get_double("rho", 0.3);
  spec.params.eps = 0.25;

  std::cout << "input:   n = " << n << ", m = " << g.num_edges() << "\n"
            << "kappa  = " << kappa << "  (log2 n = " << log_n << ")\n"
            << "bound  = n^(1+1/kappa) = " << emulator_size_bound(n, kappa)
            << "  = n + " << (emulator_size_bound(n, kappa) - n) << "\n";

  const BuildOutput result = build(g, spec);
  std::cout << "|H|    = " << result.h().num_edges() << "  (excess over n: "
            << format_double(ultra_sparse_excess(result.h(), n) * 100, 3)
            << "%)\n";

  Table phases({"phase", "|P_i|", "popular", "|U_i|", "interconnect",
                "supercluster"});
  for (const auto& p : result.result.phases) {
    phases.row()
        .add(p.phase)
        .add(p.clusters_in)
        .add(p.popular)
        .add(p.unclustered)
        .add(p.interconnect_edges)
        .add(p.supercluster_edges);
  }
  phases.print(std::cout, "phase structure");

  const auto stretch = evaluate_stretch_sampled(g, result.h(), result.alpha,
                                                result.beta, 8, seed);
  std::cout << "stretch: max additive " << stretch.max_additive
            << " over " << stretch.pairs << " sampled pairs (budget beta = "
            << result.beta << "), violations " << stretch.violations << "\n";
  std::cout << "\nThe emulator preserves all pairwise distances up to "
            << "(1+eps, beta) using barely n edges — that is Corollary 2.15.\n";
  return stretch.ok() ? 0 : 1;
}
