// Spanner vs emulator trade-off on the same input (paper §4 vs §2).
//
// A spanner is a subgraph — its edges physically exist, so it can be
// deployed as an overlay/backbone (e.g. keeping only O(n^(1+1/kappa)) links
// of a dense data-center fabric); an emulator allows arbitrary weighted
// shortcut edges and gets strictly sparser. This example builds all three
// constructions through the unified registry — one BuildSpec each — and
// compares size and stretch.
//
//   ./spanner_pipeline [--n 4096] [--kappa 8] [--rho 0.4]

#include <iostream>

#include "api/build.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 4096)"},
           {"kappa", "sparsity parameter (default 8)"},
           {"rho", "time exponent (default 0.4)"},
           {"seed", "seed (default 21)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("spanner_pipeline");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  const Graph g = gen_connected_gnm(n, 6L * n, seed);
  std::cout << "input: n = " << n << ", m = " << g.num_edges() << "\n\n";

  BuildSpec spec;
  spec.params.kappa = static_cast<int>(cli.get_int("kappa", 8));
  spec.params.rho = cli.get_double("rho", 0.4);
  spec.params.eps = 0.25;
  spec.exec.keep_audit_data = false;

  Table table({"construction", "|H|", "subgraph?", "beta budget",
               "max add (sampled)", "violations"});
  const auto add_row = [&](const char* algo, const char* label) {
    spec.algorithm = algo;
    const BuildOutput r = build(g, spec);
    const auto stretch =
        evaluate_stretch_sampled(g, r.h(), r.alpha, r.beta, 10, seed);
    table.row()
        .add(label)
        .add(r.h().num_edges())
        .add(is_subgraph(r.h(), g) ? "yes" : "no")
        .add(r.beta)
        .add(stretch.max_additive)
        .add(stretch.violations);
  };
  add_row("spanner", "spanner (this paper, §4)");
  add_row("spanner_em19", "spanner (EM19 baseline)");
  add_row("emulator_fast", "emulator (this paper, §3)");
  table.print(std::cout, "spanner vs emulator on the same input");

  std::cout << "size bound n^(1+1/kappa) = "
            << emulator_size_bound(n, spec.params.kappa)
            << "; the emulator is allowed weighted shortcuts and is the "
               "sparsest; the spanner stays inside G.\n";
  return 0;
}
