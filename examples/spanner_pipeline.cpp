// Spanner vs emulator trade-off on the same input (paper §4 vs §2).
//
// A spanner is a subgraph — its edges physically exist, so it can be
// deployed as an overlay/backbone (e.g. keeping only O(n^(1+1/kappa)) links
// of a dense data-center fabric); an emulator allows arbitrary weighted
// shortcut edges and gets strictly sparser. This example builds both and
// compares size, stretch, and the EM19 baseline.
//
//   ./spanner_pipeline [--n 4096] [--kappa 8] [--rho 0.4]

#include <iostream>

#include "core/emulator_fast.hpp"
#include "core/params.hpp"
#include "core/spanner.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 4096)"},
           {"kappa", "sparsity parameter (default 8)"},
           {"rho", "time exponent (default 0.4)"},
           {"seed", "seed (default 21)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("spanner_pipeline");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 4096));
  const int kappa = static_cast<int>(cli.get_int("kappa", 8));
  const double rho = cli.get_double("rho", 0.4);
  const double eps = 0.25;
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  const Graph g = gen_connected_gnm(n, 6L * n, seed);
  std::cout << "input: n = " << n << ", m = " << g.num_edges() << "\n\n";

  const auto sp_params = SpannerParams::compute(n, kappa, rho, eps);
  const auto em_params = DistributedParams::compute(n, kappa, rho, eps);

  SpannerOptions sopt;
  sopt.keep_audit_data = false;
  FastOptions fopt;
  fopt.keep_audit_data = false;

  const auto spanner = build_spanner(g, sp_params, sopt);
  const auto em19 = build_spanner_em19(g, em_params, sopt);
  const auto emulator = build_emulator_fast(g, em_params, fopt);

  Table table({"construction", "|H|", "subgraph?", "beta budget",
               "max add (sampled)", "violations"});
  const auto eval = [&](const WeightedGraph& h, const PhaseSchedule& sched) {
    return evaluate_stretch_sampled(g, h, sched.alpha_bound(),
                                    sched.beta_bound(), 10, seed);
  };
  {
    const auto r = eval(spanner.h, sp_params.schedule);
    table.row()
        .add("spanner (this paper, §4)")
        .add(spanner.h.num_edges())
        .add(is_subgraph(spanner.h, g) ? "yes" : "no")
        .add(sp_params.schedule.beta_bound())
        .add(r.max_additive)
        .add(r.violations);
  }
  {
    const auto r = eval(em19.h, em_params.schedule);
    table.row()
        .add("spanner (EM19 baseline)")
        .add(em19.h.num_edges())
        .add(is_subgraph(em19.h, g) ? "yes" : "no")
        .add(em_params.schedule.beta_bound())
        .add(r.max_additive)
        .add(r.violations);
  }
  {
    const auto r = eval(emulator.h, em_params.schedule);
    table.row()
        .add("emulator (this paper, §3)")
        .add(emulator.h.num_edges())
        .add(is_subgraph(emulator.h, g) ? "yes" : "no")
        .add(em_params.schedule.beta_bound())
        .add(r.max_additive)
        .add(r.violations);
  }
  table.print(std::cout, "spanner vs emulator on the same input");

  std::cout << "size bound n^(1+1/kappa) = " << emulator_size_bound(n, kappa)
            << "; the emulator is allowed weighted shortcuts and is the "
               "sparsest; the spanner stays inside G.\n";
  return 0;
}
