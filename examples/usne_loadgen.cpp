// usne_loadgen — drive a running usne_served daemon with a reproducible
// serve::WorkloadSpec over the wire and report qps + latency percentiles.
//
//   ./usne_loadgen --port 4242 --n 1024 --workload zipf --queries 8000
//                  --connections 4 --batch 16 --verify
//                  --algo emulator_fast --family er --kappa 8 --rho 0.3
//                  --seed 2024 --json -
//
// The workload is expanded locally (generate_workload — same expansion the
// daemon-side bench and usne_run use), split into per-connection contiguous
// slices, and sent as kBatch frames of --batch queries each. Every frame's
// request_id is the global index of its first query, so answers are
// reassembled positionally: the resulting order-sensitive FNV checksum is
// defined to equal serve::BatchResult::checksum for the same workload — the
// loopback gate that proves the wire path answers bit-identically to the
// in-process engine. With --verify, that engine is actually built here
// (same build flags as usne_served) and the equality is checked on the
// spot; without it, the checksum is just reported for check.sh to compare.
//
// Two pacing modes:
//   --mode closed            (default) each connection keeps exactly one
//                            batch in flight: latency == service time.
//   --mode open --target-qps Q
//                            batches are due on a fixed schedule (Q split
//                            evenly across connections); latency is
//                            measured from the *due* time, so queueing
//                            delay when the daemon falls behind is charged
//                            to the daemon, not hidden (open-loop
//                            coordinated-omission-free measurement).
//
// kBusy responses are retried after a short backoff and counted.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "api/build.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/query_engine.hpp"
#include "serve/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using Clock = usne::MonoClock;

struct ConnStats {
  std::int64_t busy_retries = 0;
  std::string error;
};

int run(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"host", "daemon address (default 127.0.0.1)"},
           {"port", "daemon TCP port (required)"},
           {"port-file", "read the port from FILE (usne_served --port-file)"},
           {"n", "vertex count the workload draws from (default 1024)"},
           {"workload", "uniform|zipf|grouped|point_vs_all (default zipf)"},
           {"queries", "workload size (default 8000)"},
           {"workload-seed", "workload generator seed (default 42)"},
           {"zipf-s", "zipf source exponent (default 1.1)"},
           {"group-size", "grouped run length (default 64)"},
           {"all-fraction", "point_vs_all SSSP fraction (default 0.05)"},
           {"connections", "concurrent client connections (default 4)"},
           {"batch", "queries per kBatch frame (default 16)"},
           {"mode", "closed|open pacing (default closed)"},
           {"target-qps", "open mode: aggregate offered load (default 5000)"},
           {"verify", "build the engine in-process and check the checksum"},
           {"algo", "verify: algorithm (default emulator_fast)"},
           {"family", "verify: graph family (default er)"},
           {"kappa", "verify: sparsity parameter (default 8)"},
           {"eps", "verify: stretch slack (default 0.25)"},
           {"rho", "verify: time exponent (default 0.3)"},
           {"seed", "verify: generator + build seed (default 2024)"},
           {"cache-mb", "verify: engine cache budget (default 64)"},
           {"kernel", "verify: SSSP kernel dial|delta (default dial)"},
           {"json", "append the result row to FILE ('-' = stdout)"},
           {"scrape-metrics", "after the run, fetch the daemon's Prometheus metrics page to FILE ('-' = stdout)"}},
          /*allow_positional=*/false,
          /*switches=*/{"verify"});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("usne_loadgen");
    return cli.help_requested() ? 0 : 1;
  }

  const std::string host = cli.get("host", "127.0.0.1");
  std::uint16_t port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (cli.has("port-file")) {
    std::ifstream f(cli.get("port-file", ""));
    int p = 0;
    if (!(f >> p) || p <= 0 || p > 65535) {
      std::cerr << "error: could not read a port from --port-file\n";
      return 1;
    }
    port = static_cast<std::uint16_t>(p);
  }
  if (port == 0) {
    std::cerr << "error: --port (or --port-file) is required\n";
    return 1;
  }

  const Vertex n = static_cast<Vertex>(cli.get_int("n", 1024));
  serve::WorkloadSpec workload;
  workload.kind = serve::parse_workload_kind(cli.get("workload", "zipf"));
  workload.num_queries = cli.get_int("queries", 8000);
  workload.seed =
      static_cast<std::uint64_t>(cli.get_int("workload-seed", 42));
  workload.zipf_s = cli.get_double("zipf-s", 1.1);
  workload.group_size = cli.get_int("group-size", 64);
  workload.all_fraction = cli.get_double("all-fraction", 0.05);

  const int connections =
      std::max(1, static_cast<int>(cli.get_int("connections", 4)));
  const std::size_t batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("batch", 16)));
  const std::string mode = cli.get("mode", "closed");
  if (mode != "closed" && mode != "open") {
    std::cerr << "error: --mode must be closed or open\n";
    return 1;
  }
  const bool open_loop = (mode == "open");
  const double target_qps = cli.get_double("target-qps", 5000.0);

  const std::vector<serve::Query> queries =
      serve::generate_workload(n, workload);
  const std::size_t total = queries.size();
  std::vector<Dist> answers(total, 0);

  // Contiguous per-connection slices: connection c owns
  // [c*per_conn, min((c+1)*per_conn, total)).
  const std::size_t per_conn = (total + connections - 1) / connections;

  std::vector<std::unique_ptr<serve::LatencyHistogram>> hist;
  std::vector<ConnStats> conn_stats(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    hist.push_back(std::make_unique<serve::LatencyHistogram>());
  }

  const Clock::time_point start = Clock::now();
  usne::Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t lo =
          std::min(total, static_cast<std::size_t>(c) * per_conn);
      const std::size_t hi = std::min(total, lo + per_conn);
      if (lo >= hi) return;
      ConnStats& st = conn_stats[static_cast<std::size_t>(c)];
      try {
        net::Client client;
        client.connect(host, port);
        // Open-loop schedule: this connection serves its share of
        // target_qps; batch i is due at start + i*batch/share.
        const double share_qps = target_qps / connections;
        std::size_t batch_index = 0;
        for (std::size_t i = lo; i < hi; i += batch, ++batch_index) {
          const std::size_t m = std::min(batch, hi - i);
          const std::span<const serve::Query> slice(queries.data() + i, m);
          Clock::time_point due = Clock::now();
          if (open_loop && share_qps > 0) {
            const auto offset = std::chrono::microseconds(static_cast<std::int64_t>(
                1e6 * static_cast<double>(batch_index) * static_cast<double>(batch) / share_qps));
            due = start + offset;
            std::this_thread::sleep_until(due);
          }
          for (;;) {
            try {
              const std::vector<Dist> got = client.query_batch(slice);
              for (std::size_t k = 0; k < m; ++k) answers[i + k] = got[k];
              break;
            } catch (const net::RpcError& e) {
              if (e.code() != net::ErrorCode::kBusy) throw;
              st.busy_retries += 1;
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          }
          hist[static_cast<std::size_t>(c)]->record(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - due)
                  .count());
        }
      } catch (const std::exception& e) {
        st.error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.seconds();

  for (const ConnStats& st : conn_stats) {
    if (!st.error.empty()) {
      std::cerr << "error: connection failed: " << st.error << '\n';
      return 1;
    }
  }

  std::uint64_t checksum = serve::kChecksumSeed;
  for (const Dist d : answers) checksum = serve::checksum_accumulate(checksum, d);

  std::int64_t busy_retries = 0;
  for (const ConnStats& st : conn_stats) busy_retries += st.busy_retries;
  serve::LatencyHistogram merged;
  for (const auto& h : hist) merged.merge_from(*h);

  // --verify: the same workload through the in-process engine must produce
  // the identical order-sensitive checksum.
  int match = -1;  // -1 = not checked
  if (cli.get_bool("verify", false)) {
    BuildSpec spec;
    spec.algorithm = cli.get("algo", "emulator_fast");
    spec.params.kappa = static_cast<int>(cli.get_int("kappa", 8));
    spec.params.eps = cli.get_double("eps", 0.25);
    spec.params.rho = cli.get_double("rho", 0.3);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 2024));
    spec.exec.seed = seed;
    const Graph g = gen_family(cli.get("family", "er"), n, seed);
    serve::ServeOptions options;
    options.cache_mb = cli.get_double("cache-mb", 64.0);
    options.kernel = parse_sssp_kernel(cli.get("kernel", "dial"));
    const BuildOutput built = build(g, spec);
    const serve::QueryEngine engine(built, options);
    const serve::BatchResult reference = engine.serve(queries, 1);
    match = (reference.checksum == checksum) ? 1 : 0;
  }

  const double qps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  std::cout << "loadgen: " << serve::workload_kind_name(workload.kind)
            << ", " << total << " queries (seed " << workload.seed << ") over "
            << connections << " connection(s), batch = " << batch << ", mode = "
            << mode << (open_loop
                            ? " @ " + format_double(target_qps, 0) + " qps offered"
                            : std::string())
            << "\nthroughput: " << format_double(qps, 0) << " qps  ("
            << format_double(wall_s * 1e3, 1) << " ms wall, " << busy_retries
            << " busy retries)\nlatency: p50 = " << merged.percentile(0.50)
            << "us, p99 = " << merged.percentile(0.99)
            << "us, p999 = " << merged.percentile(0.999)
            << "us (per " << (open_loop ? "due-time" : "batch") << ")\n"
            << "checksum: " << checksum;
  if (match >= 0) {
    std::cout << "  verify: " << (match == 1 ? "MATCH" : "MISMATCH");
  }
  std::cout << '\n';

  // --scrape-metrics: one METRICS round-trip once the workload has fully
  // drained — the page is quiescent, so its usne_net_* counters reconcile
  // exactly with the daemon's request ledger (what the check.sh obs smoke
  // asserts).
  if (cli.has("scrape-metrics")) {
    net::Client scraper;
    scraper.connect(host, port);
    const std::string page = scraper.metrics_text();
    const std::string path = cli.get("scrape-metrics", "-");
    if (path == "-") {
      std::cout << page;
    } else {
      std::ofstream f(path);
      f << page;
      f.flush();
      if (!f) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
    }
  }

  if (cli.has("json")) {
    std::ostringstream row;
    row << "{\"driver\": \"usne_loadgen\", \"workload\": \""
        << serve::workload_kind_name(workload.kind) << "\", \"n\": " << n
        << ", \"queries\": " << total
        << ", \"workload_seed\": " << workload.seed
        << ", \"connections\": " << connections << ", \"batch\": " << batch
        << ", \"mode\": \"" << mode << "\", \"busy_retries\": " << busy_retries
        << ", \"checksum\": " << checksum << ", \"match\": " << match
        << ", \"qps\": " << format_double(qps, 1)
        << ", \"wall_s\": " << format_double(wall_s, 4)
        << ", \"p50_us\": " << merged.percentile(0.50)
        << ", \"p99_us\": " << merged.percentile(0.99)
        << ", \"p999_us\": " << merged.percentile(0.999) << "}\n";
    const std::string path = cli.get("json", "-");
    if (path == "-") {
      std::cout << row.str();
    } else {
      std::ofstream f(path, std::ios::app);
      f << row.str();
      f.flush();
      if (!f) {
        std::cerr << "error: could not write " << path << '\n';
        return 1;
      }
    }
  }
  return match == 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
