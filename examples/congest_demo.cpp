// Distributed construction demo (paper §3): runs the deterministic CONGEST
// algorithm on the simulator, printing the round/message economics and
// verifying the both-endpoints-know property.
//
//   ./congest_demo [--n 256] [--family torus] [--kappa 4] [--rho 0.45]

#include <iostream>

#include "core/emulator_distributed.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 256)"},
           {"family", "graph family (default torus; see generators.hpp)"},
           {"kappa", "sparsity parameter (default 4)"},
           {"rho", "time exponent in (1/kappa, 1/2) (default 0.45)"},
           {"seed", "generator seed (default 3)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("congest_demo");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 256));
  const std::string family = cli.get("family", "torus");
  const int kappa = static_cast<int>(cli.get_int("kappa", 4));
  const double rho = cli.get_double("rho", 0.45);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  const Graph g = gen_family(family, n, seed);
  const auto params =
      DistributedParams::compute(g.num_vertices(), kappa, rho, 0.4);
  std::cout << "graph:  " << family << ", n = " << g.num_vertices()
            << ", m = " << g.num_edges() << "\n"
            << "params: " << params.describe() << "\n\n";

  const DistributedBuildResult result = build_emulator_distributed(g, params);

  Table rounds({"phase", "|P_i|", "popular", "|U_i|", "detect", "ruling",
                "forest", "backtrack", "interconnect"});
  for (const auto& p : result.base.phases) {
    rounds.row()
        .add(p.phase)
        .add(p.clusters_in)
        .add(p.popular)
        .add(p.unclustered)
        .add(p.rounds_detect)
        .add(p.rounds_ruling)
        .add(p.rounds_forest)
        .add(p.rounds_backtrack)
        .add(p.rounds_interconnect);
  }
  rounds.print(std::cout, "round breakdown per phase");

  std::cout << "totals: rounds = " << result.net.rounds
            << ", messages = " << result.net.messages
            << ", words = " << result.net.words << "\n"
            << "|H| = " << result.base.h.num_edges() << " (bound "
            << emulator_size_bound(g.num_vertices(), kappa) << ")\n";

  const bool endpoints = result.endpoints_consistent();
  std::cout << "both endpoints know every emulator edge: "
            << (endpoints ? "YES" : "NO") << "\n";

  const auto stretch = evaluate_stretch_sampled(
      g, result.base.h, params.schedule.alpha_bound(),
      params.schedule.beta_bound(), 8, seed);
  std::cout << "stretch violations: " << stretch.violations << " over "
            << stretch.pairs << " sampled pairs\n";
  std::cout << "\nEvery message respected the CONGEST caps (a violation "
            << "would have aborted the run), and the construction is fully "
            << "deterministic.\n";
  return (endpoints && stretch.ok()) ? 0 : 1;
}
