// Distributed construction demo (paper §3): runs the deterministic CONGEST
// algorithm on the simulator through the unified API ("emulator_congest"),
// printing the round/message economics and verifying the
// both-endpoints-know property.
//
//   ./congest_demo [--n 256] [--family torus] [--kappa 4] [--rho 0.45]
//                  [--threads 1]

#include <iostream>

#include "api/build.hpp"
#include "core/params.hpp"
#include "eval/stretch.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace usne;
  Cli cli(argc, argv,
          {{"n", "number of vertices (default 256)"},
           {"family", "graph family (default torus; see generators.hpp)"},
           {"kappa", "sparsity parameter (default 4)"},
           {"rho", "time exponent in (1/kappa, 1/2) (default 0.45)"},
           {"threads", "scheduler lanes, 0 = hardware (default 1)"},
           {"seed", "generator seed (default 3)"}});
  if (cli.help_requested() || !cli.errors().empty()) {
    for (const auto& e : cli.errors()) std::cerr << "error: " << e << '\n';
    std::cout << cli.usage("congest_demo");
    return cli.help_requested() ? 0 : 1;
  }
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 256));
  const std::string family = cli.get("family", "torus");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  const Graph g = gen_family(family, n, seed);

  BuildSpec spec;
  spec.algorithm = "emulator_congest";
  spec.params.kappa = static_cast<int>(cli.get_int("kappa", 4));
  spec.params.rho = cli.get_double("rho", 0.45);
  spec.params.eps = 0.4;
  spec.exec.num_threads = static_cast<int>(cli.get_int("threads", 1));

  const BuildOutput result = build(g, spec);
  std::cout << "graph:  " << family << ", n = " << g.num_vertices()
            << ", m = " << g.num_edges() << "\n"
            << "params: " << result.params_description << "\n\n";

  Table rounds({"phase", "|P_i|", "popular", "|U_i|", "detect", "ruling",
                "forest", "backtrack", "interconnect"});
  for (const auto& p : result.result.phases) {
    rounds.row()
        .add(p.phase)
        .add(p.clusters_in)
        .add(p.popular)
        .add(p.unclustered)
        .add(p.rounds_detect)
        .add(p.rounds_ruling)
        .add(p.rounds_forest)
        .add(p.rounds_backtrack)
        .add(p.rounds_interconnect);
  }
  rounds.print(std::cout, "round breakdown per phase");

  std::cout << "totals: rounds = " << result.net.rounds
            << ", messages = " << result.net.messages
            << ", words = " << result.net.words << "\n"
            << "|H| = " << result.h().num_edges() << " (bound "
            << emulator_size_bound(g.num_vertices(), spec.params.kappa)
            << ")\n";

  const bool endpoints = result.endpoints_consistent();
  std::cout << "both endpoints know every emulator edge: "
            << (endpoints ? "YES" : "NO") << "\n";

  const auto stretch = evaluate_stretch_sampled(g, result.h(), result.alpha,
                                                result.beta, 8, seed);
  std::cout << "stretch violations: " << stretch.violations << " over "
            << stretch.pairs << " sampled pairs\n";
  std::cout << "\nEvery message respected the CONGEST caps (a violation "
            << "would have aborted the run), and the construction is fully "
            << "deterministic.\n";
  return (endpoints && stretch.ok()) ? 0 : 1;
}
