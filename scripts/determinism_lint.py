#!/usr/bin/env python3
"""Determinism lint: flags nondeterminism sources in src/.

Reproducibility is a repository-level guarantee (fixed seeds reproduce the
same emulator, the same transport faults, the same serve checksums at any
thread count). This lint catches the constructs that silently break it:

  R1  unseeded / ambient randomness and wall-clock in logic position:
      rand(), srand(), std::random_device, time(NULL/nullptr),
      system_clock::now, this_thread::get_id, getpid. Randomness must flow
      from util/rng.hpp (seeded) or a stateless hash of explicit inputs;
      wall time may be *measured* (steady_clock in util/timer.hpp) but must
      not feed outputs.
  R2  range-for iteration over a std::unordered_map/unordered_set variable:
      iteration order is implementation-defined, so anything ordered by it
      (edge insertion, JSON fields, message emission) differs across
      standard libraries. Iterate a sorted copy, or annotate why order
      cannot matter.
  R3  pointer-keyed std::map/std::set: ordering by pointer value is ASLR-
      dependent.

Escape hatch — same line or the line directly above the construct:

    // det-lint: allow(<why order/randomness cannot affect outputs>)

Exit 0 when clean (suppressions are listed), 1 with findings.
Run by scripts/check.sh and scripts/analyze.sh.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"//\s*det-lint:\s*allow\(([^)]*)\)")

# R1: each pattern with a short reason shown in the finding.
BANNED = [
    (re.compile(r"(?<!\w)rand\s*\("), "rand(): unseeded global RNG"),
    (re.compile(r"(?<!\w)srand\s*\("), "srand(): global RNG seeding"),
    (re.compile(r"std::random_device"),
     "std::random_device: nondeterministic entropy source"),
    (re.compile(r"(?<!\w)time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time(): wall clock in logic position"),
    (re.compile(r"system_clock::now"),
     "system_clock::now: wall clock (use steady_clock for durations)"),
    (re.compile(r"this_thread::get_id"),
     "thread id: scheduling-dependent value"),
    (re.compile(r"(?<!\w)getpid\s*\("), "getpid(): process-dependent value"),
]

# R2 pass 1: unordered container declarations — members, locals, params.
#   std::unordered_map<K, V> name;   unordered_set<T> name_;
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{]*?>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*(\w+)\s*\)")

# R3: std::map/std::set keyed by a pointer type.
PTR_KEYED_RE = re.compile(r"\bstd::(?:map|set)\s*<\s*[^,<>]*\*")


def lint_file(path):
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()

    findings = []
    suppressed = []

    def allowed(idx):
        for probe in (idx, idx - 1):
            if 0 <= probe < len(lines):
                match = ALLOW_RE.search(lines[probe])
                if match:
                    return match.group(1).strip() or "(no reason given)"
        return None

    def emit(idx, rule, text):
        reason = allowed(idx)
        rel = os.path.relpath(path, REPO_ROOT)
        if reason is not None:
            suppressed.append(f"{rel}:{idx + 1}: [{rule}] {text} "
                              f"-- allowed: {reason}")
        else:
            findings.append(f"{rel}:{idx + 1}: [{rule}] {text}")

    # Pass 1: names declared as unordered containers anywhere in this file.
    unordered_names = set()
    for line in lines:
        code = line.split("//", 1)[0]
        for match in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(match.group(1))

    # Pass 2: per-line rules.
    for idx, line in enumerate(lines):
        code = line.split("//", 1)[0]
        if not code.strip():
            continue
        for pattern, why in BANNED:
            if pattern.search(code):
                emit(idx, "R1", why)
        for match in RANGE_FOR_RE.finditer(code):
            if match.group(1) in unordered_names:
                emit(idx, "R2",
                     f"range-for over unordered container '{match.group(1)}' "
                     "(implementation-defined order)")
        if PTR_KEYED_RE.search(code):
            emit(idx, "R3", "pointer-keyed ordered container "
                 "(ASLR-dependent order)")

    return findings, suppressed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(REPO_ROOT, "src")],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the allowed-sites listing")
    args = parser.parse_args()

    targets = []
    for path in args.paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                targets.extend(os.path.join(root, n) for n in sorted(names)
                               if n.endswith((".hpp", ".cpp", ".h", ".cc")))
        else:
            targets.append(path)

    all_findings = []
    all_suppressed = []
    for path in sorted(targets):
        findings, suppressed = lint_file(path)
        all_findings.extend(findings)
        all_suppressed.extend(suppressed)

    if not args.quiet:
        for line in all_suppressed:
            print(f"det-lint: {line}")
    if all_findings:
        print(f"det-lint: FAIL — {len(all_findings)} finding(s) in "
              f"{len(targets)} files:")
        for line in all_findings:
            print(f"  {line}")
        print("fix the construct, or annotate it with "
              "'// det-lint: allow(reason)' when order/randomness provably "
              "cannot reach an output")
        return 1
    print(f"det-lint: PASS — {len(targets)} files, "
          f"{len(all_suppressed)} allowed site(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
