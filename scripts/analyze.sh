#!/usr/bin/env bash
# Correctness-tooling gate: determinism lint, clang-tidy (baselined), and
# the sanitizer matrix.
#
#   scripts/analyze.sh            full gate:
#     1. scripts/determinism_lint.py over src/ (nondeterminism sources)
#     2. scripts/clang_tidy_gate.py over build/compile_commands.json,
#        diffed against scripts/clang_tidy_baseline.txt (fails on NEW
#        findings only; SKIPs cleanly when clang-tidy is not installed)
#     3. ASan+UBSan: -DUSNE_SAN=address+undefined -DUSNE_WERROR=ON build,
#        full ctest suite — any sanitizer report fails the run
#        (-fno-sanitize-recover=all; LeakSanitizer is on by default)
#     4. TSan: -DUSNE_SAN=thread -DUSNE_WERROR=ON build, ctest -L tsan
#        (the multi-threaded engine / thread-pool / transport / serve /
#        oracle suites)
#
#   scripts/analyze.sh --fast     steps 1–2 only (the static half; this is
#                                 what scripts/check.sh embeds so tier-1
#                                 stays fast)
#
# Build trees: build-asan/ and build-tsan/ (gitignored), kept apart from
# the primary build/ so the sanitizer configs never pollute release
# artifacts. Exits non-zero on any finding, report, or test failure.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
if [ "${1:-}" = "--fast" ]; then
  FAST=1
fi

echo "== determinism lint (src/) =="
python3 scripts/determinism_lint.py

echo "== clang-tidy gate (baselined) =="
# The gate wants a compile_commands.json; the plain build/ tree exports one
# at configure time (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
if [ ! -f build/compile_commands.json ]; then
  cmake -B build -S . >/dev/null
fi
python3 scripts/clang_tidy_gate.py --build-dir build

if [ "${FAST}" = "1" ]; then
  echo "== analyze --fast done (sanitizer matrix skipped) =="
  exit 0
fi

echo "== sanitizer matrix: address+undefined (full suite) =="
cmake -B build-asan -S . -DUSNE_SAN=address+undefined -DUSNE_WERROR=ON \
  >/dev/null
cmake --build build-asan -j "${JOBS}"
# Reports are fatal: UBSan recovers nowhere (-fno-sanitize-recover=all),
# ASan aborts on its first report, LeakSanitizer runs at exit by default.
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== sanitizer matrix: thread (ctest -L tsan) =="
cmake -B build-tsan -S . -DUSNE_SAN=thread -DUSNE_WERROR=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  ctest --test-dir build-tsan -L tsan --output-on-failure -j "${JOBS}"

echo "== analyze done: lint + tidy + asan/ubsan suite + tsan label green =="
