#!/usr/bin/env bash
# Tier-1 verify + CONGEST perf smoke.
#
#   scripts/check.sh           configure, build, run the full test suite,
#                              then smoke-run bench_congest_rounds at
#                              --threads 1 and --threads max and emit
#                              BENCH_congest.json (round/message/word counts
#                              per workload — the cross-PR perf trajectory —
#                              plus serial/parallel wall-clock and speedup).
#                              Fails if the model counts diverge between the
#                              serial and parallel engines: the parallel
#                              scheduler's determinism is a hard guarantee.
#
# Optional TSan gate for the parallel engine (not part of the default run):
#   cmake -B build-tsan -S . -DUSNE_TSAN=ON && cmake --build build-tsan -j
#   ctest --test-dir build-tsan -L tsan --output-on-failure
#
# Exits non-zero on any build, test, or divergence failure.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B build -S . >/dev/null

echo "== build =="
cmake --build build -j "${JOBS}"

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== CONGEST perf smoke (serial reference) =="
./build/bench_congest_rounds --threads 1 --json BENCH_congest_serial.json

echo "== CONGEST perf smoke (parallel, counts must match) =="
# bench_congest_rounds itself re-verifies serial-vs-parallel counts per row
# and exits 1 on divergence; the JSON diff below cross-checks the two runs.
./build/bench_congest_rounds --threads max --json BENCH_congest.json

echo "== serial vs parallel model-count divergence check =="
extract_rows() { sed -n '/"rows": \[/,/\]/p' "$1"; }
if ! diff <(extract_rows BENCH_congest_serial.json) \
          <(extract_rows BENCH_congest.json); then
  echo "FAIL: model counts diverge between --threads 1 and --threads max" >&2
  exit 1
fi
rm -f BENCH_congest_serial.json
echo "model counts identical across engines"

echo "== done =="
