#!/usr/bin/env bash
# Tier-1 verify + CONGEST perf smoke.
#
#   scripts/check.sh           configure, build, run the full test suite,
#                              then smoke-run bench_congest_rounds and emit
#                              BENCH_congest.json (round/message/word counts
#                              per workload — the cross-PR perf trajectory).
#
# Exits non-zero on any build or test failure.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B build -S . >/dev/null

echo "== build =="
cmake --build build -j "${JOBS}"

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== CONGEST perf smoke =="
./build/bench_congest_rounds --json BENCH_congest.json

echo "== done =="
