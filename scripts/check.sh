#!/usr/bin/env bash
# Tier-1 verify + CONGEST perf smoke.
#
#   scripts/check.sh           configure, build, run the full test suite,
#                              then smoke-run bench_congest_rounds at
#                              --threads 1 and --threads max and emit
#                              BENCH_congest.json (round/message/word counts
#                              per workload — the cross-PR perf trajectory —
#                              plus serial/parallel wall-clock and speedup).
#                              Fails if the model counts diverge between the
#                              serial and parallel engines: the parallel
#                              scheduler's determinism is a hard guarantee.
#                              Finally runs the unified-API registry smoke:
#                              `usne_run --json` for every name in
#                              usne::algorithms(), diffing the CONGEST
#                              variants' round/message/word counts against
#                              the BENCH_congest.json rows (the registry is
#                              a dispatch layer — bit-for-bit, never a
#                              semantic one), and the transport smoke:
#                              --transport ideal must reproduce the BENCH
#                              counts exactly, and faulty/async runs with a
#                              fixed --transport-seed must be identical
#                              run-to-run.
#                              Finally the serve smoke: `usne_run query`
#                              on two workloads must produce seed-stable
#                              answer checksums run-to-run (multi-threaded
#                              serving included), and bench_query_throughput
#                              regenerates BENCH_serve.json — the throughput
#                              trajectory — whose row *count* and per-row
#                              answer *checksums* must match the committed
#                              file (wall times move with the hardware; the
#                              scenario list and the answers must not drift
#                              silently). Between regeneration and those
#                              gates sits the daemon smoke: usne_served is
#                              started on a loopback ephemeral port with
#                              invariant audits on, usne_loadgen drives two
#                              seeded workloads over TCP with --verify
#                              (wire answers must be checksum-identical to
#                              an in-process engine), the daemon must exit
#                              cleanly on SIGTERM with a conserved request
#                              ledger, and the loadgen rows are merged into
#                              the report (scripts/bench_serve_merge.py) so
#                              the same row-count/checksum gates pin the
#                              daemon trajectory too. Finally the E10 scale
#                              smoke:
#                              bench_scale --smoke hard-gates that the
#                              dial/delta/degree-sorted kernels agree
#                              bit-for-bit, and the committed
#                              BENCH_scale.json row inventory (incl. the
#                              n = 2^20 rows) is pinned.
#
# Before tier-1 this script runs the static half of the correctness
# tooling (scripts/analyze.sh --fast: determinism lint + baselined
# clang-tidy gate) and, after the registry smoke, an invariant-audit
# counter sanity pass (USNE_AUDIT=1 usne_run build + query must show every
# exercised category checked > 0 with zero firings, and audits-off records
# must not carry the field).
#
# Observability gates: the -DUSNE_NO_TRACE compile-out probe (the trace
# macro layer must be symbol-free when compiled out, and the probe must be
# sensitive the other way), the construction-profile smoke (usne_run
# --profile stage coverage >= 95% of scheduler wall for both CONGEST
# constructions), the daemon obs smoke (scrape the live daemon's Prometheus
# page via usne_loadgen --scrape-metrics, assert the key per-layer series
# and reconcile the usne_net_* counters against the request-conservation
# law exactly), and the grouped-speedup floor (E9 structural-regression
# gate).
#
# The sanitizer matrix (ASan+UBSan full suite, TSan -L tsan) is the full
# scripts/analyze.sh run — heavier than tier-1 and kept separate:
#   scripts/analyze.sh
#
# Exits non-zero on any build, test, lint, or divergence failure.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B build -S . >/dev/null

echo "== build =="
cmake --build build -j "${JOBS}"

echo "== static analysis smoke (det-lint + clang-tidy gate) =="
# The cheap half of scripts/analyze.sh: determinism lint over src/ and the
# baselined clang-tidy gate (SKIPs when the tool is absent). The sanitizer
# matrix is analyze.sh's full mode — deliberately not part of tier-1.
scripts/analyze.sh --fast

echo "== obs compile-out probe (-DUSNE_NO_TRACE must be symbol-free) =="
# trace.hpp's contract: under -DUSNE_NO_TRACE the USNE_TRACE_* macros expand
# to nothing, so a TU using only the macros references no obs symbol at all
# (not "inert calls" — zero references). The probe is two-sided: the same TU
# compiled without the define must reference obs symbols, proving the probe
# can actually detect a regression. usne::obs mangles to the '4usne3obs'
# fragment on every Itanium-ABI compiler.
PROBE_DIR="$(mktemp -d)"
c++ -std=c++20 -O2 -DUSNE_NO_TRACE -I src -c tests/obs_no_trace_probe.cpp \
  -o "${PROBE_DIR}/probe_off.o"
c++ -std=c++20 -O2 -I src -c tests/obs_no_trace_probe.cpp \
  -o "${PROBE_DIR}/probe_on.o"
if nm "${PROBE_DIR}/probe_off.o" | grep -q '4usne3obs'; then
  echo "FAIL: -DUSNE_NO_TRACE build still references usne::obs symbols:" >&2
  nm "${PROBE_DIR}/probe_off.o" | grep '4usne3obs' >&2
  rm -rf "${PROBE_DIR}"
  exit 1
fi
if ! nm "${PROBE_DIR}/probe_on.o" | grep -q '4usne3obs'; then
  echo "FAIL: compile-out probe is insensitive (no obs refs even without -DUSNE_NO_TRACE)" >&2
  rm -rf "${PROBE_DIR}"
  exit 1
fi
rm -rf "${PROBE_DIR}"
echo "USNE_NO_TRACE: macro layer is symbol-free (probe sensitive both ways)"

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== CONGEST perf smoke (serial reference) =="
# Keep the committed counts aside: after regeneration the model counts
# (rounds/messages/words) must be unchanged — wall times move with the
# hardware, the CONGEST cost model must not drift silently.
if [ -f BENCH_congest.json ]; then
  cp BENCH_congest.json BENCH_congest_committed.json
fi
./build/bench_congest_rounds --threads 1 --json BENCH_congest_serial.json

echo "== CONGEST perf smoke (parallel, counts must match) =="
# bench_congest_rounds itself re-verifies serial-vs-parallel counts per row
# and exits 1 on divergence; the JSON diff below cross-checks the two runs.
./build/bench_congest_rounds --threads max --json BENCH_congest.json

echo "== serial vs parallel model-count divergence check =="
# Both the ideal rows and the non-ideal transport rows must be identical
# between the two engines: counts AND injected-event counters are
# deterministic for any thread count.
extract_section() { sed -n "/\"$2\": \[/,/\]/p" "$1"; }
for section in rows transport_rows; do
  if ! diff <(extract_section BENCH_congest_serial.json "${section}") \
            <(extract_section BENCH_congest.json "${section}"); then
    echo "FAIL: ${section} diverge between --threads 1 and --threads max" >&2
    exit 1
  fi
done
rm -f BENCH_congest_serial.json
echo "model counts identical across engines (ideal + transport rows)"

echo "== committed CONGEST count drift check =="
count_fields() { grep -o "\"\(rounds\|messages\|words\)\": [0-9]*" "$1" || true; }
if [ -f BENCH_congest_committed.json ]; then
  if ! diff <(count_fields BENCH_congest_committed.json) \
            <(count_fields BENCH_congest.json); then
    echo "FAIL: committed BENCH_congest.json rounds/messages/words drifted" >&2
    exit 1
  fi
  rm -f BENCH_congest_committed.json
  echo "rounds/messages/words match the committed BENCH_congest.json"
fi

echo "== unified-API registry smoke (usne_run over every algorithm) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
for algo in $(./build/usne_run --list); do
  ./build/usne_run --algo "${algo}" --family er --n 128 --kappa 4 \
    --rho 0.49 --eps 0.4 --seed 2024 --threads 1 \
    --json "${SMOKE_DIR}/${algo}.json" >/dev/null
done
echo "all $(./build/usne_run --list | wc -l) registered algorithms built"

echo "== registry vs BENCH_congest.json (CONGEST count diff) =="
# The `|| true`s keep set -e/pipefail from killing the script on a failed
# grep before the FAIL diagnostics below can print.
json_field() { { grep -o "\"$2\": [0-9]*" "$1" || true; } | head -n 1 | awk '{print $2}'; }
for algo in $(./build/usne_run --list); do
  ./build/usne_run --describe "${algo}" | grep -q "model=congest" || continue
  row="$(grep "\"algo\": \"${algo}\", \"family\": \"er\", \"n\": 128," \
    BENCH_congest.json || true)"
  if [ -z "${row}" ]; then
    echo "FAIL: no BENCH_congest.json row for ${algo} (er, n=128)" >&2
    exit 1
  fi
  for key in rounds messages words; do
    want="$(printf '%s' "${row}" | { grep -o "\"${key}\": [0-9]*" || true; } | awk '{print $2}')"
    got="$(json_field "${SMOKE_DIR}/${algo}.json" "${key}")"
    if [ "${want}" != "${got}" ]; then
      echo "FAIL: ${algo} ${key}: usne_run=${got} != BENCH_congest.json=${want}" >&2
      exit 1
    fi
  done
  echo "${algo}: rounds/messages/words match BENCH_congest.json"
done

echo "== invariant-audit counter sanity (USNE_AUDIT=1 usne_run) =="
# One audit-enabled build run and one serve run: the JSON record must carry
# the invariants field, every exercised category must show checked > 0 and
# fired == 0 (a firing would have thrown inside the run), and a default
# (audits-off) record must NOT carry the field — the audits-are-free
# guarantee at the record level.
USNE_AUDIT=1 ./build/usne_run --algo emulator_fast --family er --n 128 \
  --kappa 4 --rho 0.49 --eps 0.4 --seed 2024 --threads 1 \
  --json "${SMOKE_DIR}/audit_build.json" >/dev/null
USNE_AUDIT=1 ./build/usne_run query --algo emulator_fast --family er \
  --n 256 --kappa 4 --rho 0.3 --seed 2024 --workload zipf --queries 500 \
  --workload-seed 42 --qps-threads 2 --cache-mb 8 \
  --json "${SMOKE_DIR}/audit_query.json" >/dev/null
for probe in "audit_build.json csr" "audit_query.json csr" \
             "audit_query.json serve_cache" "audit_query.json sssp"; do
  file="${probe%% *}"; category="${probe##* }"
  counts="$(grep -o "\"${category}\": {\"checked\": [0-9]*, \"fired\": [0-9]*}" \
    "${SMOKE_DIR}/${file}" || true)"
  checked="$(printf '%s' "${counts}" | grep -o '"checked": [0-9]*' | awk '{print $2}')"
  fired="$(printf '%s' "${counts}" | grep -o '"fired": [0-9]*' | awk '{print $2}')"
  if [ -z "${checked}" ] || [ "${checked}" -eq 0 ]; then
    echo "FAIL: ${file}: invariant category '${category}' never checked" >&2
    exit 1
  fi
  if [ "${fired}" != "0" ]; then
    echo "FAIL: ${file}: invariant category '${category}' fired ${fired} times" >&2
    exit 1
  fi
done
if grep -q '"invariants"' "${SMOKE_DIR}/emulator_fast.json"; then
  echo "FAIL: audits-off usne_run record carries an invariants field" >&2
  exit 1
fi
echo "invariant counters: csr/serve_cache/sssp checked > 0, zero firings"

echo "== transport smoke (ideal parity + seeded reproducibility) =="
# For the CONGEST constructions: an explicit --transport ideal run must
# still produce the BENCH_congest.json counts (the transport layer's
# default path is bit-for-bit the classic engine), and faulty/async runs
# with a fixed --transport-seed must be reproducible run-to-run.
for algo in emulator_congest spanner_congest; do
  row="$(grep "\"algo\": \"${algo}\", \"family\": \"er\", \"n\": 128," \
    BENCH_congest.json || true)"
  ./build/usne_run --algo "${algo}" --family er --n 128 --kappa 4 \
    --rho 0.49 --eps 0.4 --seed 2024 --threads 1 --transport ideal \
    --json "${SMOKE_DIR}/${algo}.ideal.json" >/dev/null
  for key in rounds messages words; do
    want="$(printf '%s' "${row}" | { grep -o "\"${key}\": [0-9]*" || true; } | awk '{print $2}')"
    got="$(json_field "${SMOKE_DIR}/${algo}.ideal.json" "${key}")"
    if [ "${want}" != "${got}" ]; then
      echo "FAIL: ${algo} --transport ideal ${key}: ${got} != BENCH ${want}" >&2
      exit 1
    fi
  done
  echo "${algo}: --transport ideal matches BENCH_congest.json"

  for transport_flags in \
      "faulty --drop-p 0.05 --dup-p 0.02" \
      "async --latency-max 4"; do
    model="${transport_flags%% *}"
    for run in 1 2; do
      # shellcheck disable=SC2086  # transport_flags is intentionally split
      ./build/usne_run --algo "${algo}" --family er --n 128 --kappa 4 \
        --rho 0.49 --eps 0.4 --seed 2024 --threads 1 \
        --transport ${transport_flags} --transport-seed 7 \
        --json "${SMOKE_DIR}/${algo}.${model}.${run}.json" >/dev/null
    done
    if ! diff "${SMOKE_DIR}/${algo}.${model}.1.json" \
              "${SMOKE_DIR}/${algo}.${model}.2.json" >/dev/null; then
      echo "FAIL: ${algo} --transport ${model} not reproducible for a fixed seed" >&2
      exit 1
    fi
    echo "${algo}: --transport ${model} reproducible (seed 7)"
  done
done

echo "== construction profile smoke (usne_run --profile stage coverage) =="
# Per-phase stage timing (obs tentpole): the boundary-chained attribution in
# the CONGEST scheduler must account for >= 95% of the measured scheduler
# wall time — below that the profile is lying about where construction time
# goes. Counts are asserted unchanged by profiling via the registry smoke
# above (same seed, same BENCH rows).
for algo in emulator_congest spanner_congest; do
  coverage="$(./build/usne_run --algo "${algo}" --family er --n 128 --kappa 4 \
    --rho 0.49 --eps 0.4 --seed 2024 --threads 1 --profile \
    | { grep -o 'stage coverage = [0-9.]*%' || true; } | grep -o '[0-9.]*')"
  if [ -z "${coverage}" ]; then
    echo "FAIL: ${algo} --profile printed no stage-coverage line" >&2
    exit 1
  fi
  if ! awk -v c="${coverage}" 'BEGIN { exit !(c >= 95.0) }'; then
    echo "FAIL: ${algo} profile covers only ${coverage}% of scheduler wall (< 95%)" >&2
    exit 1
  fi
  echo "${algo}: profile stage coverage ${coverage}% of scheduler wall"
done

echo "== serve smoke (usne_run query: seed-stable answer checksums) =="
# Two workload shapes, each served twice multi-threaded with a fixed
# workload seed: the FNV checksum over all answers must be identical
# run-to-run (answers are a pure function of H; caching, thread count and
# scheduling must never change them).
for workload in zipf grouped; do
  for run in 1 2; do
    ./build/usne_run query --algo emulator_fast --family er --n 512 \
      --kappa 6 --rho 0.3 --seed 2024 --workload "${workload}" \
      --queries 4000 --workload-seed 42 --qps-threads 4 --cache-mb 8 \
      --json "${SMOKE_DIR}/serve.${workload}.${run}.json" >/dev/null
  done
  # Only answer-derived fields are asserted: sssp_runs may legitimately
  # vary with thread timing (the symmetric peek changes which endpoint's
  # SSSP serves a pair) — the answers themselves never do.
  for key in checksum queries; do
    a="$(json_field "${SMOKE_DIR}/serve.${workload}.1.json" "${key}")"
    b="$(json_field "${SMOKE_DIR}/serve.${workload}.2.json" "${key}")"
    if [ -z "${a}" ] || [ "${a}" != "${b}" ]; then
      echo "FAIL: serve ${workload} ${key} not seed-stable: '${a}' vs '${b}'" >&2
      exit 1
    fi
  done
  echo "serve ${workload}: checksum seed-stable across runs ($(json_field "${SMOKE_DIR}/serve.${workload}.1.json" checksum))"
done

echo "== query throughput trajectory (BENCH_serve.json row-count diff) =="
# The bench itself hard-fails if cached/uncached/serial/parallel/legacy
# answers diverge; here we additionally pin the scenario list: the number
# of recorded rows must match the committed trajectory (wall-clock values
# are expected to move, the workload set is not).
old_serve_rows=""
if [ -f BENCH_serve.json ]; then
  old_serve_rows="$(grep -c '"workload":' BENCH_serve.json || true)"
fi
./build/bench_query_throughput --threads max --json BENCH_serve.json.tmp

echo "== daemon smoke (usne_served + usne_loadgen over loopback) =="
# Start the TCP serving daemon on an ephemeral port (invariant audits on),
# drive two seeded workloads over the wire with --verify (the loadgen
# builds the same engine in-process and exits 2 if the wire checksum
# diverges — answers must be transport-independent), then shut down with
# SIGTERM and require a clean exit plus a zero-firing daemon invariant
# ledger in the shutdown record. The loadgen rows are merged into the
# bench tmp file so the row-count and checksum gates below pin the daemon
# trajectory exactly like the in-process one.
rm -f "${SMOKE_DIR}/daemon.port" "${SMOKE_DIR}/daemon.stats.json" \
      "${SMOKE_DIR}/daemon_rows.jsonl"
USNE_AUDIT=1 ./build/usne_served --algo emulator_fast --family er --n 1024 \
  --kappa 8 --rho 0.3 --seed 2024 --workers 2 --port 0 \
  --port-file "${SMOKE_DIR}/daemon.port" \
  --json "${SMOKE_DIR}/daemon.stats.json" >/dev/null &
served_pid=$!
for _ in $(seq 1 100); do
  [ -s "${SMOKE_DIR}/daemon.port" ] && break
  sleep 0.1
done
if ! [ -s "${SMOKE_DIR}/daemon.port" ]; then
  echo "FAIL: usne_served did not write its port file" >&2
  kill "${served_pid}" 2>/dev/null || true
  exit 1
fi
for workload in zipf grouped; do
  # The last workload also scrapes the daemon's Prometheus metrics page
  # (a METRICS wire request after the workload drains — quiescent, so the
  # relaxed counter reads below reconcile exactly).
  scrape_flag=""
  if [ "${workload}" = "grouped" ]; then
    scrape_flag="--scrape-metrics ${SMOKE_DIR}/daemon.metrics.prom"
  fi
  # shellcheck disable=SC2086  # scrape_flag is intentionally split
  if ! ./build/usne_loadgen --port-file "${SMOKE_DIR}/daemon.port" --n 1024 \
      --workload "${workload}" --queries 8000 --workload-seed 42 \
      --connections 4 --batch 16 --verify --algo emulator_fast --family er \
      --kappa 8 --rho 0.3 --seed 2024 ${scrape_flag} \
      --json "${SMOKE_DIR}/daemon_rows.jsonl" >/dev/null; then
    echo "FAIL: usne_loadgen ${workload} (rc 2 = wire checksum mismatch)" >&2
    kill "${served_pid}" 2>/dev/null || true
    exit 1
  fi
  echo "daemon ${workload}: wire checksum matches the in-process engine"
done

echo "== obs smoke (daemon metrics page vs request ledger) =="
# The scraped page must carry the key series from every wired layer, and
# the usne_net_* counters on it must satisfy the same conservation law the
# daemon's invariant ledger audits: accepted == answered + rejected_busy +
# rejected_error + in_flight. The scrape was taken at quiescence (both
# workloads drained, scrape request counted on both sides of the equation),
# so the reconciliation is exact, not approximate.
if ! [ -s "${SMOKE_DIR}/daemon.metrics.prom" ]; then
  echo "FAIL: usne_loadgen --scrape-metrics wrote no metrics page" >&2
  kill "${served_pid}" 2>/dev/null || true
  exit 1
fi
metric() { awk -v n="$1" '$1 == n { print $2 }' "${SMOKE_DIR}/daemon.metrics.prom"; }
for series in usne_net_accepted_requests_total usne_net_answered_requests_total \
              usne_net_rejected_busy_total usne_net_rejected_error_total \
              usne_net_in_flight usne_serve_queries_total \
              usne_serve_sssp_runs_total usne_net_request_latency_us_count \
              usne_net_queue_wait_us_count; do
  if [ -z "$(metric "${series}")" ]; then
    echo "FAIL: daemon metrics page is missing series ${series}" >&2
    kill "${served_pid}" 2>/dev/null || true
    exit 1
  fi
done
accepted="$(metric usne_net_accepted_requests_total)"
answered="$(metric usne_net_answered_requests_total)"
rej_busy="$(metric usne_net_rejected_busy_total)"
rej_err="$(metric usne_net_rejected_error_total)"
in_flight="$(metric usne_net_in_flight)"
if [ "${accepted}" -ne "$((answered + rej_busy + rej_err + in_flight))" ]; then
  echo "FAIL: metrics page ledger not conserved: accepted=${accepted}" \
       "!= answered=${answered} + busy=${rej_busy} + error=${rej_err}" \
       "+ in_flight=${in_flight}" >&2
  kill "${served_pid}" 2>/dev/null || true
  exit 1
fi
queries="$(metric usne_serve_queries_total)"
if [ "${queries}" -lt 16000 ]; then
  echo "FAIL: usne_serve_queries_total=${queries} < 16000 served queries" >&2
  kill "${served_pid}" 2>/dev/null || true
  exit 1
fi
echo "daemon metrics page: ledger conserved (accepted=${accepted}), ${queries} queries served"
kill -TERM "${served_pid}"
if ! wait "${served_pid}"; then
  echo "FAIL: usne_served did not shut down cleanly on SIGTERM" >&2
  exit 1
fi
if ! grep -q '"daemon": {"checked": [1-9][0-9]*, "fired": 0}' \
    "${SMOKE_DIR}/daemon.stats.json"; then
  echo "FAIL: daemon invariant ledger missing or fired in shutdown record" >&2
  exit 1
fi
if ! grep -q '"in_flight": 0' "${SMOKE_DIR}/daemon.stats.json"; then
  echo "FAIL: daemon shut down with requests in flight" >&2
  exit 1
fi
echo "usne_served: clean SIGTERM shutdown, request ledger conserved"
python3 scripts/bench_serve_merge.py BENCH_serve.json.tmp \
  "${SMOKE_DIR}/daemon_rows.jsonl"

new_serve_rows="$(grep -c '"workload":' BENCH_serve.json.tmp || true)"
if [ -n "${old_serve_rows}" ] && [ "${old_serve_rows}" != "${new_serve_rows}" ]; then
  echo "FAIL: BENCH_serve.json row count changed: ${old_serve_rows} -> ${new_serve_rows}" >&2
  rm -f BENCH_serve.json.tmp
  exit 1
fi
# Answer checksums are a pure function of (H, workload seed): the committed
# per-row checksums must be byte-identical after regeneration — a serving
# optimization that moves one is a wrong answer, not a speedup.
if [ -f BENCH_serve.json ]; then
  if ! diff <(grep -o '"checksum": [0-9]*' BENCH_serve.json) \
            <(grep -o '"checksum": [0-9]*' BENCH_serve.json.tmp); then
    echo "FAIL: BENCH_serve.json answer checksums drifted" >&2
    rm -f BENCH_serve.json.tmp
    exit 1
  fi
fi
mv BENCH_serve.json.tmp BENCH_serve.json
echo "BENCH_serve.json: ${new_serve_rows} serving rows recorded (checksums stable)"

echo "== grouped-speedup floor (E9 regression gate) =="
# On a perfectly grouped stream the legacy single-entry cache is already
# SSSP-optimal, so the engine's honest standing is parity with the oracle:
# measured speedup_vs_oracle varies ~0.5-1.0x run-to-run on the 2-core CI
# host (both sides run ~300 SSSPs; the ratio is scheduler noise on a ~6 ms
# measurement). The floor below is NOT a perf target — it catches the
# structural regression class where the engine loses source-grouping
# entirely and runs one SSSP per query, which craters the ratio to ~0.02.
grouped_speedup="$(grep '"workload": "grouped"' BENCH_serve.json \
  | { grep -o '"speedup_vs_oracle": [0-9.]*' || true; } | head -n 1 | awk '{print $2}')"
if [ -z "${grouped_speedup}" ]; then
  echo "FAIL: BENCH_serve.json has no grouped speedup_vs_oracle field" >&2
  exit 1
fi
if ! awk -v s="${grouped_speedup}" 'BEGIN { exit !(s >= 0.35) }'; then
  echo "FAIL: grouped speedup_vs_oracle=${grouped_speedup} < 0.35 floor" \
       "(engine lost source-grouping?)" >&2
  exit 1
fi
echo "grouped speedup_vs_oracle=${grouped_speedup} (parity-class, floor 0.35)"

echo "== scale tier smoke (E10 bench_scale) =="
# Small-n run of the million-vertex tier: the binary itself hard-gates that
# dial, delta-stepping and degree-sorted configurations produce identical
# answers serial and parallel. The committed BENCH_scale.json (full tier,
# regenerated manually) is pinned by row inventory: the configuration count
# must not drift, and the n >= 10^6 row must stay present.
./build/bench_scale --smoke --threads max --json "${SMOKE_DIR}/scale_smoke.json"
smoke_rows="$(grep -c '"kernel":' "${SMOKE_DIR}/scale_smoke.json" || true)"
if [ "${smoke_rows}" != "3" ]; then
  echo "FAIL: bench_scale --smoke recorded ${smoke_rows} rows (expected 3)" >&2
  exit 1
fi
if [ -f BENCH_scale.json ]; then
  committed_rows="$(grep -c '"kernel":' BENCH_scale.json || true)"
  if [ "${committed_rows}" != "6" ]; then
    echo "FAIL: committed BENCH_scale.json has ${committed_rows} rows (expected 6)" >&2
    exit 1
  fi
  if ! grep -q '"n": 1048576' BENCH_scale.json; then
    echo "FAIL: committed BENCH_scale.json lost its n = 2^20 rows" >&2
    exit 1
  fi
  echo "BENCH_scale.json: ${committed_rows} committed rows incl. n=2^20; smoke gate green"
else
  echo "FAIL: BENCH_scale.json missing (run ./build/bench_scale --json BENCH_scale.json)" >&2
  exit 1
fi

echo "== done =="
